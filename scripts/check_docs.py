#!/usr/bin/env python3
"""Markdown link checker for README.md and docs/*.md (stdlib only).

Checks every inline Markdown link (``[text](target)``) in the tracked
documentation set:

* **relative file links** must point at an existing file or directory
  (resolved from the linking file's own directory);
* **anchor fragments** (``file.md#section`` or ``#section``) must match
  a heading in the target file, using GitHub's slug rules (lowercase,
  spaces to hyphens, punctuation stripped);
* **external links** (http/https/mailto) are recognised but not
  fetched -- CI must not depend on the network.

Exit code 0 when every link resolves, 1 otherwise (one line per broken
link).  Run from the repository root::

    python scripts/check_docs.py
"""

from __future__ import annotations

import re
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` -- target captured up to the closing paren.
#: Images (``![alt](...)``) are matched by the same pattern and
#: checked the same way.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)
_INLINE_CODE = re.compile(r"`[^`\n]+`")
_EXTERNAL = ("http://", "https://", "mailto:")


def doc_files() -> list[Path]:
    """The documentation set: README.md plus every docs/*.md."""
    return [ROOT / "README.md"] + sorted((ROOT / "docs").glob("*.md"))


def github_slug(heading: str) -> str:
    """GitHub's heading-to-anchor slug (ASCII subset).

    Lowercase, strip everything but word characters, spaces and
    hyphens, then turn spaces into hyphens.  Inline code and link
    syntax inside the heading contribute their text only.
    """
    text = _INLINE_CODE.sub(lambda m: m.group(0).strip("`"), heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    """Every anchor a Markdown file exposes (headings, slugged)."""
    text = _CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    for match in _HEADING.finditer(text):
        slug = github_slug(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_file(path: Path) -> list[str]:
    """Return one error string per broken link in ``path``."""
    errors: list[str] = []
    text = _CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL):
            continue
        base, _, fragment = target.partition("#")
        rel = path.relative_to(ROOT)
        if base:
            dest = (path.parent / base).resolve()
            if not dest.exists():
                errors.append(f"{rel}: broken link -> {target}")
                continue
        else:
            dest = path
        if fragment:
            if dest.is_dir() or dest.suffix.lower() not in (".md", ""):
                continue
            if dest.suffix.lower() == ".md" and \
                    fragment not in anchors_of(dest):
                errors.append(f"{rel}: missing anchor -> {target}")
    return errors


def main() -> int:
    """Check the documentation set; print failures; return exit code."""
    errors: list[str] = []
    for path in doc_files():
        errors.extend(check_file(path))
    for line in errors:
        print(line)
    checked = len(doc_files())
    if errors:
        print(f"check_docs: {len(errors)} broken link(s) "
              f"across {checked} files")
        return 1
    print(f"check_docs: all links ok across {checked} files")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
