"""E15: the sharded sweep queue -- chunked dispatch vs serial vs pool.

The sweep queue (``repro.sweepq``) replaced the per-cell process pool
with chunk leases: one IPC round-trip and one vectorized
:func:`repro.core.batch.solve_batch` call per chunk instead of one
pickled task per cell.  This bench records the wall-clock of the same
MVA stress grid through three dispatch paths:

* **serial**  -- ``SweepExecutor(jobs=1)``, the scalar reference;
* **chunked** -- ``SweepExecutor(jobs=4)``, the queue-backed default;
* **pool**    -- ``SweepExecutor(jobs=4, dispatch="cells")``, the old
  per-cell process pool E13 used to measure (0.96x on one core).

Asserted: chunked >= 2x over serial, and rows byte-identical across
all three paths.  Numbers land in ``output/sweepq.txt``
(human-readable) and ``benchmarks/BENCH_sweepq.json`` (committed
machine-readable trajectory; CI regenerates and uploads it as an
artifact without overwriting the committed baseline).

Quick mode (``REPRO_BENCH_QUICK=1``) shrinks the grid and skips the
speedup floor -- tiny grids cannot amortize the batch engine's fixed
costs.
"""

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import once  # noqa: E402

from repro.analysis.stress import stress_tasks
from repro.service.executor import SweepExecutor

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: 16 protocol combinations x 4 parameter corners x these sizes.
STRESS_SIZES = (4, 16, 64) if QUICK else tuple(range(4, 260, 8))

#: Chunked-over-serial floor asserted on the full stress grid.  The
#: container this repo is benchmarked on has one core, so the whole
#: gain is chunk amortization (batch solves + one journal round-trip
#: per lease), not parallelism -- measured ~2.9x, asserted with slack.
SPEEDUP_FLOOR = 2.0

_REPS = 1 if QUICK else 3


def _best(fn, reps=_REPS):
    """Best-of-N wall clock: the standard guard against scheduler
    noise for sub-second measurements."""
    times = []
    result = None
    for _ in range(reps):
        started = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - started)
    return min(times), result


def test_chunked_sweep_vs_serial_vs_pool(benchmark, emit):
    tasks = stress_tasks(sizes=STRESS_SIZES)
    SweepExecutor(jobs=4).run(tasks[:8])  # warm imports / first-fork cost

    def run_all():
        serial_s, serial = _best(lambda: SweepExecutor(jobs=1).run(tasks))
        chunked_s, chunked = _best(lambda: SweepExecutor(jobs=4).run(tasks))
        pool_s, pool = _best(
            lambda: SweepExecutor(jobs=4, dispatch="cells").run(tasks),
            reps=1)  # the known-slow path: one timing is plenty
        return serial_s, serial, chunked_s, chunked, pool_s, pool

    serial_s, serial, chunked_s, chunked, pool_s, pool = once(
        benchmark, run_all)

    reference = [cell.as_row() for cell in serial.cells]
    chunked_identical = [c.as_row() for c in chunked.cells] == reference
    pool_identical = [c.as_row() for c in pool.cells] == reference
    speedup = serial_s / chunked_s

    emit("sweepq.txt",
         f"E15 sweep-queue dispatch on the stress grid "
         f"({len(tasks)} MVA cells, {os.cpu_count() or 1} cores):\n"
         f"  serial (jobs=1)          : {serial_s:7.3f} s\n"
         f"  chunked (jobs=4)         : {chunked_s:7.3f} s "
         f"({speedup:.2f}x, mode={chunked.summary.mode})\n"
         f"  per-cell pool (jobs=4)   : {pool_s:7.3f} s "
         f"({serial_s / pool_s:.2f}x, mode={pool.summary.mode})\n")

    record = {
        "schema": 1,
        "cells": len(tasks),
        "quick": QUICK,
        "cores": os.cpu_count() or 1,
        "serial_s": serial_s,
        "chunked_s": chunked_s,
        "pool_s": pool_s,
        "chunked_speedup": speedup,
        "pool_speedup": serial_s / pool_s,
        "chunked_mode": chunked.summary.mode,
        "pool_mode": pool.summary.mode,
        "rows_identical": chunked_identical and pool_identical,
        "speedup_floor": None if QUICK else SPEEDUP_FLOOR,
    }
    out = Path(__file__).resolve().parent / "BENCH_sweepq.json"
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    assert chunked_identical, "chunked rows must be identical to serial"
    assert pool_identical, "pool rows must be identical to serial"
    if not QUICK:
        assert speedup >= SPEEDUP_FLOOR, (
            f"chunked sweep {speedup:.2f}x over serial, "
            f"floor is {SPEEDUP_FLOOR}x")
