"""E3: Table 4.1(c) -- speedups for enhancements 1 and 4 (write broadcast
with exclusive-on-miss, h_sw = 0.95)."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _table41_common import mva_row_solver, regenerate_part  # noqa: E402
from conftest import once  # noqa: E402


def test_table41c_regeneration(benchmark, emit):
    table = once(benchmark, lambda: regenerate_part("c"))
    emit("table41c.txt", table.render())


def test_table41c_mva_solve_speed(benchmark):
    speedups = benchmark(mva_row_solver("c"))
    assert len(speedups) == 27


def test_table41c_sharing_insensitivity(benchmark, emit):
    """Table 4.1(c)'s signature: with updates instead of invalidations the
    three sharing levels give nearly identical curves (the paper draws
    only the 5 % one in Figure 4.1)."""
    from repro.analysis.experiments import PAPER_SIZES, reproduce_table_41
    from repro.workload.parameters import SharingLevel

    results = once(benchmark, lambda: reproduce_table_41("c"))
    lines = ["Spread across sharing levels (max-min)/max per size:"]
    for k, n in enumerate(PAPER_SIZES):
        values = [results[level][k] for level in SharingLevel]
        spread = (max(values) - min(values)) / max(values)
        assert spread < 0.12, (n, values)
        lines.append(f"  N={n:>3}: {spread:.2%}")
    emit("table41c.txt", "\n".join(lines) + "\n")
