"""Shared fixtures and helpers for the benchmark/reproduction harness.

Every ``bench_*.py`` file regenerates one paper artifact (see DESIGN.md
experiment index E1-E12).  Run with::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows the regenerated tables; each bench also writes its
rendering into ``benchmarks/output/`` so EXPERIMENTS.md can be rebuilt
without scraping terminal output.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).resolve().parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def emit(output_dir):
    """Print a block and append it to a named artifact file."""

    def _emit(artifact: str, text: str) -> None:
        print("\n" + text)
        path = output_dir / artifact
        with path.open("a") as fh:
            fh.write(text)
            if not text.endswith("\n"):
                fh.write("\n")

    # Truncate artifacts at session start so reruns do not accumulate.
    for stale in OUTPUT_DIR.glob("*.txt") if OUTPUT_DIR.exists() else []:
        stale.unlink()
    return _emit


def once(benchmark, fn):
    """Run an expensive regeneration exactly once under the benchmark
    timer (simulations and sweeps are too slow for repeated rounds)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
