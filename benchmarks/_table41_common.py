"""Shared regeneration logic for the three parts of Table 4.1 (E1-E3).

Each part prints three blocks per sharing level: the paper's MVA and
GTPN rows, our MVA row, and our detailed-simulation row (the GTPN
stand-in) for the sizes the GTPN could reach.  Shape assertions encode
the claims the reproduction must preserve:

* our MVA within 10 % of the published MVA on every cell;
* our MVA within 5 % of our detailed model on every simulated cell
  (the paper's headline <= ~3 %, with a small allowance for the
  simulator's own confidence interval);
* monotone speedup in N; saturation by N = 20;
* the published sharing-level ordering.
"""

from __future__ import annotations

from repro.analysis.experiments import (
    GTPN_SIZES,
    PAPER_SIZES,
    PAPER_TABLE_41,
    TABLE_41_PROTOCOLS,
    reproduce_table_41,
)
from repro.analysis.tables import Table
from repro.core.model import CacheMVAModel
from repro.protocols.modifications import ProtocolSpec
from repro.sim.config import SimulationConfig
from repro.sim.system import simulate
from repro.workload.parameters import SharingLevel, appendix_a_workload

SIM_REQUESTS = 40_000
SIM_SEED = 4242


def regenerate_part(part: str) -> Table:
    """Full regeneration of one table part (MVA everywhere, DES at the
    GTPN sizes), rendered next to the published rows."""
    protocol: ProtocolSpec = TABLE_41_PROTOCOLS[part]
    ours_mva = reproduce_table_41(part)
    table = Table(
        title=f"Table 4.1({part}) -- {protocol.label}: paper vs reproduction",
        columns=["sharing", "method", *[str(n) for n in PAPER_SIZES]],
    )
    sim_rows: dict[SharingLevel, list[float | None]] = {}
    for level in SharingLevel:
        workload = appendix_a_workload(level)
        row: list[float | None] = []
        for n in PAPER_SIZES:
            if n not in GTPN_SIZES:
                row.append(None)
                continue
            result = simulate(SimulationConfig(
                n_processors=n, workload=workload, protocol=protocol,
                seed=SIM_SEED + n, warmup_requests=4_000,
                measured_requests=SIM_REQUESTS))
            row.append(result.speedup)
        sim_rows[level] = row

    for paper_row in PAPER_TABLE_41[part]:
        table.add_row(paper_row.sharing.label, f"paper {paper_row.method}",
                      *paper_row.speedups)
        if paper_row.method == "GTPN":
            table.add_row(paper_row.sharing.label, "our MVA",
                          *ours_mva[paper_row.sharing])
            table.add_row(paper_row.sharing.label, "our DES",
                          *sim_rows[paper_row.sharing])
    _assert_shape(part, ours_mva, sim_rows)
    return table


def _assert_shape(part, ours_mva, sim_rows) -> None:
    # Within 10 % of the published MVA (re-derived inputs, DESIGN.md 5).
    for paper_row in PAPER_TABLE_41[part]:
        if paper_row.method != "MVA":
            continue
        for published, measured in zip(paper_row.speedups,
                                       ours_mva[paper_row.sharing]):
            assert published is None or (
                abs(measured - published) / published < 0.10), (
                part, paper_row.sharing, published, measured)
    # MVA vs detailed agreement (the paper's central claim).  The paper
    # saw <= 4.25 % against its GTPN; our simulator carries ~1.5 %
    # standard error per cell at these run lengths and resolves slightly
    # more detail at the congestion knee, so the band is 6.5 %.
    for level, sim_row in sim_rows.items():
        for n, mva, sim in zip(PAPER_SIZES, ours_mva[level], sim_row):
            if sim is None:
                continue
            assert abs(mva - sim) / sim < 0.065, (part, level, n, mva, sim)
    # Near-monotone + saturated curves.  The published table itself dips
    # slightly past saturation (4.1(b): 7.09 at N=20 -> 7.04 at N=100),
    # so successive values may fall by up to 2 %.
    for level, speedups in ours_mva.items():
        for earlier, later in zip(speedups, speedups[1:]):
            assert later >= 0.98 * earlier, (part, level, speedups)
        s20 = speedups[PAPER_SIZES.index(20)]
        s100 = speedups[PAPER_SIZES.index(100)]
        assert abs(s100 - s20) / s20 < 0.03


def mva_row_solver(part: str):
    """The cheap part, suitable for repeated benchmark rounds: all 27
    MVA cells of one table part."""
    protocol = TABLE_41_PROTOCOLS[part]
    models = [CacheMVAModel(appendix_a_workload(level), protocol)
              for level in SharingLevel]

    def solve_all():
        return [model.speedup(n) for model in models for n in PAPER_SIZES]

    return solve_all
