"""E4: Figure 4.1 -- speedup-vs-processors curves for the three
protocols at the three sharing levels.

Emits the ASCII rendering plus the CSV series, and asserts the visual
claims of the figure: curve ordering, the mods-2/3 invisibility, and
the WO+1+4 separation at high sharing.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import once  # noqa: E402

from repro.analysis.figures import ascii_chart, figure_41_series, to_csv
from repro.core.model import CacheMVAModel
from repro.protocols.modifications import ProtocolSpec
from repro.workload.parameters import SharingLevel, appendix_a_workload


def test_figure41_series(benchmark, emit):
    series = once(benchmark, figure_41_series)
    emit("figure41.txt", ascii_chart(
        series, title="Figure 4.1: MVA speedup vs number of processors"))
    emit("figure41.csv", to_csv(series))
    by_label = {s.label: s for s in series}
    # Ordering at every x: WO <= WO+1 at matching sharing levels.  A 1 %
    # tolerance covers the marginal low-N/high-sharing cells where the
    # rep_p override (0.2 -> 0.3) nearly cancels the broadcast savings.
    for level in ("1%", "5%", "20%"):
        wo = by_label[f"Write-Once ({level})"]
        mod1 = by_label[f"WO+1 ({level})"]
        assert all(a <= b * 1.01 for a, b in zip(wo.ys, mod1.ys)), level
        # And a clear win once contention matters (right edge of figure).
        assert mod1.ys[-1] > wo.ys[-1] * 1.05, level
    # WO+1+4 (5%) tops WO+1 (5%) from mid sizes on.
    mod14 = by_label["WO+1+4 (5%)"]
    mod1_5 = by_label["WO+1 (5%)"]
    assert mod14.ys[-1] > mod1_5.ys[-1]


def test_figure41_mods_2_3_indistinguishable(benchmark, emit):
    """'Speedups for modifications 2 and 3 are nearly indistinguishable
    from the results for the protocols without these modifications, and
    are thus not shown.'"""
    workload = appendix_a_workload(SharingLevel.FIVE_PERCENT)
    sizes = (1, 2, 4, 6, 8, 10, 15, 20)

    def curves():
        out = {}
        for mods in [(), (2,), (3,), (2, 3)]:
            model = CacheMVAModel(workload, ProtocolSpec.of(*mods))
            out[mods] = [model.speedup(n) for n in sizes]
        return out

    result = once(benchmark, curves)
    base = result[()]
    lines = ["Mods 2/3 deviation from Write-Once (max over N, 5% sharing):"]
    for mods in [(2,), (3,), (2, 3)]:
        worst = max(abs(a - b) / b for a, b in zip(result[mods], base))
        lines.append(f"  +{'+'.join(map(str, mods))}: {worst:.2%}")
        assert worst < 0.05, mods
    emit("figure41.txt", "\n".join(lines) + "\n")


def test_figure41_solve_speed(benchmark):
    """All 7 curves x 13 sizes solved per round."""
    series = benchmark(figure_41_series)
    assert len(series) == 7
