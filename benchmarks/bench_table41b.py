"""E2: Table 4.1(b) -- speedups for enhancement 1 (exclusive on miss)."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _table41_common import mva_row_solver, regenerate_part  # noqa: E402
from conftest import once  # noqa: E402


def test_table41b_regeneration(benchmark, emit):
    table = once(benchmark, lambda: regenerate_part("b"))
    emit("table41b.txt", table.render())


def test_table41b_mva_solve_speed(benchmark):
    speedups = benchmark(mva_row_solver("b"))
    assert len(speedups) == 27


def test_table41b_mod1_always_wins(benchmark, emit):
    """Section 4.1: 'Modification 1 is clearly advantageous' -- at every
    cell of the table, enhancement 1 beats base Write-Once."""
    from repro.analysis.experiments import reproduce_table_41

    def check():
        base = reproduce_table_41("a")
        mod1 = reproduce_table_41("b")
        return base, mod1

    base, mod1 = once(benchmark, check)
    lines = ["Enhancement 1 gain over Write-Once (ratio per cell):"]
    for level, base_row in base.items():
        gains = [m / b for b, m in zip(base_row, mod1[level])]
        # Marginal low-N/high-sharing cells can dip ~0.3 % below 1 in
        # our re-derived inputs (rep_p override vs broadcast savings);
        # the claim that matters is the clear win under contention.
        assert all(g > 0.99 for g in gains), level
        assert gains[-1] > 1.05, level
        lines.append(f"  {level.label:>4}: " +
                     " ".join(f"{g:.3f}" for g in gains))
    emit("table41b.txt", "\n".join(lines) + "\n")
