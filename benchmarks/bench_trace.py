"""X3 (extension): the workload-measurement pipeline.

The paper's conclusion asks for "workload measurement studies to aid in
the assignment of parameter values".  This bench exercises that
pipeline at benchmark scale: trace-generation and estimation
throughput, stability of the measured parameters across seeds, and the
closed loop trace -> parameters -> MVA.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import once  # noqa: E402

from repro.core.model import CacheMVAModel
from repro.protocols.family import PROTOCOLS
from repro.trace import (
    CoherentCacheSystem,
    GeneratorConfig,
    SyntheticTraceGenerator,
    WorkloadEstimator,
)


def _measure(seed: int, refs: int = 120_000):
    config = GeneratorConfig(seed=seed)
    generator = SyntheticTraceGenerator(config)
    system = CoherentCacheSystem(config.n_processors, 256, 4)
    estimator = WorkloadEstimator(system, generator.stream_of)
    estimator.observe_trace(generator.trace(refs))
    return estimator.estimate()


def test_estimation_throughput(benchmark):
    """References per second through generator + caches + estimator."""
    refs = 30_000

    def run():
        return _measure(seed=1, refs=refs)

    report = benchmark.pedantic(run, rounds=3, iterations=1,
                                warmup_rounds=1)
    assert report.references == refs


def test_parameter_stability_across_seeds(benchmark, emit):
    """Two independent traces must measure the same workload (within
    sampling noise) -- otherwise the pipeline is not a measurement."""

    def run():
        return _measure(seed=101), _measure(seed=202)

    a, b = once(benchmark, run)
    fields = ("h_private", "h_sro", "h_sw", "csupply_sw", "wb_csupply",
              "rep_p", "rep_sw", "amod_private", "amod_sw")
    lines = ["X3 measured parameters, two independent seeds:"]
    # Parameters measured from rare events (shared-writable victims,
    # write hits) carry more sampling noise than the per-reference ones.
    bands = {"rep_sw": 0.08, "amod_sw": 0.08, "wb_csupply": 0.08}
    for name in fields:
        va, vb = getattr(a.workload, name), getattr(b.workload, name)
        lines.append(f"  {name:>14}: {va:.4f} vs {vb:.4f}")
        assert abs(va - vb) < bands.get(name, 0.05), name
    emit("trace.txt", "\n".join(lines) + "\n")


def test_closed_loop_against_trace_driven_timing(benchmark, emit):
    """X3/X4: measured-parameter MVA vs direct trace-driven timing
    simulation (the Archibald & Baer methodology of Section 4.4).
    Workload-model mismatch dominates here -- the MVA's probabilistic
    streams cannot carry trace correlations -- so the band is wider
    than the sampled-outcome comparisons (the paper itself calls the
    mapping between workload models 'generally not straightforward')."""
    from repro.protocols.modifications import ProtocolSpec
    from repro.sim.trace_driven import TraceDrivenConfig, simulate_trace_driven

    def run():
        cells = []
        for n in (2, 4, 8):
            gen_cfg = GeneratorConfig(n_processors=n, seed=21)
            timing = simulate_trace_driven(TraceDrivenConfig(
                generator=gen_cfg, protocol=ProtocolSpec(),
                warmup_requests=8_000, measured_requests=40_000))
            generator = SyntheticTraceGenerator(gen_cfg)
            system = CoherentCacheSystem(n, 256, 4)
            estimator = WorkloadEstimator(system, generator.stream_of)
            estimator.observe_trace(generator.trace(150_000))
            mva = CacheMVAModel(estimator.estimate().workload,
                                ProtocolSpec(),
                                apply_overrides=False).speedup(n)
            cells.append((n, timing.speedup, mva))
        return cells

    cells = once(benchmark, run)
    lines = ["X4 trace-driven timing vs measured-parameter MVA (Write-Once):"]
    for n, measured, predicted in cells:
        err = (predicted - measured) / measured
        lines.append(f"  N={n}: trace-driven {measured:.3f} vs MVA "
                     f"{predicted:.3f} ({err:+.1%})")
        assert abs(err) < 0.20, (n, measured, predicted)
    emit("trace.txt", "\n".join(lines) + "\n")


def test_closed_loop_protocol_ranking(benchmark, emit):
    """trace -> parameters -> MVA ranking of the named protocols."""

    def run():
        workload = _measure(seed=77).workload
        return workload, {
            name: CacheMVAModel(workload, spec).speedup(16)
            for name, spec in PROTOCOLS.items()}

    workload, ranking = once(benchmark, run)
    lines = [f"X3 protocol ranking under measured workload "
             f"(wb_csupply={workload.wb_csupply:.2f}):"]
    for name, speedup in sorted(ranking.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {name:>12}: {speedup:.3f}")
    emit("trace.txt", "\n".join(lines) + "\n")
    # Dirty sharing is heavy in these traces, so the ownership
    # protocols must come out on top.
    assert ranking["dragon"] >= max(ranking.values()) - 1e-9
    assert ranking["berkeley"] > ranking["illinois"]
