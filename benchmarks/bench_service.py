"""E13: the evaluation service -- parallel fan-out and result caching.

The paper's efficiency claim (Section 3.2: "seconds of computing,
independent of N") makes the MVA cheap enough to *serve*; this bench
measures the two service-layer multipliers on top of it:

1. a multi-protocol sweep with simulation cells fans out over the
   sharded sweep queue, cutting wall-clock below the serial run;
2. an MVA stress sweep through the queue's chunked dispatch beats the
   serial scalar path >= 2x even on one core (chunk amortization: one
   batch solve and one journal round-trip per lease, where the old
   per-cell process pool recorded 0.96x -- pure pickling overhead);
3. a repeated sweep with the content-addressed cache enabled re-solves
   zero cells (100 % hit rate).

Numbers land in ``output/service.txt`` (human-readable) and
``benchmarks/BENCH_service.json`` (the committed machine-readable
baseline, ``BENCH_sweepq.json``-style; the CI quick run parks its copy
as an artifact and restores the committed one).
"""

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import once  # noqa: E402

from repro.analysis.grid import GridSpec
from repro.analysis.stress import stress_tasks
from repro.protocols.modifications import ProtocolSpec
from repro.service import MetricsRegistry, ResultCache, SweepExecutor
from repro.workload.parameters import SharingLevel

#: Quick mode (the CI smoke job) shrinks the simulation cells so the
#: whole file runs in seconds; wall-clock comparisons that need real
#: work to be meaningful are skipped.
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def _write_json(record: dict) -> None:
    """Merge one section into the committed ``BENCH_service.json``."""
    path = Path(__file__).resolve().parent / "BENCH_service.json"
    existing = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except ValueError:
            existing = {}
    existing.update(record, schema=1, quick=QUICK,
                    cores=os.cpu_count() or 1)
    path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")

#: Simulation cells are what makes parallelism worth having: each cell
#: costs ~a second, so four workers on eight cells should roughly halve
#: the wall-clock even with pool start-up overhead.
_SWEEP = GridSpec(
    protocols=[ProtocolSpec(), ProtocolSpec.of(1), ProtocolSpec.of(1, 4),
               ProtocolSpec.of(1, 2, 3)],
    sizes=[4, 8],
    sharing_levels=[SharingLevel.FIVE_PERCENT],
    include_simulation=True,
    sim_requests=1_000 if QUICK else 8_000,
)


def test_parallel_sweep_beats_serial(benchmark, emit):
    """Wall-clock of the same sim-heavy sweep, serial vs 4 workers."""

    def run_both():
        started = time.perf_counter()
        serial = SweepExecutor(jobs=1).run_spec(_SWEEP)
        serial_s = time.perf_counter() - started
        started = time.perf_counter()
        parallel = SweepExecutor(jobs=4).run_spec(_SWEEP)
        parallel_s = time.perf_counter() - started
        rows_equal = ([c.as_row() for c in serial.cells]
                      == [c.as_row() for c in parallel.cells])
        return serial_s, parallel_s, parallel.summary.mode, rows_equal

    serial_s, parallel_s, mode, rows_equal = once(benchmark, run_both)
    cores = os.cpu_count() or 1
    emit("service.txt",
         f"E13 parallel sweep ({len(_SWEEP.protocols)} protocols x "
         f"{len(_SWEEP.sizes)} sizes, MVA+sim cells, {cores} cores):\n"
         f"  serial   : {serial_s:7.2f} s\n"
         f"  jobs=4   : {parallel_s:7.2f} s ({mode}, "
         f"{serial_s / parallel_s:.2f}x)\n")
    _write_json({"parallel_sweep": {
        "serial_s": serial_s, "parallel_s": parallel_s, "mode": mode,
        "speedup": serial_s / parallel_s, "rows_identical": rows_equal}})
    assert rows_equal, "parallel sweep must be bit-identical to serial"
    # Wall-clock can only drop when the machine has cores to fan out
    # to -- and enough per-cell work to hide start-up overhead, which
    # the shrunken quick-mode cells do not have.
    if not QUICK and mode in ("process-pool", "chunked") and cores > 1:
        assert parallel_s < serial_s, (
            f"4-worker sweep ({parallel_s:.2f}s) not faster than serial "
            f"({serial_s:.2f}s)")


def test_chunked_stress_sweep_beats_serial(benchmark, emit):
    """The sweep-queue satellite claim: chunked dispatch >= 2x over
    serial on the MVA stress grid at jobs=4, replacing the 0.96x the
    old per-cell process pool recorded here.  The gain is chunk
    amortization (one vectorized batch solve and one journal
    round-trip per lease), so it holds even on one core; see
    ``bench_sweepq.py`` (E15) for the three-way dispatch comparison.
    """
    tasks = stress_tasks(sizes=(4, 16, 64) if QUICK
                         else tuple(range(4, 260, 8)))
    SweepExecutor(jobs=4).run(tasks[:8])  # warm imports / first-fork cost

    def run_both():
        reps = 1 if QUICK else 3
        serial_s = min(_timed(lambda: SweepExecutor(jobs=1).run(tasks))
                       for _ in range(reps))
        chunked_best = None
        chunked_s = float("inf")
        for _ in range(reps):
            elapsed, result = _timed_result(
                lambda: SweepExecutor(jobs=4).run(tasks))
            if elapsed < chunked_s:
                chunked_s, chunked_best = elapsed, result
        serial = SweepExecutor(jobs=1).run(tasks)
        rows_equal = ([c.as_row() for c in serial.cells]
                      == [c.as_row() for c in chunked_best.cells])
        return serial_s, chunked_s, chunked_best.summary.mode, rows_equal

    serial_s, chunked_s, mode, rows_equal = once(benchmark, run_both)
    speedup = serial_s / chunked_s
    emit("service.txt",
         f"E13 chunked stress sweep ({len(tasks)} MVA cells, "
         f"{os.cpu_count() or 1} cores):\n"
         f"  serial         : {serial_s:7.3f} s\n"
         f"  chunked jobs=4 : {chunked_s:7.3f} s ({mode}, "
         f"{speedup:.2f}x)\n")
    _write_json({"chunked_stress": {
        "cells": len(tasks), "serial_s": serial_s, "chunked_s": chunked_s,
        "mode": mode, "speedup": speedup, "rows_identical": rows_equal,
        "speedup_floor": None if QUICK else 2.0}})
    assert rows_equal, "chunked sweep must be bit-identical to serial"
    if not QUICK:
        assert speedup >= 2.0, (
            f"chunked sweep only {speedup:.2f}x over serial "
            f"(floor 2.0x)")


def _timed(fn):
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def _timed_result(fn):
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


def test_cached_rerun_solves_nothing(benchmark, emit):
    """A repeated sweep through the cache is a 100 % hit rate."""
    registry = MetricsRegistry()
    executor = SweepExecutor(jobs=4, cache=ResultCache(), metrics=registry)

    def run_twice():
        executor.run_spec(_SWEEP)
        started = time.perf_counter()
        rerun = executor.run_spec(_SWEEP)
        return rerun, time.perf_counter() - started

    rerun, rerun_s = once(benchmark, run_twice)
    snapshot = registry.snapshot()
    emit("service.txt",
         f"E13 cached rerun of the same sweep:\n"
         f"  cells re-solved : {rerun.summary.solved}\n"
         f"  cache hit rate  : {rerun.summary.cache_hit_rate:.0%}\n"
         f"  rerun wall      : {rerun_s * 1e3:.1f} ms\n"
         f"  metrics         : hits={snapshot['repro_cache_hits_total']:g} "
         f"misses={snapshot['repro_cache_misses_total']:g}\n")
    _write_json({"cached_rerun": {
        "cells": rerun.summary.total, "resolved": rerun.summary.solved,
        "hit_rate": rerun.summary.cache_hit_rate, "rerun_s": rerun_s}})
    assert rerun.summary.solved == 0
    assert rerun.summary.cache_hit_rate == 1.0
    assert snapshot["repro_cache_hits_total"] == rerun.summary.total


def test_mva_grid_latency_through_service(benchmark, emit):
    """Interactive-exploration latency: a 48-cell MVA-only grid, cold
    vs cached, through the service executor."""
    spec = GridSpec(
        protocols=[ProtocolSpec(), ProtocolSpec.of(1), ProtocolSpec.of(1, 4),
                   ProtocolSpec.of(1, 2, 3)],
        sizes=[1, 2, 4, 8, 16, 32, 64, 128],
        sharing_levels=[SharingLevel.FIVE_PERCENT,
                        SharingLevel.TWENTY_PERCENT])
    executor = SweepExecutor(cache=ResultCache())

    def cold_then_warm():
        started = time.perf_counter()
        cold = executor.run_spec(spec)
        cold_s = time.perf_counter() - started
        started = time.perf_counter()
        warm = executor.run_spec(spec)
        warm_s = time.perf_counter() - started
        return cold, cold_s, warm, warm_s

    cold, cold_s, warm, warm_s = once(benchmark, cold_then_warm)
    emit("service.txt",
         f"E13 MVA-only design-space grid ({cold.summary.total} cells):\n"
         f"  cold solve : {cold_s * 1e3:7.1f} ms\n"
         f"  cached     : {warm_s * 1e3:7.1f} ms "
         f"({cold_s / warm_s:.0f}x faster)\n")
    _write_json({"grid_latency": {
        "cells": cold.summary.total, "cold_s": cold_s, "warm_s": warm_s,
        "speedup": cold_s / warm_s}})
    assert warm.summary.cache_hit_rate == 1.0
    assert warm_s < cold_s
