"""X1 (extension): the N-dependent sharing refinement.

The paper's Section 2.3 says its workload submodel "should be improved
to treat the shared references more similarly to the model in [GrMi87]"
but predicts that "this should not change the conclusions of this paper
with regard to the relative accuracy of the mean value model".  This
bench implements the improvement (per-cache residency -> csupply(N))
and tests both halves of that sentence:

* the refinement changes *absolute* speedups away from the calibration
  size (small systems look better, csupply -> 1 asymptotically);
* the refined MVA still agrees with the refined detailed simulation to
  the same few-percent band, and the protocol ordering is unchanged.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import once  # noqa: E402

from repro.core.model import CacheMVAModel
from repro.core.scaled import ScaledSharingMVAModel
from repro.protocols.modifications import ProtocolSpec
from repro.sim.config import SimulationConfig
from repro.sim.system import simulate
from repro.workload.parameters import SharingLevel, appendix_a_workload

W20 = appendix_a_workload(SharingLevel.TWENTY_PERCENT)
SIZES = (1, 2, 4, 6, 10, 20, 100)


def test_scaled_vs_fixed_curves(benchmark, emit):
    def run():
        fixed = CacheMVAModel(W20)
        scaled = ScaledSharingMVAModel(W20, reference_size=10)
        return ([fixed.speedup(n) for n in SIZES],
                [scaled.speedup(n) for n in SIZES])

    fixed, scaled = once(benchmark, run)
    lines = ["X1 Write-Once at 20% sharing, fixed vs N-scaled csupply:",
             "   N: " + " ".join(f"{n:>7}" for n in SIZES),
             "  fix: " + " ".join(f"{s:7.3f}" for s in fixed),
             " scal: " + " ".join(f"{s:7.3f}" for s in scaled)]
    emit("sharing_scaling.txt", "\n".join(lines) + "\n")
    # Calibration fixed point at N = 10.
    k10 = SIZES.index(10)
    assert abs(scaled[k10] - fixed[k10]) / fixed[k10] < 0.01
    # Small systems benefit (fewer suppliers to write back / snoop).
    assert scaled[1] >= fixed[1] - 1e-9
    assert scaled[2] > fixed[2]
    # Large systems: csupply saturates at 1 -> slightly worse than fixed.
    assert scaled[-1] < fixed[-1] * 1.01


def test_refined_model_still_agrees_with_detailed(benchmark, emit):
    """The paper's prediction: the refinement does not change the
    relative accuracy of the mean-value technique."""
    scaled = ScaledSharingMVAModel(W20, reference_size=10)

    def run():
        cells = []
        for n in (2, 6, 10):
            model = scaled.model_for(n)
            mva = model.solve(n).speedup
            sim = simulate(SimulationConfig(
                n_processors=n,
                workload=model.workload,
                seed=777 + n,
                warmup_requests=4_000,
                measured_requests=50_000,
                apply_overrides=False,
                holder_probability=model.inputs.holder_probability,
            )).speedup
            cells.append((n, mva, sim))
        return cells

    cells = once(benchmark, run)
    lines = ["X1 refined MVA vs refined detailed model (20% sharing):"]
    for n, mva, sim in cells:
        err = (mva - sim) / sim
        lines.append(f"  N={n:>2}: MVA {mva:.3f} vs DES {sim:.3f} "
                     f"({err:+.2%})")
        assert abs(err) < 0.06, (n, mva, sim)
    emit("sharing_scaling.txt", "\n".join(lines) + "\n")


def test_conclusions_unchanged(benchmark, emit):
    """Protocol ordering and the mod-4 story survive the refinement."""

    def run():
        out = {}
        for mods in [(), (1,), (1, 4)]:
            model = ScaledSharingMVAModel(W20, ProtocolSpec.of(*mods))
            out[mods] = model.speedup(20)
        return out

    speeds = once(benchmark, run)
    emit("sharing_scaling.txt",
         "X1 ordering under refinement (N=20, 20% sharing): " +
         ", ".join(f"{ProtocolSpec.of(*m).label}={s:.3f}"
                   for m, s in speeds.items()) + "\n")
    assert speeds[()] < speeds[(1,)] < speeds[(1, 4)]
