"""X5 (extension): three-comparator cross-validation.

Solves the same points with the MVA, the discrete-event simulator and
the exact Petri-net chain (exponential and Erlang-sharpened service).
Mutual agreement across four independent solution techniques is the
strongest internal-validity statement the reproduction makes.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import once  # noqa: E402

from repro.analysis.crossmodel import cross_model_table, cross_validate
from repro.protocols.modifications import ProtocolSpec
from repro.workload.parameters import SharingLevel, appendix_a_workload


def test_cross_validation_write_once(benchmark, emit):
    cells = once(benchmark, lambda: cross_validate(
        appendix_a_workload(SharingLevel.FIVE_PERCENT)))
    emit("crossmodel.txt", cross_model_table(cells).render())
    for cell in cells:
        # All four techniques within a 7 % envelope at these sizes.
        assert cell.spread < 0.07, cell
        # The Erlang-sharpened net sits between the exponential net and
        # the deterministic-time world (DES/MVA): it must not be further
        # from the DES than the exponential net is.
        gap_sharp = abs(cell.gtpn_erlang - cell.des)
        gap_expo = abs(cell.gtpn_exponential - cell.des)
        assert gap_sharp <= gap_expo + 0.02


def test_deterministic_chain_fidelity_ladder(benchmark, emit):
    """X5b: on an integer-time workload, the full fidelity ladder --
    exponential chain < MVA < deterministic-time chain ~ DES -- with the
    state-space cost of each rung."""
    from repro.gtpn import (
        solve_coherence_speedup,
        solve_discrete_coherence_speedup,
    )
    from repro.core.model import CacheMVAModel
    from repro.sim.config import SimulationConfig
    from repro.sim.system import simulate
    from repro.workload.derived import derive_inputs

    w = appendix_a_workload(SharingLevel.FIVE_PERCENT).replace(
        csupply_sro=0.0, csupply_sw=0.0, wb_csupply=0.0,
        rep_p=0.0, rep_sw=0.0)
    inputs = derive_inputs(w)
    mva_model = CacheMVAModel(w)

    def run():
        rows = []
        for n in (1, 2, 3):
            det, det_states = solve_discrete_coherence_speedup(n, inputs)
            expo = solve_coherence_speedup(n, inputs)
            sim = simulate(SimulationConfig(
                n_processors=n, workload=w, seed=3,
                warmup_requests=4_000, measured_requests=50_000))
            rows.append((n, det, det_states, expo.speedup, expo.n_states,
                         sim.speedup, mva_model.speedup(n)))
        return rows

    rows = once(benchmark, run)
    lines = ["X5b deterministic-time chain (the true GTPN semantics):",
             "   N  det-chain(st)   expo-chain(st)      DES      MVA"]
    for n, det, dst, expo, est, sim, mva in rows:
        lines.append(f"  {n:>2}  {det:7.4f}({dst:>3})  {expo:7.4f}({est:>3})"
                     f"  {sim:7.4f}  {mva:7.4f}")
        # Deterministic chain is the closest model to the DES.
        assert abs(det - sim) <= abs(expo - sim) + 1e-9, n
        assert abs(det - sim) / sim < 0.02, n
        # And clocks-in-state cost more states than memorylessness.
        assert dst > est, n
    emit("crossmodel.txt", "\n".join(lines) + "\n")


def test_cross_validation_dragon(benchmark, emit):
    cells = once(benchmark, lambda: cross_validate(
        appendix_a_workload(SharingLevel.FIVE_PERCENT),
        ProtocolSpec.of(1, 2, 3, 4), sizes=(2, 4)))
    emit("crossmodel.txt", cross_model_table(cells).render())
    for cell in cells:
        assert cell.spread < 0.07, cell
