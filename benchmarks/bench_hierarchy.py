"""X2 (extension): hierarchical-bus scaling study.

The paper's conclusion points at Wilson's hierarchical cache/bus
architecture as the natural next application of the customized-MVA
approach.  This bench runs that study: cluster-count sweeps against the
flat single-bus ceiling, locality/cluster-cache sensitivity, and the
cost of non-split (held) global transactions.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import once  # noqa: E402

from repro.core.model import CacheMVAModel
from repro.hierarchy import HierarchicalMVAModel, HierarchyParams
from repro.workload.parameters import SharingLevel, appendix_a_workload

W5 = appendix_a_workload(SharingLevel.FIVE_PERCENT)


def test_cluster_scaling_vs_flat(benchmark, emit):
    def run():
        flat_limit = CacheMVAModel(W5).speedup(128)
        rows = []
        for clusters in (1, 2, 4, 8, 16, 32):
            report = HierarchicalMVAModel(W5, HierarchyParams(
                clusters=clusters, per_cluster=8, cluster_locality=0.9,
                cluster_cache_hit=0.8)).solve()
            rows.append((clusters, report))
        return flat_limit, rows

    flat_limit, rows = once(benchmark, run)
    lines = [f"X2 cluster scaling (K=8, locality 0.9, cluster cache 0.8); "
             f"flat single-bus limit = {flat_limit:.2f}:"]
    for clusters, report in rows:
        lines.append(
            f"  C={clusters:>2} (N={report.n_processors:>3}): speedup "
            f"{report.speedup:7.2f}, U_local {report.u_local_bus:.2f}, "
            f"U_global {report.u_global_bus:.2f}")
    emit("hierarchy.txt", "\n".join(lines) + "\n")
    speedups = [r.speedup for _, r in rows]
    # Monotone up to numerical wiggle at the saturated tail (<0.1 %).
    for earlier, later in zip(speedups, speedups[1:]):
        assert later >= earlier * 0.999
    assert speedups[-1] > 1.5 * flat_limit  # the ceiling breaks
    # The new ceiling is the global bus.
    assert rows[-1][1].u_global_bus > 0.95


def test_locality_and_cluster_cache_sensitivity(benchmark, emit):
    def run():
        grid = {}
        for theta in (0.5, 0.9):
            for hit in (0.0, 0.8):
                report = HierarchicalMVAModel(W5, HierarchyParams(
                    clusters=8, per_cluster=8, cluster_locality=theta,
                    cluster_cache_hit=hit)).solve()
                grid[(theta, hit)] = report.speedup
        return grid

    grid = once(benchmark, run)
    lines = ["X2 sensitivity (C=8, K=8): speedup by "
             "(locality, cluster-cache hit):"]
    for (theta, hit), speedup in grid.items():
        lines.append(f"  theta={theta}, hit={hit}: {speedup:7.2f}")
    emit("hierarchy.txt", "\n".join(lines) + "\n")
    assert grid[(0.9, 0.8)] > grid[(0.5, 0.8)] > grid[(0.5, 0.0)]


def test_split_transaction_ablation(benchmark, emit):
    def run():
        out = {}
        for split in (True, False):
            out[split] = HierarchicalMVAModel(W5, HierarchyParams(
                clusters=4, per_cluster=8, split_transactions=split)).speedup()
        return out

    out = once(benchmark, run)
    emit("hierarchy.txt",
         f"X2 split-transaction ablation (C=4, K=8): split {out[True]:.2f} "
         f"vs held {out[False]:.2f}\n")
    assert out[True] > out[False]


def test_hierarchy_mva_vs_detailed(benchmark, emit):
    """Section-4.2-style validation of the extension: the hierarchical
    MVA against the hierarchical discrete-event simulator."""
    from repro.sim.hierarchical import HierarchicalSimConfig, simulate_hierarchy

    def run():
        cells = []
        for clusters, k in ((1, 6), (2, 4), (4, 8), (8, 8)):
            params = HierarchyParams(clusters=clusters, per_cluster=k,
                                     cluster_locality=0.9,
                                     cluster_cache_hit=0.8)
            sim = simulate_hierarchy(HierarchicalSimConfig(
                hierarchy=params, workload=W5, seed=55,
                warmup_requests=4_000, measured_requests=50_000))
            mva = HierarchicalMVAModel(W5, params).solve()
            cells.append((params, mva, sim))
        return cells

    cells = once(benchmark, run)
    lines = ["X2 hierarchical MVA vs hierarchical DES:"]
    for params, mva, sim in cells:
        err = (mva.speedup - sim.speedup) / sim.speedup
        lines.append(
            f"  C={params.clusters} K={params.per_cluster}: "
            f"MVA {mva.speedup:7.3f} vs DES {sim.speedup:7.3f} "
            f"({err:+.2%}); U_global {mva.u_global_bus:.3f} vs "
            f"{sim.u_global_bus:.3f}")
        assert abs(err) < 0.08, (params, mva.speedup, sim.speedup)
    emit("hierarchy.txt", "\n".join(lines) + "\n")


def test_hierarchy_solve_speed(benchmark):
    """The MVA's interactivity survives the extension."""
    model = HierarchicalMVAModel(W5, HierarchyParams(
        clusters=16, per_cluster=16))
    report = benchmark(model.solve)
    assert report.converged
