"""E6: the Section 4.3 stress test -- unrealistic parameters chosen to
break the MVA's cache-interference approximations.

"we set the values of rep_p, rep_sw, and amod_sw to 0.0, csupply_sro
and csupply_sw to 1.0, p_sw to 0.2, and hit_sw to 0.1.  The speedup
estimates of the MVA model agreed, within 5% relative error, with the
speedup estimates in the GTPN ... It appears that the MVA model is
quite robust."
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import once  # noqa: E402

from repro.analysis.comparison import agreement_table, compare_mva_and_simulation
from repro.core.model import CacheMVAModel
from repro.protocols.modifications import ProtocolSpec
from repro.workload.parameters import appendix_a_workload, stress_test_workload
from repro.workload.parameters import SharingLevel

SIZES = (1, 2, 4, 6, 8, 10)


def test_stress_agreement(benchmark, emit):
    workload = stress_test_workload()
    study = once(benchmark, lambda: compare_mva_and_simulation(
        workload, ProtocolSpec(), SIZES, measured_requests=60_000))
    emit("stress.txt", agreement_table(study).render())
    emit("stress.txt",
         f"max |rel err| = {study.max_abs_error:.2%} "
         "(paper: within 5% on its stress tests)\n")
    assert study.max_abs_error < 0.06


def test_stress_has_heavy_interference(benchmark, emit):
    """The point of the parameters: lots of shared misses with certain
    cache supply means the cache-interference terms dominate."""
    def interference():
        stress = CacheMVAModel(stress_test_workload()).system(10).interference
        normal = CacheMVAModel(
            appendix_a_workload(SharingLevel.FIVE_PERCENT)
        ).system(10).interference
        return stress, normal

    stress, normal = once(benchmark, interference)
    emit("stress.txt",
         f"cache interference p: stress {stress.p:.4f} vs Appendix-A "
         f"{normal.p:.4f}; t_interference {stress.t_interference:.2f} vs "
         f"{normal.t_interference:.2f}\n")
    assert stress.p > 4 * normal.p
    assert stress.t_interference > normal.t_interference


def test_stress_solver_still_converges(benchmark):
    """Robustness: the fixed point stays well-behaved on the stress
    workload for large systems too."""
    model = CacheMVAModel(stress_test_workload())

    def solve_ladder():
        return [model.solve(n) for n in (10, 100, 1000)]

    reports = benchmark(solve_ladder)
    assert all(r.converged for r in reports)
