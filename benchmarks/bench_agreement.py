"""E5: the Section 4.2 agreement study -- MVA vs the detailed model.

The paper: "Nearly all MVA estimates are within 1% of the GTPN
estimates, and the maximum relative error is 2.6%" (Write-Once),
"4.25%" (enhancement 1); bus utilization agrees within ~5 % with the
MVA *underestimating* it (GTPN 81 % vs MVA 77 % at N = 6).

Our detailed model is the discrete-event simulator; we assert the same
error band (<= 5 %, allowing for simulation noise) and the same bias
direction on bus utilization.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import once  # noqa: E402

from repro.analysis.comparison import agreement_table, compare_mva_and_simulation
from repro.protocols.modifications import ProtocolSpec
from repro.workload.parameters import SharingLevel, appendix_a_workload

SIZES = (1, 2, 4, 6, 8, 10)


def _study(protocol, level=SharingLevel.FIVE_PERCENT, requests=60_000):
    return compare_mva_and_simulation(
        appendix_a_workload(level), protocol, SIZES,
        measured_requests=requests)


def test_agreement_write_once(benchmark, emit):
    study = once(benchmark, lambda: _study(ProtocolSpec()))
    emit("agreement.txt", agreement_table(study).render())
    emit("agreement.txt", study.summary() + "\n")
    assert study.max_abs_error < 0.05


def test_agreement_enhancement1(benchmark, emit):
    study = once(benchmark, lambda: _study(ProtocolSpec.of(1)))
    emit("agreement.txt", agreement_table(study).render())
    assert study.max_abs_error < 0.05


def test_agreement_all_single_modifications(benchmark, emit):
    """Section 4.2: 'we investigated the accuracy of the MVA model
    further by validating it against the GTPN for each of the other
    three enhancements. In every case, the MVA model estimates agreed
    nearly exactly.'"""

    def run():
        return {mods: _study(ProtocolSpec.of(*mods), requests=60_000)
                for mods in [(2,), (3,), (1, 4)]}

    studies = once(benchmark, run)
    lines = ["Per-modification agreement (max |rel err| over N=1..10):"]
    for mods, study in studies.items():
        lines.append(f"  WO+{'+'.join(map(str, mods))}: "
                     f"{study.max_abs_error:.2%}")
        # Worst cells sit at the congestion knee where the simulation CI
        # is ~1.5 % itself; the paper's own worst case was 4.25 %.
        assert study.max_abs_error < 0.065, mods
    emit("agreement.txt", "\n".join(lines) + "\n")


def test_accuracy_summary(benchmark, emit):
    """The Section 4.2 framing, pooled over the three table protocols:
    error statistics, the within-1 %/5 % fractions, and the bias sign."""
    from repro.analysis.accuracy import summarize

    def run():
        studies = [_study(ProtocolSpec.of(*mods), requests=60_000)
                   for mods in [(), (1,), (1, 4)]]
        return summarize(studies), studies

    summary, _ = once(benchmark, run)
    emit("agreement.txt", "Pooled accuracy: " + summary.text() + "\n")
    assert summary.max_abs_error < 0.065
    assert summary.within_5pct >= 0.85
    # Paper: the MVA generally *underestimates* speedup vs the detailed
    # model at contention (negative mean signed error).
    assert summary.mean_signed_error < 0.01


def test_bus_utilization_bias(benchmark, emit):
    """The MVA underestimates bus utilization relative to the detailed
    model (paper: GTPN ~81 % vs MVA ~77 % at N = 6)."""
    study = once(benchmark, lambda: _study(ProtocolSpec(), requests=80_000))
    cell = next(c for c in study.cells if c.n_processors == 6)
    emit("agreement.txt",
         f"N=6 bus utilization: MVA {cell.mva_u_bus:.3f} vs detailed "
         f"{cell.detailed_u_bus:.3f} (paper: 0.77 vs 0.81)\n")
    assert cell.mva_u_bus < cell.detailed_u_bus
    assert abs(cell.u_bus_error) < 0.08
