"""E10: the Section 3.2 efficiency claims.

"Solution of the equations converged within 15 iterations in all
experiments reported in this paper, yielding results in under one
second of cpu time, independent of the size of the system analyzed.
In contrast, the time to solve the GTPN model increases exponentially
with the number of processors analyzed."

Benchmarked claims: (1) iteration count bounded; (2) MVA solve time
flat in N; (3) the exact Petri-net solution's state space and time grow
super-linearly with N.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import once  # noqa: E402

from repro.core.equations import EquationSystem
from repro.core.model import CacheMVAModel
from repro.core.solver import FixedPointSolver
from repro.gtpn import solve_coherence_speedup
from repro.protocols.modifications import all_combinations
from repro.workload.derived import derive_inputs
from repro.workload.parameters import SharingLevel, appendix_a_workload


def test_iteration_bound_all_experiments(benchmark, emit):
    """<= 15 iterations at the paper's 3-digit reporting precision over
    every (protocol, sharing, N) cell this repository reports."""
    solver = FixedPointSolver(tolerance=1e-3)

    def worst_iterations():
        worst = 0
        for spec in all_combinations():
            for level in SharingLevel:
                workload = spec.adjust_workload(appendix_a_workload(level))
                inputs = derive_inputs(workload, mods=spec.mod_numbers)
                for n in (1, 2, 4, 6, 8, 10, 15, 20, 100):
                    _, diag = solver.solve(EquationSystem(inputs, n))
                    worst = max(worst, diag.iterations)
        return worst

    worst = once(benchmark, worst_iterations)
    emit("efficiency.txt",
         f"E10 worst-case fixed-point iterations over 16 protocols x 3 "
         f"sharing levels x 9 sizes: {worst} (paper: <= 15 with an "
         "unspecified convergence criterion; the worst cell here is the "
         "knee of the WO+1 curve at 1% sharing)\n")
    assert worst <= 25


def test_mva_time_flat_in_n(benchmark, emit):
    """Solve wall-time at N = 10 vs N = 100 000 within a small factor."""
    model = CacheMVAModel(appendix_a_workload(SharingLevel.FIVE_PERCENT))

    def timing():
        out = {}
        for n in (10, 1000, 100_000):
            started = time.perf_counter()
            for _ in range(50):
                model.solve(n)
            out[n] = (time.perf_counter() - started) / 50
        return out

    times = once(benchmark, timing)
    lines = ["E10 MVA solve time vs system size:"]
    for n, t in times.items():
        lines.append(f"  N={n:>7}: {t * 1e6:8.1f} us")
    emit("efficiency.txt", "\n".join(lines) + "\n")
    assert max(times.values()) < 5 * min(times.values())
    assert max(times.values()) < 0.05  # "well under one second"


def test_mva_single_solve_speed(benchmark):
    """Raw per-solve latency at N = 100 (repeated rounds)."""
    model = CacheMVAModel(appendix_a_workload(SharingLevel.FIVE_PERCENT))
    report = benchmark(model.solve, 100)
    assert report.converged


def test_detailed_model_state_explosion(benchmark, emit):
    """The contrast: exact Petri-net states and solve time vs N."""
    inputs = derive_inputs(appendix_a_workload(SharingLevel.FIVE_PERCENT))

    def ladder():
        rows = []
        for n in (1, 2, 3, 4, 5, 6, 7):
            started = time.perf_counter()
            sol = solve_coherence_speedup(n, inputs, erlang=2)
            rows.append((n, sol.n_states, time.perf_counter() - started))
        return rows

    rows = once(benchmark, ladder)
    lines = ["E10 exact detailed-model cost (reduced net, Erlang-2):"]
    for n, states, elapsed in rows:
        lines.append(f"  N={n}: {states:>7} states, {elapsed * 1e3:8.1f} ms")
    emit("efficiency.txt", "\n".join(lines) + "\n")
    states = [s for _, s, _ in rows]
    # Super-linear growth: each added processor multiplies the space.
    ratios = [b / a for a, b in zip(states, states[1:])]
    assert min(ratios) > 1.3
    # And the end of the ladder is far beyond linear extrapolation.
    assert states[-1] > states[0] * 7 * 3
