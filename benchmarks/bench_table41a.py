"""E1: Table 4.1(a) -- speedups for the Write-Once protocol.

Regenerates the table (our MVA + our detailed simulator next to the
published MVA/GTPN rows) and benchmarks the 27-cell MVA solve.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _table41_common import mva_row_solver, regenerate_part  # noqa: E402
from conftest import once  # noqa: E402


def test_table41a_regeneration(benchmark, emit):
    table = once(benchmark, lambda: regenerate_part("a"))
    emit("table41a.txt", table.render())


def test_table41a_mva_solve_speed(benchmark):
    """The paper's efficiency claim: all 27 cells in well under a second."""
    speedups = benchmark(mva_row_solver("a"))
    assert len(speedups) == 27
    assert all(s > 0.0 for s in speedups)
