"""E14: the batched vectorized MVA engine vs the scalar loop.

The paper's efficiency pitch (Section 3.2: solutions "in under one
second of cpu time, independent of the size of the system analyzed")
is per *cell*; design-space sweeps multiply it by hundreds of cells.
``repro.core.batch`` stacks every cell's iterated quantities into
``(cells,)`` NumPy arrays and runs one vectorized sweep per iteration
for the whole grid, so the sweep cost amortizes across cells.

Two claims are checked here:

1. **Parity** -- ``engine="batch"`` reproduces the scalar Table 4.1
   grid cell-for-cell (``GridCell.as_row()`` equality, which is
   stricter than the solver tolerance: the batch engine is written to
   be bit-identical).
2. **Speedup** -- on the 16-combination stress grid the batched engine
   is >= 5x faster than the scalar per-cell loop at the engine tier
   (derive inputs -> solve -> assemble rows: what the service does for
   every cell).  The solver-only and end-to-end executor tiers are
   reported alongside.

Quick mode (``REPRO_BENCH_QUICK=1``, used by the CI smoke job) shrinks
the stress grid and relaxes the speedup floor -- tiny grids cannot
amortize the batch engine's fixed costs, and CI runners are noisy.

Numbers land in ``output/batch.txt`` (human-readable),
``output/batch.json`` (machine-readable, uploaded as a CI artifact)
and ``benchmarks/BENCH_batch.json`` (the committed machine-readable
baseline, ``BENCH_sweepq.json``-style; the CI quick run parks its copy
as an artifact and restores the committed one).
"""

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import once  # noqa: E402

from repro.analysis.experiments import TABLE_41_PROTOCOLS
from repro.analysis.grid import GridSpec, run_grid
from repro.analysis.stress import stress_tasks
from repro.core.batch import solve_batch
from repro.core.model import TABLE_41_SIZES, CacheMVAModel
from repro.service.executor import (SweepExecutor, evaluate_mva_batch,
                                    evaluate_task)

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Stress-grid size axis: 16 protocol combinations x 4 parameter
#: corners x these sizes.  The full axis gives the batch engine enough
#: width to amortize its per-sweep dispatch cost.
STRESS_SIZES = (4, 16, 64) if QUICK else tuple(range(4, 260, 8))

#: Engine-tier speedup floor asserted on the stress grid.
SPEEDUP_FLOOR = 1.2 if QUICK else 5.0

_REPS = 2 if QUICK else 5


def _best(fn, reps=_REPS):
    """Best-of-N wall clock: the standard guard against scheduler
    noise for sub-second measurements."""
    times = []
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return min(times)


def _merge_json(path: Path, record: dict) -> None:
    existing = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except ValueError:
            existing = {}
    existing.update(record)
    path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")


def _write_json(output_dir: Path, record: dict) -> None:
    _merge_json(output_dir / "batch.json", record)
    _merge_json(Path(__file__).resolve().parent / "BENCH_batch.json",
                dict(record, schema=1, quick=QUICK,
                     cores=os.cpu_count() or 1))


def test_table41_grid_parity_and_speedup(benchmark, emit, output_dir):
    """The batch engine reproduces the scalar Table 4.1 grid row-for-row."""
    spec = GridSpec(protocols=[TABLE_41_PROTOCOLS[part]
                               for part in ("a", "b", "c")],
                    sizes=list(TABLE_41_SIZES))

    def run_both():
        scalar_s = _best(lambda: run_grid(spec))
        batch_s = _best(lambda: run_grid(spec, engine="batch"))
        scalar_rows = [c.as_row() for c in run_grid(spec)]
        batch_rows = [c.as_row() for c in run_grid(spec, engine="batch")]
        return scalar_s, batch_s, scalar_rows, batch_rows

    scalar_s, batch_s, scalar_rows, batch_rows = once(benchmark, run_both)
    cells = len(scalar_rows)
    emit("batch.txt",
         f"E14 Table 4.1 grid ({cells} cells), scalar vs batch engine:\n"
         f"  scalar : {scalar_s * 1e3:7.1f} ms\n"
         f"  batch  : {batch_s * 1e3:7.1f} ms "
         f"({scalar_s / batch_s:.2f}x)\n"
         f"  rows   : {'identical' if scalar_rows == batch_rows else 'DIFFER'}\n")
    _write_json(output_dir, {"table41": {
        "cells": cells, "scalar_s": scalar_s, "batch_s": batch_s,
        "speedup": scalar_s / batch_s,
        "rows_identical": scalar_rows == batch_rows, "quick": QUICK}})
    assert scalar_rows == batch_rows, (
        "batch engine rows differ from scalar on the Table 4.1 grid")


def test_stress_grid_speedup(benchmark, emit, output_dir):
    """>= 5x over the scalar loop on the 16-combination stress grid.

    Three tiers, same cells:

    * ``solve``    -- the fixed-point iteration alone, prebuilt
      ``EquationSystem`` objects on both sides;
    * ``evaluate`` -- the engine tier (derive inputs, solve, assemble
      row dicts), the per-cell work a sweep actually performs and the
      tier the >= 5x acceptance floor applies to;
    * ``executor`` -- end-to-end ``SweepExecutor.run`` including the
      engine-independent bookkeeping (cache probes, metrics, GridCell
      materialization) that dilutes the ratio.
    """
    tasks = stress_tasks(sizes=STRESS_SIZES)
    systems = [CacheMVAModel(t.workload, t.protocol, arch=t.arch).system(t.n)
               for t in tasks]
    solver = tasks[0].solver

    def scalar_solve():
        for task, system in zip(tasks, systems):
            try:
                task.solver.solve_with_recovery(system)
            except Exception:  # noqa: BLE001 - stress corners may diverge
                pass

    def scalar_evaluate():
        for task in tasks:
            evaluate_task(task)

    def run_tiers():
        tiers = {}
        tiers["solve"] = (_best(scalar_solve),
                          _best(lambda: solve_batch(systems, solver=solver,
                                                    traces=False)))
        tiers["evaluate"] = (_best(scalar_evaluate),
                             _best(lambda: evaluate_mva_batch(tasks)))
        tiers["executor"] = (
            _best(lambda: SweepExecutor(engine="scalar").run(tasks)),
            _best(lambda: SweepExecutor(engine="batch").run(tasks)))
        return tiers

    tiers = once(benchmark, run_tiers)
    lines = [f"E14 stress grid (16 combinations x 4 corners x "
             f"{len(STRESS_SIZES)} sizes = {len(tasks)} cells"
             f"{', quick mode' if QUICK else ''}):"]
    record = {"cells": len(tasks), "quick": QUICK,
              "speedup_floor": SPEEDUP_FLOOR, "tiers": {}}
    for name, (scalar_s, batch_s) in tiers.items():
        ratio = scalar_s / batch_s
        lines.append(f"  {name:9s}: scalar {scalar_s * 1e3:7.1f} ms   "
                     f"batch {batch_s * 1e3:7.1f} ms   {ratio:5.2f}x")
        record["tiers"][name] = {"scalar_s": scalar_s, "batch_s": batch_s,
                                 "speedup": ratio}
    emit("batch.txt", "\n".join(lines) + "\n")
    _write_json(output_dir, {"stress": record})
    engine_ratio = record["tiers"]["evaluate"]["speedup"]
    assert engine_ratio >= SPEEDUP_FLOOR, (
        f"batch engine {engine_ratio:.2f}x over scalar on the stress grid, "
        f"below the {SPEEDUP_FLOOR}x floor")
