"""E17: the lockstep vector DES engine vs the scalar simulator.

The scalar discrete-event simulator (``repro.sim.system``) earns its
keep as the semantic reference -- one heap, one event at a time, easy
to audit against the protocol tables -- but every statistical question
(confidence bands, MVA-vs-DES verification, seed sensitivity) wants
*many independent replications*, and the scalar engine pays its full
per-event Python cost for each one.  ``repro.sim.vector`` advances all
replications in lockstep over NumPy structured state, so the per-tick
interpreter overhead amortizes across the replication axis.

Two claims are checked here:

1. **Throughput** -- on the 16-combination validation corpus (every
   modification combination, N=8, 5% sharing) the vector engine
   delivers >= 10x replication throughput versus scalar runs at the
   flagship replication width.  Throughput is replications completed
   per wall-clock second at identical per-replication sample sizes.
2. **Scaling** -- throughput grows with the replication width (the
   whole point of the lockstep layout); the reps axis is swept on the
   base Write-Once combination and reported alongside.

The engines are *statistically* equivalent, not bit-equal (different
uniform streams per seed; ``repro verify --tier full`` owns that
oracle), so this bench records the aggregate speedup gap per combo as
context but only asserts throughput.

Quick mode (``REPRO_BENCH_QUICK=1``, the CI smoke job) shrinks the
corpus and replication widths and relaxes the floor -- narrow widths
cannot amortize the per-tick dispatch cost, and CI runners are noisy.

Numbers land in ``output/sim.txt`` (human-readable), ``output/sim.json``
(machine-readable CI artifact) and ``benchmarks/BENCH_sim.json`` (the
committed baseline; see docs/performance.md for the schema).
"""

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import once  # noqa: E402

from repro.protocols.modifications import all_combinations
from repro.sim.config import SimulationConfig
from repro.sim.system import SnoopingBusSimulator
from repro.sim.vector import simulate_many
from repro.workload.parameters import SharingLevel, appendix_a_workload

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: The validation corpus: every modification combination at a moderate
#: size and sharing level (the same shape the verify tiers sweep).
N_PROCESSORS = 8
WARMUP = 1_000
MEASURED = 5_000
SEED = 1234

#: Replication widths for the scaling sweep (base combination only).
REPS_SWEEP = (8, 32) if QUICK else (32, 64, 128, 256, 512)

#: Width used for the 16-combination corpus measurement and the
#: acceptance floor applied to its aggregate throughput ratio.
REPS_FLAGSHIP = 32 if QUICK else 512
SPEEDUP_FLOOR = 1.0 if QUICK else 10.0

_CORPUS = all_combinations()
if QUICK:
    _CORPUS = _CORPUS[:4]


def _config(spec, seed=SEED):
    return SimulationConfig(
        n_processors=N_PROCESSORS,
        workload=appendix_a_workload(SharingLevel.FIVE_PERCENT),
        protocol=spec, seed=seed,
        warmup_requests=WARMUP, measured_requests=MEASURED)


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def _merge_json(path: Path, record: dict) -> None:
    existing = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except ValueError:
            existing = {}
    existing.update(record)
    path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")


def _write_json(output_dir: Path, record: dict) -> None:
    _merge_json(output_dir / "sim.json", record)
    _merge_json(Path(__file__).resolve().parent / "BENCH_sim.json",
                dict(record, schema=1, quick=QUICK,
                     cores=os.cpu_count() or 1))


def test_reps_scaling(benchmark, emit, output_dir):
    """Throughput must grow with the replication width (base combo)."""
    spec = _CORPUS[0]

    def run_sweep():
        _, scalar_s = _timed(lambda: SnoopingBusSimulator(_config(spec)).run())
        rows = []
        for reps in REPS_SWEEP:
            _, vector_s = _timed(lambda: simulate_many(_config(spec),
                                                       reps=reps))
            rows.append((reps, vector_s))
        return scalar_s, rows

    scalar_s, rows = once(benchmark, run_sweep)
    lines = [f"E17 replication scaling ({spec.label} N={N_PROCESSORS}, "
             f"{MEASURED} measured requests/replication"
             f"{', quick mode' if QUICK else ''}):",
             f"  scalar   : {scalar_s * 1e3:8.1f} ms/replication"]
    record = {"protocol": spec.label, "n_processors": N_PROCESSORS,
              "warmup_requests": WARMUP, "measured_requests": MEASURED,
              "scalar_s_per_rep": scalar_s, "quick": QUICK, "widths": {}}
    ratios = {}
    for reps, vector_s in rows:
        per_rep = vector_s / reps
        ratios[reps] = scalar_s / per_rep
        lines.append(f"  reps={reps:4d}: {vector_s * 1e3:8.1f} ms total, "
                     f"{per_rep * 1e3:7.2f} ms/replication "
                     f"({ratios[reps]:5.2f}x scalar)")
        record["widths"][str(reps)] = {
            "total_s": vector_s, "s_per_rep": per_rep,
            "throughput_x": ratios[reps]}
    emit("sim.txt", "\n".join(lines) + "\n")
    _write_json(output_dir, {"scaling": record})
    widths = sorted(ratios)
    assert ratios[widths[-1]] >= ratios[widths[0]], (
        "vector throughput must not shrink as the replication width "
        f"grows (got {ratios})")


def test_corpus_throughput(benchmark, emit, output_dir):
    """>= 10x replication throughput on the validation corpus."""

    def run_corpus():
        combos = []
        for spec in _CORPUS:
            scalar_result, scalar_s = _timed(
                lambda s=spec: SnoopingBusSimulator(_config(s)).run())
            vector_result, vector_s = _timed(
                lambda s=spec: simulate_many(_config(s),
                                             reps=REPS_FLAGSHIP))
            agg = vector_result.aggregate()
            gap = (abs(agg.speedup - scalar_result.speedup)
                   / scalar_result.speedup)
            combos.append((spec.label, scalar_s, vector_s, gap))
        return combos

    combos = once(benchmark, run_corpus)
    scalar_total = sum(s for _, s, _, _ in combos)
    vector_total = sum(v for _, _, v, _ in combos)
    # Replications per second on each side, identical per-replication
    # sample: the corpus-aggregate throughput ratio.
    ratio = (len(combos) * REPS_FLAGSHIP / vector_total) \
        / (len(combos) / scalar_total)
    lines = [f"E17 validation corpus ({len(combos)} combinations, "
             f"N={N_PROCESSORS}, reps={REPS_FLAGSHIP}"
             f"{', quick mode' if QUICK else ''}):"]
    record = {"n_processors": N_PROCESSORS, "reps": REPS_FLAGSHIP,
              "warmup_requests": WARMUP, "measured_requests": MEASURED,
              "speedup_floor": SPEEDUP_FLOOR, "quick": QUICK,
              "combos": {}}
    worst_gap = 0.0
    for label, scalar_s, vector_s, gap in combos:
        per_rep = vector_s / REPS_FLAGSHIP
        lines.append(f"  {label:14s}: scalar {scalar_s * 1e3:7.1f} ms/rep, "
                     f"vector {per_rep * 1e3:6.2f} ms/rep "
                     f"({scalar_s / per_rep:5.2f}x), "
                     f"aggregate-speedup gap {gap:.2%}")
        record["combos"][label] = {
            "scalar_s_per_rep": scalar_s, "vector_s_total": vector_s,
            "vector_s_per_rep": per_rep,
            "throughput_x": scalar_s / per_rep,
            "aggregate_speedup_gap": gap}
        worst_gap = max(worst_gap, gap)
    lines.append(f"  corpus throughput ratio: {ratio:.2f}x "
                 f"(floor {SPEEDUP_FLOOR}x); "
                 f"worst aggregate-speedup gap {worst_gap:.2%}")
    record["throughput_x"] = ratio
    record["worst_aggregate_speedup_gap"] = worst_gap
    emit("sim.txt", "\n".join(lines) + "\n")
    _write_json(output_dir, {"corpus": record})
    assert ratio >= SPEEDUP_FLOOR, (
        f"vector engine {ratio:.2f}x over scalar on the validation "
        f"corpus, below the {SPEEDUP_FLOOR}x floor")
