"""E12: ablations of the modelling decisions DESIGN.md Section 5 calls out.

A1  Write-word cost: the paper notes mod 3 can save bus cycles "in the
    case that write-word requires two bus cycles and invalidate
    requires one"; the default model charges one cycle for both.
A2  Replacement-write-back weighting: reference-mix (the paper's p'
    expression) vs per-miss-class weighting.
A3  Per-modification contribution on top of Write-Once, isolating what
    each buys at 20 processors.
A4  Memory-module count: how much the 4-way interleave matters.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import once  # noqa: E402

from repro.core.model import CacheMVAModel
from repro.protocols.modifications import ProtocolSpec
from repro.workload.derived import ReplacementWeighting
from repro.workload.parameters import (
    ArchitectureParams,
    SharingLevel,
    appendix_a_workload,
)

W5 = appendix_a_workload(SharingLevel.FIVE_PERCENT)


def test_ablation_write_word_cost(benchmark, emit):
    """A1: with a two-cycle write-word, modification 3 becomes a real
    bus saver instead of a wash."""

    def run():
        out = {}
        for cycles in (1.0, 2.0):
            arch = ArchitectureParams(write_word_cycles=cycles)
            wo = CacheMVAModel(W5, ProtocolSpec(), arch=arch).speedup(20)
            mod3 = CacheMVAModel(W5, ProtocolSpec.of(3), arch=arch).speedup(20)
            out[cycles] = (wo, mod3)
        return out

    result = once(benchmark, run)
    lines = ["A1 write-word cost ablation (N=20, 5% sharing):"]
    for cycles, (wo, mod3) in result.items():
        lines.append(f"  write-word={cycles:.0f} cycle(s): WO {wo:.3f}, "
                     f"WO+3 {mod3:.3f} (+{mod3 / wo - 1:.1%})")
    emit("ablations.txt", "\n".join(lines) + "\n")
    gain_1cy = result[1.0][1] / result[1.0][0]
    gain_2cy = result[2.0][1] / result[2.0][0]
    assert gain_2cy > gain_1cy  # mod 3 helps more when write-word is dearer


def test_ablation_replacement_weighting(benchmark, emit):
    """A2: the two defensible p_reqwb|rr weightings bracket a small
    range; the conclusion (protocol ordering) is insensitive."""

    def run():
        out = {}
        for weighting in ReplacementWeighting:
            speeds = {}
            for mods in [(), (1,), (1, 4)]:
                model = CacheMVAModel(W5, ProtocolSpec.of(*mods),
                                      replacement_weighting=weighting)
                speeds[mods] = model.speedup(20)
            out[weighting] = speeds
        return out

    result = once(benchmark, run)
    lines = ["A2 replacement-weighting ablation (N=20, 5% sharing):"]
    for weighting, speeds in result.items():
        cells = ", ".join(f"{ProtocolSpec.of(*m).label} {s:.3f}"
                          for m, s in speeds.items())
        lines.append(f"  {weighting.value}: {cells}")
    emit("ablations.txt", "\n".join(lines) + "\n")
    for speeds in result.values():
        assert speeds[()] < speeds[(1,)] < speeds[(1, 4)]
    # The weighting itself moves speedup by only a few percent.
    for mods in [(), (1,), (1, 4)]:
        a = result[ReplacementWeighting.REFERENCE_MIX][mods]
        b = result[ReplacementWeighting.MISS_CLASS][mods]
        assert abs(a - b) / a < 0.08, mods


def test_ablation_per_modification_contribution(benchmark, emit):
    """A3: marginal contribution of each modification on Write-Once."""

    def run():
        base = CacheMVAModel(W5, ProtocolSpec()).speedup(20)
        singles = {m: CacheMVAModel(W5, ProtocolSpec.of(m)).speedup(20)
                   for m in (1, 2, 3, 4)}
        return base, singles

    base, singles = once(benchmark, run)
    lines = [f"A3 single-modification contribution (N=20, 5% sharing; "
             f"Write-Once = {base:.3f}):"]
    for m, s in singles.items():
        lines.append(f"  +mod{m}: {s:.3f} ({(s - base) / base:+.1%})")
    emit("ablations.txt", "\n".join(lines) + "\n")
    # Section 4.1's conclusions: mod 1 is the big single win; mods 2 and
    # 3 are small; mod 4 alone (write-through-like) does not help.
    assert singles[1] > base * 1.10
    assert abs(singles[2] - base) / base < 0.05
    assert abs(singles[3] - base) / base < 0.05
    assert singles[4] <= base * 1.02


def test_ablation_read_memory_contention(benchmark, emit):
    """A5: testing the Section 3.1 assumption.  "Memory interference is
    not an important factor in the response time for remote reads" --
    the simulator can model it; how much does it actually matter?"""
    from repro.sim.config import SimulationConfig
    from repro.sim.system import simulate

    def run():
        out = {}
        for flag in (False, True):
            out[flag] = simulate(SimulationConfig(
                n_processors=8, workload=W5, seed=321,
                warmup_requests=4_000, measured_requests=50_000,
                model_read_memory_contention=flag))
        return out

    results = once(benchmark, run)
    without, with_it = results[False], results[True]
    drop = (without.speedup - with_it.speedup) / without.speedup
    emit("ablations.txt",
         f"A5 read-path memory contention (N=8, 5% sharing): speedup "
         f"{without.speedup:.3f} without vs {with_it.speedup:.3f} with "
         f"({drop:+.2%}); the paper's assumption costs <2%\n")
    # The assumption holds: modeling it moves speedup by under ~2 %.
    assert abs(drop) < 0.02


def test_ablation_memory_interleave(benchmark, emit):
    """A4: fewer modules -> more w_mem -> longer broadcast bus holds."""

    def run():
        out = {}
        for modules in (1, 2, 4, 8):
            arch = ArchitectureParams(memory_modules=modules)
            report = CacheMVAModel(W5, arch=arch).solve(20)
            out[modules] = report
        return out

    reports = once(benchmark, run)
    lines = ["A4 memory interleave ablation (Write-Once, N=20):"]
    for modules, report in reports.items():
        lines.append(f"  m={modules}: speedup {report.speedup:.3f}, "
                     f"w_mem {report.w_mem:.3f}, U_mem {report.u_mem:.3f}")
    emit("ablations.txt", "\n".join(lines) + "\n")
    speeds = [reports[m].speedup for m in (1, 2, 4, 8)]
    assert speeds == sorted(speeds)
    assert reports[1].w_mem > reports[8].w_mem
