#!/usr/bin/env python
"""E16: load generation against the /v1/solve front-ends.

A standalone harness (argparse, stdlib-only clients) that measures
sustained ``POST /v1/solve`` throughput and latency through four
server configurations on the same machine:

* ``threaded``           -- the ThreadingHTTPServer, solo solves;
* ``threaded+coalesce``  -- same transport, micro-batching coalescer;
* ``async``              -- the asyncio front-end, solo solves;
* ``async+coalesce``     -- asyncio + coalescer (the headline config).

Two load modes per configuration:

* **closed loop** -- N keep-alive clients, each firing its next
  request the moment the previous one answers.  Measures capacity:
  requests/s plus p50/p99 response time.
* **open loop** -- Poisson arrivals at 70 % of the measured closed-loop
  capacity, issued from a worker pool on a pre-generated exponential
  schedule.  Latency is measured from *scheduled arrival* to
  completion, so client-side queueing counts (the honest open-loop
  number).  The M/M/1 closed form (``repro.queueing.mm1``) predicts
  p99 ~= -ln(0.01) x mean response time at the same offered load, a
  sanity anchor for the measured tail.

Every request solves one 32-point speedup curve -- one (protocol,
sharing) pair over a run of consecutive system sizes, the paper-native
query -- drawn round-robin from a pool whose ~8.6k distinct cells
exceed the shared cache capacity, so the coalesced configurations win
by *batching* distinct cells into one vectorized solve -- not by cache
hits (all four configurations share the same cache policy).  Clients
are raw keep-alive sockets with pre-rendered requests: the load
generator shares the server's core (and GIL), so every cycle it does
not spend is a cycle of honest server measurement.

Outputs: ``benchmarks/BENCH_load.json`` (committed machine-readable
baseline) plus ``output/load.txt``; ``--quick`` (the CI smoke job)
shrinks duration/concurrency, writes ``output/BENCH_load.quick.json``
instead, and only asserts zero transport errors.  The full run asserts
the acceptance floor: async+coalesce >= 3x threaded closed-loop
throughput.
"""

from __future__ import annotations

import argparse
import itertools
import json
import math
import os
import random
import socket
import statistics
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.queueing.mm1 import MM1
from repro.service import (
    ModelService,
    ResultCache,
    start_async_server,
    start_server,
)

BENCH_DIR = Path(__file__).resolve().parent
CONFIGS = ("threaded", "threaded+coalesce", "async", "async+coalesce")

#: Open-loop offered load as a fraction of measured closed-loop
#: capacity: high enough to queue, low enough to stay stable.
OPEN_LOAD_FRACTION = 0.7

#: Full-run acceptance floor (ISSUE 8): async+coalesce closed-loop
#: throughput over the plain threaded server.
SPEEDUP_FLOOR = 3.0


#: System sizes per request: one speedup curve of consecutive N.
CELLS_PER_REQUEST = 32


def _body_pool(cells: int = CELLS_PER_REQUEST) -> list[bytes]:
    """Distinct speedup-curve solve bodies, round-robin shared by every
    client so no configuration gets a repeat-heavy workload.

    Each body asks for one (protocol, sharing) curve over ``cells``
    consecutive system sizes; the pool's distinct-cell count exceeds
    the default cache capacity, so sustained load measures solving, not
    cache hits."""
    protocols = ("write-once", "synapse", "illinois", "berkeley",
                 "rwb", "dragon")
    bodies = [
        json.dumps({"protocol": protocol, "sharing": sharing,
                    "n": list(range(base, base + cells))}).encode()
        for protocol, sharing, base in itertools.product(
            protocols, ("1", "5", "20"), range(2, 480, cells))
    ]
    return bodies


def render_request(host: str, port: int, body: bytes) -> bytes:
    """Pre-render one keep-alive ``POST /v1/solve`` as raw bytes."""
    head = (f"POST /v1/solve HTTP/1.1\r\nHost: {host}:{port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n").encode("ascii")
    return head + body


class _Client:
    """One keep-alive raw socket with self-healing reconnect.

    ``http.client`` costs several hundred microseconds of pure Python
    per request -- cycles stolen from the server under test on a
    one-core box.  This client sends pre-rendered request bytes and
    does the minimum HTTP/1.1 response parse (status + Content-Length).
    """

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._buffer = b""
        self._sock = self._connect()

    def _connect(self) -> socket.socket:
        sock = socket.create_connection((self.host, self.port), timeout=30)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def solve(self, request: bytes) -> int:
        try:
            return self._request(request)
        except (ConnectionError, OSError):
            self.close()
            self._sock = self._connect()
            self._buffer = b""
            return self._request(request)

    def _request(self, request: bytes) -> int:
        self._sock.sendall(request)
        buffer = self._buffer
        while b"\r\n\r\n" not in buffer:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed mid-response")
            buffer += chunk
        head, _, rest = buffer.partition(b"\r\n\r\n")
        status = int(head[9:12])
        length = 0
        for line in head.split(b"\r\n")[1:]:
            if line[:15].lower() == b"content-length:":
                length = int(line[15:])
                break
        while len(rest) < length:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed mid-body")
            rest += chunk
        self._buffer = rest[length:]
        return status

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


class _Counter:
    """Thread-safe round-robin index into the shared body pool."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._next = 0

    def take(self) -> int:
        with self._lock:
            index = self._next
            self._next += 1
            return index


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1,
                       int(fraction * len(ordered)))]


def _closed_loop(host: str, port: int, requests: list[bytes],
                 concurrency: int, warmup_s: float,
                 duration_s: float) -> dict:
    """N clients, each back-to-back; returns rps / p50 / p99 / errors."""
    counter = _Counter()
    measure_start = time.perf_counter() + warmup_s
    deadline = measure_start + duration_s
    latencies: list[list[float]] = [[] for _ in range(concurrency)]
    errors = [0] * concurrency

    def worker(slot: int) -> None:
        client = _Client(host, port)
        try:
            while True:
                now = time.perf_counter()
                if now >= deadline:
                    return
                request = requests[counter.take() % len(requests)]
                started = time.perf_counter()
                try:
                    status = client.solve(request)
                except Exception:  # noqa: BLE001 - count, keep loading
                    status = -1
                elapsed = time.perf_counter() - started
                if started < measure_start:
                    continue  # warmup sample
                if status == 200:
                    latencies[slot].append(elapsed)
                else:
                    errors[slot] += 1
        finally:
            client.close()

    threads = [threading.Thread(target=worker, args=(slot,))
               for slot in range(concurrency)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    samples = [sample for bucket in latencies for sample in bucket]
    if not samples:
        return {"requests": 0, "rps": 0.0, "p50_ms": 0.0, "p99_ms": 0.0,
                "errors": sum(errors)}
    return {
        "requests": len(samples),
        "rps": round(len(samples) / duration_s, 1),
        "p50_ms": round(1e3 * _percentile(samples, 0.50), 3),
        "p99_ms": round(1e3 * _percentile(samples, 0.99), 3),
        "errors": sum(errors),
        "mean_ms": round(1e3 * statistics.fmean(samples), 3),
    }


def _open_loop(host: str, port: int, requests: list[bytes],
               concurrency: int, offered_rps: float, duration_s: float,
               capacity_rps: float, seed: int = 20260808) -> dict:
    """Poisson arrivals at ``offered_rps``; latency counts the wait for
    a free worker (open-loop semantics)."""
    rng = random.Random(seed)
    origin = time.perf_counter() + 0.05
    arrivals: list[float] = []
    clock = 0.0
    while clock < duration_s:
        clock += rng.expovariate(offered_rps)
        arrivals.append(origin + clock)
    counter = _Counter()
    workers = max(concurrency, 2)
    latencies: list[list[float]] = [[] for _ in range(workers)]
    errors = [0] * workers

    def worker(slot: int) -> None:
        client = _Client(host, port)
        try:
            while True:
                index = counter.take()
                if index >= len(arrivals):
                    return
                scheduled = arrivals[index]
                delay = scheduled - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                request = requests[index % len(requests)]
                try:
                    status = client.solve(request)
                except Exception:  # noqa: BLE001 - count, keep loading
                    status = -1
                if status == 200:
                    latencies[slot].append(
                        time.perf_counter() - scheduled)
                else:
                    errors[slot] += 1
        finally:
            client.close()

    threads = [threading.Thread(target=worker, args=(slot,))
               for slot in range(workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = max(time.perf_counter() - origin, 1e-9)
    samples = [sample for bucket in latencies for sample in bucket]
    record = {
        "offered_rps": round(len(arrivals) / duration_s, 1),
        "completed_rps": round(len(samples) / wall, 1),
        "errors": sum(errors),
        "p50_ms": round(1e3 * _percentile(samples, 0.50), 3)
        if samples else 0.0,
        "p99_ms": round(1e3 * _percentile(samples, 0.99), 3)
        if samples else 0.0,
    }
    # The M/M/1 anchor: at this offered load against the measured
    # closed-loop capacity, response time is exponential with mean
    # 1/(mu - lambda), so p99 = -ln(0.01) x mean.
    queue = MM1(arrival_rate=min(offered_rps, 0.95 * capacity_rps),
                service_rate=capacity_rps)
    if queue.stable and math.isfinite(queue.mean_response_time):
        record["mm1_predicted_p99_ms"] = round(
            -math.log(0.01) * queue.mean_response_time * 1e3, 3)
    return record


def _boot(config: str, window_ms: float, max_batch: int):
    """Start one server configuration; returns (host, port, teardown,
    service)."""
    if "coalesce" in config:
        service = ModelService.with_coalescer(
            window_ms=window_ms, max_batch=max_batch)
    else:
        service = ModelService(cache=ResultCache())
    if config.startswith("async"):
        handle = start_async_server(service)
        host, port = handle.server.host, handle.server.port

        def teardown() -> None:
            handle.shutdown()
            service.close()
    else:
        server = start_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]

        def teardown() -> None:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            service.close()
    return host, port, teardown, service


def run(args: argparse.Namespace) -> dict:
    bodies = _body_pool(args.cells)
    configs: dict[str, dict] = {}
    for config in args.configs:
        host, port, teardown, service = _boot(
            config, args.window_ms, args.max_batch)
        requests = [render_request(host, port, body) for body in bodies]
        try:
            closed = _closed_loop(host, port, requests, args.concurrency,
                                  args.warmup, args.duration)
            entry: dict = {"closed": closed}
            capacity = closed["rps"]
            if capacity > 0:
                offered = OPEN_LOAD_FRACTION * capacity
                entry["open"] = _open_loop(
                    host, port, requests, args.concurrency, offered,
                    args.duration, capacity)
            if service.coalescer is not None:
                stats = service.coalescer.stats()
                entry["coalesce"] = {
                    "batches": stats["batches"],
                    "mean_batch_cells": stats["mean_batch_cells"],
                    "mean_wait_ms": stats["mean_wait_ms"],
                }
            configs[config] = entry
            print(_render_config(config, entry))
        finally:
            teardown()
    record = {
        "schema": 1,
        "quick": args.quick,
        "cores": os.cpu_count() or 1,
        "concurrency": args.concurrency,
        "duration_s": args.duration,
        "warmup_s": args.warmup,
        "coalesce_window_ms": args.window_ms,
        "coalesce_max_cells": args.max_batch,
        "cells_per_request": args.cells,
        "configs": configs,
        "speedup_floor": None if args.quick else SPEEDUP_FLOOR,
    }
    if "threaded" in configs and "async+coalesce" in configs:
        base = configs["threaded"]["closed"]["rps"]
        top = configs["async+coalesce"]["closed"]["rps"]
        if base > 0:
            record["speedup_async_coalesced_vs_threaded"] = round(
                top / base, 2)
    return record


def _render_config(config: str, entry: dict) -> str:
    closed = entry["closed"]
    lines = [f"{config}:",
             f"  closed loop : {closed['rps']:8.1f} req/s  "
             f"p50 {closed['p50_ms']:7.2f} ms  "
             f"p99 {closed['p99_ms']:7.2f} ms  "
             f"({closed['requests']} requests, "
             f"{closed['errors']} errors)"]
    if "open" in entry:
        open_ = entry["open"]
        predicted = open_.get("mm1_predicted_p99_ms")
        lines.append(
            f"  open loop   : offered {open_['offered_rps']:8.1f} "
            f"completed {open_['completed_rps']:8.1f} req/s  "
            f"p99 {open_['p99_ms']:7.2f} ms"
            + (f"  (M/M/1 predicts {predicted:.2f} ms)"
               if predicted is not None else ""))
    if "coalesce" in entry:
        stats = entry["coalesce"]
        lines.append(
            f"  coalescing  : {stats['batches']} batches, "
            f"{stats['mean_batch_cells']:.1f} cells/batch, "
            f"{stats['mean_wait_ms']:.2f} ms mean wait")
    return "\n".join(lines)


def _render_report(record: dict) -> str:
    lines = [f"E16 /v1/solve load generation "
             f"({record['concurrency']} clients, "
             f"{record['duration_s']}s measured, "
             f"{record['cores']} cores"
             f"{', quick' if record['quick'] else ''}):"]
    for config, entry in record["configs"].items():
        lines.append(_render_config(config, entry))
    speedup = record.get("speedup_async_coalesced_vs_threaded")
    if speedup is not None:
        lines.append(f"async+coalesce over threaded: {speedup:.2f}x "
                     f"(floor {record['speedup_floor']})")
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: short run, no speedup floor, "
                             "writes output/BENCH_load.quick.json")
    parser.add_argument("--duration", type=float, default=None,
                        help="measured seconds per mode (default 5, "
                             "quick 1)")
    parser.add_argument("--warmup", type=float, default=None,
                        help="warmup seconds before measuring "
                             "(default 1, quick 0.25)")
    parser.add_argument("--concurrency", type=int, default=None,
                        help="closed-loop clients (default 64, quick 8)")
    parser.add_argument("--window-ms", type=float, default=2.0,
                        help="coalescing window for the *+coalesce "
                             "configurations")
    parser.add_argument("--max-batch", type=int, default=512,
                        help="coalescing max batch size (the batch "
                             "engine's per-cell cost plateaus by 256; "
                             "512 halves per-flush fixed costs)")
    parser.add_argument("--cells", type=int, default=CELLS_PER_REQUEST,
                        help="curve points (consecutive N) per request")
    parser.add_argument("--configs", nargs="+", choices=CONFIGS,
                        default=list(CONFIGS),
                        help="subset of configurations to run")
    args = parser.parse_args(argv)
    if args.duration is None:
        args.duration = 1.0 if args.quick else 5.0
    if args.warmup is None:
        args.warmup = 0.25 if args.quick else 1.0
    if args.concurrency is None:
        args.concurrency = 8 if args.quick else 64

    record = run(args)
    report = _render_report(record)

    output_dir = BENCH_DIR / "output"
    output_dir.mkdir(exist_ok=True)
    (output_dir / "load.txt").write_text(report)
    json_path = (output_dir / "BENCH_load.quick.json" if args.quick
                 else BENCH_DIR / "BENCH_load.json")
    json_path.write_text(json.dumps(record, indent=1, sort_keys=True)
                         + "\n")
    print(f"\nwrote {json_path}")

    failures = []
    for config, entry in record["configs"].items():
        closed_errors = entry["closed"]["errors"]
        open_errors = entry.get("open", {}).get("errors", 0)
        if closed_errors or open_errors:
            failures.append(f"{config}: {closed_errors} closed-loop + "
                            f"{open_errors} open-loop errors")
        if entry["closed"]["requests"] == 0:
            failures.append(f"{config}: no requests completed")
    speedup = record.get("speedup_async_coalesced_vs_threaded")
    if not args.quick and speedup is not None \
            and speedup < SPEEDUP_FLOOR:
        failures.append(
            f"async+coalesce only {speedup:.2f}x over threaded "
            f"(floor {SPEEDUP_FLOOR}x)")
    if failures:
        print("FAILED:\n  " + "\n  ".join(failures), file=sys.stderr)
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
