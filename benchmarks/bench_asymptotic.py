"""E11: the Section 4.1 asymptotic analysis.

"Table 4.1c includes the MVA results for 100 processors, to verify that
the performance does not change appreciably beyond twenty processors"
and "the asymptotic results indicate a greater potential gain for
modification 4 than was evident from previous results for ten
processors".
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import once  # noqa: E402

from repro.core.model import CacheMVAModel
from repro.core.sensitivity import asymptotic_speedup
from repro.protocols.modifications import ProtocolSpec
from repro.workload.parameters import SharingLevel, appendix_a_workload


def test_saturation_beyond_twenty(benchmark, emit):
    def saturation_gaps():
        gaps = {}
        for mods in [(), (1,), (1, 4)]:
            for level in SharingLevel:
                model = CacheMVAModel(appendix_a_workload(level),
                                      ProtocolSpec.of(*mods))
                s20, s100 = model.speedup(20), model.speedup(100)
                gaps[(mods, level)] = abs(s100 - s20) / s20
        return gaps

    gaps = once(benchmark, saturation_gaps)
    worst = max(gaps.values())
    emit("asymptotic.txt",
         f"E11 max |speedup(100) - speedup(20)| / speedup(20) over the "
         f"nine Table-4.1 curves: {worst:.2%}\n")
    assert worst < 0.03


def test_mod4_asymptotic_gain(benchmark, emit):
    """The mod-4 gain at the asymptote exceeds its gain at N = 10, and
    grows with the sharing level."""

    def gains():
        rows = []
        for level in SharingLevel:
            w = appendix_a_workload(level)
            at10 = (CacheMVAModel(w, ProtocolSpec.of(1, 4)).speedup(10)
                    / CacheMVAModel(w, ProtocolSpec.of(1)).speedup(10))
            at_limit = (asymptotic_speedup(w, ProtocolSpec.of(1, 4))
                        / asymptotic_speedup(w, ProtocolSpec.of(1)))
            rows.append((level, at10 - 1.0, at_limit - 1.0))
        return rows

    rows = once(benchmark, gains)
    lines = ["E11 modification-4 gain over modification 1:"]
    for level, g10, ginf in rows:
        lines.append(f"  {level.label:>4}: +{g10:.1%} at N=10, "
                     f"+{ginf:.1%} asymptotically")
        assert ginf >= g10 - 1e-9, level
    emit("asymptotic.txt", "\n".join(lines) + "\n")
    # Gain grows with sharing (both at 10 and at the limit).
    asym = [ginf for _, _, ginf in rows]
    assert asym[0] <= asym[1] <= asym[2]
    assert asym[2] > 0.2


def test_asymptote_equals_bus_bound(benchmark, emit):
    """At saturation the speedup is the bus-capacity bound: speedup ->
    (tau + T_supply) / (bus time per request).  Checks the MVA's limit
    against that closed form."""
    w = appendix_a_workload(SharingLevel.FIVE_PERCENT)
    model = CacheMVAModel(w)

    def compute():
        report = model.solve(100_000)
        inp = model.inputs
        bus_per_request = (inp.p_bc * (report.w_mem + inp.t_bc)
                           + inp.p_rr * inp.t_read)
        bound = (w.tau + 1.0) / bus_per_request
        return report.speedup, bound

    speedup, bound = once(benchmark, compute)
    emit("asymptotic.txt",
         f"E11 bus-capacity bound check: MVA limit {speedup:.3f} vs "
         f"closed-form bound {bound:.3f}\n")
    assert abs(speedup - bound) / bound < 0.02
