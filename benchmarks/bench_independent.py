"""E7-E9: the Section 4.4 comparisons with independent studies.

E7  Processing power for mods {1,2,3}, N=9, 5 % sharing: the paper's
    MVA gives 4.32, its GTPN 4.1 (cf. Papamarcos & Patel's own model).
E8  Relative bus utilization of Write-Once vs mods {2,3} at 99 %
    sharing and unsaturated load: ~10 % higher for Write-Once when
    write hits rarely find the block modified (cf. Katz et al.).
E9  With amod_private = 0.95 (the Archibald-Baer setting), modification
    2 performs about as well as modification 1 at 1 % sharing.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import once  # noqa: E402

from repro.core.model import CacheMVAModel
from repro.protocols.modifications import ProtocolSpec
from repro.workload.parameters import (
    SharingLevel,
    appendix_a_workload,
    katz_sharing_workload,
)


def test_processing_power_papamarcos(benchmark, emit):
    """E7: power = speedup * tau / (tau + T_supply); paper MVA: 4.32."""
    workload = appendix_a_workload(SharingLevel.FIVE_PERCENT)
    model = CacheMVAModel(workload, ProtocolSpec.of(1, 2, 3))

    report = once(benchmark, lambda: model.solve(9))
    emit("independent.txt",
         f"E7 processing power (mods 1,2,3; N=9; 5% sharing): "
         f"{report.processing_power:.3f} "
         "(paper MVA: 4.32, paper GTPN: 4.1)\n")
    # Same ballpark as both published values.
    assert 3.9 < report.processing_power < 4.7
    # And the formula identity from Section 4.4 holds exactly.
    assert abs(report.processing_power
               - report.speedup * 2.5 / 3.5) < 1e-9


def test_bus_utilization_katz(benchmark, emit):
    """E8: Write-Once needs ~10 % more bus than a mods-{2,3} protocol at
    99 % sharing when blocks are rarely pre-modified on write hits,
    because every first write costs a write-word (and wback suppliers
    flush through memory)."""
    workload = katz_sharing_workload(amod_sw=0.05)

    def utilizations():
        out = {}
        for mods in [(), (2, 3)]:
            # Modest N keeps the bus unsaturated ("total loads which do
            # not saturate the bus").
            report = CacheMVAModel(workload, ProtocolSpec.of(*mods)).solve(2)
            out[mods] = report
        return out

    reports = once(benchmark, utilizations)
    wo, mod23 = reports[()], reports[(2, 3)]
    # Compare bus demand at equal useful work: utilization per unit of
    # processing power.
    demand_wo = wo.u_bus / wo.processing_power
    demand_23 = mod23.u_bus / mod23.processing_power
    increase = demand_wo / demand_23 - 1.0
    emit("independent.txt",
         f"E8 bus demand per unit work, 99% sharing: Write-Once "
         f"{demand_wo:.4f} vs mods 2+3 {demand_23:.4f} "
         f"(+{increase:.1%}; paper/Katz: ~10%)\n")
    assert 0.04 < increase < 0.25


def test_archibald_baer_amod(benchmark, emit):
    """E9: with amod_private = 0.95, mod 2's benefit approaches mod 1's
    at 1 % sharing (Archibald & Baer saw Berkeley ~ Illinois)."""
    base = appendix_a_workload(SharingLevel.ONE_PERCENT)

    def gains(amod_p):
        w = base.replace(amod_private=amod_p)
        wo = CacheMVAModel(w, ProtocolSpec()).speedup(10)
        mod1 = CacheMVAModel(w, ProtocolSpec.of(1)).speedup(10)
        mod2 = CacheMVAModel(w, ProtocolSpec.of(2)).speedup(10)
        return (mod1 - wo) / wo, (mod2 - wo) / wo

    def both():
        return gains(0.7), gains(0.95)

    (g1_low, g2_low), (g1_high, g2_high) = once(benchmark, both)
    emit("independent.txt",
         "E9 modification gains over Write-Once at 1% sharing, N=10:\n"
         f"  amod_p=0.70: mod1 +{g1_low:.1%}, mod2 +{g2_low:.1%}\n"
         f"  amod_p=0.95: mod1 +{g1_high:.1%}, mod2 +{g2_high:.1%}\n"
         "  (paper: with amod_p=0.95 'the performance of modification 2 "
         "[is] roughly equal to the performance of modification 1')\n")
    # At the paper's default, mod 1 clearly dominates mod 2.
    assert g1_low > g2_low + 0.02
    # At amod_p = 0.95 the gap closes to within a couple of percent.
    assert abs(g1_high - g2_high) < 0.03
