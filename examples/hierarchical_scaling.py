"""Hierarchical multiprocessor study (the paper's pointed-to future work).

Run:  python examples/hierarchical_scaling.py

A flat snooping bus saturates near N = 20 (Figure 4.1); the paper's
conclusion suggests applying the same customized-MVA technique to
hierarchical machines like Wilson's.  This example does exactly that:
clusters of processors on local snooping buses, joined by a global bus
that fronts memory, with a cluster-level cache filtering escapes.
"""

from repro import CacheMVAModel, SharingLevel, appendix_a_workload
from repro.hierarchy import HierarchicalMVAModel, HierarchyParams


def main() -> None:
    workload = appendix_a_workload(SharingLevel.FIVE_PERCENT)
    flat_limit = CacheMVAModel(workload).speedup(256)
    print(f"flat single-bus speedup limit: {flat_limit:.2f}\n")

    print("=== cluster scaling (K=8 per cluster, locality 0.9, "
          "cluster-cache hit 0.8) ===")
    print(f"{'C':>3} {'N':>4} {'speedup':>8} {'U_local':>8} {'U_global':>9}")
    for clusters in (1, 2, 4, 8, 16, 32, 64):
        report = HierarchicalMVAModel(workload, HierarchyParams(
            clusters=clusters, per_cluster=8, cluster_locality=0.9,
            cluster_cache_hit=0.8)).solve()
        print(f"{clusters:>3} {report.n_processors:>4} "
              f"{report.speedup:>8.2f} {report.u_local_bus:>8.2f} "
              f"{report.u_global_bus:>9.2f}")

    print("\n=== what the hierarchy needs to win ===")
    for label, params in [
        ("no cluster cache", HierarchyParams(
            clusters=8, per_cluster=8, cluster_cache_hit=0.0)),
        ("held (non-split) global transactions", HierarchyParams(
            clusters=8, per_cluster=8, split_transactions=False)),
        ("uniform (unpartitioned) sharing", HierarchyParams.uniform_sharing(
            clusters=8, per_cluster=8)),
        ("the full design", HierarchyParams(
            clusters=8, per_cluster=8, cluster_locality=0.9,
            cluster_cache_hit=0.8)),
    ]:
        report = HierarchicalMVAModel(workload, params).solve()
        verdict = ("beats" if report.speedup > flat_limit else "loses to")
        print(f"  {label:<38} speedup {report.speedup:6.2f}  "
              f"({verdict} the flat bus)")

    print("\nEach solve is still a fixed-point iteration in microseconds --")
    print("the design space above would be weeks of detailed simulation.")


if __name__ == "__main__":
    main()
