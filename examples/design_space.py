"""Design-space exploration: all 16 modification combinations at once.

Run:  python examples/design_space.py

The paper's closing argument is that a model this cheap changes *how*
you do architecture studies: instead of simulating two or three design
points overnight, you sweep the whole design space interactively.  This
example ranks every combination of the four Write-Once modifications at
each sharing level and shows where each modification pays off, plus a
block-size sensitivity sweep for the winner.
"""

import time

from repro import CacheMVAModel, SharingLevel, appendix_a_workload
from repro.protocols.family import PROTOCOLS
from repro.protocols.modifications import all_combinations
from repro.workload.parameters import ArchitectureParams


def rank_all_combinations(n_processors: int = 20) -> None:
    print(f"=== all 16 modification combinations, N={n_processors} ===")
    header = f"{'protocol':>12}"
    for level in SharingLevel:
        header += f" {level.label:>8}"
    print(header + "   practical?")
    started = time.perf_counter()
    rows = []
    for spec in all_combinations():
        speedups = [
            CacheMVAModel(appendix_a_workload(level), spec).speedup(n_processors)
            for level in SharingLevel
        ]
        rows.append((spec, speedups))
    elapsed = time.perf_counter() - started
    rows.sort(key=lambda item: -item[1][1])  # rank by 5 % sharing
    for spec, speedups in rows:
        cells = "".join(f" {s:>8.3f}" for s in speedups)
        note = "" if spec.is_practical else "   (mod 4 needs mod 1)"
        print(f"{spec.label:>12}{cells}{note}")
    print(f"[{len(rows) * 3} model solutions in {elapsed * 1e3:.0f} ms]\n")


def named_protocols(n_processors: int = 20) -> None:
    print(f"=== the published protocols, N={n_processors}, 5% sharing ===")
    workload = appendix_a_workload(SharingLevel.FIVE_PERCENT)
    for name, spec in PROTOCOLS.items():
        report = CacheMVAModel(workload, spec).solve(n_processors)
        mods = ",".join(str(int(m)) for m in spec) or "-"
        print(f"{name:>12} (mods {mods:>7}): speedup {report.speedup:6.3f}, "
              f"bus {report.u_bus:5.1%}")
    print()


def block_size_sweep() -> None:
    print("=== block-size sensitivity (Dragon, N=20, 5% sharing) ===")
    workload = appendix_a_workload(SharingLevel.FIVE_PERCENT)
    spec = PROTOCOLS["dragon"]
    print(f"{'block':>6} {'t_read':>7} {'speedup':>8}")
    for block in (2, 4, 8, 16):
        arch = ArchitectureParams(block_size=block, memory_modules=block)
        model = CacheMVAModel(workload, spec, arch=arch)
        report = model.solve(20)
        print(f"{block:>6} {model.inputs.t_read:>7.2f} {report.speedup:>8.3f}")
    print("\n(larger blocks lengthen every bus transfer; without a "
          "miss-rate model they only hurt -- the paper holds m = 4)")


if __name__ == "__main__":
    rank_all_combinations()
    named_protocols()
    block_size_sweep()
