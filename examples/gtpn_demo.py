"""GTPN demo: why the paper needed the MVA in the first place.

Run:  python examples/gtpn_demo.py

Solves the reduced coherence Petri net *exactly* (reachability graph +
embedded Markov chain) for growing N and Erlang stage counts, printing
the state-space size next to the solve time.  The growth curve is the
Section 3.2 story in miniature: the detailed model's cost explodes with
system size while the MVA stays O(1).
"""

import time

from repro import CacheMVAModel, SharingLevel, appendix_a_workload, derive_inputs
from repro.gtpn import solve_coherence_speedup
from repro.gtpn.reachability import StateSpaceExplosion


def main() -> None:
    workload = appendix_a_workload(SharingLevel.FIVE_PERCENT)
    inputs = derive_inputs(workload)
    mva_model = CacheMVAModel(workload)

    print("=== exact Markov solution of the coherence net vs the MVA ===")
    print(f"{'N':>3} {'erlang':>7} {'states':>8} {'solve':>9} "
          f"{'GTPN speedup':>13} {'MVA speedup':>12}")
    for n in (1, 2, 3, 4, 5, 6):
        for erlang in (1, 3):
            started = time.perf_counter()
            try:
                sol = solve_coherence_speedup(n, inputs, erlang=erlang,
                                              max_states=60_000)
            except StateSpaceExplosion:
                print(f"{n:>3} {erlang:>7} {'>60000':>8}   -- state-space "
                      "explosion, as the paper warned --")
                continue
            elapsed = time.perf_counter() - started
            mva = mva_model.speedup(n)
            print(f"{n:>3} {erlang:>7} {sol.n_states:>8} "
                  f"{elapsed * 1e3:>7.1f}ms {sol.speedup:>13.3f} "
                  f"{mva:>12.3f}")
    print("\n=== adding fidelity multiplies the cost ===")
    print(f"{'N':>3} {'reduced states':>15} {'detailed states':>16} "
          f"{'detailed speedup':>17}")
    for n in (1, 2, 3, 4):
        reduced = solve_coherence_speedup(n, inputs)
        detailed = solve_coherence_speedup(n, inputs, detailed=True)
        print(f"{n:>3} {reduced.n_states:>15} {detailed.n_states:>16} "
              f"{detailed.speedup:>17.3f}")
    print("\n(the detailed net adds memory-module contention and remote-"
          "read branch\nvariance -- ~10x the states for the same N)")

    print("\nMVA solve time is flat in N; the exact state space (and the "
          "true\ndeterministic-time GTPN even more so) grows without bound. "
          "That gap --\nhours versus seconds in 1988 -- is the paper's "
          "motivation.")


if __name__ == "__main__":
    main()
