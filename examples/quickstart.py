"""Quickstart: solve the MVA model for one protocol and print a report.

Run:  python examples/quickstart.py

This is the one-minute tour: build the Appendix-A workload, pick a
protocol (here Goodman's Write-Once plus modification 1), and solve the
customized mean-value equations for a few system sizes.  Solution takes
a handful of fixed-point iterations -- the whole point of the paper is
that this costs milliseconds where the detailed models cost hours.
"""

from repro import (
    CacheMVAModel,
    ProtocolSpec,
    SharingLevel,
    appendix_a_workload,
)


def main() -> None:
    workload = appendix_a_workload(SharingLevel.FIVE_PERCENT)
    protocol = ProtocolSpec.of(1)  # Write-Once + "load exclusive on miss"
    model = CacheMVAModel(workload, protocol)

    print(f"protocol: {protocol.label}   workload: 5% sharing (Appendix A)")
    print(f"{'N':>4} {'speedup':>9} {'U_bus':>7} {'w_bus':>8} "
          f"{'power':>7} {'iters':>6}")
    for n in (1, 2, 4, 8, 16, 32, 64, 128):
        report = model.solve(n)
        print(f"{n:>4} {report.speedup:>9.3f} {report.u_bus:>7.3f} "
              f"{report.w_bus:>8.3f} {report.processing_power:>7.3f} "
              f"{report.iterations:>6}")

    asymptote = model.solve(4096)
    print(f"\nbus-saturated speedup limit: {asymptote.speedup:.3f} "
          f"(bus utilization {asymptote.u_bus:.1%})")
    print("each solve is a cold-start fixed-point iteration; cost is "
          "independent of N (paper Section 3.2)")


if __name__ == "__main__":
    main()
