"""Calibrate the MVA from a measured (synthetic) address trace.

Run:  python examples/trace_calibration.py

The paper's conclusion: "The model can be put to good use for
evaluating the protocols more thoroughly -- all that is needed are
workload measurement studies to aid in the assignment of parameter
values."  This example is that study, end to end:

1. generate a synthetic multiprocessor address trace (private / shared
   read-only / shared-writable regions with hot-set locality);
2. replay it through an LRU set-associative multi-cache model with
   write-invalidate coherence, *measuring* every Appendix-A parameter;
3. feed the measured parameters to the MVA and rank the protocols.
"""

from repro.core.model import CacheMVAModel
from repro.protocols.family import PROTOCOLS
from repro.trace import (
    CoherentCacheSystem,
    GeneratorConfig,
    SyntheticTraceGenerator,
    WorkloadEstimator,
)

TRACE_LENGTH = 300_000


def measure(label: str, config: GeneratorConfig, n_sets: int,
            associativity: int):
    generator = SyntheticTraceGenerator(config)
    system = CoherentCacheSystem(config.n_processors, n_sets, associativity)
    estimator = WorkloadEstimator(system, generator.stream_of)
    estimator.observe_trace(generator.trace(TRACE_LENGTH))
    system.check_coherence()
    report = estimator.estimate()
    print(f"--- {label} ---")
    print("  " + report.summary())
    return report.workload


def main() -> None:
    print(f"measuring workloads from {TRACE_LENGTH:,}-reference synthetic "
          "traces\n")
    workloads = {
        "16KB-ish caches (256 sets x 4 ways)": measure(
            "baseline locality, mid-size caches",
            GeneratorConfig(seed=42), n_sets=256, associativity=4),
        "small caches (64 sets x 2 ways)": measure(
            "baseline locality, small caches",
            GeneratorConfig(seed=42), n_sets=64, associativity=2),
        "write-heavy sharing": measure(
            "write-heavy shared stream",
            GeneratorConfig(seed=42, p_private=0.90, p_sro=0.04, p_sw=0.06,
                            r_sw=0.3), n_sets=256, associativity=4),
    }

    print("\n=== protocol ranking under each measured workload (N=16) ===")
    names = list(PROTOCOLS)
    header = f"{'workload':>36}" + "".join(f" {n[:9]:>10}" for n in names)
    print(header)
    for label, workload in workloads.items():
        row = f"{label:>36}"
        for name in names:
            speedup = CacheMVAModel(workload, PROTOCOLS[name]).speedup(16)
            row += f" {speedup:>10.2f}"
        print(row)

    print("\nnote how measurement changes the story: these traces show far "
          "more dirty\nsharing (wb_csupply 0.5-0.8) than Appendix A's 0.3, "
          "so the ownership\nprotocols (Berkeley, Dragon -- modification 2) "
          "pull ahead of Illinois --\nexactly the Section 4.4 observation "
          "that the mod-1-vs-mod-2 ranking is a\nworkload question, not an "
          "architectural constant.")


if __name__ == "__main__":
    main()
