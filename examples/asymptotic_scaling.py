"""Asymptotic analysis: what the paper could only do with the MVA.

Run:  python examples/asymptotic_scaling.py

Section 4.1: "we are able to analyze the speedup for arbitrarily large
systems using the MVA equations.  (Solution of the GTPN model is
impractical for more than ten or twelve processors.)  ...  The
asymptotic results indicate a greater potential gain for modification 4
than was evident from previous results for ten processors."

This example quantifies that: the WO+1+4 advantage over WO+1 at N=10
versus at the bus-saturated limit, per sharing level, plus the exact
saturation point of each curve.
"""

from repro import CacheMVAModel, ProtocolSpec, SharingLevel, appendix_a_workload
from repro.core.sensitivity import asymptotic_speedup


def main() -> None:
    mod1 = ProtocolSpec.of(1)
    mod14 = ProtocolSpec.of(1, 4)

    print("=== gain of modification 4 (over modification 1 alone) ===")
    print(f"{'sharing':>8} {'at N=10':>9} {'asymptotic':>11} "
          f"{'asym. speedups':>22}")
    for level in SharingLevel:
        w = appendix_a_workload(level)
        s1_10 = CacheMVAModel(w, mod1).speedup(10)
        s14_10 = CacheMVAModel(w, mod14).speedup(10)
        lim1 = asymptotic_speedup(w, mod1)
        lim14 = asymptotic_speedup(w, mod14)
        print(f"{level.label:>8} {s14_10 / s1_10 - 1:>8.1%} "
              f"{lim14 / lim1 - 1:>10.1%}   "
              f"{lim1:6.3f} -> {lim14:6.3f}")
    print("\nthe asymptotic gain exceeds the N=10 gain at every sharing "
          "level,\nand grows with sharing -- the paper's Section 4.1 "
          "observation.")

    print("\n=== where does each curve saturate? ===")
    for protocol in (ProtocolSpec(), mod1, mod14):
        w = appendix_a_workload(SharingLevel.FIVE_PERCENT)
        model = CacheMVAModel(w, protocol)
        limit = asymptotic_speedup(w, protocol)
        n = 1
        while model.speedup(n) < 0.99 * limit:
            n += 1
        print(f"{protocol.label:>8}: within 1% of the limit "
              f"({limit:.3f}) from N = {n}")
    print("\n(Table 4.1 shows N=100 columns exactly because 'performance "
          "does not\nchange appreciably beyond twenty processors')")


if __name__ == "__main__":
    main()
