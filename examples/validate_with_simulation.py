"""Validate the MVA against the detailed discrete-event simulator.

Run:  python examples/validate_with_simulation.py [--fast]

This reproduces the paper's Section 4.2 methodology with our detailed
comparator: for each protocol and system size, solve the cheap MVA and
run the expensive simulation, then report the relative speedup error.
The paper found <= ~3 % disagreement against its GTPN; the same
magnitude holds here, and the MVA's known bias (it *underestimates* bus
utilization relative to the detailed model) is visible in the last two
columns.
"""

import sys
import time

from repro import ProtocolSpec, SharingLevel, appendix_a_workload
from repro.analysis.comparison import compare_mva_and_simulation


def main(fast: bool = False) -> None:
    sizes = [2, 6] if fast else [1, 2, 4, 6, 8, 10]
    requests = 20_000 if fast else 80_000
    protocols = [ProtocolSpec(), ProtocolSpec.of(1), ProtocolSpec.of(1, 4)]

    for protocol in protocols:
        workload = appendix_a_workload(SharingLevel.FIVE_PERCENT)
        started = time.perf_counter()
        study = compare_mva_and_simulation(
            workload, protocol, sizes, measured_requests=requests)
        elapsed = time.perf_counter() - started
        print(f"--- {protocol.label} (5% sharing) "
              f"[{elapsed:.1f}s of simulation] ---")
        print(f"{'N':>4} {'MVA':>8} {'sim':>8} {'±CI':>6} {'err%':>7} "
              f"{'U_bus MVA':>10} {'U_bus sim':>10}")
        for cell in study.cells:
            print(f"{cell.n_processors:>4} {cell.mva_speedup:>8.3f} "
                  f"{cell.detailed_speedup:>8.3f} {cell.detailed_ci:>6.3f} "
                  f"{cell.relative_error * 100:>7.2f} "
                  f"{cell.mva_u_bus:>10.3f} {cell.detailed_u_bus:>10.3f}")
        print(f"max |error| = {study.max_abs_error:.2%}  "
              f"(paper's GTPN comparison: <= ~3%)\n")


if __name__ == "__main__":
    main(fast="--fast" in sys.argv)
