"""Tests for the MVA-vs-simulation agreement harness."""

import pytest

from repro.analysis.comparison import (
    AgreementCell,
    agreement_table,
    compare_mva_and_simulation,
)
from repro.protocols.modifications import ProtocolSpec


@pytest.fixture(scope="module")
def study():
    from repro.workload.parameters import SharingLevel, appendix_a_workload
    return compare_mva_and_simulation(
        appendix_a_workload(SharingLevel.FIVE_PERCENT),
        ProtocolSpec(),
        sizes=[2, 6],
        measured_requests=30_000,
    )


class TestAgreementCell:
    def test_relative_error(self):
        cell = AgreementCell(n_processors=4, mva_speedup=3.0,
                             detailed_speedup=3.1, detailed_ci=0.05,
                             mva_u_bus=0.5, detailed_u_bus=0.52,
                             mva_w_bus=1.0, detailed_w_bus=1.1)
        assert cell.relative_error == pytest.approx((3.0 - 3.1) / 3.1)
        assert cell.u_bus_error == pytest.approx((0.5 - 0.52) / 0.52)

    def test_zero_detail_guard(self):
        cell = AgreementCell(n_processors=1, mva_speedup=1.0,
                             detailed_speedup=0.0, detailed_ci=0.0,
                             mva_u_bus=0.0, detailed_u_bus=0.0,
                             mva_w_bus=0.0, detailed_w_bus=0.0)
        assert cell.relative_error == 0.0
        assert cell.u_bus_error == 0.0


class TestStudy:
    def test_cells_cover_sizes(self, study):
        assert [c.n_processors for c in study.cells] == [2, 6]

    def test_agreement_within_five_percent(self, study):
        """The reproduction of the paper's Section 4.2 claim."""
        assert study.max_abs_error < 0.05

    def test_mean_le_max(self, study):
        assert study.mean_abs_error <= study.max_abs_error + 1e-12

    def test_worst_cell(self, study):
        worst = study.worst_cell()
        assert abs(worst.relative_error) == pytest.approx(
            study.max_abs_error)

    def test_summary_text(self, study):
        text = study.summary()
        assert "Write-Once" in text
        assert "max |rel err|" in text

    def test_table_render(self, study):
        table = agreement_table(study)
        text = table.render()
        assert "rel err %" in text
        assert "Write-Once" in table.title
