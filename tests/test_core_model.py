"""Tests for CacheMVAModel and PerformanceReport."""

import math

import pytest

from repro.core.model import TABLE_41_SIZES, CacheMVAModel
from repro.core.solver import FixedPointSolver
from repro.protocols.modifications import ProtocolSpec
from repro.workload.parameters import (
    ArchitectureParams,
    SharingLevel,
    appendix_a_workload,
)


class TestModelBasics:
    def test_applies_protocol_overrides_by_default(self, workload_5pct):
        model = CacheMVAModel(workload_5pct, ProtocolSpec.of(1))
        assert model.workload.rep_p == 0.3
        assert model.base_workload.rep_p == 0.2

    def test_overrides_can_be_disabled(self, workload_5pct):
        model = CacheMVAModel(workload_5pct, ProtocolSpec.of(1),
                              apply_overrides=False)
        assert model.workload.rep_p == 0.2

    def test_default_protocol_is_write_once(self, workload_5pct):
        model = CacheMVAModel(workload_5pct)
        assert model.protocol == ProtocolSpec()
        assert model.solve(4).protocol_label == "Write-Once"

    def test_sharing_label_inferred(self, workload_20pct):
        model = CacheMVAModel(workload_20pct)
        assert model.sharing_label == "20%"

    def test_table_sizes_constant(self):
        assert TABLE_41_SIZES == (1, 2, 4, 6, 8, 10, 15, 20, 100)


class TestReportMeasures:
    def test_speedup_formula(self, model_wo_5pct):
        report = model_wo_5pct.solve(6)
        expected = 6 * (2.5 + 1.0) / report.cycle_time
        assert math.isclose(report.speedup, expected)

    def test_processing_power_relation(self, model_wo_5pct):
        """Section 4.4: power = speedup * tau / (tau + T_supply)."""
        report = model_wo_5pct.solve(9)
        assert math.isclose(report.processing_power,
                            report.speedup * 2.5 / 3.5, rel_tol=1e-12)

    def test_efficiency_below_one(self, model_wo_5pct):
        report = model_wo_5pct.solve(10)
        assert 0.0 < report.efficiency < 1.0

    def test_single_processor_speedup_below_one(self, model_wo_5pct):
        """Memory stalls make one processor slower than the ideal
        (tau + T_supply) cycle: Table 4.1 reports 0.855 at 5 % sharing."""
        report = model_wo_5pct.solve(1)
        assert 0.8 < report.speedup < 0.9

    def test_summary_mentions_key_numbers(self, model_wo_5pct):
        text = model_wo_5pct.solve(4).summary()
        assert "Write-Once" in text
        assert "N=4" in text
        assert "speedup=" in text

    def test_solve_many(self, model_wo_5pct):
        reports = model_wo_5pct.solve_many([1, 2, 4])
        assert [r.n_processors for r in reports] == [1, 2, 4]


class TestModelBehaviour:
    def test_speedup_monotone_in_n(self, model_wo_5pct):
        speedups = [model_wo_5pct.speedup(n) for n in (1, 2, 4, 6, 8, 10)]
        assert speedups == sorted(speedups)

    def test_speedup_saturates(self, model_wo_5pct):
        """Figure 4.1 / Table 4.1: performance flat beyond ~20 processors."""
        s20 = model_wo_5pct.speedup(20)
        s100 = model_wo_5pct.speedup(100)
        assert abs(s100 - s20) / s20 < 0.02

    def test_bus_utilization_saturates_at_one(self, model_wo_5pct):
        assert model_wo_5pct.solve(100).u_bus == pytest.approx(1.0, abs=0.01)

    def test_more_sharing_means_less_speedup(self):
        """Figure 4.1: 1 % sharing outperforms 5 % outperforms 20 %."""
        speedups = [
            CacheMVAModel(appendix_a_workload(level)).speedup(10)
            for level in SharingLevel
        ]
        assert speedups[0] > speedups[1] > speedups[2]

    def test_mod1_beats_write_once(self, workload_5pct):
        """Section 4.1: 'Modification 1 is clearly advantageous'."""
        wo = CacheMVAModel(workload_5pct).speedup(10)
        mod1 = CacheMVAModel(workload_5pct, ProtocolSpec.of(1)).speedup(10)
        assert mod1 > wo * 1.05

    def test_mods_2_3_have_little_effect(self, workload_5pct):
        """Section 4.1: 'Modifications 2 and 3 have little effect for the
        workload we investigated' -- within a few percent of base."""
        wo = CacheMVAModel(workload_5pct).speedup(10)
        for mods in [(2,), (3,)]:
            s = CacheMVAModel(workload_5pct, ProtocolSpec.of(*mods)).speedup(10)
            assert abs(s - wo) / wo < 0.05, mods

    def test_mod4_gain_grows_with_sharing(self):
        """Section 4.1: 'Modification 4 is more advantageous as system
        size and the level of sharing increase.'"""
        gains = []
        for level in SharingLevel:
            w = appendix_a_workload(level)
            base = CacheMVAModel(w, ProtocolSpec.of(1)).speedup(100)
            mod4 = CacheMVAModel(w, ProtocolSpec.of(1, 4)).speedup(100)
            gains.append(mod4 / base)
        assert gains[0] < gains[1] < gains[2]
        assert gains[2] > 1.2

    def test_custom_solver_respected(self, workload_5pct):
        solver = FixedPointSolver(tolerance=1e-3)
        report = CacheMVAModel(workload_5pct, solver=solver).solve(10)
        assert report.iterations <= 15

    def test_faster_memory_helps(self, workload_5pct):
        slow = CacheMVAModel(workload_5pct,
                             arch=ArchitectureParams(memory_latency=10.0))
        fast = CacheMVAModel(workload_5pct,
                             arch=ArchitectureParams(memory_latency=1.0))
        assert fast.speedup(10) > slow.speedup(10)

    def test_report_converged_flag(self, model_wo_5pct):
        assert model_wo_5pct.solve(10).converged
