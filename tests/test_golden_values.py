"""Golden regression pins.

These exact values were produced by the reviewed implementation and are
recorded to three decimals in EXPERIMENTS.md.  Any model change that
moves them is either a bug or a deliberate re-derivation -- in both
cases this test should fail loudly so EXPERIMENTS.md gets re-measured.
"""

import pytest

from repro.core.model import CacheMVAModel
from repro.protocols.modifications import ProtocolSpec
from repro.workload.parameters import (
    SharingLevel,
    appendix_a_workload,
    stress_test_workload,
)

#: (mods, sharing) -> {N: speedup}; values pinned from the build that
#: generated EXPERIMENTS.md.
GOLDEN_SPEEDUPS = {
    ((), SharingLevel.ONE_PERCENT): {
        1: 0.869605, 10: 5.791863, 100: 6.466756},
    ((), SharingLevel.FIVE_PERCENT): {
        1: 0.851243, 10: 5.152559, 100: 5.590249},
    ((), SharingLevel.TWENTY_PERCENT): {
        1: 0.826573, 10: 4.458310, 100: 4.701580},
    ((1,), SharingLevel.FIVE_PERCENT): {
        1: 0.863594, 10: 6.047636, 100: 6.357191},
    ((1, 4), SharingLevel.FIVE_PERCENT): {
        1: 0.881432, 10: 6.743989, 100: 7.453585},
    ((1, 2, 3, 4), SharingLevel.FIVE_PERCENT): {
        1: 0.882153, 10: 6.777068, 100: 7.508690},
}


class TestGoldenSpeedups:
    @pytest.mark.parametrize("key", sorted(GOLDEN_SPEEDUPS,
                                           key=lambda k: (k[0], k[1].value)))
    def test_pinned_values(self, key):
        mods, level = key
        model = CacheMVAModel(appendix_a_workload(level),
                              ProtocolSpec.of(*mods))
        for n, expected in GOLDEN_SPEEDUPS[key].items():
            assert model.speedup(n) == pytest.approx(expected, abs=5e-4), n


class TestGoldenDerivedInputs:
    def test_five_percent_write_once_inputs(self):
        model = CacheMVAModel(appendix_a_workload(SharingLevel.FIVE_PERCENT))
        inp = model.inputs
        assert inp.p_local == pytest.approx(0.856275, abs=1e-6)
        assert inp.p_bc == pytest.approx(0.084725, abs=1e-6)
        assert inp.p_rr == pytest.approx(0.059, abs=1e-9)
        assert inp.t_read == pytest.approx(8.930670, abs=1e-5)
        assert inp.p_csupwb_rr == pytest.approx(0.032668, abs=1e-5)
        assert inp.p_reqwb_rr == pytest.approx(0.20, abs=1e-9)

    def test_stress_inputs(self):
        model = CacheMVAModel(stress_test_workload())
        assert model.inputs.p_rr == pytest.approx(0.22, abs=1e-9)
        ci = model.system(10).interference
        assert ci.p == pytest.approx(0.323660, abs=1e-4)
        assert ci.t_interference == pytest.approx(1.903551, abs=1e-4)


class TestGoldenProcessingPower:
    def test_e7_value(self):
        """The Section 4.4 comparison point pinned: 4.249."""
        model = CacheMVAModel(appendix_a_workload(SharingLevel.FIVE_PERCENT),
                              ProtocolSpec.of(1, 2, 3))
        assert model.solve(9).processing_power == pytest.approx(4.249,
                                                                abs=5e-3)
