"""Tests for the Petri-net structure and firing semantics."""

import pytest

from repro.gtpn.net import PetriNet, erlang_stages


@pytest.fixture
def simple_net():
    net = PetriNet("simple")
    a = net.add_place("a", tokens=2)
    b = net.add_place("b")
    t = net.add_transition("t", rate=1.0)
    net.connect(a, t)
    net.connect(t, b)
    return net


class TestConstruction:
    def test_duplicate_names_rejected(self, simple_net):
        with pytest.raises(ValueError, match="duplicate place"):
            simple_net.add_place("a")
        with pytest.raises(ValueError, match="duplicate transition"):
            simple_net.add_transition("t", rate=1.0)

    def test_negative_tokens_rejected(self):
        with pytest.raises(ValueError):
            PetriNet().add_place("p", tokens=-1)

    def test_bad_transition_params(self):
        net = PetriNet()
        with pytest.raises(ValueError, match="rate"):
            net.add_transition("x", rate=0.0)
        with pytest.raises(ValueError, match="weight"):
            net.add_transition("y", weight=0.0)
        with pytest.raises(ValueError, match="servers"):
            net.add_transition("z", rate=1.0, servers=0)

    def test_arc_type_checked(self, simple_net):
        with pytest.raises(TypeError):
            simple_net.connect(simple_net.place("a"), simple_net.place("b"))

    def test_lookup(self, simple_net):
        assert simple_net.place("a").name == "a"
        assert simple_net.transition("t").name == "t"

    def test_initial_marking(self, simple_net):
        assert simple_net.initial_marking == (2, 0)


class TestFiring:
    def test_enabled_and_fire(self, simple_net):
        t = simple_net.transition("t")
        m = simple_net.initial_marking
        assert simple_net.is_enabled(t, m)
        m2 = simple_net.fire(t, m)
        assert m2 == (1, 1)
        m3 = simple_net.fire(t, m2)
        assert m3 == (0, 2)
        assert not simple_net.is_enabled(t, m3)

    def test_fire_disabled_raises(self, simple_net):
        t = simple_net.transition("t")
        with pytest.raises(ValueError, match="not enabled"):
            simple_net.fire(t, (0, 0))

    def test_multiplicity(self):
        net = PetriNet()
        a = net.add_place("a", tokens=3)
        b = net.add_place("b")
        t = net.add_transition("t", rate=1.0)
        net.connect(a, t, multiplicity=2)
        net.connect(t, b, multiplicity=3)
        assert net.enabling_degree(t, (3, 0)) == 1
        assert net.fire(t, (3, 0)) == (1, 3)
        assert net.enabling_degree(t, (1, 3)) == 0

    def test_inhibitor_arc(self):
        net = PetriNet()
        a = net.add_place("a", tokens=1)
        guard = net.add_place("guard", tokens=0)
        t = net.add_transition("t", rate=1.0)
        net.connect(a, t)
        net.inhibit(guard, t)
        assert net.is_enabled(t, (1, 0))
        assert not net.is_enabled(t, (1, 1))

    def test_enabling_degree_counts_concurrency(self, simple_net):
        t = simple_net.transition("t")
        assert simple_net.enabling_degree(t, (2, 0)) == 2

    def test_effective_rate_server_semantics(self):
        net = PetriNet()
        a = net.add_place("a", tokens=5)
        single = net.add_transition("single", rate=2.0, servers=1)
        multi = net.add_transition("multi", rate=2.0, servers=3)
        infinite = net.add_transition("inf", rate=2.0, servers=None)
        for t in (single, multi, infinite):
            net.connect(a, t)
        m = (5,)
        assert net.effective_rate(single, m) == 2.0
        assert net.effective_rate(multi, m) == 6.0
        assert net.effective_rate(infinite, m) == 10.0

    def test_effective_rate_of_immediate_raises(self):
        net = PetriNet()
        a = net.add_place("a", tokens=1)
        imm = net.add_transition("imm")
        net.connect(a, imm)
        with pytest.raises(ValueError):
            net.effective_rate(imm, (1,))

    def test_enabled_transitions_list(self, simple_net):
        assert [t.name for t in
                simple_net.enabled_transitions((1, 0))] == ["t"]
        assert simple_net.enabled_transitions((0, 5)) == []


class TestErlangStages:
    def test_expansion_structure(self):
        net = PetriNet()
        src = net.add_place("src", tokens=1)
        dst = net.add_place("dst")
        ts = erlang_stages(net, "d", src, dst, mean_time=4.0, stages=4)
        assert len(ts) == 4
        assert all(t.rate == pytest.approx(1.0) for t in ts)
        # 4 stages add 3 intermediate places.
        assert len(net.places) == 5

    def test_single_stage_is_plain_exponential(self):
        net = PetriNet()
        src = net.add_place("src", tokens=1)
        dst = net.add_place("dst")
        (t,) = erlang_stages(net, "d", src, dst, mean_time=2.0, stages=1)
        assert t.rate == pytest.approx(0.5)
        assert len(net.places) == 2

    def test_validation(self):
        net = PetriNet()
        src = net.add_place("src", tokens=1)
        dst = net.add_place("dst")
        with pytest.raises(ValueError):
            erlang_stages(net, "d", src, dst, mean_time=1.0, stages=0)
        with pytest.raises(ValueError):
            erlang_stages(net, "d", src, dst, mean_time=0.0, stages=2)

    def test_token_conservation_through_stages(self):
        net = PetriNet()
        src = net.add_place("src", tokens=1)
        dst = net.add_place("dst")
        ts = erlang_stages(net, "d", src, dst, mean_time=3.0, stages=3)
        m = net.initial_marking
        for t in ts:
            m = net.fire(t, m)
        assert m[dst.pid] == 1
        assert sum(m) == 1
