"""Tests for the simulator's reference-outcome sampler."""

from collections import Counter

import numpy as np
import pytest

from repro.workload.derived import derive_inputs
from repro.workload.parameters import WorkloadParameters
from repro.workload.streams import ReferenceOutcome, ReferenceStream, RequestKind


@pytest.fixture
def stream_5pct(workload_5pct):
    inputs = derive_inputs(workload_5pct)
    return ReferenceStream(inputs, rng=np.random.default_rng(42))


def _sample_kinds(stream: ReferenceStream, n: int) -> Counter:
    return Counter(stream.sample().kind for _ in range(n))


class TestReferenceStream:
    def test_kind_frequencies_match_probabilities(self, stream_5pct):
        n = 200_000
        counts = _sample_kinds(stream_5pct, n)
        inputs = stream_5pct.inputs
        assert counts[RequestKind.LOCAL] / n == pytest.approx(inputs.p_local, abs=5e-3)
        assert counts[RequestKind.BROADCAST] / n == pytest.approx(inputs.p_bc, abs=5e-3)
        assert counts[RequestKind.REMOTE_READ] / n == pytest.approx(inputs.p_rr, abs=5e-3)

    def test_remote_read_sub_outcomes(self, workload_5pct):
        inputs = derive_inputs(workload_5pct)
        stream = ReferenceStream(inputs, rng=np.random.default_rng(7))
        outcomes = [stream.sample() for _ in range(400_000)]
        reads = [o for o in outcomes if o.kind is RequestKind.REMOTE_READ]
        supplied = sum(o.cache_supplied for o in reads) / len(reads)
        supplier_wb = sum(o.supplier_writeback for o in reads) / len(reads)
        req_wb = sum(o.req_writeback for o in reads) / len(reads)
        assert supplied == pytest.approx(inputs.p_csup_rr, abs=1e-2)
        assert supplier_wb == pytest.approx(
            inputs.p_csup_rr * workload_5pct.wb_csupply, abs=1e-2)
        assert req_wb == pytest.approx(inputs.p_reqwb_rr, abs=1e-2)

    def test_supplier_writeback_implies_supply(self, stream_5pct):
        for _ in range(20_000):
            o = stream_5pct.sample()
            if o.supplier_writeback:
                assert o.cache_supplied
            if o.cache_supplied:
                assert o.shared
                assert o.kind is RequestKind.REMOTE_READ

    def test_broadcast_shared_flag_frequency(self, workload_5pct):
        inputs = derive_inputs(workload_5pct)
        stream = ReferenceStream(inputs, rng=np.random.default_rng(3))
        bcasts = [o for o in (stream.sample() for _ in range(400_000))
                  if o.kind is RequestKind.BROADCAST]
        shared_frac = sum(o.shared for o in bcasts) / len(bcasts)
        expected = inputs.mix.sw_broadcast(inputs.mods) / inputs.p_bc
        assert shared_frac == pytest.approx(expected, abs=1.5e-2)

    def test_execution_cycles_exponential_mean(self, stream_5pct, workload_5pct):
        draws = [stream_5pct.execution_cycles() for _ in range(100_000)]
        assert sum(draws) / len(draws) == pytest.approx(workload_5pct.tau, rel=0.02)
        assert all(d >= 0.0 for d in draws)

    def test_zero_tau_yields_zero_bursts(self, workload_5pct):
        inputs = derive_inputs(workload_5pct.replace(tau=0.0))
        stream = ReferenceStream(inputs, rng=np.random.default_rng(0))
        assert stream.execution_cycles() == 0.0

    def test_deterministic_with_seed(self, workload_5pct):
        inputs = derive_inputs(workload_5pct)
        a = ReferenceStream(inputs, rng=np.random.default_rng(123))
        b = ReferenceStream(inputs, rng=np.random.default_rng(123))
        assert [a.sample() for _ in range(100)] == [b.sample() for _ in range(100)]

    def test_pure_local_workload_never_uses_bus(self):
        w = WorkloadParameters(p_private=1.0, p_sro=0.0, p_sw=0.0,
                               h_private=1.0, r_private=1.0)
        stream = ReferenceStream(derive_inputs(w), rng=np.random.default_rng(1))
        assert all(stream.sample().kind is RequestKind.LOCAL for _ in range(1000))

    def test_outcome_is_frozen(self):
        o = ReferenceOutcome(kind=RequestKind.LOCAL)
        with pytest.raises(AttributeError):
            o.shared = True  # type: ignore[misc]
