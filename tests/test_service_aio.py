"""End-to-end tests for the asyncio HTTP front-end.

The async server must present exactly the same /v1 surface as the
threaded one (it routes through the shared router), while handling
coalesced solves natively on the event loop.  These tests exercise the
transport itself -- keep-alive, pipelined requests on one connection,
malformed request lines, clients that disconnect mid-wait -- plus the
parity of its responses with the threaded server's.
"""

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import ModelService, start_async_server, start_server


@pytest.fixture()
def handle():
    service = ModelService.with_coalescer(window_ms=5)
    handle = start_async_server(service)
    yield handle
    handle.shutdown()
    service.close()


def _get(url, path):
    try:
        with urllib.request.urlopen(url + path, timeout=10) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def _post(url, path, body):
    request = urllib.request.Request(
        url + path, data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _raw_request(handle, payload: bytes) -> bytes:
    """Send raw bytes on a fresh socket; read until the server closes."""
    with socket.create_connection(
            (handle.server.host, handle.server.port), timeout=10) as sock:
        sock.sendall(payload)
        sock.shutdown(socket.SHUT_WR)
        chunks = []
        while chunk := sock.recv(65536):
            chunks.append(chunk)
    return b"".join(chunks)


class TestRoutes:
    def test_healthz(self, handle):
        status, _, body = _get(handle.url, "/v1/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"

    def test_solve_is_coalesced(self, handle):
        status, body = _post(handle.url, "/v1/solve",
                             {"protocol": "berkeley", "n": [4, 10]})
        assert status == 200
        payload = json.loads(body)
        assert payload["summary"]["mode"] == "coalesced"
        assert [r["n_processors"] for r in payload["results"]] == [4, 10]
        assert handle.service.coalescer.stats()["cells"] == 2

    def test_explicit_engine_bypasses_coalescer(self, handle):
        status, body = _post(handle.url, "/v1/solve",
                             {"protocol": "berkeley", "n": 6,
                              "engine": "scalar"})
        assert status == 200
        payload = json.loads(body)
        assert payload["summary"]["mode"] != "coalesced"
        assert handle.service.coalescer.stats()["cells"] == 0

    def test_solve_error_envelope(self, handle):
        status, body = _post(handle.url, "/v1/solve", {"n": 4})
        assert status == 400
        assert json.loads(body)["error"]["code"] == "missing-field"

    def test_grid_runs_in_executor(self, handle):
        status, body = _post(handle.url, "/v1/grid",
                             {"protocols": ["berkeley"], "sharing": ["5"],
                              "n": [2, 4]})
        assert status == 200
        assert len(json.loads(body)["cells"]) == 2

    def test_metrics_exposition(self, handle):
        _post(handle.url, "/v1/solve", {"protocol": "berkeley", "n": 4})
        status, headers, body = _get(handle.url, "/v1/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert b"repro_coalesce_flushes_total" in body

    def test_legacy_endpoints_are_gone(self, handle):
        status, headers, body = _get(handle.url, "/healthz")
        assert status == 410
        error = json.loads(body)["error"]
        assert error["code"] == "gone"
        assert error["detail"]["successor"] == "/v1/healthz"
        assert "successor-version" in headers["Link"]

    def test_unknown_path_404(self, handle):
        status, _, body = _get(handle.url, "/v1/nope")
        assert status == 404
        assert json.loads(body)["error"]["code"] == "not-found"

    def test_method_not_allowed_405(self, handle):
        status, headers, _ = _get(handle.url, "/v1/solve")
        assert status == 405
        assert headers["Allow"] == "POST"


class TestTransport:
    def test_keep_alive_serves_pipelined_requests(self, handle):
        request = (f"GET /v1/healthz HTTP/1.1\r\n"
                   f"Host: {handle.server.host}\r\n\r\n").encode()
        raw = _raw_request(handle, request * 2)
        assert raw.count(b"HTTP/1.1 200 OK") == 2
        assert raw.count(b'"status":"ok"') == 2

    def test_connection_close_honoured(self, handle):
        request = (f"GET /v1/healthz HTTP/1.1\r\n"
                   f"Host: {handle.server.host}\r\n"
                   f"Connection: close\r\n\r\n").encode()
        raw = _raw_request(handle, request)
        assert b"Connection: close" in raw

    def test_malformed_request_line_400(self, handle):
        raw = _raw_request(handle, b"NONSENSE\r\n\r\n")
        assert raw.startswith(b"HTTP/1.1 400 ")

    def test_oversized_request_line_400(self, handle):
        raw = _raw_request(
            handle, b"GET /" + b"a" * 20_000 + b" HTTP/1.1\r\n\r\n")
        assert raw.startswith(b"HTTP/1.1 400 ")

    def test_oversized_header_line_400(self, handle):
        request = (b"GET /v1/healthz HTTP/1.1\r\n"
                   b"X-Big: " + b"a" * 20_000 + b"\r\n\r\n")
        raw = _raw_request(handle, request)
        assert raw.startswith(b"HTTP/1.1 400 ")

    def test_too_many_headers_400(self, handle):
        headers = b"".join(b"X-H%d: 1\r\n" % i for i in range(150))
        request = b"GET /v1/healthz HTTP/1.1\r\n" + headers + b"\r\n"
        raw = _raw_request(handle, request)
        assert raw.startswith(b"HTTP/1.1 400 ")

    def test_truncated_body_400(self, handle):
        request = (b"POST /v1/solve HTTP/1.1\r\n"
                   b"Content-Length: 500\r\n\r\n"
                   b'{"protocol":')
        raw = _raw_request(handle, request)
        assert raw.startswith(b"HTTP/1.1 400 ")

    def test_oversized_body_413(self, handle):
        request = (b"POST /v1/solve HTTP/1.1\r\n"
                   b"Content-Length: 9000000\r\n\r\n")
        raw = _raw_request(handle, request)
        assert raw.startswith(b"HTTP/1.1 413 ")

    def test_disconnect_mid_wait_leaves_siblings_ok(self, handle):
        """A client that vanishes before its solve lands must not
        break a concurrent client sharing the same batch window."""
        body = json.dumps({"protocol": "synapse", "n": 16}).encode()
        request = (b"POST /v1/solve HTTP/1.1\r\n"
                   b"Content-Type: application/json\r\n"
                   b"Content-Length: %d\r\n\r\n%s" % (len(body), body))
        sock = socket.create_connection(
            (handle.server.host, handle.server.port), timeout=10)
        sock.sendall(request)
        sock.close()  # gone before the window elapses
        status, raw = _post(handle.url, "/v1/solve",
                            {"protocol": "synapse", "n": 24})
        assert status == 200
        assert json.loads(raw)["results"][0]["speedup"] > 0


class TestConcurrency:
    def test_many_concurrent_solves_batch_together(self, handle):
        results = {}

        def worker(n):
            status, raw = _post(handle.url, "/v1/solve",
                                {"protocol": "illinois", "n": n})
            results[n] = (status, json.loads(raw))

        sizes = list(range(2, 18, 2))
        threads = [threading.Thread(target=worker, args=(n,))
                   for n in sizes]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert all(results[n][0] == 200 for n in sizes)
        stats = handle.service.coalescer.stats()
        assert stats["cells"] >= len(sizes)
        assert stats["batches"] < stats["cells"]


class TestParityWithThreadedServer:
    def test_same_bytes_modulo_operational_fields(self):
        body = {"protocol": "write-once", "n": [2, 8], "sharing": "1"}
        async_service = ModelService.with_coalescer(window_ms=5)
        async_handle = start_async_server(async_service)
        threaded_service = ModelService()
        threaded = start_server(threaded_service)
        thread = threading.Thread(target=threaded.serve_forever, daemon=True)
        thread.start()
        try:
            _, async_raw = _post(async_handle.url, "/v1/solve", body)
            _, threaded_raw = _post(threaded.url, "/v1/solve", body)

            def normalize(raw):
                payload = json.loads(raw)
                payload["summary"].pop("wall_seconds")
                payload["summary"].pop("mode")
                return json.dumps(payload, sort_keys=True)

            assert normalize(async_raw) == normalize(threaded_raw)
        finally:
            threaded.shutdown()
            threaded.server_close()
            thread.join(timeout=5)
            async_handle.shutdown()
            async_service.close()
            threaded_service.close()
