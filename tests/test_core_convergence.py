"""Tests for the convergence-analysis utility."""

import math

import pytest

from repro.core.convergence import ConvergenceAnalysis, analyze_convergence
from repro.core.equations import EquationSystem
from repro.workload.derived import derive_inputs
from repro.workload.parameters import SharingLevel, appendix_a_workload


def _system(n, level=SharingLevel.FIVE_PERCENT):
    return EquationSystem(derive_inputs(appendix_a_workload(level)), n)


class TestAnalyzeConvergence:
    def test_iteration_is_a_contraction(self):
        for n in (2, 6, 10, 20, 100):
            analysis = analyze_convergence(_system(n))
            assert analysis.is_contraction, n
            assert 0.0 <= analysis.contraction_rate < 1.0

    def test_residuals_eventually_shrink(self):
        analysis = analyze_convergence(_system(10))
        # Tail residual far below head residual.
        assert analysis.residuals[-1] < analysis.residuals[0] * 1e-6

    def test_rate_peaks_at_the_knee(self):
        """Convergence is slowest where the bus transitions into
        saturation (around N ~ 8-15 for the 5 % workload) and fast both
        in the contention-free and deeply saturated regimes."""
        rates = {n: analyze_convergence(_system(n)).contraction_rate
                 for n in (2, 10, 1000)}
        assert rates[10] > rates[2]
        assert rates[10] > rates[1000]

    def test_predicted_iterations_match_observed(self):
        analysis = analyze_convergence(_system(10))
        predicted = analysis.iterations_for(1e-9)
        assert math.isfinite(predicted)
        # Same order of magnitude as actually observed.
        assert 0.3 * analysis.iterations_observed <= predicted \
            <= 3.0 * analysis.iterations_observed

    def test_iterations_for_validation(self):
        analysis = analyze_convergence(_system(6))
        with pytest.raises(ValueError):
            analysis.iterations_for(0.0)

    def test_iterations_for_zero_when_already_at_precision(self):
        """Regression: a starting residual at or below the target used
        to predict 1.0 sweeps; no sweeps are needed."""
        analysis = ConvergenceAnalysis(
            contraction_rate=0.5, iterations_observed=3,
            residuals=(1e-12,))
        assert analysis.iterations_for(1e-9) == 0.0
        assert analysis.iterations_for(1e-12) == 0.0  # boundary: at target
        # the explicit-start override takes the same path
        healthy = analyze_convergence(_system(10))
        assert healthy.iterations_for(1e-9, initial_residual=1e-10) == 0.0

    def test_iterations_for_with_nonpositive_rate(self):
        """Regression: rate <= 0 returned 1.0 even when the start was
        already below the target; the start check must win."""
        done = ConvergenceAnalysis(contraction_rate=0.0,
                                   iterations_observed=1,
                                   residuals=(1e-12,))
        assert done.iterations_for(1e-9) == 0.0
        pending = ConvergenceAnalysis(contraction_rate=0.0,
                                      iterations_observed=1,
                                      residuals=(1.0,))
        # one sweep collapses the residual when the rate is ~0
        assert pending.iterations_for(1e-9) == 1.0

    def test_single_processor_converges_immediately(self):
        analysis = analyze_convergence(_system(1))
        # No queueing feedback: the fixed point is reached in ~2 sweeps.
        assert analysis.iterations_observed <= 3

    def test_damping_parameter_measures_the_damped_iteration(self):
        """Regression: `analyze_convergence` ignored solver damping.
        Near the fixed point a damped sweep contracts like
        (1 - d) + d * rate, so under-relaxation *slows* an already
        monotone iteration -- the measured rate must reflect that."""
        plain = analyze_convergence(_system(10))
        damped = analyze_convergence(_system(10), damping=0.5)
        assert damped.contraction_rate > plain.contraction_rate
        expected = 0.5 + 0.5 * plain.contraction_rate
        assert damped.contraction_rate == pytest.approx(expected, rel=0.05)
        assert damped.iterations_observed > plain.iterations_observed

    def test_damping_validation(self):
        with pytest.raises(ValueError):
            analyze_convergence(_system(4), damping=0.0)
        with pytest.raises(ValueError):
            analyze_convergence(_system(4), damping=1.5)

    def test_explains_the_paper_iteration_claim(self):
        """At every Table-4.1 cell, the measured rate predicts <= ~25
        sweeps to 3-digit precision -- the mechanism behind the paper's
        'within 15 iterations'."""
        for level in SharingLevel:
            for n in (1, 2, 4, 6, 8, 10, 15, 20, 100):
                system = EquationSystem(
                    derive_inputs(appendix_a_workload(level)), n)
                analysis = analyze_convergence(system)
                assert analysis.iterations_for(1e-3) <= 25, (level, n)
