"""Tests for the accuracy-summary aggregation."""

import pytest

from repro.analysis.accuracy import summarize
from repro.analysis.comparison import AgreementCell, AgreementStudy


def _cell(mva, detailed, ci=0.01, n=4):
    return AgreementCell(
        n_processors=n, mva_speedup=mva, detailed_speedup=detailed,
        detailed_ci=ci, mva_u_bus=0.5, detailed_u_bus=0.5,
        mva_w_bus=1.0, detailed_w_bus=1.0)


def _study(cells):
    return AgreementStudy(protocol_label="X", sharing_label="5%",
                          cells=tuple(cells))


class TestSummarize:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([_study([])])

    def test_known_statistics(self):
        cells = [
            _cell(1.00, 1.00),    # exact
            _cell(0.99, 1.00),    # -1 %
            _cell(1.04, 1.00),    # +4 %
        ]
        summary = summarize([_study(cells)])
        assert summary.n_cells == 3
        assert summary.max_abs_error == pytest.approx(0.04)
        assert summary.mean_abs_error == pytest.approx((0 + 0.01 + 0.04) / 3)
        assert summary.within_1pct == pytest.approx(2 / 3)
        assert summary.within_5pct == 1.0
        assert summary.mean_signed_error == pytest.approx(0.01)

    def test_rms(self):
        summary = summarize([_study([_cell(1.03, 1.00), _cell(0.97, 1.00)])])
        assert summary.rms_error == pytest.approx(0.03)

    def test_significance_uses_ci(self):
        cells = [
            _cell(1.10, 1.00, ci=0.01),  # gap 0.10 >> 2*CI: significant
            _cell(1.10, 1.00, ci=0.20),  # within noise
            _cell(1.10, 1.00, ci=0.0),   # no CI -> not counted
        ]
        summary = summarize([_study(cells)])
        assert summary.significant_cells == 1

    def test_multiple_studies_pooled(self):
        a = _study([_cell(1.0, 1.0)])
        b = _study([_cell(2.0, 2.2)])
        summary = summarize([a, b])
        assert summary.n_cells == 2

    def test_text_rendering(self):
        summary = summarize([_study([_cell(0.98, 1.00)])])
        text = summary.text()
        assert "max |err| 2.00%" in text
        assert "mean signed error -2.00%" in text


class TestLiveSummary:
    def test_real_agreement_study_summary(self, workload_5pct):
        """End to end on an actual (small) MVA-vs-simulation study: the
        paper-style framing must hold -- small errors, negative bias."""
        from repro.analysis.comparison import compare_mva_and_simulation
        from repro.protocols.modifications import ProtocolSpec
        study = compare_mva_and_simulation(
            workload_5pct, ProtocolSpec(), sizes=[2, 6],
            measured_requests=30_000)
        summary = summarize([study])
        assert summary.n_cells == 2
        assert summary.max_abs_error < 0.05
        assert summary.within_5pct == 1.0
