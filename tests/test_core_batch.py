"""The batched vectorized MVA engine vs the scalar fixed-point solver.

The batch engine's contract is *drop-in equality*: for every cell of a
grid it must reproduce what :class:`FixedPointSolver` computes for that
cell alone -- states within solver tolerance, and diagnostics
(iterations, ladder, recovery, warning codes) structurally identical.
These tests enforce that cell-for-cell on the Table 4.1 grid and the
stress grid, property-test it over random workloads, and pin the
engine-independence of the executor's cache keys.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.batch import (
    BatchEquationSystem,
    _n_interference_vec,
    _p_busy_vec,
    solve_batch,
)
from repro.core.equations import _p_busy
from repro.core.model import TABLE_41_SIZES, CacheMVAModel
from repro.core.solver import FixedPointSolver
from repro.protocols.modifications import ProtocolSpec, all_combinations
from repro.workload.parameters import SharingLevel, appendix_a_workload

from tests.strategies import PROTOCOLS, SIZE_LISTS, workloads

#: Compare iterated quantities to the solver's own convergence
#: tolerance: two runs that each stopped within ``tolerance`` of the
#: true fixed point can differ by at most a few tolerances.
TOL = 10 * FixedPointSolver().tolerance


def _table_41_systems():
    """(system, model, n) for every Table 4.1 grid cell."""
    out = []
    for protocol in (ProtocolSpec(), ProtocolSpec.of(1),
                     ProtocolSpec.of(1, 4)):
        for level in SharingLevel:
            model = CacheMVAModel(appendix_a_workload(level), protocol)
            for n in TABLE_41_SIZES:
                out.append((model.system(n), model, n))
    return out


class TestBatchMatchesScalar:
    def test_table_41_grid_cell_for_cell(self):
        cells = _table_41_systems()
        result = solve_batch([system for system, _, _ in cells])
        assert result.all_converged
        for (system, model, n), state, diag in zip(
                cells, result.states, result.diagnostics):
            expected_state, expected_diag = \
                model.solver.solve_with_recovery(model.system(n))
            assert state.distance(expected_state) < TOL
            assert state.response.total == pytest.approx(
                expected_state.response.total, abs=TOL)
            assert state.u_bus == pytest.approx(expected_state.u_bus,
                                                abs=TOL)
            assert state.u_mem == pytest.approx(expected_state.u_mem,
                                                abs=TOL)
            assert diag.iterations == expected_diag.iterations
            assert diag.converged == expected_diag.converged
            assert diag.damping == expected_diag.damping
            assert diag.ladder == expected_diag.ladder
            assert diag.recovered == expected_diag.recovered
            assert [w.code for w in diag.warnings] == \
                [w.code for w in expected_diag.warnings]

    def test_stress_grid_with_failures_and_recoveries(self):
        """Extreme corners: converged, recovered and failed cells all
        mirror their scalar outcome (per-cell masking cannot leak)."""
        from repro.analysis.stress import stress_corners

        solver = FixedPointSolver(raise_on_divergence=False)
        cells = []
        for protocol in all_combinations():
            for corner in stress_corners():
                model = CacheMVAModel(corner.workload, protocol,
                                      solver=solver)
                for n in (4, 16, 128):
                    cells.append((model, n))
        result = solve_batch([m.system(n) for m, n in cells],
                             solver=solver)
        outcomes = {"converged": 0, "recovered": 0, "failed": 0}
        for (model, n), state, diag in zip(cells, result.states,
                                           result.diagnostics):
            expected_state, expected_diag = solver.solve_with_recovery(
                model.system(n))
            assert diag.converged == expected_diag.converged
            assert diag.iterations == expected_diag.iterations
            assert diag.ladder == expected_diag.ladder
            assert diag.recovered == expected_diag.recovered
            assert [w.code for w in diag.warnings] == \
                [w.code for w in expected_diag.warnings]
            if diag.converged:
                assert state.distance(expected_state) < TOL
                outcomes["recovered" if diag.recovered
                         else "converged"] += 1
            else:
                outcomes["failed"] += 1
        # The stress grid must actually exercise every path.
        assert outcomes["converged"] > 0

    def test_trace_lengths_match_final_rung(self):
        model = CacheMVAModel(
            appendix_a_workload(SharingLevel.FIVE_PERCENT))
        result = solve_batch([model.system(10)])
        diag = result.diagnostics[0]
        assert len(diag.trace) == diag.iterations
        assert len(diag.residual_trace) == len(diag.trace)
        assert diag.final_residual < FixedPointSolver().tolerance

    def test_no_recovery_mirrors_plain_solve(self):
        model = CacheMVAModel(
            appendix_a_workload(SharingLevel.TWENTY_PERCENT))
        solver = FixedPointSolver(raise_on_divergence=False)
        result = solve_batch([model.system(20)], solver=solver,
                             recovery=False)
        state, diag = result.states[0], result.diagnostics[0]
        expected_state, expected_diag = solver.solve(model.system(20))
        assert state.distance(expected_state) < TOL
        assert diag.iterations == expected_diag.iterations
        assert diag.ladder == (1.0,)
        assert diag.warnings == ()

    def test_mixed_sizes_converge_at_different_sweeps(self):
        """Freezing: small N converges in fewer sweeps than large N,
        and neither perturbs the other."""
        model = CacheMVAModel(
            appendix_a_workload(SharingLevel.TWENTY_PERCENT))
        result = solve_batch([model.system(1), model.system(100)])
        iters = [d.iterations for d in result.diagnostics]
        assert iters[0] < iters[1]
        for n, state in zip((1, 100), result.states):
            expected, _ = model.solver.solve_with_recovery(model.system(n))
            assert state.distance(expected) < TOL


class TestVectorizedPieces:
    def test_p_busy_vec_matches_scalar(self):
        ns = [1, 2, 4, 16, 100]
        us = [0.0, 0.3, 0.99, 1.0, 1.7, 250.0]
        cases = [(u, n) for n in ns for u in us]
        got = _p_busy_vec(np.array([u for u, _ in cases]),
                          np.array([float(n) for _, n in cases]))
        for value, (u, n) in zip(got, cases):
            assert value == _p_busy(u, n), (u, n)

    def test_n_interference_vec_matches_scalar(self):
        model = CacheMVAModel(
            appendix_a_workload(SharingLevel.TWENTY_PERCENT))
        ci = model.system(16).interference
        q_values = np.array([0.0, 0.5, 1.0, 3.7, 15.0])
        got = _n_interference_vec(
            np.full_like(q_values, ci.p),
            np.full_like(q_values, ci.p_prime), q_values)
        for value, q in zip(got, q_values):
            assert value == pytest.approx(ci.n_interference(float(q)),
                                          rel=1e-12, abs=1e-15)

    def test_select_compacts_coefficients(self):
        model = CacheMVAModel(
            appendix_a_workload(SharingLevel.FIVE_PERCENT))
        batch = BatchEquationSystem(
            [model.system(n) for n in (2, 4, 8)])
        sub = batch.select(np.array([0, 2]))
        assert sub.n_cells == 2
        assert sub.n.tolist() == [2.0, 8.0]

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            BatchEquationSystem([])
        with pytest.raises(ValueError):
            BatchEquationSystem(None)


class TestBatchProperty:
    @given(workload=workloads(), protocol=PROTOCOLS, sizes=SIZE_LISTS)
    @settings(max_examples=100, deadline=None)
    def test_converged_cells_match_scalar_solver(self, workload, protocol,
                                                 sizes):
        """For any valid workload, protocol and size mix, every batch
        cell that converges matches the scalar solver's fixed point
        within the solver tolerance."""
        solver = FixedPointSolver(raise_on_divergence=False)
        model = CacheMVAModel(workload, protocol, solver=solver)
        result = solve_batch([model.system(n) for n in sizes],
                             solver=solver)
        for n, state, diag in zip(sizes, result.states,
                                  result.diagnostics):
            expected_state, expected_diag = solver.solve_with_recovery(
                model.system(n))
            assert diag.converged == expected_diag.converged
            if not diag.converged:
                continue
            assert state.distance(expected_state) < TOL
            assert math.isclose(state.response.total,
                                expected_state.response.total,
                                rel_tol=1e-6, abs_tol=TOL)
            assert diag.iterations == expected_diag.iterations
            assert diag.recovered == expected_diag.recovered


class TestEngineParityInExecutor:
    """ISSUE acceptance: identical cache keys and identical
    ``GridCell.as_row()`` payloads between engines."""

    def _run(self, engine):
        from repro.service.cache import ResultCache
        from repro.service.executor import SweepExecutor, tasks_for_spec
        from repro.analysis.grid import GridSpec

        spec = GridSpec(
            protocols=[ProtocolSpec(), ProtocolSpec.of(1, 4)],
            sizes=[2, 8, 32],
        )
        tasks = tasks_for_spec(spec)
        cache = ResultCache()
        result = SweepExecutor(cache=cache, engine=engine).run(tasks)
        return tasks, cache, result

    def test_identical_cache_keys_and_rows(self):
        tasks_s, cache_s, scalar = self._run("scalar")
        tasks_b, cache_b, batch = self._run("batch")
        # Cache keys are content-addressed over the task, not the
        # engine, so both engines fill identical key sets.
        keys_s = {task.key for task in tasks_s}
        keys_b = {task.key for task in tasks_b}
        assert keys_s == keys_b
        assert len(cache_s) == len(cache_b) == len(tasks_s)
        # ... and identical row payloads.
        for a, b in zip(scalar.cells, batch.cells):
            assert a.as_row() == b.as_row()
        # Solve metadata matches too, modulo wall-clock.
        for a, b in zip(scalar.meta, batch.meta):
            assert {k: v for k, v in a.items() if k != "elapsed_s"} == \
                {k: v for k, v in b.items() if k != "elapsed_s"}

    def test_batch_engine_serves_scalar_cache_entries(self):
        """A cache written by one engine is a 100% hit for the other."""
        from repro.service.cache import ResultCache
        from repro.service.executor import SweepExecutor, tasks_for_spec
        from repro.analysis.grid import GridSpec

        spec = GridSpec(protocols=[ProtocolSpec.of(1)], sizes=[4, 8])
        tasks = tasks_for_spec(spec)
        cache = ResultCache()
        first = SweepExecutor(cache=cache, engine="scalar").run(tasks)
        second = SweepExecutor(cache=cache, engine="batch").run(tasks)
        assert first.summary.cache_hits == 0
        assert second.summary.cache_hits == len(tasks)
        for a, b in zip(first.cells, second.cells):
            assert a.as_row() == b.as_row()

    def test_rejects_unknown_engine(self):
        from repro.service.executor import SweepExecutor

        with pytest.raises(ValueError, match="engine"):
            SweepExecutor(engine="quantum")
