"""Tests for bus, memory, cache and processor components in isolation."""

import numpy as np
import pytest

from repro.sim.bus import Bus, BusRequest
from repro.sim.cache import CacheController
from repro.sim.engine import Simulation
from repro.sim.memory import MemoryBank
from repro.sim.processor import Processor, ProcessorState
from repro.workload.streams import ReferenceOutcome, RequestKind


def _bus_request(cache_id=0, enqueue=0.0, on_complete=lambda s, r: None):
    return BusRequest(cache_id=cache_id,
                      outcome=ReferenceOutcome(kind=RequestKind.REMOTE_READ),
                      enqueue_time=enqueue,
                      on_complete=on_complete)


class TestBus:
    def _run_fcfs(self, durations):
        """Submit requests back-to-back; return their grant times."""
        sim = Simulation()
        bus = Bus()
        grants = []
        remaining = list(durations)

        def grant(s, req):
            grants.append(s.now)
            d = remaining.pop(0)
            s.schedule(d, lambda s2: bus.complete(s2, grant),
                       Simulation.PRIORITY_BUS)

        for i in range(len(durations)):
            bus.submit(sim, _bus_request(cache_id=i), grant)
        sim.run()
        return sim, bus, grants

    def test_fcfs_grant_times(self):
        sim, bus, grants = self._run_fcfs([4.0, 2.0, 3.0])
        assert grants == [0.0, 4.0, 6.0]
        assert bus.transactions == 3
        assert not bus.busy

    def test_utilization_fully_busy(self):
        sim, bus, _ = self._run_fcfs([4.0, 2.0, 3.0])
        assert bus.utilization(sim.now) == pytest.approx(1.0)

    def test_wait_statistics(self):
        _, bus, _ = self._run_fcfs([4.0, 2.0])
        # Waits: 0 and 4.
        assert bus.wait_stats.mean == pytest.approx(2.0)

    def test_seen_queue_counts_in_service(self):
        _, bus, _ = self._run_fcfs([4.0, 2.0, 3.0])
        # Arrivals see 0, 1 (in service), 2 (one in service + one queued).
        assert bus.seen_queue_stats.mean == pytest.approx(1.0)

    def test_on_complete_called_with_request(self):
        sim = Simulation()
        bus = Bus()
        done = []
        req = BusRequest(cache_id=0,
                         outcome=ReferenceOutcome(kind=RequestKind.BROADCAST),
                         enqueue_time=0.0,
                         on_complete=lambda s, r: done.append((s.now, r)))

        def grant(s, r):
            r.duration = 2.5
            s.schedule(2.5, lambda s2: bus.complete(s2, grant))

        bus.submit(sim, req, grant)
        sim.run()
        assert done and done[0][0] == 2.5 and done[0][1] is req
        assert req.wait == 0.0

    def test_reset_statistics(self):
        sim, bus, _ = self._run_fcfs([4.0])
        bus.reset_statistics(sim.now)
        assert bus.transactions == 0
        assert bus.utilization(sim.now + 10.0) == 0.0


class TestMemoryBank:
    def test_no_contention_no_wait(self):
        bank = MemoryBank(4, 3.0, np.random.default_rng(0))
        assert bank.write(0.0, module=2) == 0.0
        assert bank.busy_until(2) == 3.0

    def test_back_to_back_wait(self):
        bank = MemoryBank(4, 3.0, np.random.default_rng(0))
        bank.write(0.0, module=1)
        assert bank.write(1.0, module=1) == pytest.approx(2.0)
        assert bank.busy_until(1) == pytest.approx(6.0)

    def test_other_module_independent(self):
        bank = MemoryBank(4, 3.0, np.random.default_rng(0))
        bank.write(0.0, module=1)
        assert bank.write(1.0, module=2) == 0.0

    def test_utilization(self):
        bank = MemoryBank(2, 3.0, np.random.default_rng(0))
        bank.write(0.0, module=0)  # busy [0, 3)
        # One of two modules busy 3 of 6 cycles -> mean module util 0.25.
        assert bank.utilization(6.0) == pytest.approx(0.25)

    def test_pick_module_uniform(self):
        bank = MemoryBank(4, 3.0, np.random.default_rng(42))
        picks = [bank.pick_module() for _ in range(4000)]
        for m in range(4):
            assert picks.count(m) / 4000 == pytest.approx(0.25, abs=0.03)

    def test_operation_count_and_reset(self):
        bank = MemoryBank(4, 3.0, np.random.default_rng(0))
        bank.write(0.0)
        bank.write(1.0)
        assert bank.operations == 2
        bank.reset_statistics(5.0)
        assert bank.operations == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryBank(0, 3.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            MemoryBank(4, -1.0, np.random.default_rng(0))


class TestCacheController:
    def test_free_cache_serves_immediately(self):
        cache = CacheController(0)
        completion = cache.try_start_local(5.0)
        assert completion == 6.0
        assert cache.busy_until == 6.0

    def test_snoop_work_blocks_local(self):
        cache = CacheController(0)
        cache.add_snoop_work(0.0, 4.0)
        assert cache.try_start_local(2.0) is None
        assert cache.try_start_local(4.0) == 5.0

    def test_snoop_work_serializes(self):
        cache = CacheController(0)
        cache.add_snoop_work(0.0, 2.0)
        cache.add_snoop_work(1.0, 2.0)  # queued behind the first
        assert cache.busy_until == 4.0
        cache.add_snoop_work(10.0, 1.0)  # idle gap: starts at 10
        assert cache.busy_until == 11.0

    def test_snoop_after_local_start_queues_behind(self):
        cache = CacheController(0)
        cache.try_start_local(0.0)  # busy [0, 1)
        cache.add_snoop_work(0.5, 2.0)
        assert cache.busy_until == 3.0

    def test_pending_tokens(self):
        cache = CacheController(0)
        t1 = cache.begin_local_wait(0.0)
        t2 = cache.begin_local_wait(1.0)
        assert not cache.pending_token_valid(t1)
        assert cache.pending_token_valid(t2)

    def test_interference_wait_recorded(self):
        cache = CacheController(0)
        cache.begin_local_wait(2.0)
        cache.finish_local_wait(5.0)
        assert cache.interference_stats.mean == pytest.approx(3.0)

    def test_negative_snoop_duration_rejected(self):
        with pytest.raises(ValueError):
            CacheController(0).add_snoop_work(0.0, -1.0)

    def test_custom_supply_time(self):
        cache = CacheController(0, supply_time=2.0)
        assert cache.try_start_local(0.0) == 2.0


class TestProcessor:
    def test_cycle_accounting(self):
        proc = Processor(0)
        proc.begin_cycle(0.0, burst=2.5)
        proc.begin_wait()
        assert proc.state is ProcessorState.WAITING
        cycle = proc.complete_cycle(7.0)
        assert cycle == 7.0
        assert proc.cycle_stats.mean == 7.0
        assert proc.requests_completed == 1
        assert proc.busy_cycles == 2.5

    def test_reset(self):
        proc = Processor(0)
        proc.begin_cycle(0.0, 1.0)
        proc.complete_cycle(2.0)
        proc.reset_statistics()
        assert proc.requests_completed == 0
        assert proc.busy_cycles == 0.0
