"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestBrokenPipe:
    def test_broken_pipe_exits_cleanly(self, monkeypatch):
        """Piping CLI output into `head` must not traceback: main()'s
        guard converts BrokenPipeError into a clean exit."""
        import repro.cli as cli

        def boom(args):
            raise BrokenPipeError

        # build_parser() resolves handlers from module globals, so
        # patching before main() builds the parser takes effect.
        monkeypatch.setattr(cli, "_cmd_protocols", boom)
        assert cli.main(["protocols"]) == 0


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.n == [10]
        assert args.sharing == "5"


class TestCommands:
    def test_solve(self, capsys):
        assert main(["solve", "--mods", "1", "-n", "4", "8"]) == 0
        out = capsys.readouterr().out
        assert "WO+1 N=4" in out
        assert "WO+1 N=8" in out

    def test_solve_verbose(self, capsys):
        assert main(["solve", "-n", "6", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "w_mem=" in out
        assert "power=" in out

    def test_solve_named_protocol(self, capsys):
        assert main(["solve", "--protocol", "berkeley", "-n", "4"]) == 0
        assert "Berkeley" in capsys.readouterr().out

    def test_table(self, capsys):
        assert main(["table", "a"]) == 0
        out = capsys.readouterr().out
        assert "Table 4.1(a)" in out
        assert "paper GTPN" in out

    def test_table_all_parts_default(self, capsys):
        assert main(["table"]) == 0
        out = capsys.readouterr().out
        for part in ("(a)", "(b)", "(c)"):
            assert f"Table 4.1{part}" in out

    def test_figure_ascii(self, capsys):
        assert main(["figure"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4.1" in out
        assert "Write-Once (1%)" in out

    def test_figure_csv(self, capsys):
        assert main(["figure", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("series,n_processors,speedup")

    def test_simulate(self, capsys):
        assert main(["simulate", "-n", "2", "--requests", "3000",
                     "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "speedup=" in out

    def test_compare(self, capsys):
        assert main(["compare", "-n", "2", "--requests", "8000"]) == 0
        out = capsys.readouterr().out
        assert "rel err %" in out
        assert "max |rel err|" in out

    def test_protocols(self, capsys):
        assert main(["protocols"]) == 0
        out = capsys.readouterr().out
        for name in ("write-once", "synapse", "illinois", "berkeley",
                     "rwb", "dragon"):
            assert name in out

    def test_bad_sharing_rejected(self):
        with pytest.raises(SystemExit):
            main(["solve", "--sharing", "42"])

    def test_hierarchy(self, capsys):
        assert main(["hierarchy", "--clusters", "1", "4",
                     "--per-cluster", "4"]) == 0
        out = capsys.readouterr().out
        assert "U_global" in out
        assert out.count("\n") >= 3

    def test_estimate(self, capsys):
        assert main(["estimate", "--references", "20000", "--cpus", "2",
                     "-n", "4"]) == 0
        out = capsys.readouterr().out
        assert "references:" in out
        assert "speedup" in out

    def test_table_bad_part(self, capsys):
        assert main(["table", "z"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_grid_csv(self, capsys):
        assert main(["grid", "--protocols", "1", "-n", "2", "4"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("protocol,sharing,n_processors")
        assert "WO+1" in out

    def test_crossmodel(self, capsys):
        assert main(["crossmodel", "-n", "1", "2",
                     "--requests", "8000"]) == 0
        out = capsys.readouterr().out
        assert "GTPN Erlang" in out
        assert "max cross-technique spread" in out

    def test_report(self, capsys):
        assert main(["report", "-n", "2", "--requests", "6000"]) == 0
        out = capsys.readouterr().out
        assert "Reproduction report" in out
        assert "Pooled accuracy" in out
        assert "Table 4.1(c)" in out

    def test_grid_json_to_file(self, tmp_path, capsys):
        target = tmp_path / "grid.json"
        assert main(["grid", "--protocols", "dragon", "-n", "2",
                     "--json", "-o", str(target)]) == 0
        assert "wrote" in capsys.readouterr().out
        import json
        data = json.loads(target.read_text())
        assert data[0]["protocol"] == "Dragon"


class TestGridServiceFlags:
    """--jobs / --cache route the grid through the service executor."""

    BASE = ["grid", "--protocols", "wo", "1", "-n", "2", "4"]

    def test_default_run_has_no_summary_on_stderr(self, capsys):
        assert main(self.BASE) == 0
        captured = capsys.readouterr()
        assert captured.err == ""

    def test_jobs_output_is_byte_identical_to_serial(self, capsys):
        assert main(self.BASE) == 0
        serial = capsys.readouterr().out
        assert main(self.BASE + ["--jobs", "2"]) == 0
        captured = capsys.readouterr()
        assert captured.out == serial
        assert "12 cells" in captured.err  # sweep summary on stderr

    def test_cache_reruns_solve_nothing(self, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        assert main(self.BASE + ["--cache", str(cache)]) == 0
        first = capsys.readouterr()
        assert "12 solved, 0 cached" in first.err
        assert main(self.BASE + ["--cache", str(cache)]) == 0
        second = capsys.readouterr()
        assert "0 solved, 12 cached (100% hit rate)" in second.err
        assert second.out == first.out

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8321
        assert args.jobs == 1
        assert args.cache is None
        assert args.engine == "scalar"
        assert getattr(args, "async") is False
        assert args.coalesce_window_ms == 2.0
        assert args.max_batch == 256
        assert args.no_coalesce is False


class TestEngineFlag:
    """--engine batch must be output-identical to the scalar default."""

    BASE = ["grid", "--protocols", "wo", "1", "-n", "2", "4"]

    def test_grid_batch_output_is_byte_identical(self, capsys):
        assert main(self.BASE) == 0
        scalar = capsys.readouterr().out
        assert main(self.BASE + ["--engine", "batch"]) == 0
        assert capsys.readouterr().out == scalar

    def test_stress_engine_batch(self, capsys):
        assert main(["stress", "-n", "4", "--engine", "batch"]) == 0
        out = capsys.readouterr().out
        assert "isolation invariant: ok" in out
        assert "(batch)" in out

    def test_bad_engine_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(self.BASE + ["--engine", "quantum"])


class TestSweepSubcommand:
    """`repro sweep` rides the sharded queue but must print the same
    bytes as `repro grid` for the same spec."""

    ARGS = ["--protocols", "wo", "1", "-n", "2", "4"]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.n == [1, 2, 4, 8, 16, 32]
        assert args.workers == 1
        assert args.chunk_size is None
        assert args.lease_ttl == 15.0
        assert args.state_dir is None
        assert args.resume is None
        assert args.chaos_kill == 0

    def test_output_matches_grid(self, capsys):
        assert main(["grid"] + self.ARGS) == 0
        grid_out = capsys.readouterr().out
        assert main(["sweep"] + self.ARGS) == 0
        captured = capsys.readouterr()
        assert captured.out == grid_out
        assert "sweep job" in captured.err
        assert "12 cells" in captured.err

    def test_state_dir_resume_serves_from_cache(self, tmp_path, capsys):
        import re

        state = str(tmp_path / "state")
        assert main(["sweep"] + self.ARGS + ["--state-dir", state]) == 0
        first = capsys.readouterr()
        job_id = re.search(r"sweep job (\w+):", first.err).group(1)
        assert main(["sweep", "--state-dir", state,
                     "--resume", job_id]) == 0
        second = capsys.readouterr()
        assert second.out == first.out
        assert "12 from cache" in second.err

    def test_resume_unknown_job_exits_2(self, tmp_path, capsys):
        state = str(tmp_path / "state")
        assert main(["sweep"] + self.ARGS + ["--state-dir", state]) == 0
        capsys.readouterr()
        assert main(["sweep", "--state-dir", state,
                     "--resume", "nope"]) == 2
        assert "unknown sweep job" in capsys.readouterr().err


class TestServeSubcommand:
    def test_serve_answers_solve_and_healthz(self, tmp_path):
        """`repro serve` on an ephemeral port answers POST /v1/solve
        with the same speedup the `solve` subcommand prints."""
        import json
        import os
        import re
        import subprocess
        import sys as _sys
        import urllib.request

        env = dict(os.environ)
        src = str(__import__("pathlib").Path(__file__).resolve()
                  .parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONUNBUFFERED"] = "1"
        process = subprocess.Popen(
            [_sys.executable, "-m", "repro", "serve", "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env)
        try:
            banner = process.stdout.readline()
            match = re.search(r"http://[\d.]+:\d+", banner)
            assert match, f"no listen URL in banner: {banner!r}"
            url = match.group(0)
            with urllib.request.urlopen(url + "/v1/healthz",
                                        timeout=10) as resp:
                assert resp.status == 200
                assert json.loads(resp.read())["status"] == "ok"
            request = urllib.request.Request(
                url + "/v1/solve",
                data=json.dumps({"protocol": "berkeley", "n": 10}).encode(),
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=30) as resp:
                payload = json.loads(resp.read())
            from repro.core.model import CacheMVAModel
            from repro.protocols.family import PROTOCOLS
            from repro.workload.parameters import (
                SharingLevel, appendix_a_workload)
            expected = CacheMVAModel(
                appendix_a_workload(SharingLevel.FIVE_PERCENT),
                PROTOCOLS["berkeley"]).speedup(10)
            assert payload["results"][0]["speedup"] == pytest.approx(expected)
        finally:
            process.terminate()
            process.wait(timeout=10)
