"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestBrokenPipe:
    def test_broken_pipe_exits_cleanly(self, monkeypatch):
        """Piping CLI output into `head` must not traceback: main()'s
        guard converts BrokenPipeError into a clean exit."""
        import repro.cli as cli

        def boom(args):
            raise BrokenPipeError

        # build_parser() resolves handlers from module globals, so
        # patching before main() builds the parser takes effect.
        monkeypatch.setattr(cli, "_cmd_protocols", boom)
        assert cli.main(["protocols"]) == 0


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.n == [10]
        assert args.sharing == "5"


class TestCommands:
    def test_solve(self, capsys):
        assert main(["solve", "--mods", "1", "-n", "4", "8"]) == 0
        out = capsys.readouterr().out
        assert "WO+1 N=4" in out
        assert "WO+1 N=8" in out

    def test_solve_verbose(self, capsys):
        assert main(["solve", "-n", "6", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "w_mem=" in out
        assert "power=" in out

    def test_solve_named_protocol(self, capsys):
        assert main(["solve", "--protocol", "berkeley", "-n", "4"]) == 0
        assert "Berkeley" in capsys.readouterr().out

    def test_table(self, capsys):
        assert main(["table", "a"]) == 0
        out = capsys.readouterr().out
        assert "Table 4.1(a)" in out
        assert "paper GTPN" in out

    def test_table_all_parts_default(self, capsys):
        assert main(["table"]) == 0
        out = capsys.readouterr().out
        for part in ("(a)", "(b)", "(c)"):
            assert f"Table 4.1{part}" in out

    def test_figure_ascii(self, capsys):
        assert main(["figure"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4.1" in out
        assert "Write-Once (1%)" in out

    def test_figure_csv(self, capsys):
        assert main(["figure", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("series,n_processors,speedup")

    def test_simulate(self, capsys):
        assert main(["simulate", "-n", "2", "--requests", "3000",
                     "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "speedup=" in out

    def test_compare(self, capsys):
        assert main(["compare", "-n", "2", "--requests", "8000"]) == 0
        out = capsys.readouterr().out
        assert "rel err %" in out
        assert "max |rel err|" in out

    def test_protocols(self, capsys):
        assert main(["protocols"]) == 0
        out = capsys.readouterr().out
        for name in ("write-once", "synapse", "illinois", "berkeley",
                     "rwb", "dragon"):
            assert name in out

    def test_bad_sharing_rejected(self):
        with pytest.raises(SystemExit):
            main(["solve", "--sharing", "42"])

    def test_hierarchy(self, capsys):
        assert main(["hierarchy", "--clusters", "1", "4",
                     "--per-cluster", "4"]) == 0
        out = capsys.readouterr().out
        assert "U_global" in out
        assert out.count("\n") >= 3

    def test_estimate(self, capsys):
        assert main(["estimate", "--references", "20000", "--cpus", "2",
                     "-n", "4"]) == 0
        out = capsys.readouterr().out
        assert "references:" in out
        assert "speedup" in out

    def test_table_bad_part(self, capsys):
        assert main(["table", "z"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_grid_csv(self, capsys):
        assert main(["grid", "--protocols", "1", "-n", "2", "4"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("protocol,sharing,n_processors")
        assert "WO+1" in out

    def test_crossmodel(self, capsys):
        assert main(["crossmodel", "-n", "1", "2",
                     "--requests", "8000"]) == 0
        out = capsys.readouterr().out
        assert "GTPN Erlang" in out
        assert "max cross-technique spread" in out

    def test_report(self, capsys):
        assert main(["report", "-n", "2", "--requests", "6000"]) == 0
        out = capsys.readouterr().out
        assert "Reproduction report" in out
        assert "Pooled accuracy" in out
        assert "Table 4.1(c)" in out

    def test_grid_json_to_file(self, tmp_path, capsys):
        target = tmp_path / "grid.json"
        assert main(["grid", "--protocols", "dragon", "-n", "2",
                     "--json", "-o", str(target)]) == 0
        assert "wrote" in capsys.readouterr().out
        import json
        data = json.loads(target.read_text())
        assert data[0]["protocol"] == "Dragon"
