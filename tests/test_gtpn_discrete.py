"""Tests for the discrete-time deterministic-firing engine."""

import pytest

from repro.gtpn.discrete import (
    Deterministic,
    DiscreteTimedNet,
    Geometric,
    Immediate,
    discrete_coherence_net,
    solve_discrete,
    solve_discrete_coherence_speedup,
)
from repro.workload.derived import derive_inputs
from repro.workload.parameters import SharingLevel, appendix_a_workload


def _closed_loop(think, serve):
    net = DiscreteTimedNet()
    net.add_place("a", tokens=1)
    net.add_place("b")
    t = net.add_transition("think", think)
    net.connect("a", t)
    net.connect("b", t, out=True)
    s = net.add_transition("serve", serve)
    net.connect("b", s)
    net.connect("a", s, out=True)
    return net


def _integer_workload():
    return appendix_a_workload(SharingLevel.FIVE_PERCENT).replace(
        csupply_sro=0.0, csupply_sw=0.0, wb_csupply=0.0,
        rep_p=0.0, rep_sw=0.0)


class TestDurations:
    def test_validation(self):
        with pytest.raises(ValueError):
            Deterministic(0)
        with pytest.raises(ValueError):
            Geometric(0.0)
        with pytest.raises(ValueError):
            Geometric(1.5)


class TestBuilder:
    def test_duplicate_names(self):
        net = DiscreteTimedNet()
        net.add_place("p")
        with pytest.raises(ValueError):
            net.add_place("p")
        net.add_transition("t", Immediate())
        with pytest.raises(ValueError):
            net.add_transition("t", Immediate())

    def test_bad_params(self):
        net = DiscreteTimedNet()
        with pytest.raises(ValueError):
            net.add_place("p", tokens=-1)
        with pytest.raises(ValueError):
            net.add_transition("t", Immediate(), weight=0.0)
        with pytest.raises(ValueError):
            net.add_transition("t2", Immediate(), servers=0)


class TestOracles:
    def test_deterministic_cycle(self):
        """Think 3 + serve 2 cycles -> exactly 1/5 completions per cycle."""
        sol = solve_discrete(_closed_loop(Deterministic(3), Deterministic(2)))
        assert sol.throughput("serve") == pytest.approx(0.2, abs=1e-12)

    def test_geometric_plus_deterministic_cycle(self):
        """Mean cycle = 1/p + d exactly (renewal reward)."""
        sol = solve_discrete(_closed_loop(Geometric(0.5), Deterministic(2)))
        assert sol.throughput("serve") == pytest.approx(1.0 / (2.0 + 2.0))

    def test_pure_geometric_cycle(self):
        sol = solve_discrete(_closed_loop(Geometric(0.25), Geometric(0.5)))
        assert sol.throughput("serve") == pytest.approx(1.0 / (4.0 + 2.0))

    def test_two_customers_one_server(self):
        """Two deterministic customers pipelining through one server:
        with think 1 and serve 2 the server saturates at 1/2."""
        net = DiscreteTimedNet()
        net.add_place("a", tokens=2)
        net.add_place("b")
        t = net.add_transition("think", Deterministic(1), servers=None)
        net.connect("a", t)
        net.connect("b", t, out=True)
        s = net.add_transition("serve", Deterministic(2), servers=1)
        net.connect("b", s)
        net.connect("a", s, out=True)
        sol = solve_discrete(net)
        assert sol.throughput("serve") == pytest.approx(0.5, abs=1e-9)

    def test_immediate_branch_weights(self):
        """A 3:1 immediate fork routes throughput 75/25."""
        net = DiscreteTimedNet()
        net.add_place("src", tokens=1)
        net.add_place("fork")
        go = net.add_transition("go", Deterministic(2))
        net.connect("src", go)
        net.connect("fork", go, out=True)
        left = net.add_transition("left", Immediate(), weight=3.0)
        net.connect("fork", left)
        net.connect("src", left, out=True)
        right = net.add_transition("right", Immediate(), weight=1.0)
        net.connect("fork", right)
        net.connect("src", right, out=True)
        sol = solve_discrete(net)
        assert sol.throughput("left") == pytest.approx(
            3.0 * sol.throughput("right"), rel=1e-9)

    def test_state_budget(self):
        net = _closed_loop(Deterministic(50), Deterministic(50))
        with pytest.raises(RuntimeError, match="explodes"):
            solve_discrete(net, max_states=10)


class TestDiscreteCoherence:
    def test_rejects_non_integer_times(self):
        inputs = derive_inputs(appendix_a_workload(SharingLevel.FIVE_PERCENT))
        with pytest.raises(ValueError, match="integer bus times"):
            discrete_coherence_net(2, inputs)

    def test_matches_des_closely(self):
        """Deterministic chain vs deterministic-time DES: the two share
        service distributions, so agreement is tighter than either gets
        with the MVA."""
        from repro.sim import SimulationConfig, simulate
        w = _integer_workload()
        inputs = derive_inputs(w)
        for n in (1, 2, 3):
            det, _ = solve_discrete_coherence_speedup(n, inputs)
            sim = simulate(SimulationConfig(
                n_processors=n, workload=w, seed=3,
                warmup_requests=3_000, measured_requests=30_000))
            assert det == pytest.approx(sim.speedup, rel=0.02), n

    def test_beats_exponential_chain_against_des(self):
        """The fidelity ordering: deterministic chain closer to the DES
        than the exponential chain at contention."""
        from repro.gtpn import solve_coherence_speedup
        from repro.sim import SimulationConfig, simulate
        w = _integer_workload()
        inputs = derive_inputs(w)
        n = 3
        det, _ = solve_discrete_coherence_speedup(n, inputs)
        expo = solve_coherence_speedup(n, inputs).speedup
        sim = simulate(SimulationConfig(
            n_processors=n, workload=w, seed=5,
            warmup_requests=3_000, measured_requests=40_000)).speedup
        assert abs(det - sim) < abs(expo - sim)

    def test_clocks_in_state_cost(self):
        """Deterministic timing carries remaining-time in the state, so
        the chain is larger than the memoryless one -- the paper's cost
        story in its purest form."""
        from repro.gtpn import solve_coherence_speedup
        inputs = derive_inputs(_integer_workload())
        _, det_states = solve_discrete_coherence_speedup(3, inputs)
        expo_states = solve_coherence_speedup(3, inputs).n_states
        assert det_states > expo_states
