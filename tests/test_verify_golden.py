"""The golden-corpus regression store (repro.verify.golden).

Pins three properties: the committed corpus matches the code *now*
(the snapshot test CI runs on every push), regeneration is
byte-reproducible (so ``--update-golden`` diffs are reviewable), and
the comparator actually detects every class of drift -- value changes,
missing cells, extra cells, schema bumps, a missing file.
"""

from __future__ import annotations

import json

from repro.verify.golden import (
    CORPUS_SCHEMA_VERSION,
    DEFAULT_CORPUS_PATH,
    GOLDEN_SIZES,
    compare_corpus,
    generate_corpus,
    load_corpus,
    write_corpus,
)
from repro.verify.violations import Severity


def _errors(audit):
    return [v for v in audit.violations if v.severity is Severity.ERROR]


class TestCommittedCorpus:
    def test_corpus_is_committed_as_package_data(self):
        assert DEFAULT_CORPUS_PATH.exists(), (
            "golden corpus missing; run `repro verify --update-golden` "
            "and commit src/repro/verify/golden_corpus.json")

    def test_snapshot_matches_current_code(self):
        """The regression gate: the code's answers today equal the
        reviewed, committed answers (rtol 1e-9)."""
        audit = compare_corpus()
        assert audit.checks > 1000  # 192 cells x 8 measures + coverage
        assert not audit.violations, audit.violations[:5]

    def test_corpus_spans_the_full_family(self):
        corpus = load_corpus()
        cells = corpus["cells"]
        assert len(cells) == 16 * 3 * len(GOLDEN_SIZES)
        assert {c["n"] for c in cells} == set(GOLDEN_SIZES)
        assert len({c["protocol"] for c in cells}) == 16
        assert {c["sharing"] for c in cells} == {"1%", "5%", "20%"}
        assert all(c["converged"] for c in cells)


class TestUpdateWorkflow:
    def test_regeneration_is_byte_identical(self, tmp_path):
        """Two `--update-golden` runs on the same tree produce the
        same bytes -- the corpus is a pure function of the code."""
        a = write_corpus(tmp_path / "a.json")
        b = write_corpus(tmp_path / "b.json")
        assert a.read_bytes() == b.read_bytes()

    def test_regenerated_corpus_matches_committed(self, tmp_path):
        """A fresh regeneration equals the committed file exactly (not
        just within rtol): catching an un-committed corpus update."""
        fresh = write_corpus(tmp_path / "fresh.json")
        assert json.loads(fresh.read_text()) == load_corpus()

    def test_fresh_corpus_compares_clean(self, tmp_path):
        path = write_corpus(tmp_path / "golden.json")
        assert not compare_corpus(path).violations


class TestDriftDetection:
    def _mutated(self, tmp_path, mutate):
        corpus = generate_corpus()
        mutate(corpus)
        path = tmp_path / "golden.json"
        path.write_text(json.dumps(corpus))
        return path

    def test_value_drift(self, tmp_path):
        def bump(corpus):
            corpus["cells"][7]["speedup"] *= 1.0 + 1e-6

        audit = compare_corpus(self._mutated(tmp_path, bump))
        drift = [v for v in _errors(audit) if v.law == "golden-drift"]
        assert len(drift) == 1
        assert drift[0].context["measure"] == "speedup"

    def test_tiny_drift_within_rtol_tolerated(self, tmp_path):
        """1e-12 relative wobble (cross-platform libm territory) must
        not fail the gate."""
        def wobble(corpus):
            corpus["cells"][7]["speedup"] *= 1.0 + 1e-12

        assert not compare_corpus(
            self._mutated(tmp_path, wobble)).violations

    def test_convergence_flag_drift(self, tmp_path):
        def flip(corpus):
            corpus["cells"][0]["converged"] = False

        audit = compare_corpus(self._mutated(tmp_path, flip))
        assert any(v.law == "golden-drift"
                   and v.context.get("measure") == "converged"
                   for v in _errors(audit))

    def test_missing_cell(self, tmp_path):
        def drop(corpus):
            del corpus["cells"][3]

        audit = compare_corpus(self._mutated(tmp_path, drop))
        assert any(v.law == "golden-cell-missing"
                   for v in _errors(audit))

    def test_extra_cell(self, tmp_path):
        def add(corpus):
            ghost = dict(corpus["cells"][0], n=777)
            corpus["cells"].append(ghost)

        audit = compare_corpus(self._mutated(tmp_path, add))
        assert any(v.law == "golden-cell-extra" for v in _errors(audit))

    def test_schema_mismatch(self, tmp_path):
        def bump_schema(corpus):
            corpus["schema_version"] = CORPUS_SCHEMA_VERSION + 1

        audit = compare_corpus(self._mutated(tmp_path, bump_schema))
        assert any(v.law == "golden-schema" for v in _errors(audit))

    def test_missing_file(self, tmp_path):
        audit = compare_corpus(tmp_path / "nope.json")
        assert any(v.law == "golden-missing" for v in _errors(audit))
        assert "--update-golden" in audit.violations[0].message
