"""The differential oracle: cross-engine parity, and proof it can fail.

The acceptance bar for an oracle is not "it passes on main" but "it
fires when an engine is deliberately perturbed".  Each perturbation
here monkeypatches one equation in one engine and asserts the exact
law that must catch it does, with structured output -- then the
unperturbed runs pin the parity claims themselves (scalar-vs-batch at
zero tolerance, MVA-vs-DES inside the EXPERIMENTS.md bands).
"""

from __future__ import annotations

import pytest

from repro.protocols.modifications import ProtocolSpec, all_combinations
from repro.service.executor import CellTask
from repro.verify import TOLERANCES, diff_mva_des, diff_scalar_batch
from repro.verify.violations import Severity
from repro.workload.parameters import SharingLevel, appendix_a_workload


def _tasks(sizes=(1, 4, 16)):
    workload = appendix_a_workload(SharingLevel.FIVE_PERCENT)
    return [CellTask(protocol=spec, sharing_label="5%",
                     workload=workload, n=n)
            for spec in (ProtocolSpec(), ProtocolSpec.of(2, 3))
            for n in sizes]


def _errors(audit):
    return [v for v in audit.violations if v.severity is Severity.ERROR]


class TestScalarVsBatch:
    def test_zero_tolerance_parity_holds(self):
        audit = diff_scalar_batch(_tasks())
        assert audit.checks > len(_tasks())  # several fields per cell
        assert not audit.violations, audit.violations

    def test_all_sixteen_combinations_hold(self):
        workload = appendix_a_workload(SharingLevel.TWENTY_PERCENT)
        tasks = [CellTask(protocol=spec, sharing_label="20%",
                          workload=workload, n=10)
                 for spec in all_combinations()]
        audit = diff_scalar_batch(tasks)
        assert not audit.violations, audit.violations

    def test_perturbed_batch_engine_is_caught(self, monkeypatch):
        """Skew the batch engine's eq-(8) bus-wait probability by one
        part in 1e6; the zero-tolerance oracle must flag every cell
        where the solve actually exercises the bus."""
        from repro.core import batch as batch_mod

        original = batch_mod._p_busy_vec

        def skewed(u, n, multi=None, n_f=None):
            return original(u, n, multi=multi, n_f=n_f) * (1.0 + 1e-6)

        monkeypatch.setattr(batch_mod, "_p_busy_vec", skewed)
        audit = diff_scalar_batch(_tasks(sizes=(4, 16)))
        parity = [v for v in _errors(audit) if v.law == "engine-parity"]
        assert parity, "a perturbed engine must not pass the oracle"
        # The violation is attributable: it names the field and both
        # engines' values.
        assert all(v.context.get("field") for v in parity)
        assert all("scalar" in v.context and "batch" in v.context
                   for v in parity)


class TestMvaVsDes:
    def _task(self, spec=ProtocolSpec.of(1), n=6, requests=4_000):
        return CellTask(
            protocol=spec, sharing_label="5%",
            workload=appendix_a_workload(SharingLevel.FIVE_PERCENT),
            n=n, method="sim", sim_requests=requests, sim_seed=42)

    def test_agreement_within_band(self):
        audit = diff_mva_des(self._task())
        assert not _errors(audit), audit.violations

    def test_sim_stats_audited_in_same_pass(self):
        """diff_mva_des folds the sim-stats laws in, so the check count
        reflects both the parity laws and the DES-internal ones."""
        audit = diff_mva_des(self._task())
        assert audit.checks > 10

    def test_perturbed_mva_equation_is_caught(self, monkeypatch):
        """Inflate the eq-(5) bus waiting time by 50 % inside the
        sweep; the solved speedup leaves the EXPERIMENTS.md agreement
        band (~28 % relative error at N=10) and the differential must
        report it against the DES arbiter."""
        import dataclasses

        from repro.core import equations as eq_mod

        original = eq_mod.EquationSystem.step

        def inflated(self, state):
            new = original(self, state)
            return dataclasses.replace(new, w_bus=new.w_bus * 1.5)

        monkeypatch.setattr(eq_mod.EquationSystem, "step", inflated)
        audit = diff_mva_des(self._task(n=10))
        speedup = [v for v in _errors(audit)
                   if v.law == "mva-des-speedup"]
        assert speedup, "a perturbed MVA must not pass the DES oracle"
        (violation,) = speedup
        assert violation.context["rel_error"] > \
            TOLERANCES["mva-vs-des-speedup"]
        assert violation.context["seed"] == 42

    def test_band_override(self):
        """An impossible band makes even an honest cell fail -- the
        band plumbing is live, not decorative."""
        audit = diff_mva_des(self._task(), speedup_band=1e-9)
        assert any(v.law == "mva-des-speedup" for v in _errors(audit))


class TestDeclaredTolerances:
    def test_scalar_batch_tolerance_is_exactly_zero(self):
        assert TOLERANCES["scalar-vs-batch"] == 0.0

    def test_mva_des_band_matches_experiments(self):
        """EXPERIMENTS.md: worst measured speedup error 5.4 %, band
        6.5 %.  Changing the band is a documented decision, not a
        drive-by edit."""
        assert TOLERANCES["mva-vs-des-speedup"] == pytest.approx(0.065)
