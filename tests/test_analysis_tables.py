"""Tests for table rendering and the experiment registry."""

import pytest

from repro.analysis.experiments import (
    GTPN_SIZES,
    PAPER_SIZES,
    PAPER_TABLE_41,
    TABLE_41_PROTOCOLS,
    max_deviation_from_paper,
    paper_table,
    reproduce_table_41,
)
from repro.analysis.tables import Table, format_table
from repro.workload.parameters import SharingLevel


class TestTable:
    def test_render_alignment(self):
        t = Table(title="T", columns=["a", "bb"])
        t.add_row(1, 2.5)
        t.add_row(10, None)
        text = t.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.500" in text
        assert "--" in text

    def test_row_arity_checked(self):
        t = Table(title="T", columns=["a", "b"])
        with pytest.raises(ValueError, match="cells"):
            t.add_row(1)

    def test_markdown(self):
        t = Table(title="T", columns=["x"])
        t.add_row(3.14159)
        md = t.render_markdown()
        assert md.startswith("**T**")
        assert "| 3.142 |" in md

    def test_csv(self):
        t = Table(title="T", columns=["x", "y"])
        t.add_row("p", 1.0)
        csv = t.render_csv()
        assert csv.splitlines() == ["x,y", "p,1.000"]

    def test_format_table_styles(self):
        rows = [[1, 2.0]]
        assert "1" in format_table("t", ["a", "b"], rows)
        assert format_table("t", ["a", "b"], rows, style="csv").startswith("a,b")
        assert format_table("t", ["a", "b"], rows, style="markdown").startswith("**t**")
        with pytest.raises(ValueError):
            format_table("t", ["a"], [[1]], style="latex")


class TestPaperData:
    def test_all_parts_present(self):
        assert set(PAPER_TABLE_41) == {"a", "b", "c"}
        assert set(TABLE_41_PROTOCOLS) == {"a", "b", "c"}

    def test_rows_aligned_with_sizes(self):
        for part, rows in PAPER_TABLE_41.items():
            assert len(rows) == 6, part  # 3 sharing levels x 2 methods
            for row in rows:
                assert len(row.speedups) == len(PAPER_SIZES)

    def test_gtpn_rows_stop_at_ten(self):
        for rows in PAPER_TABLE_41.values():
            for row in rows:
                if row.method != "GTPN":
                    continue
                for n, value in zip(PAPER_SIZES, row.speedups):
                    if n in GTPN_SIZES:
                        assert value is not None
                    else:
                        assert value is None

    def test_published_mva_gtpn_agreement(self):
        """Sanity on the transcription: the paper itself reports <= ~5 %
        disagreement between its MVA and GTPN."""
        for rows in PAPER_TABLE_41.values():
            by_level = {}
            for row in rows:
                by_level.setdefault(row.sharing, {})[row.method] = row.speedups
            for level, methods in by_level.items():
                for mva, gtpn in zip(methods["MVA"], methods["GTPN"]):
                    if gtpn is None:
                        continue
                    assert abs(mva - gtpn) / gtpn < 0.05


class TestReproduction:
    def test_reproduce_shapes(self):
        results = reproduce_table_41("a")
        assert set(results) == set(SharingLevel)
        for speedups in results.values():
            assert len(speedups) == len(PAPER_SIZES)
            assert speedups == sorted(speedups)  # monotone in N

    def test_sharing_ordering_matches_paper(self):
        """1 % >= 5 % >= 20 % sharing at every size (parts a and b)."""
        for part in ("a", "b"):
            results = reproduce_table_41(part)
            for k in range(len(PAPER_SIZES)):
                assert (results[SharingLevel.ONE_PERCENT][k]
                        >= results[SharingLevel.FIVE_PERCENT][k]
                        >= results[SharingLevel.TWENTY_PERCENT][k]), (part, k)

    def test_part_c_sharing_insensitive(self):
        """Table 4.1(c): the three sharing curves are nearly identical."""
        results = reproduce_table_41("c")
        for k in range(len(PAPER_SIZES)):
            values = [results[level][k] for level in SharingLevel]
            assert max(values) - min(values) < 0.12 * max(values)

    def test_within_ten_percent_of_published_mva(self):
        """Our re-derived inputs track the published MVA within 10 % on
        every cell (see DESIGN.md Section 5 for why not exactly)."""
        for part in ("a", "b", "c"):
            assert max_deviation_from_paper(part) < 0.10, part

    def test_paper_table_render(self):
        table = paper_table("a")
        text = table.render()
        assert "paper MVA" in text
        assert "our MVA" in text
        assert "Write-Once" in table.title

    def test_unknown_part_rejected(self):
        with pytest.raises(ValueError):
            paper_table("d")
