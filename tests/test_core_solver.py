"""Tests for the fixed-point solver."""

import math
from dataclasses import replace

import pytest

from repro.core.equations import EquationSystem
from repro.core.solver import (
    DEFAULT_DAMPING_LADDER,
    FixedPointSolver,
    SolverError,
    estimate_contraction_rate,
)
from repro.workload.derived import derive_inputs
from repro.workload.parameters import SharingLevel, appendix_a_workload


class OscillatingSystem:
    """A synthetic iteration map that diverges undamped.

    ``w_bus`` follows x -> c - k*x with k > 1: the fixed point
    c / (1 + k) repels plain successive substitution (|derivative| > 1)
    but any damping factor d with d < 2 / (1 + k) turns the damped map
    into a contraction -- exactly the regime the recovery ladder is
    for.
    """

    def __init__(self, c=2.4, k=1.4):
        self.c = c
        self.k = k

    @property
    def fixed_point(self):
        return self.c / (1.0 + self.k)

    def step(self, state):
        return replace(state, w_bus=self.c - self.k * state.w_bus)

    def damped(self, previous, proposed, factor):
        if factor >= 1.0:
            return proposed
        return replace(proposed, w_bus=previous.w_bus
                       + factor * (proposed.w_bus - previous.w_bus))


@pytest.fixture
def system_10(workload_5pct):
    return EquationSystem(derive_inputs(workload_5pct), n_processors=10)


class TestConvergence:
    def test_converges_from_cold_start(self, system_10):
        state, diag = FixedPointSolver().solve(system_10)
        assert diag.converged
        assert diag.final_residual < 1e-9
        assert state.response is not None

    def test_fixed_point_is_self_consistent(self, system_10):
        """Applying one more sweep must not move the solution."""
        state, _ = FixedPointSolver().solve(system_10)
        again = system_10.step(state)
        assert state.distance(again) < 1e-7

    def test_paper_iteration_claim(self):
        """Section 3.2: 'converged within 15 iterations in all experiments
        reported in this paper' -- checked at the paper's own tolerance
        scale (3 significant digits) over all its parameter points."""
        solver = FixedPointSolver(tolerance=1e-3)
        for level in SharingLevel:
            inputs = derive_inputs(appendix_a_workload(level))
            for n in (1, 2, 4, 6, 8, 10, 15, 20, 100):
                _, diag = solver.solve(EquationSystem(inputs, n))
                assert diag.converged
                assert diag.iterations <= 15, (level, n, diag.iterations)

    def test_iterations_do_not_grow_with_system_size(self, workload_5pct):
        """Section 3.2: solution effort independent of N."""
        inputs = derive_inputs(workload_5pct)
        iters = {}
        for n in (10, 100, 1000, 10000):
            _, diag = FixedPointSolver().solve(EquationSystem(inputs, n))
            iters[n] = diag.iterations
        assert max(iters.values()) <= 3 * min(iters.values())

    def test_trace_monotone_r_growth(self, system_10):
        """R grows from the cold start towards the fixed point."""
        _, diag = FixedPointSolver().solve(system_10)
        trace = diag.trace
        assert len(trace) == diag.iterations
        assert trace[0] <= trace[-1] + 1e-9

    def test_damped_solution_matches_undamped(self, system_10):
        plain, _ = FixedPointSolver().solve(system_10)
        damped, _ = FixedPointSolver(damping=0.5).solve(system_10)
        assert plain.distance(damped) < 1e-6

    def test_warm_start_converges_fast(self, system_10):
        state, _ = FixedPointSolver().solve(system_10)
        _, diag = FixedPointSolver().solve(system_10, initial=state)
        assert diag.iterations <= 2


class TestFailureModes:
    def test_iteration_cap_raises(self, system_10):
        solver = FixedPointSolver(tolerance=1e-30, max_iterations=3)
        with pytest.raises(SolverError, match="fixed point not reached"):
            solver.solve(system_10)

    def test_iteration_cap_soft_mode(self, system_10):
        solver = FixedPointSolver(tolerance=1e-30, max_iterations=3,
                                  raise_on_divergence=False)
        state, diag = solver.solve(system_10)
        assert not diag.converged
        assert diag.iterations == 3
        assert state.response is not None

    def test_invalid_options_rejected(self):
        with pytest.raises(ValueError):
            FixedPointSolver(tolerance=0.0)
        with pytest.raises(ValueError):
            FixedPointSolver(max_iterations=0)
        with pytest.raises(ValueError):
            FixedPointSolver(damping=0.0)
        with pytest.raises(ValueError):
            FixedPointSolver(damping=1.5)


class TestRecoveryLadder:
    def test_plain_solve_matches_recovery_on_healthy_system(self, system_10):
        plain_state, plain_diag = FixedPointSolver().solve(system_10)
        state, diag = FixedPointSolver().solve_with_recovery(system_10)
        assert state.distance(plain_state) == 0.0
        assert diag.converged
        assert not diag.recovered
        assert diag.ladder == (1.0,)
        assert diag.warnings == ()
        assert diag.iterations == plain_diag.iterations

    def test_divergent_map_is_rescued_by_damping(self):
        system = OscillatingSystem()
        solver = FixedPointSolver(tolerance=1e-9, max_iterations=60)
        with pytest.raises(SolverError):
            solver.solve(system)
        state, diag = solver.solve_with_recovery(system)
        assert diag.converged
        assert diag.recovered
        assert diag.damping < 1.0
        assert diag.ladder[0] == 1.0
        assert state.w_bus == pytest.approx(system.fixed_point, abs=1e-6)
        assert any(w.code == "damping-recovery" for w in diag.warnings)

    def test_warm_start_accumulates_across_rungs(self, system_10):
        """A too-tight iteration cap fails at damping 1.0 but the
        warm-started second rung finishes the job -- the ladder never
        throws away partial progress."""
        solver = FixedPointSolver(tolerance=1e-3, max_iterations=10)
        with pytest.raises(SolverError):
            solver.solve(system_10)
        state, diag = solver.solve_with_recovery(system_10)
        assert diag.converged and diag.recovered
        assert diag.ladder == (1.0, 0.5)
        # the failed first rung's sweeps are part of the total
        assert 10 < diag.iterations <= 20
        reference, _ = FixedPointSolver().solve(system_10)
        assert state.distance(reference) < 1e-2

    def test_unrecoverable_system_raises_with_full_ladder(self, system_10):
        solver = FixedPointSolver(tolerance=1e-30, max_iterations=3)
        with pytest.raises(SolverError) as excinfo:
            solver.solve_with_recovery(system_10)
        diag = excinfo.value.diagnostics
        assert diag is not None
        assert diag.ladder == DEFAULT_DAMPING_LADDER
        assert not diag.converged
        assert diag.iterations == 3 * len(DEFAULT_DAMPING_LADDER)
        assert len(diag.warnings) == 1

    def test_unrecoverable_soft_mode_returns_warning(self, system_10):
        solver = FixedPointSolver(tolerance=1e-30, max_iterations=3,
                                  raise_on_divergence=False)
        state, diag = solver.solve_with_recovery(system_10)
        assert not diag.converged
        assert state.response is not None
        assert diag.warnings[0].code in ("not-converged", "saturation-knee")

    def test_saturation_knee_is_a_warning_not_a_crash(self):
        """A contraction rate pushed towards 1 surfaces as a structured
        saturation-knee warning on an otherwise converged solve."""
        system = OscillatingSystem(c=2.0, k=0.999)  # rate ~ 0.999
        state, diag = FixedPointSolver(
            tolerance=1e-12, max_iterations=50000).solve_with_recovery(system)
        assert diag.converged
        knee = [w for w in diag.warnings if w.code == "saturation-knee"]
        assert knee
        assert knee[0].contraction_rate == pytest.approx(0.999, abs=5e-3)

    def test_damped_solver_starts_its_ladder_below_one(self, system_10):
        solver = FixedPointSolver(tolerance=1e-30, max_iterations=2,
                                  damping=0.5, raise_on_divergence=False)
        _, diag = solver.solve_with_recovery(system_10)
        assert diag.ladder == (0.5, 0.25, 0.1)

    def test_contraction_rate_estimator(self):
        geometric = [0.5 ** i for i in range(10)]
        assert estimate_contraction_rate(geometric) == pytest.approx(0.5)
        assert estimate_contraction_rate([]) == 0.0
        assert estimate_contraction_rate([1e-16, 1e-16]) == 0.0

    def test_plain_solve_records_residual_trace(self, system_10):
        _, diag = FixedPointSolver().solve(system_10)
        assert len(diag.residual_trace) == diag.iterations
        assert diag.residual_trace[-1] == diag.final_residual


class TestExtremeInputs:
    """The solver must stay finite even where the model is stressed."""

    def test_zero_think_time_saturates_but_converges(self, workload_5pct):
        inputs = derive_inputs(workload_5pct.replace(tau=0.0))
        state, diag = FixedPointSolver().solve(EquationSystem(inputs, 20))
        assert diag.converged
        assert math.isfinite(state.cycle_time)
        assert state.cycle_time > 0.0

    def test_miss_storm_converges(self, workload_5pct):
        w = workload_5pct.replace(h_private=0.0, h_sro=0.0, h_sw=0.0)
        state, diag = FixedPointSolver().solve(
            EquationSystem(derive_inputs(w), 50))
        assert diag.converged
        # Nearly every reference queues for the bus: R ~ N * t_read.
        assert state.u_bus > 0.9

    def test_huge_system_converges(self, workload_5pct):
        inputs = derive_inputs(workload_5pct)
        state, diag = FixedPointSolver().solve(EquationSystem(inputs, 100000))
        assert diag.converged
        assert state.u_bus == pytest.approx(1.0, abs=0.01)
