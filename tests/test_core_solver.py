"""Tests for the fixed-point solver."""

import math

import pytest

from repro.core.equations import EquationSystem, ModelState
from repro.core.solver import FixedPointSolver, SolverError
from repro.workload.derived import derive_inputs
from repro.workload.parameters import SharingLevel, appendix_a_workload


@pytest.fixture
def system_10(workload_5pct):
    return EquationSystem(derive_inputs(workload_5pct), n_processors=10)


class TestConvergence:
    def test_converges_from_cold_start(self, system_10):
        state, diag = FixedPointSolver().solve(system_10)
        assert diag.converged
        assert diag.final_residual < 1e-9
        assert state.response is not None

    def test_fixed_point_is_self_consistent(self, system_10):
        """Applying one more sweep must not move the solution."""
        state, _ = FixedPointSolver().solve(system_10)
        again = system_10.step(state)
        assert state.distance(again) < 1e-7

    def test_paper_iteration_claim(self):
        """Section 3.2: 'converged within 15 iterations in all experiments
        reported in this paper' -- checked at the paper's own tolerance
        scale (3 significant digits) over all its parameter points."""
        solver = FixedPointSolver(tolerance=1e-3)
        for level in SharingLevel:
            inputs = derive_inputs(appendix_a_workload(level))
            for n in (1, 2, 4, 6, 8, 10, 15, 20, 100):
                _, diag = solver.solve(EquationSystem(inputs, n))
                assert diag.converged
                assert diag.iterations <= 15, (level, n, diag.iterations)

    def test_iterations_do_not_grow_with_system_size(self, workload_5pct):
        """Section 3.2: solution effort independent of N."""
        inputs = derive_inputs(workload_5pct)
        iters = {}
        for n in (10, 100, 1000, 10000):
            _, diag = FixedPointSolver().solve(EquationSystem(inputs, n))
            iters[n] = diag.iterations
        assert max(iters.values()) <= 3 * min(iters.values())

    def test_trace_monotone_r_growth(self, system_10):
        """R grows from the cold start towards the fixed point."""
        _, diag = FixedPointSolver().solve(system_10)
        trace = diag.trace
        assert len(trace) == diag.iterations
        assert trace[0] <= trace[-1] + 1e-9

    def test_damped_solution_matches_undamped(self, system_10):
        plain, _ = FixedPointSolver().solve(system_10)
        damped, _ = FixedPointSolver(damping=0.5).solve(system_10)
        assert plain.distance(damped) < 1e-6

    def test_warm_start_converges_fast(self, system_10):
        state, _ = FixedPointSolver().solve(system_10)
        _, diag = FixedPointSolver().solve(system_10, initial=state)
        assert diag.iterations <= 2


class TestFailureModes:
    def test_iteration_cap_raises(self, system_10):
        solver = FixedPointSolver(tolerance=1e-30, max_iterations=3)
        with pytest.raises(SolverError, match="fixed point not reached"):
            solver.solve(system_10)

    def test_iteration_cap_soft_mode(self, system_10):
        solver = FixedPointSolver(tolerance=1e-30, max_iterations=3,
                                  raise_on_divergence=False)
        state, diag = solver.solve(system_10)
        assert not diag.converged
        assert diag.iterations == 3
        assert state.response is not None

    def test_invalid_options_rejected(self):
        with pytest.raises(ValueError):
            FixedPointSolver(tolerance=0.0)
        with pytest.raises(ValueError):
            FixedPointSolver(max_iterations=0)
        with pytest.raises(ValueError):
            FixedPointSolver(damping=0.0)
        with pytest.raises(ValueError):
            FixedPointSolver(damping=1.5)


class TestExtremeInputs:
    """The solver must stay finite even where the model is stressed."""

    def test_zero_think_time_saturates_but_converges(self, workload_5pct):
        inputs = derive_inputs(workload_5pct.replace(tau=0.0))
        state, diag = FixedPointSolver().solve(EquationSystem(inputs, 20))
        assert diag.converged
        assert math.isfinite(state.cycle_time)
        assert state.cycle_time > 0.0

    def test_miss_storm_converges(self, workload_5pct):
        w = workload_5pct.replace(h_private=0.0, h_sro=0.0, h_sw=0.0)
        state, diag = FixedPointSolver().solve(
            EquationSystem(derive_inputs(w), 50))
        assert diag.converged
        # Nearly every reference queues for the bus: R ~ N * t_read.
        assert state.u_bus > 0.9

    def test_huge_system_converges(self, workload_5pct):
        inputs = derive_inputs(workload_5pct)
        state, diag = FixedPointSolver().solve(EquationSystem(inputs, 100000))
        assert diag.converged
        assert state.u_bus == pytest.approx(1.0, abs=0.01)
