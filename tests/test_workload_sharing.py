"""Tests for the N-dependent sharing refinement (paper's future work)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import CacheMVAModel
from repro.core.scaled import ScaledSharingMVAModel
from repro.protocols.modifications import ProtocolSpec
from repro.workload.derived import derive_inputs
from repro.workload.parameters import SharingLevel, appendix_a_workload
from repro.workload.sharing import (
    SharingScalingModel,
    csupply_from_residency,
    residency_from_csupply,
)


class TestResidencyMath:
    def test_single_processor_never_supplied(self):
        assert csupply_from_residency(0.8, 1) == 0.0

    def test_two_processors_equals_q(self):
        assert csupply_from_residency(0.3, 2) == pytest.approx(0.3)

    def test_monotone_in_n(self):
        values = [csupply_from_residency(0.2, n) for n in (2, 4, 8, 16, 64)]
        assert values == sorted(values)
        assert values[-1] > 0.99

    @given(st.floats(min_value=1e-4, max_value=0.9999),
           st.integers(min_value=2, max_value=100))
    @settings(max_examples=100)
    def test_inverse_roundtrip(self, csupply, n):
        q = residency_from_csupply(csupply, n)
        assert csupply_from_residency(q, n) == pytest.approx(csupply, rel=1e-9)

    def test_certain_supply(self):
        assert residency_from_csupply(1.0, 10) == 1.0
        assert csupply_from_residency(1.0, 2) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            csupply_from_residency(1.5, 4)
        with pytest.raises(ValueError):
            csupply_from_residency(0.5, 0)
        with pytest.raises(ValueError):
            residency_from_csupply(0.5, 1)
        with pytest.raises(ValueError):
            residency_from_csupply(-0.1, 4)


class TestSharingScalingModel:
    def test_calibration_is_fixed_point(self, workload_5pct):
        model = SharingScalingModel.calibrated(workload_5pct,
                                               reference_size=10)
        assert model.csupply_sro(10) == pytest.approx(
            workload_5pct.csupply_sro)
        assert model.csupply_sw(10) == pytest.approx(workload_5pct.csupply_sw)

    def test_scale_replaces_only_csupply(self, workload_5pct):
        model = SharingScalingModel.calibrated(workload_5pct)
        scaled = model.scale(workload_5pct, 4)
        assert scaled.csupply_sro < workload_5pct.csupply_sro
        assert scaled.csupply_sw < workload_5pct.csupply_sw
        assert scaled.h_private == workload_5pct.h_private
        assert scaled.tau == workload_5pct.tau

    def test_holder_probability_weighted_by_miss_mix(self, workload_5pct):
        model = SharingScalingModel(q_sro=0.4, q_sw=0.1)
        hp = model.holder_probability(workload_5pct)
        sro_miss = 0.03 * 0.05
        sw_miss = 0.02 * 0.5
        expected = (0.4 * sro_miss + 0.1 * sw_miss) / (sro_miss + sw_miss)
        assert hp == pytest.approx(expected)
        assert 0.1 < hp < 0.4

    def test_holder_probability_no_shared_traffic(self):
        w = appendix_a_workload(SharingLevel.ONE_PERCENT).replace(
            p_private=0.99, p_sro=0.01, p_sw=0.0, h_sro=1.0)
        model = SharingScalingModel(q_sro=0.4, q_sw=0.1)
        assert model.holder_probability(w) == 0.0

    def test_expected_holders(self, workload_5pct):
        model = SharingScalingModel(q_sro=0.5, q_sw=0.5)
        assert model.expected_holders(11, workload_5pct) == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SharingScalingModel(q_sro=1.2, q_sw=0.5)


class TestDerivedInputsHolderProbability:
    def test_default_matches_paper(self, workload_5pct):
        default = derive_inputs(workload_5pct)
        explicit = derive_inputs(workload_5pct, holder_probability=0.5)
        assert default.cache_interference(8) == explicit.cache_interference(8)

    def test_lower_holder_probability_less_interference(self, workload_5pct):
        low = derive_inputs(workload_5pct, holder_probability=0.1)
        high = derive_inputs(workload_5pct, holder_probability=0.9)
        assert low.cache_interference(8).p < high.cache_interference(8).p

    def test_bounds_checked(self, workload_5pct):
        with pytest.raises(ValueError, match="holder_probability"):
            derive_inputs(workload_5pct, holder_probability=1.5)

    def test_zero_holder_probability(self, workload_5pct):
        inputs = derive_inputs(workload_5pct, holder_probability=0.0)
        ci = inputs.cache_interference(8)
        assert ci.p == 0.0
        assert ci.n_interference(3.0) == 0.0


class TestScaledSharingMVAModel:
    def test_agrees_with_fixed_model_at_reference(self, workload_5pct):
        """At the calibration size the refinement must reproduce...
        well, everything except the interference holder probability, so
        speedups agree to within a fraction of a percent."""
        fixed = CacheMVAModel(workload_5pct)
        scaled = ScaledSharingMVAModel(workload_5pct, reference_size=10)
        assert scaled.speedup(10) == pytest.approx(fixed.speedup(10),
                                                   rel=0.01)

    def test_small_systems_look_better_under_scaling(self, workload_5pct):
        """Below the reference size the paper's fixed csupply over-states
        supplier write-back traffic, so the scaled model predicts more
        speedup."""
        fixed = CacheMVAModel(workload_5pct)
        scaled = ScaledSharingMVAModel(workload_5pct, reference_size=10)
        assert scaled.speedup(2) > fixed.speedup(2)

    def test_respects_protocol_overrides(self, workload_5pct):
        scaled = ScaledSharingMVAModel(workload_5pct, ProtocolSpec.of(1))
        assert scaled.workload.rep_p == 0.3

    def test_protocol_ordering_preserved(self, workload_5pct):
        """The refinement must not change the paper's conclusions."""
        speeds = {}
        for mods in [(), (1,), (1, 4)]:
            model = ScaledSharingMVAModel(workload_5pct,
                                          ProtocolSpec.of(*mods))
            speeds[mods] = model.speedup(20)
        assert speeds[()] < speeds[(1,)] < speeds[(1, 4)]

    def test_converges_over_wide_range(self, workload_20pct):
        model = ScaledSharingMVAModel(workload_20pct)
        for n in (1, 2, 10, 100, 1000):
            report = model.solve(n)
            assert report.converged
            assert math.isfinite(report.speedup)

    def test_custom_scaling_accepted(self, workload_5pct):
        scaling = SharingScalingModel(q_sro=0.05, q_sw=0.05)
        model = ScaledSharingMVAModel(workload_5pct, scaling=scaling)
        # Very low residency: shared misses rarely supplied, csupply
        # tiny at N=2.
        scaled_workload = scaling.scale(workload_5pct, 2)
        assert scaled_workload.csupply_sro == pytest.approx(0.05)
        assert model.solve(2).converged
