"""Unit and property tests for repro.workload.derived."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.derived import (
    ReferenceMix,
    ReplacementWeighting,
    derive_inputs,
)
from repro.workload.parameters import (
    ArchitectureParams,
    SharingLevel,
    WorkloadParameters,
    appendix_a_workload,
)


def workloads() -> st.SearchStrategy[WorkloadParameters]:
    """Random valid workloads (stream mix normalized)."""
    prob = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)

    @st.composite
    def build(draw):
        a, b, c = draw(st.tuples(
            st.floats(min_value=1e-3, max_value=1.0),
            st.floats(min_value=0.0, max_value=1.0),
            st.floats(min_value=0.0, max_value=1.0),
        ))
        total = a + b + c
        return WorkloadParameters(
            tau=draw(st.floats(min_value=0.0, max_value=50.0)),
            p_private=a / total, p_sro=b / total, p_sw=c / total,
            h_private=draw(prob), h_sro=draw(prob), h_sw=draw(prob),
            r_private=draw(prob), r_sw=draw(prob),
            amod_private=draw(prob), amod_sw=draw(prob),
            csupply_sro=draw(prob), csupply_sw=draw(prob),
            wb_csupply=draw(prob), rep_p=draw(prob), rep_sw=draw(prob),
        )

    return build()


MOD_SETS = st.sets(st.integers(min_value=1, max_value=4), max_size=4)


class TestReferenceMix:
    def test_classes_sum_to_one(self, workload_5pct):
        mix = ReferenceMix.from_workload(workload_5pct)
        assert math.isclose(mix.total, 1.0, abs_tol=1e-12)

    @given(workloads())
    @settings(max_examples=50)
    def test_classes_sum_to_one_property(self, w):
        assert math.isclose(ReferenceMix.from_workload(w).total, 1.0, abs_tol=1e-9)

    @given(workloads(), MOD_SETS)
    @settings(max_examples=100)
    def test_routing_partitions_unity(self, w, mods):
        mix = ReferenceMix.from_workload(w)
        total = mix.p_local(mods) + mix.p_broadcast(mods) + mix.p_remote_read(mods)
        assert math.isclose(total, 1.0, abs_tol=1e-9)

    def test_known_values_5pct(self, workload_5pct):
        mix = ReferenceMix.from_workload(workload_5pct)
        # Hand-computed from Appendix A at 5 % sharing.
        assert math.isclose(mix.prm, 0.95 * 0.7 * 0.05)
        assert math.isclose(mix.pwh_unmod, 0.95 * 0.3 * 0.95 * 0.3)
        assert math.isclose(mix.swm, 0.02 * 0.5 * 0.5)
        assert math.isclose(mix.p_remote_read(()), 0.059)
        assert math.isclose(mix.p_broadcast(()), 0.084725)

    def test_mod1_moves_private_write_hits_to_local(self, workload_5pct):
        """Section 3.3: 'the calculation of p_broadcast no longer includes
        a term for write hits to private blocks. This term is instead
        added to p_local.'"""
        mix = ReferenceMix.from_workload(workload_5pct)
        delta_bc = mix.p_broadcast(()) - mix.p_broadcast({1})
        delta_local = mix.p_local({1}) - mix.p_local(())
        assert math.isclose(delta_bc, mix.pwh_unmod)
        assert math.isclose(delta_local, mix.pwh_unmod)

    def test_mod4_broadcasts_all_sw_write_hits(self, workload_5pct):
        mix = ReferenceMix.from_workload(workload_5pct)
        assert math.isclose(
            mix.p_broadcast({4}) - mix.p_broadcast(()), mix.swh_mod)

    def test_sw_broadcast_excludes_private(self, workload_5pct):
        mix = ReferenceMix.from_workload(workload_5pct)
        assert math.isclose(mix.sw_broadcast(()), mix.swh_unmod)
        assert mix.sw_broadcast(()) < mix.p_broadcast(())

    def test_invalid_mod_rejected(self, workload_5pct):
        mix = ReferenceMix.from_workload(workload_5pct)
        with pytest.raises(ValueError, match="subset"):
            mix.p_local({5})

    def test_one_percent_sharing_has_no_sw_traffic(self, workload_1pct):
        mix = ReferenceMix.from_workload(workload_1pct)
        assert mix.sw_miss == 0.0
        assert mix.sw_broadcast(()) == 0.0


class TestDerivedInputs:
    def test_routing_matches_mix(self, workload_5pct):
        inputs = derive_inputs(workload_5pct)
        mix = ReferenceMix.from_workload(workload_5pct)
        assert inputs.p_local == mix.p_local(frozenset())
        assert inputs.p_bc == mix.p_broadcast(frozenset())
        assert inputs.p_rr == mix.p_remote_read(frozenset())

    def test_t_read_write_once_decomposition(self, workload_5pct):
        inputs = derive_inputs(workload_5pct)
        arch = ArchitectureParams()
        expected = (arch.base_read_cycles
                    + inputs.p_csupwb_rr * 4.0
                    + inputs.p_reqwb_rr * 4.0)
        assert math.isclose(inputs.t_read, expected)
        assert inputs.t_read > arch.base_read_cycles

    def test_reqwb_reference_mix_weighting(self, workload_5pct):
        inputs = derive_inputs(workload_5pct)
        expected = 0.2 * 0.95 + 0.5 * 0.02
        assert math.isclose(inputs.p_reqwb_rr, expected)

    def test_reqwb_miss_class_weighting_differs(self, workload_5pct):
        ref = derive_inputs(workload_5pct)
        alt = derive_inputs(
            workload_5pct,
            replacement_weighting=ReplacementWeighting.MISS_CLASS)
        assert not math.isclose(ref.p_reqwb_rr, alt.p_reqwb_rr)
        # sw misses are over-represented relative to the reference mix
        # (h_sw = 0.5 << h_private), so the miss-class weighting is larger.
        assert alt.p_reqwb_rr > ref.p_reqwb_rr

    def test_mod2_removes_supplier_writeback(self, workload_5pct):
        base = derive_inputs(workload_5pct)
        mod2 = derive_inputs(workload_5pct, mods={2})
        assert base.p_csupwb_rr > 0.0
        assert mod2.p_csupwb_rr == 0.0
        # Cache-to-cache supply is faster than flush-then-memory-read.
        assert mod2.t_read < base.t_read

    def test_mod3_stops_memory_updates_on_broadcast(self, workload_5pct):
        base = derive_inputs(workload_5pct)
        mod3 = derive_inputs(workload_5pct, mods={3})
        assert base.bc_updates_memory
        assert not mod3.bc_updates_memory
        assert mod3.memory_ops_per_request() < base.memory_ops_per_request()

    def test_mod3_uses_invalidate_cycles(self, workload_5pct):
        arch = ArchitectureParams(write_word_cycles=2.0, invalidate_cycles=1.0)
        base = derive_inputs(workload_5pct, arch)
        mod3 = derive_inputs(workload_5pct, arch, mods={3})
        assert base.t_bc == 2.0
        assert mod3.t_bc == 1.0

    def test_memory_ops_components(self, workload_5pct):
        inputs = derive_inputs(workload_5pct)
        expected = inputs.p_bc + inputs.p_rr * (
            inputs.p_csupwb_rr + inputs.p_reqwb_rr)
        assert math.isclose(inputs.memory_ops_per_request(), expected)

    @given(workloads(), MOD_SETS)
    @settings(max_examples=100)
    def test_derived_quantities_in_range(self, w, mods):
        inputs = derive_inputs(w, mods=mods)
        assert 0.0 <= inputs.p_local <= 1.0
        assert 0.0 <= inputs.p_bc <= 1.0
        assert 0.0 <= inputs.p_rr <= 1.0
        assert math.isclose(inputs.p_local + inputs.p_bc + inputs.p_rr, 1.0,
                            abs_tol=1e-9)
        assert inputs.t_read >= 0.0
        assert 0.0 <= inputs.p_csupwb_rr <= 1.0
        assert 0.0 <= inputs.p_reqwb_rr <= 1.0
        assert inputs.memory_ops_per_request() >= 0.0


class TestCacheInterference:
    def test_single_processor_has_no_interference(self, workload_5pct):
        ci = derive_inputs(workload_5pct).cache_interference(1)
        assert ci.p == ci.p_prime == 0.0
        assert ci.n_interference(5.0) == 0.0

    def test_p_prime_never_exceeds_p(self, workload_5pct):
        for n in (2, 4, 10, 100):
            ci = derive_inputs(workload_5pct).cache_interference(n)
            assert 0.0 <= ci.p_prime <= ci.p <= 1.0

    @given(workloads(), MOD_SETS, st.integers(min_value=2, max_value=64))
    @settings(max_examples=100)
    def test_interference_probabilities_valid(self, w, mods, n):
        ci = derive_inputs(w, mods=mods).cache_interference(n)
        assert 0.0 <= ci.p_prime <= ci.p <= 1.0
        assert ci.t_interference >= 1.0

    def test_n_interference_closed_form(self, workload_5pct):
        """Equation 13 equals its geometric-series definition."""
        ci = derive_inputs(workload_5pct).cache_interference(8)
        q = 3.0
        expected = ci.p * (1.0 - ci.p_prime ** q) / (1.0 - ci.p_prime)
        assert math.isclose(ci.n_interference(q), expected)

    def test_n_interference_monotone_in_queue(self, workload_5pct):
        ci = derive_inputs(workload_5pct).cache_interference(8)
        values = [ci.n_interference(q) for q in (0.0, 0.5, 1.0, 2.0, 5.0)]
        assert values == sorted(values)
        assert values[0] == 0.0

    def test_interference_grows_with_sharing(self):
        """More shared traffic -> more snoop work for other caches."""
        p_by_level = []
        for level in SharingLevel:
            inputs = derive_inputs(appendix_a_workload(level))
            p_by_level.append(inputs.cache_interference(10).p)
        assert p_by_level[0] < p_by_level[1] < p_by_level[2]

    def test_mod2_shrinks_interference_time(self, workload_5pct):
        """Section 3.3: modification 2 drops the cache-supply write-back
        term from t_interference."""
        base = derive_inputs(workload_5pct).cache_interference(10)
        mod2 = derive_inputs(workload_5pct, mods={2}).cache_interference(10)
        assert mod2.t_interference < base.t_interference

    def test_no_bus_ops_means_no_interference(self):
        w = WorkloadParameters(
            p_private=1.0, p_sro=0.0, p_sw=0.0,
            h_private=1.0, r_private=1.0)
        ci = derive_inputs(w).cache_interference(10)
        assert ci.p == 0.0
