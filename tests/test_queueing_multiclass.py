"""Tests for multi-class MVA (exact and Schweitzer)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing import (
    CustomerClass,
    approximate_mva_multiclass,
    delay,
    exact_mva,
    exact_mva_multiclass,
    queueing,
)


class TestValidation:
    def test_needs_centers_and_classes(self):
        with pytest.raises(ValueError):
            exact_mva_multiclass([], [CustomerClass("a", 1)])
        with pytest.raises(ValueError):
            exact_mva_multiclass([queueing("q", 1.0)], [])

    def test_unknown_center_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            exact_mva_multiclass(
                [queueing("q", 1.0)],
                [CustomerClass("a", 1, {"nope": 1.0})])

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError, match="negative demand"):
            CustomerClass("a", 1, {"q": -1.0})

    def test_duplicate_class_names(self):
        with pytest.raises(ValueError, match="duplicate class"):
            exact_mva_multiclass(
                [queueing("q", 1.0)],
                [CustomerClass("a", 1, {"q": 1.0}),
                 CustomerClass("a", 1, {"q": 1.0})])


class TestSingleClassEquivalence:
    @given(st.integers(min_value=1, max_value=15),
           st.floats(min_value=0.1, max_value=10.0),
           st.floats(min_value=0.05, max_value=5.0))
    @settings(max_examples=60, deadline=None)
    def test_reduces_to_single_class_mva(self, n, z, d):
        centers = [delay("think", z), queueing("bus", d)]
        single = exact_mva(centers, n)
        multi = exact_mva_multiclass(
            centers, [CustomerClass("only", n, {"think": z, "bus": d})])
        assert multi.throughput("only") == pytest.approx(single.throughput,
                                                         rel=1e-9)
        assert multi.queue_lengths["bus"] == pytest.approx(
            single.queue_lengths["bus"], rel=1e-9)


class TestTwoClasses:
    def _system(self):
        centers = [delay("think", 0.0), queueing("cpu", 1.0),
                   queueing("disk", 1.0)]
        classes = [
            CustomerClass("cpu-bound", 2, {"think": 5.0, "cpu": 2.0,
                                           "disk": 0.2}),
            CustomerClass("io-bound", 2, {"think": 5.0, "cpu": 0.2,
                                          "disk": 2.0}),
        ]
        return centers, classes

    def test_symmetric_classes_symmetric_result(self):
        centers, classes = self._system()
        result = exact_mva_multiclass(centers, classes)
        # The system is symmetric under swapping (cpu-bound, cpu) with
        # (io-bound, disk).
        assert result.throughput("cpu-bound") == pytest.approx(
            result.throughput("io-bound"), rel=1e-9)
        assert result.utilizations["cpu"] == pytest.approx(
            result.utilizations["disk"], rel=1e-9)

    def test_littles_law_per_class(self):
        centers, classes = self._system()
        result = exact_mva_multiclass(centers, classes)
        for cls in classes:
            assert (result.throughput(cls.name)
                    * result.response_times[cls.name]) == pytest.approx(
                        cls.population)

    def test_empty_class_ignored(self):
        centers = [delay("think", 2.0), queueing("q", 1.0)]
        result = exact_mva_multiclass(centers, [
            CustomerClass("real", 3, {"think": 2.0, "q": 1.0}),
            CustomerClass("ghost", 0, {"think": 2.0, "q": 5.0}),
        ])
        single = exact_mva(centers, 3)
        assert result.throughput("real") == pytest.approx(single.throughput,
                                                          rel=1e-9)
        assert result.throughput("ghost") == 0.0

    def test_interference_between_classes(self):
        """Adding a second class at the same center slows the first."""
        centers = [delay("think", 4.0), queueing("bus", 1.0)]
        alone = exact_mva_multiclass(centers, [
            CustomerClass("a", 3, {"think": 4.0, "bus": 1.0})])
        crowded = exact_mva_multiclass(centers, [
            CustomerClass("a", 3, {"think": 4.0, "bus": 1.0}),
            CustomerClass("b", 3, {"think": 4.0, "bus": 1.0}),
        ])
        assert crowded.throughput("a") < alone.throughput("a")


class TestApproximation:
    @given(st.integers(min_value=1, max_value=10),
           st.integers(min_value=1, max_value=10),
           st.floats(min_value=0.5, max_value=10.0),
           st.floats(min_value=0.05, max_value=2.0),
           st.floats(min_value=0.05, max_value=2.0))
    @settings(max_examples=40, deadline=None)
    def test_close_to_exact(self, n1, n2, z, d1, d2):
        # Schweitzer's proportional queue-length estimate is weakest for
        # tiny populations with strongly asymmetric demands: an
        # exhaustive sweep of this strategy's corners peaks at ~25 %
        # relative throughput error (n=(1,10), demands 2.0 vs 0.05), so
        # the bound is 0.30 -- tight enough to catch a broken fixed
        # point, loose enough for the approximation's documented error.
        centers = [delay("think", z), queueing("bus", 1.0)]
        classes = [
            CustomerClass("a", n1, {"think": z, "bus": d1}),
            CustomerClass("b", n2, {"think": z, "bus": d2}),
        ]
        exact = exact_mva_multiclass(centers, classes)
        approx = approximate_mva_multiclass(centers, classes)
        for name in ("a", "b"):
            assert approx.throughput(name) == pytest.approx(
                exact.throughput(name), rel=0.30)

    def test_bad_tolerance(self):
        with pytest.raises(ValueError):
            approximate_mva_multiclass(
                [queueing("q", 1.0)],
                [CustomerClass("a", 1, {"q": 1.0})], tolerance=0.0)


class TestHeterogeneousProcessorsScenario:
    """The substrate's purpose: a coherence bus shared by two processor
    populations with different memory intensity."""

    def test_memory_hungry_class_dominates_bus(self):
        from repro.workload.derived import derive_inputs
        from repro.workload.parameters import (
            SharingLevel,
            appendix_a_workload,
        )
        hungry_inputs = derive_inputs(
            appendix_a_workload(SharingLevel.TWENTY_PERCENT))
        light_inputs = derive_inputs(
            appendix_a_workload(SharingLevel.ONE_PERCENT))

        def bus_demand(inputs):
            return inputs.p_bc * inputs.t_bc + inputs.p_rr * inputs.t_read

        centers = [delay("think", 3.5), queueing("bus", 1.0)]
        classes = [
            CustomerClass("hungry", 4, {"think": 3.5,
                                        "bus": bus_demand(hungry_inputs)}),
            CustomerClass("light", 4, {"think": 3.5,
                                       "bus": bus_demand(light_inputs)}),
        ]
        result = exact_mva_multiclass(centers, classes)
        hungry_util = (result.throughput("hungry")
                       * bus_demand(hungry_inputs))
        light_util = result.throughput("light") * bus_demand(light_inputs)
        assert hungry_util > light_util
        # And the light class still completes more requests per cycle.
        assert result.throughput("light") > result.throughput("hungry")
