"""Unit tests for repro.workload.parameters."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workload.parameters import (
    ArchitectureParams,
    SharingLevel,
    WorkloadParameters,
    appendix_a_workload,
    katz_sharing_workload,
    stress_test_workload,
)


class TestWorkloadParameters:
    def test_defaults_are_appendix_a_five_percent(self):
        w = WorkloadParameters()
        assert w.tau == 2.5
        assert (w.p_private, w.p_sro, w.p_sw) == (0.95, 0.03, 0.02)
        assert w.h_private == w.h_sro == 0.95
        assert w.h_sw == 0.5
        assert w.r_private == 0.7
        assert w.r_sw == 0.5
        assert (w.amod_private, w.amod_sw) == (0.7, 0.3)
        assert (w.csupply_sro, w.csupply_sw) == (0.95, 0.5)
        assert w.wb_csupply == 0.3
        assert (w.rep_p, w.rep_sw) == (0.2, 0.5)

    def test_stream_mix_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            WorkloadParameters(p_private=0.9, p_sro=0.02, p_sw=0.02)

    def test_probability_bounds_enforced(self):
        with pytest.raises(ValueError, match="h_private"):
            WorkloadParameters(h_private=1.5)
        with pytest.raises(ValueError, match="rep_sw"):
            WorkloadParameters(rep_sw=-0.1)

    def test_negative_tau_rejected(self):
        with pytest.raises(ValueError, match="tau"):
            WorkloadParameters(tau=-1.0)

    def test_replace_returns_validated_copy(self):
        w = WorkloadParameters()
        w2 = w.replace(h_sw=0.95)
        assert w2.h_sw == 0.95
        assert w.h_sw == 0.5  # original untouched
        with pytest.raises(ValueError):
            w.replace(h_sw=2.0)

    def test_frozen(self):
        w = WorkloadParameters()
        with pytest.raises(AttributeError):
            w.tau = 3.0  # type: ignore[misc]

    def test_sharing_fraction(self):
        w = appendix_a_workload(SharingLevel.TWENTY_PERCENT)
        assert math.isclose(w.sharing_fraction, 0.20)

    def test_write_fraction(self):
        w = WorkloadParameters()
        expected = 0.95 * 0.3 + 0.02 * 0.5
        assert math.isclose(w.write_fraction, expected)

    @given(st.sampled_from(list(SharingLevel)))
    def test_appendix_a_mix_matches_level(self, level):
        w = appendix_a_workload(level)
        assert math.isclose(w.sharing_fraction, level.value, abs_tol=1e-12)
        assert math.isclose(w.p_private + w.p_sro + w.p_sw, 1.0)


class TestSharingLevel:
    def test_labels(self):
        assert SharingLevel.ONE_PERCENT.label == "1%"
        assert SharingLevel.FIVE_PERCENT.label == "5%"
        assert SharingLevel.TWENTY_PERCENT.label == "20%"

    def test_values_are_fractions(self):
        assert SharingLevel.TWENTY_PERCENT.value == 0.20


class TestArchitectureParams:
    def test_paper_defaults(self):
        a = ArchitectureParams()
        assert a.block_size == 4
        assert a.memory_modules == 4
        assert a.memory_latency == 3.0
        assert a.t_supply == 1.0
        assert a.write_word_cycles == 1.0

    def test_derived_timings(self):
        a = ArchitectureParams()
        assert a.block_transfer_cycles == 4.0
        assert a.base_read_cycles == 8.0  # 1 addr + 3 latency + 4 transfer
        assert a.cache_supply_cycles == 5.0  # 1 addr + 4 transfer

    def test_validation(self):
        with pytest.raises(ValueError, match="block_size"):
            ArchitectureParams(block_size=0)
        with pytest.raises(ValueError, match="memory_modules"):
            ArchitectureParams(memory_modules=0)
        with pytest.raises(ValueError, match="words_per_cycle"):
            ArchitectureParams(words_per_cycle=0.0)
        with pytest.raises(ValueError, match="memory_latency"):
            ArchitectureParams(memory_latency=-1.0)

    def test_replace(self):
        a = ArchitectureParams().replace(block_size=8)
        assert a.block_transfer_cycles == 8.0

    def test_wider_bus_shortens_transfer(self):
        a = ArchitectureParams(words_per_cycle=2.0)
        assert a.block_transfer_cycles == 2.0


class TestSpecialWorkloads:
    def test_stress_test_values(self):
        w = stress_test_workload()
        assert w.p_sw == 0.2
        assert w.h_sw == 0.1
        assert w.amod_sw == 0.0
        assert w.csupply_sro == w.csupply_sw == 1.0
        assert w.rep_p == w.rep_sw == 0.0
        assert math.isclose(w.p_private + w.p_sro + w.p_sw, 1.0)

    def test_katz_workload_is_99_percent_sharing(self):
        w = katz_sharing_workload()
        assert math.isclose(w.sharing_fraction, 0.99)
        assert w.amod_sw == 0.05

    def test_katz_workload_amod_overridable(self):
        assert katz_sharing_workload(amod_sw=0.3).amod_sw == 0.3
