"""Tests for the set-associative cache and the coherent system."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.cache_model import CoherentCacheSystem, SetAssociativeCache


class TestSetAssociativeCache:
    def test_cold_miss_then_hit(self):
        cache = SetAssociativeCache(n_sets=4, associativity=2)
        first = cache.access(10, is_write=False)
        assert not first.hit
        assert first.evicted_block is None
        again = cache.access(10, is_write=False)
        assert again.hit

    def test_lru_eviction_order(self):
        cache = SetAssociativeCache(n_sets=1, associativity=2)
        cache.access(1, False)
        cache.access(2, False)
        cache.access(1, False)          # refresh 1; LRU is now 2
        result = cache.access(3, False)  # evicts 2
        assert result.evicted_block == 2
        assert cache.contains(1) and cache.contains(3)
        assert not cache.contains(2)

    def test_dirty_tracking(self):
        cache = SetAssociativeCache(n_sets=4, associativity=2)
        cache.access(8, is_write=True)
        assert cache.is_dirty(8)
        result = cache.access(8, is_write=True)
        assert result.was_dirty        # the paper's amod event
        assert result.hit

    def test_read_does_not_dirty(self):
        cache = SetAssociativeCache(n_sets=4, associativity=2)
        cache.access(8, is_write=False)
        assert not cache.is_dirty(8)

    def test_dirty_eviction_flagged(self):
        cache = SetAssociativeCache(n_sets=1, associativity=1)
        cache.access(1, is_write=True)
        result = cache.access(2, is_write=False)
        assert result.evicted_block == 1
        assert result.evicted_dirty    # the paper's rep event

    def test_invalidate(self):
        cache = SetAssociativeCache(n_sets=4, associativity=2)
        cache.access(5, False)
        assert cache.invalidate(5)
        assert not cache.contains(5)
        assert not cache.invalidate(5)

    def test_clean(self):
        cache = SetAssociativeCache(n_sets=4, associativity=2)
        cache.access(5, True)
        cache.clean(5)
        assert cache.contains(5)
        assert not cache.is_dirty(5)

    def test_set_mapping_isolates_conflicts(self):
        cache = SetAssociativeCache(n_sets=2, associativity=1)
        cache.access(0, False)  # set 0
        cache.access(1, False)  # set 1
        assert cache.contains(0) and cache.contains(1)
        result = cache.access(2, False)  # conflicts with 0
        assert result.evicted_block == 0

    def test_occupancy(self):
        cache = SetAssociativeCache(n_sets=4, associativity=2)
        for block in range(5):
            cache.access(block, False)
        assert cache.occupancy == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(n_sets=0, associativity=1)
        with pytest.raises(ValueError):
            SetAssociativeCache(n_sets=4, associativity=0)

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=50),
                              st.booleans()), max_size=300))
    @settings(max_examples=60)
    def test_occupancy_bounded(self, accesses):
        cache = SetAssociativeCache(n_sets=4, associativity=2)
        for block, is_write in accesses:
            cache.access(block, is_write)
        assert cache.occupancy <= 8


class TestCoherentCacheSystem:
    def test_write_invalidates_other_copies(self):
        system = CoherentCacheSystem(n_caches=3, n_sets=4, associativity=2)
        system.access(0, 7, is_write=False)
        system.access(1, 7, is_write=False)
        outcome = system.access(2, 7, is_write=True)
        assert set(outcome.holders) == {0, 1}
        assert set(outcome.invalidated) == {0, 1}
        assert system.holders_of(7) == [2]

    def test_reads_replicate(self):
        system = CoherentCacheSystem(n_caches=3, n_sets=4, associativity=2)
        for cpu in range(3):
            system.access(cpu, 9, is_write=False)
        assert system.holders_of(9) == [0, 1, 2]

    def test_dirty_supplier_observed_and_cleaned(self):
        system = CoherentCacheSystem(n_caches=2, n_sets=4, associativity=2)
        system.access(0, 3, is_write=True)       # dirty in cache 0
        outcome = system.access(1, 3, is_write=False)
        assert outcome.supplier_dirty             # wb_csupply event
        assert not system.caches[0].is_dirty(3)   # flushed (Write-Once)
        assert system.holders_of(3) == [0, 1]

    def test_single_writer_invariant_fuzzed(self):
        import numpy as np
        rng = np.random.default_rng(0)
        system = CoherentCacheSystem(n_caches=4, n_sets=8, associativity=2)
        for _ in range(5_000):
            system.access(int(rng.integers(4)), int(rng.integers(64)),
                          bool(rng.random() < 0.3))
        system.check_coherence()

    def test_validation(self):
        with pytest.raises(ValueError):
            CoherentCacheSystem(n_caches=0, n_sets=4, associativity=2)
