"""Unit tests for the cross-model harness (the bench runs the full
validation; these cover the mechanics cheaply)."""

import pytest

from repro.analysis.crossmodel import (
    CrossModelCell,
    cross_model_table,
    cross_validate,
)
from repro.workload.parameters import SharingLevel, appendix_a_workload


class TestCrossModelCell:
    def test_spread(self):
        cell = CrossModelCell(n_processors=2, mva=1.0, des=1.1, des_ci=0.01,
                              gtpn_exponential=1.05, gtpn_erlang=1.02,
                              gtpn_states=10)
        assert cell.spread == pytest.approx(0.1)

    def test_spread_zero_guard(self):
        cell = CrossModelCell(n_processors=1, mva=0.0, des=0.0, des_ci=0.0,
                              gtpn_exponential=0.0, gtpn_erlang=0.0,
                              gtpn_states=1)
        assert cell.spread == 0.0


class TestCrossValidate:
    @pytest.fixture(scope="class")
    def cells(self):
        return cross_validate(
            appendix_a_workload(SharingLevel.FIVE_PERCENT),
            sizes=(1, 2), sim_requests=8_000, erlang=2)

    def test_one_cell_per_size(self, cells):
        assert [c.n_processors for c in cells] == [1, 2]

    def test_all_techniques_populated(self, cells):
        for cell in cells:
            assert cell.mva > 0.0
            assert cell.des > 0.0
            assert cell.gtpn_exponential > 0.0
            assert cell.gtpn_erlang > 0.0
            assert cell.gtpn_states > 0

    def test_n1_all_agree_tightly(self, cells):
        """No contention at N = 1: every technique computes the same
        no-queueing mean."""
        assert cells[0].spread < 0.02

    def test_table_render(self, cells):
        text = cross_model_table(cells).render()
        assert "GTPN Erlang" in text
        assert "spread %" in text
