"""The async /v1/sweep endpoints: submit, poll, errors, cache handoff.

``POST /v1/sweep`` returns a job handle immediately and runs the sweep
through the :class:`repro.sweepq.SweepQueue` on a background thread;
``GET /v1/sweep/{job_id}`` serves the journal's progress counters.
Results are not shipped over the status endpoint -- they land in the
service's shared result cache, so a ``/v1/grid`` request after
completion is answered entirely from cache (asserted here).
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service import ModelService, start_server
from repro.service.schema import ServiceError, SweepRequest


@pytest.fixture()
def server():
    server = start_server(ModelService(jobs=2))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _get(server, path):
    try:
        with urllib.request.urlopen(server.url + path, timeout=10) as resp:
            return resp.status, dict(resp.headers), json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())


def _post(server, path, body):
    request = urllib.request.Request(
        server.url + path, data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, dict(resp.headers), json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())


_BODY = {"protocols": ["write-once", "1,4"], "n": [2, 4, 6],
         "sharing": ["5"]}


def _wait_done(server, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, _, body = _get(server, f"/v1/sweep/{job_id}")
        assert status == 200
        if body["state"] in ("done", "failed"):
            return body
        time.sleep(0.05)
    raise AssertionError(f"sweep {job_id} did not finish in {timeout}s")


class TestSweepSubmit:
    def test_submit_returns_job_handle(self, server):
        status, _, body = _post(server, "/v1/sweep", _BODY)
        assert status == 200
        assert body["state"] == "running"
        assert body["cells"] == 6
        assert body["chunks"] >= 1
        assert body["status_path"] == f"/v1/sweep/{body['job_id']}"

    def test_status_reaches_done_with_full_counters(self, server):
        _, _, submitted = _post(server, "/v1/sweep", dict(_BODY,
                                                          workers=2))
        final = _wait_done(server, submitted["job_id"])
        assert final["state"] == "done"
        assert final["chunks"]["done"] == final["chunks"]["chunks"]
        assert final["chunks"]["queued"] == 0
        assert final["cells_done"] == 6
        assert final["cells_failed"] == 0
        assert final["requeues"] == 0
        assert final["recovered"] == 0
        assert final["workers"] == 2
        assert final["wall_seconds"] > 0

    def test_completed_sweep_feeds_the_grid_cache(self, server):
        _, _, submitted = _post(server, "/v1/sweep", _BODY)
        _wait_done(server, submitted["job_id"])
        status, _, grid = _post(server, "/v1/grid", _BODY)
        assert status == 200
        assert grid["summary"]["cache_hits"] == grid["summary"]["total"]

    def test_sweep_metrics_published(self, server):
        _, _, submitted = _post(server, "/v1/sweep", _BODY)
        _wait_done(server, submitted["job_id"])
        with urllib.request.urlopen(server.url + "/v1/metrics",
                                    timeout=10) as resp:
            text = resp.read().decode()
        assert 'repro_sweep_chunks{state="done"}' in text
        assert "repro_sweep_cells_done" in text


class TestSweepErrors:
    def test_unknown_job_is_404(self, server):
        status, _, body = _get(server, "/v1/sweep/nope")
        assert status == 404
        assert body["error"]["code"] == "unknown-job"

    def test_no_legacy_alias(self, server):
        """/sweep never had an unversioned predecessor: plain 404 (with
        a hint), not the 410 the retired legacy paths answer."""
        status, _, body = _post(server, "/sweep", _BODY)
        assert status == 404
        assert body["error"]["code"] == "not-found"
        assert "/v1/sweep" in body["error"]["message"]

    def test_unknown_field_rejected(self, server):
        status, _, body = _post(server, "/v1/sweep",
                                dict(_BODY, engine="batch"))
        assert status == 400
        assert body["error"]["code"] == "unknown-field"

    def test_status_requires_get(self, server):
        status, headers, _ = _post(server, "/v1/sweep/whatever", {})
        assert status == 405
        assert headers["Allow"] == "GET"

    def test_submit_requires_post(self, server):
        status, headers, _ = _get(server, "/v1/sweep")
        assert status == 405
        assert headers["Allow"] == "POST"

    def test_oversized_sweep_rejected(self, server):
        body = dict(_BODY, n=list(range(1, 4097)))
        status, _, payload = _post(server, "/v1/sweep", body)
        assert status == 400
        assert payload["error"]["code"] == "grid-too-large"

    def test_bad_workers_rejected(self, server):
        status, _, payload = _post(server, "/v1/sweep",
                                   dict(_BODY, workers=0))
        assert status == 400
        assert "workers" in payload["error"]["message"]


class TestSweepRequestSchema:
    def test_defaults(self):
        request = SweepRequest.from_payload(_BODY, strict=True)
        assert request.workers is None
        assert request.chunk_size is None
        assert not request.simulate
        assert request.cell_count == 6

    def test_rejects_engine_field_strictly(self):
        with pytest.raises(ServiceError) as excinfo:
            SweepRequest.from_payload(dict(_BODY, engine="batch"),
                                      strict=True)
        assert excinfo.value.code == "unknown-field"

    def test_chunk_size_validated(self):
        with pytest.raises(ServiceError, match="chunk_size"):
            SweepRequest.from_payload(dict(_BODY, chunk_size=0))

    def test_spec_matches_grid_semantics(self):
        request = SweepRequest.from_payload(
            dict(_BODY, simulate=True, requests=500, seed=9))
        spec = request.spec()
        assert spec.include_simulation
        assert spec.sim_requests == 500
        assert spec.sim_seed == 9
        assert request.cell_count == 12
