"""Tests for the classical queueing substrate."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing import (
    MD1,
    MM1,
    approximate_mva,
    delay,
    exact_mva,
    mean_residual_life,
    queueing,
    residual_life_mixture,
)
from repro.queueing.centers import Center
from repro.queueing.mva_exact import asymptotic_bounds
from repro.queueing.residual import (
    pollaczek_khinchine_wait,
    residual_life_mixture_via_moments,
)


class TestExactMVA:
    def test_single_center_single_job(self):
        result = exact_mva([queueing("cpu", 2.0)], 1)
        assert result.throughput == pytest.approx(0.5)
        assert result.response_time == pytest.approx(2.0)
        assert result.queue_lengths["cpu"] == pytest.approx(1.0)

    def test_machine_repairman_textbook(self):
        """Delay Z + one queue: the interactive-system model of [LZGS84]."""
        centers = [delay("think", 10.0), queueing("server", 1.0)]
        result = exact_mva(centers, 5)
        # Balance check via Little's law: N = X * R.
        assert result.throughput * result.response_time == pytest.approx(5.0)
        # With Z=10, D=1, 5 jobs: well under saturation, X ~ N/(Z+D).
        assert result.throughput < 1.0
        assert result.utilizations["server"] == pytest.approx(
            result.throughput * 1.0)

    def test_queue_lengths_sum_to_population(self):
        centers = [delay("think", 5.0), queueing("a", 1.0), queueing("b", 0.5)]
        result = exact_mva(centers, 7)
        assert sum(result.queue_lengths.values()) == pytest.approx(7.0)

    def test_bottleneck_identification(self):
        centers = [queueing("fast", 0.5), queueing("slow", 2.0)]
        assert exact_mva(centers, 10).bottleneck() == "slow"

    def test_throughput_saturates_at_bottleneck(self):
        centers = [delay("think", 2.0), queueing("bus", 0.5)]
        result = exact_mva(centers, 200)
        assert result.throughput == pytest.approx(2.0, rel=1e-3)
        assert result.utilizations["bus"] == pytest.approx(1.0, rel=1e-3)

    def test_zero_population(self):
        result = exact_mva([queueing("cpu", 1.0)], 0)
        assert result.throughput == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            exact_mva([], 3)
        with pytest.raises(ValueError, match="duplicate"):
            exact_mva([queueing("x", 1.0), queueing("x", 2.0)], 3)
        with pytest.raises(ValueError, match="population"):
            exact_mva([queueing("x", 1.0)], -1)
        with pytest.raises(ValueError, match="demand"):
            Center(name="x", demand=-1.0)

    @given(st.integers(min_value=1, max_value=40),
           st.floats(min_value=0.01, max_value=10.0),
           st.floats(min_value=0.01, max_value=10.0))
    @settings(max_examples=60)
    def test_littles_law_always_holds(self, n, z, d):
        result = exact_mva([delay("think", z), queueing("q", d)], n)
        assert result.throughput * result.response_time == pytest.approx(n)

    @given(st.integers(min_value=1, max_value=40),
           st.floats(min_value=0.01, max_value=10.0),
           st.floats(min_value=0.01, max_value=10.0))
    @settings(max_examples=60)
    def test_within_asymptotic_bounds(self, n, z, d):
        centers = [delay("think", z), queueing("q", d)]
        result = exact_mva(centers, n)
        lower, upper = asymptotic_bounds(centers, n)
        assert lower - 1e-9 <= result.throughput <= upper + 1e-9


class TestApproximateMVA:
    @given(st.integers(min_value=1, max_value=50),
           st.floats(min_value=0.1, max_value=20.0),
           st.floats(min_value=0.05, max_value=5.0),
           st.floats(min_value=0.05, max_value=5.0))
    @settings(max_examples=60)
    def test_close_to_exact(self, n, z, d1, d2):
        """Schweitzer is accurate to ~10 % for single-class networks
        (worst near saturation at small N)."""
        centers = [delay("think", z), queueing("a", d1), queueing("b", d2)]
        exact = exact_mva(centers, n)
        approx = approximate_mva(centers, n)
        assert approx.throughput == pytest.approx(exact.throughput, rel=0.12)

    def test_zero_population(self):
        result = approximate_mva([queueing("cpu", 1.0)], 0)
        assert result.throughput == 0.0

    def test_littles_law(self):
        centers = [delay("think", 4.0), queueing("q", 1.0)]
        result = approximate_mva(centers, 12)
        assert result.throughput * result.response_time == pytest.approx(12.0)

    def test_rejects_bad_tolerance(self):
        with pytest.raises(ValueError):
            approximate_mva([queueing("q", 1.0)], 2, tolerance=0.0)


class TestResidualLife:
    def test_deterministic_is_half_mean(self):
        assert mean_residual_life(8.0, cv2=0.0) == pytest.approx(4.0)

    def test_exponential_is_mean(self):
        assert mean_residual_life(3.0, cv2=1.0) == pytest.approx(3.0)

    def test_via_second_moment(self):
        # Deterministic t=6: m2 = 36, residual = 3.
        assert mean_residual_life(6.0, second_moment=36.0) == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="exactly one"):
            mean_residual_life(1.0)
        with pytest.raises(ValueError, match="exactly one"):
            mean_residual_life(1.0, second_moment=1.0, cv2=0.0)
        with pytest.raises(ValueError, match="impossible"):
            mean_residual_life(2.0, second_moment=1.0)

    def test_equation_10_form(self):
        """The paper's equation (10) with its own notation:
        classes (T_write + w_mem) and t_read weighted by p_bc, p_rr."""
        p_bc, p_rr = 0.08, 0.06
        t_write_plus_wmem, t_read = 1.3, 9.0
        value = residual_life_mixture([p_bc, p_rr],
                                      [t_write_plus_wmem, t_read])
        a = p_bc * t_write_plus_wmem
        b = p_rr * t_read
        expected = (a / (a + b)) * t_write_plus_wmem / 2 + (b / (a + b)) * t_read / 2
        assert value == pytest.approx(expected)

    @given(st.lists(st.tuples(st.floats(min_value=1e-6, max_value=1.0),
                              st.floats(min_value=0.0, max_value=50.0)),
                    min_size=1, max_size=6))
    @settings(max_examples=100)
    def test_mixture_equals_renewal_formula(self, pairs):
        """Equation (10) is exactly m2/(2m) of the mixture distribution."""
        weights = [w for w, _ in pairs]
        times = [t for _, t in pairs]
        a = residual_life_mixture(weights, times)
        b = residual_life_mixture_via_moments(weights, times)
        assert a == pytest.approx(b, abs=1e-9)

    def test_mixture_degenerate(self):
        assert residual_life_mixture([0.0], [5.0]) == 0.0
        with pytest.raises(ValueError):
            residual_life_mixture([0.5], [1.0, 2.0])


class TestMM1MD1:
    def test_mm1_textbook_values(self):
        q = MM1(arrival_rate=0.5, service_rate=1.0)
        assert q.utilization == 0.5
        assert q.mean_queue_length == pytest.approx(1.0)
        assert q.mean_response_time == pytest.approx(2.0)
        assert q.mean_waiting_time == pytest.approx(1.0)

    def test_mm1_unstable(self):
        q = MM1(arrival_rate=2.0, service_rate=1.0)
        assert not q.stable
        assert math.isinf(q.mean_response_time)

    def test_md1_half_the_mm1_wait(self):
        """Deterministic service halves the waiting time at equal rho."""
        mm1 = MM1(arrival_rate=0.8, service_rate=1.0)
        md1 = MD1(arrival_rate=0.8, service_time=1.0)
        assert md1.mean_waiting_time == pytest.approx(mm1.mean_waiting_time / 2)

    def test_md1_littles_law(self):
        q = MD1(arrival_rate=0.4, service_time=1.5)
        assert q.mean_queue_length == pytest.approx(
            q.arrival_rate * q.mean_response_time)

    def test_pollaczek_khinchine_matches_md1(self):
        q = MD1(arrival_rate=0.6, service_time=1.0)
        assert pollaczek_khinchine_wait(0.6, 1.0, cv2=0.0) == pytest.approx(
            q.mean_waiting_time)

    def test_pollaczek_khinchine_unstable(self):
        assert math.isinf(pollaczek_khinchine_wait(2.0, 1.0, cv2=0.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            MM1(arrival_rate=-1.0, service_rate=1.0)
        with pytest.raises(ValueError):
            MM1(arrival_rate=1.0, service_rate=0.0)
        with pytest.raises(ValueError):
            MD1(arrival_rate=-0.1, service_time=1.0)


class TestCrossValidationWithCustomModel:
    """With cache and memory interference switched off, the paper's
    system is a delay center (tau + 1) plus one FCFS bus queue, so the
    custom model must approximately agree with Schweitzer MVA."""

    def test_custom_model_close_to_schweitzer(self, workload_5pct):
        from repro.core.model import CacheMVAModel
        from repro.workload.parameters import ArchitectureParams

        # Disable memory contention (huge module count) and cache
        # interference (no shared blocks are ever held elsewhere).
        w = workload_5pct.replace(csupply_sro=0.0, csupply_sw=0.0,
                                  wb_csupply=0.0)
        arch = ArchitectureParams(memory_modules=10_000)
        model = CacheMVAModel(w, arch=arch)
        inp = model.inputs

        n = 8
        report = model.solve(n)

        # Equivalent closed network: think = tau + T_supply, bus demand =
        # expected bus time per reference.
        bus_demand = inp.p_bc * inp.t_bc + inp.p_rr * inp.t_read
        centers = [delay("think", w.tau + 1.0), queueing("bus", bus_demand)]
        mva = approximate_mva(centers, n)

        custom_throughput = n / report.cycle_time
        assert custom_throughput == pytest.approx(mva.throughput, rel=0.05)
        assert report.u_bus == pytest.approx(mva.utilizations["bus"], rel=0.06)
