"""The tiered verification run and its CLI face (``repro verify``).

Covers: the quick tier passes on main (the CI gate), sections and
metrics are populated, the end-to-end perturbation property (a broken
equation turns the CLI exit code non-zero with structured JSON
output), and the ``--update-golden`` / ``--output`` flows.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.cli import main
from repro.service.metrics import MetricsRegistry
from repro.verify import run_verify
from repro.verify.violations import Severity


@pytest.fixture(scope="module")
def quick_report():
    """One quick-tier run shared by the read-only assertions."""
    return run_verify(tier="quick")


class TestRunVerify:
    def test_quick_tier_passes_on_main(self, quick_report):
        assert quick_report.ok, quick_report.errors[:5]
        assert quick_report.exit_code == 0
        assert quick_report.checks > 10_000

    def test_quick_tier_is_fast_enough_for_ci(self, quick_report):
        """ISSUE acceptance: the push gate stays under 60 s.  The
        measured budget is ~3 s, so 30 s here leaves slack for slow CI
        machines without letting the tier quietly bloat past the
        contract."""
        assert quick_report.elapsed_seconds < 30.0

    def test_sections_cover_every_checker_family(self, quick_report):
        assert set(quick_report.sections) >= {
            "derived-inputs", "interference", "fixed-points",
            "sweep-shape", "protocol-machine", "engine-parity",
            "golden-corpus", "mva-vs-des"}
        assert all(count > 0
                   for count in quick_report.sections.values())

    def test_only_documented_warnings_on_main(self, quick_report):
        """The seed code's sole soft spot is the deep-saturation
        utilization artifact; any new warning law appearing here is a
        behaviour change that needs a decision, not a shrug."""
        assert {v.law for v in quick_report.warnings} <= {
            "utilization-saturated"}

    def test_metrics_counters_populated(self):
        registry = MetricsRegistry()
        report = run_verify(tier="quick", metrics=registry)
        text = registry.render()
        assert "repro_verify_checks_total" in text
        assert 'section="engine-parity"' in text
        # Warnings are counted by law and severity.
        if report.warnings:
            assert "repro_verify_violations_total" in text
            assert 'severity="warning"' in text

    def test_rejects_unknown_tier(self):
        with pytest.raises(ValueError, match="tier"):
            run_verify(tier="exhaustive")

    def test_missing_golden_fails_the_run(self, tmp_path):
        report = run_verify(tier="quick",
                            golden_path=tmp_path / "absent.json")
        assert not report.ok
        assert any(v.law == "golden-missing" for v in report.errors)

    def test_report_round_trips_to_json(self, quick_report):
        payload = json.loads(quick_report.to_json())
        assert payload["ok"] is True
        assert payload["tier"] == "quick"
        assert payload["checks"] == quick_report.checks
        assert isinstance(payload["violations"], list)


class TestVerifyCli:
    def test_quick_exits_zero_on_main(self, capsys):
        assert main(["verify", "--tier", "quick"]) == 0
        out = capsys.readouterr().out
        assert "verdict: ok" in out

    def test_json_output(self, capsys):
        assert main(["verify", "--tier", "quick", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True

    def test_output_artifact_written(self, tmp_path, capsys):
        artifact = tmp_path / "report.json"
        assert main(["verify", "--tier", "quick",
                     "--output", str(artifact)]) == 0
        payload = json.loads(artifact.read_text())
        assert payload["tier"] == "quick"
        assert payload["checks"] > 0

    def test_update_golden_writes_corpus(self, tmp_path, capsys):
        path = tmp_path / "golden.json"
        assert main(["verify", "--update-golden",
                     "--golden", str(path)]) == 0
        assert "regenerated" in capsys.readouterr().out
        corpus = json.loads(path.read_text())
        assert corpus["cells"]

    def test_golden_override_used_for_comparison(self, tmp_path,
                                                 capsys):
        """A verify pointed at a stale corpus fails; the same corpus
        freshly regenerated passes.  Together with the exit codes this
        is the documented update workflow end to end."""
        path = tmp_path / "golden.json"
        main(["verify", "--update-golden", "--golden", str(path)])
        corpus = json.loads(path.read_text())
        corpus["cells"][0]["speedup"] += 0.1
        path.write_text(json.dumps(corpus))
        capsys.readouterr()
        assert main(["verify", "--tier", "quick", "--json",
                     "--golden", str(path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert any(v["law"] == "golden-drift"
                   for v in payload["violations"])

    def test_perturbed_equation_turns_the_gate_red(self, monkeypatch,
                                                   capsys):
        """ISSUE acceptance, end to end: monkeypatch one equation and
        `repro verify --tier quick` must exit non-zero with structured
        output attributing the failure."""
        from repro.core import equations as eq_mod

        original = eq_mod.EquationSystem.step

        def inflated(self, state):
            new = original(self, state)
            return dataclasses.replace(new, w_bus=new.w_bus * 1.5)

        monkeypatch.setattr(eq_mod.EquationSystem, "step", inflated)
        assert main(["verify", "--tier", "quick", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        laws = {v["law"] for v in payload["violations"]
                if v["severity"] == "error"}
        # The same perturbation is caught from independent angles:
        # against the frozen corpus and against the seeded DES.
        assert "golden-drift" in laws
        assert "mva-des-speedup" in laws


class TestSeverityPolicy:
    def test_warning_only_report_exits_zero(self):
        """Warnings surface but never gate; errors gate.  Regression
        for the Severity contract the CI job relies on."""
        from repro.verify.violations import VerifyReport, Violation

        report = VerifyReport(tier="quick")
        report.add([Violation(law="soft", subject="s", message="m",
                              severity=Severity.WARNING)], 5, "x")
        assert report.exit_code == 0
        report.add([Violation(law="hard", subject="s", message="m")],
                   1, "x")
        assert report.exit_code == 1
