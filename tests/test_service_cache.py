"""Tests for the content-addressed result cache and its keys."""

import json

import pytest

from repro.protocols.modifications import ProtocolSpec
from repro.service.cache import ResultCache
from repro.service.executor import CellTask
from repro.service.keys import (
    canonical_key,
    canonicalize,
    prime_task_keys,
    task_key,
    task_key_payload,
)
from repro.workload.parameters import (
    ArchitectureParams,
    SharingLevel,
    WorkloadParameters,
    appendix_a_workload,
)


def _task(**overrides):
    defaults = dict(
        protocol=ProtocolSpec.of(1, 4),
        sharing_label="5%",
        workload=appendix_a_workload(SharingLevel.FIVE_PERCENT),
        n=8,
    )
    defaults.update(overrides)
    return CellTask(**defaults)


class TestCanonicalize:
    def test_dataclasses_become_field_dicts(self):
        data = canonicalize(ArchitectureParams())
        assert data["block_size"] == 4
        assert data["memory_latency"] == 3.0

    def test_enums_become_values(self):
        assert canonicalize(SharingLevel.FIVE_PERCENT) == 0.05

    def test_sets_are_sorted(self):
        assert canonicalize(frozenset({3, 1, 2})) == [1, 2, 3]

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            canonicalize(object())

    def test_key_is_sha256_hex(self):
        key = canonical_key({"a": 1})
        assert len(key) == 64
        int(key, 16)  # hex-decodable


class TestKeyStability:
    def test_equal_but_distinct_instances_share_a_key(self):
        """Two independently built, value-equal tasks must collide."""
        first = _task(workload=appendix_a_workload(SharingLevel.FIVE_PERCENT))
        second = _task(workload=WorkloadParameters(
            p_private=0.95, p_sro=0.03, p_sw=0.02))
        assert first is not second
        assert task_key(first) == task_key(second)

    def test_mod_order_does_not_matter(self):
        assert (task_key(_task(protocol=ProtocolSpec.of(1, 4)))
                == task_key(_task(protocol=ProtocolSpec.of(4, 1))))

    def test_distinct_inputs_get_distinct_keys(self):
        base = _task()
        assert task_key(base) != task_key(_task(n=10))
        assert task_key(base) != task_key(_task(protocol=ProtocolSpec.of(1)))
        assert task_key(base) != task_key(_task(
            workload=appendix_a_workload(SharingLevel.ONE_PERCENT),
            sharing_label="1%"))
        assert task_key(base) != task_key(_task(
            arch=ArchitectureParams(block_size=8)))

    def test_sim_key_includes_seed_and_requests(self):
        sim = _task(method="sim", sim_seed=1, sim_requests=100)
        assert task_key(sim) != task_key(_task(method="sim", sim_seed=2,
                                               sim_requests=100))
        assert task_key(sim) != task_key(_task(method="sim", sim_seed=1,
                                               sim_requests=200))

    def test_mva_key_ignores_sim_settings(self):
        """MVA cells are seed-free: sim knobs must not fragment the key."""
        assert (task_key(_task(sim_seed=1)) == task_key(_task(sim_seed=99)))

    def test_primed_keys_match_task_key(self):
        """``prime_task_keys`` (the one-lookup-per-request fast path)
        must stamp exactly the key ``task_key`` would compute."""
        tasks = [_task(n=n) for n in (2, 8, 32, 128)]
        prime_task_keys(tasks)
        for task in tasks:
            assert task.__dict__["_key"] == task_key(_task(n=task.n))

    def test_primed_sim_keys_match_task_key(self):
        tasks = [_task(method="sim", sim_seed=7, sim_requests=500, n=n)
                 for n in (2, 8)]
        prime_task_keys(tasks)
        for task in tasks:
            assert task.key == task_key(
                _task(method="sim", sim_seed=7, sim_requests=500, n=task.n))

    def test_priming_mixed_run_falls_back_per_task(self):
        """A run whose cells differ in more than ``n`` must still get
        correct (per-task-path) keys, not the first cell's components."""
        tasks = [_task(n=4),
                 _task(n=4, protocol=ProtocolSpec.of(1)),
                 _task(n=8, sharing_label="1%",
                       workload=appendix_a_workload(SharingLevel.ONE_PERCENT))]
        prime_task_keys(tasks)
        assert tasks[0].key == task_key(_task(n=4))
        assert tasks[1].key == task_key(_task(n=4, protocol=ProtocolSpec.of(1)))
        assert tasks[2].key == task_key(_task(
            n=8, sharing_label="1%",
            workload=appendix_a_workload(SharingLevel.ONE_PERCENT)))
        assert len({t.key for t in tasks}) == 3

    def test_priming_empty_run_is_a_noop(self):
        prime_task_keys([])

    def test_fast_path_matches_reference_payload(self):
        """The fragment-assembled ``task_key`` must hash byte-identically
        to ``canonical_key`` over the reference payload; a drift here
        silently invalidates every existing cache file."""
        tasks = [
            _task(),
            _task(n=16, protocol=ProtocolSpec.of(1)),
            _task(method="sim", sim_seed=7, sim_requests=500),
            _task(arch=ArchitectureParams(block_size=8),
                  workload=appendix_a_workload(SharingLevel.ONE_PERCENT),
                  sharing_label="1%"),
        ]
        for task in tasks:
            assert task_key(task) == canonical_key(task_key_payload(task))


class TestLRU:
    def test_hit_miss_accounting(self):
        cache = ResultCache(capacity=4)
        assert cache.get("k") is None
        cache.put("k", {"v": 1})
        assert cache.get("k") == {"v": 1}
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_eviction_order_is_least_recently_used(self):
        cache = ResultCache(capacity=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        cache.get("a")           # refresh "a": "b" is now the LRU tail
        cache.put("c", {"v": 3})
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.stats.evictions == 1

    def test_overwrite_does_not_evict(self):
        cache = ResultCache(capacity=2)
        cache.put("a", {"v": 1})
        cache.put("a", {"v": 2})
        cache.put("b", {"v": 3})
        assert len(cache) == 2
        assert cache.get("a") == {"v": 2}
        assert cache.stats.evictions == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)

    def test_put_many_matches_put_loop(self):
        """One-lock batch insert must leave the cache in exactly the
        state a ``put`` loop would (the coalescer's flush path)."""
        items = [(f"k{i}", {"v": i}) for i in range(5)]
        looped, batched = ResultCache(capacity=3), ResultCache(capacity=3)
        for key, value in items:
            looped.put(key, value)
        batched.put_many(items)
        for key, _ in items:
            assert (key in looped) == (key in batched)
        assert len(looped) == len(batched) == 3
        assert looped.stats.evictions == batched.stats.evictions == 2

    def test_put_many_overwrites_and_refreshes(self):
        cache = ResultCache(capacity=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        cache.put_many([("a", {"v": 9}), ("c", {"v": 3})])
        assert cache.get("a") == {"v": 9}   # overwritten, refreshed
        assert "c" in cache
        assert "b" not in cache             # the LRU tail was evicted

    def test_put_many_persists_on_flush(self, tmp_path):
        path = tmp_path / "cells.json"
        cache = ResultCache(path=path)
        cache.put_many([("a", {"v": 1}), ("b", {"v": 2})])
        cache.flush()
        reloaded = ResultCache(path=path)
        assert reloaded.get("a") == {"v": 1}
        assert reloaded.get("b") == {"v": 2}


class TestDiskStore:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "cache.json"
        first = ResultCache(path=path)
        first.put("key-1", {"cell": {"speedup": 2.5}})
        first.flush()
        second = ResultCache(path=path)
        assert second.get("key-1") == {"cell": {"speedup": 2.5}}
        assert len(second) == 1

    def test_flush_without_path_is_noop(self):
        ResultCache().flush()  # must not raise

    def test_missing_file_starts_empty(self, tmp_path):
        cache = ResultCache(path=tmp_path / "absent.json")
        assert len(cache) == 0

    def test_corrupt_file_starts_empty(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{ not json")
        assert len(ResultCache(path=path)) == 0

    def test_wrong_schema_ignored(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({"format": "repro.service.cache",
                                    "schema": -1,
                                    "entries": {"k": {"v": 1}}}))
        assert len(ResultCache(path=path)) == 0

    def test_load_respects_capacity(self, tmp_path):
        path = tmp_path / "cache.json"
        big = ResultCache(capacity=10, path=path)
        for i in range(10):
            big.put(f"k{i}", {"v": i})
        big.flush()
        small = ResultCache(capacity=3, path=path)
        assert len(small) == 3

    def test_flush_is_atomic_and_idempotent(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = ResultCache(path=path)
        cache.put("k", {"v": 1})
        cache.flush()
        before = path.read_text()
        cache.flush()  # nothing dirty: file untouched
        assert path.read_text() == before
        assert not list(tmp_path.glob("*.tmp"))
