"""Unit tests for the invariant checker (repro.verify.invariants).

Two angles per law family: the *seed code passes* (running the audits
on honestly solved models yields zero error-severity violations), and
the *checker actually checks* (injecting a corrupted value makes the
right law fire with a structured, attributable record).  The second
half is what makes the first half evidence rather than vacuity.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.model import CacheMVAModel, build_report
from repro.protocols.modifications import ProtocolSpec, all_combinations
from repro.verify import (
    Audit,
    Severity,
    VerifyReport,
    audit_derived_inputs,
    audit_diagnostics,
    audit_interference,
    audit_protocol_machine,
    audit_report,
    audit_state,
    audit_sweep_shape,
)
from repro.verify.invariants import CAPACITY_OVERSHOOT
from repro.workload.parameters import SharingLevel, appendix_a_workload


@pytest.fixture(scope="module")
def solved():
    """One honestly solved cell: (model, system, state, diag, report)."""
    model = CacheMVAModel(
        appendix_a_workload(SharingLevel.FIVE_PERCENT),
        ProtocolSpec.of(1, 4))
    system = model.system(10)
    state, diag = model.solver.solve(system)
    report = build_report(system, "WO+1+4", "5%", state, diag)
    return model, system, state, diag, report


def _errors(audit: Audit):
    return [v for v in audit.violations if v.severity is Severity.ERROR]


class TestAuditMechanics:
    def test_check_counts_and_records(self):
        audit = Audit(subject="unit")
        assert audit.check(True, "law-a", "fine")
        assert not audit.check(False, "law-b", "broken", observed=2.0,
                               expected="<= 1", equation="eq. (7)",
                               extra="context")
        assert audit.checks == 2
        (violation,) = audit.violations
        assert violation.law == "law-b"
        assert violation.subject == "unit"
        assert violation.context == {"extra": "context"}
        assert "eq. (7)" in violation.describe()

    def test_merge_accumulates(self):
        a, b = Audit(subject="a"), Audit(subject="b")
        a.check(True, "x", "m")
        b.check(False, "y", "m")
        a.merge(b)
        assert a.checks == 2
        assert [v.law for v in a.violations] == ["y"]

    def test_report_verdict_and_exit_code(self):
        report = VerifyReport(tier="quick")
        assert not report.ok  # zero checks is not a pass
        audit = Audit(subject="s")
        audit.check(True, "x", "m")
        audit.check(False, "soft", "m", severity=Severity.WARNING)
        report.add(audit.violations, audit.checks, "section")
        assert report.ok and report.exit_code == 0  # warnings tolerated
        audit2 = Audit(subject="s")
        audit2.check(False, "hard", "m")
        report.add(audit2.violations, audit2.checks, "section")
        assert not report.ok and report.exit_code == 1
        assert report.sections == {"section": 3}
        assert "FAILED" in report.text()


class TestSeedCodeSatisfiesLaws:
    """Satellite check: the audits hold on the seed model everywhere."""

    def test_derived_inputs_all_combinations(self):
        for spec in all_combinations():
            for level in SharingLevel:
                model = CacheMVAModel(appendix_a_workload(level), spec)
                audit = audit_derived_inputs(model.inputs, spec.label)
                assert not audit.violations, audit.violations

    def test_solved_cell_passes_every_audit(self, solved):
        model, system, state, diag, report = solved
        for audit in (
                audit_state(system, state, "cell"),
                audit_report(report, "cell"),
                audit_diagnostics(diag, model.solver.tolerance, "cell"),
                audit_interference(system.interference, 10, "cell")):
            assert not _errors(audit), audit.violations

    def test_deep_saturation_is_warning_not_error(self):
        """Documented policy: the unclamped eq-(7) U_bus may exceed 1
        by a whisker in deep saturation (observed <= 1.005 at N=100
        on the Appendix-A grid).  That must stay a WARNING -- the run
        still passes -- while anything past the 20 % allowance is an
        ERROR.  Regression for the seed behaviour at N=100."""
        model = CacheMVAModel(
            appendix_a_workload(SharingLevel.ONE_PERCENT),
            ProtocolSpec.of(1, 4))
        system = model.system(100)
        state, diag = model.solver.solve(system)
        assert state.u_bus > 1.0  # the artifact this policy exists for
        audit = audit_state(system, state, "N=100")
        assert not _errors(audit)
        assert any(v.law == "utilization-saturated"
                   for v in audit.violations)

    def test_single_cache_has_no_interference(self):
        model = CacheMVAModel(
            appendix_a_workload(SharingLevel.TWENTY_PERCENT))
        audit = audit_interference(model.system(1).interference, 1, "N=1")
        assert not audit.violations

    def test_sweep_shape_on_honest_sweep(self):
        model = CacheMVAModel(
            appendix_a_workload(SharingLevel.FIVE_PERCENT))
        reports = [model.solve(n) for n in (1, 5, 10, 20)]
        audit = audit_sweep_shape(reports, "sweep")
        assert not audit.violations


class TestCorruptionIsCaught:
    """The adversarial half: break one value, the right law fires."""

    def test_negative_waiting_time(self, solved):
        _, system, state, _, _ = solved
        bad = dataclasses.replace(state, w_bus=-0.25)
        audit = audit_state(system, bad, "bad")
        assert any(v.law == "waiting-nonnegative"
                   for v in _errors(audit))

    def test_broken_littles_law(self, solved):
        _, system, state, _, _ = solved
        bad = dataclasses.replace(state, u_bus=state.u_bus * 0.5)
        audit = audit_state(system, bad, "bad")
        laws = {v.law for v in _errors(audit)}
        assert "littles-law-bus" in laws

    def test_utilization_past_allowance_is_error(self, solved):
        _, system, state, _, _ = solved
        bad = dataclasses.replace(state,
                                  u_mem=CAPACITY_OVERSHOOT + 0.05)
        audit = audit_state(system, bad, "bad")
        assert any(v.law == "utilization-range" for v in _errors(audit))

    def test_not_a_fixed_point(self, solved):
        _, system, state, _, _ = solved
        bad = dataclasses.replace(state, q_bus=state.q_bus + 0.5)
        audit = audit_state(system, bad, "bad")
        assert any(v.law == "fixed-point-residual"
                   for v in _errors(audit))

    def test_report_utilization_corruption(self, solved):
        *_, report = solved
        bad = dataclasses.replace(report, u_bus=1.5)
        audit = audit_report(bad, "bad")
        assert any(v.law == "utilization-range" for v in _errors(audit))

    def test_diagnostics_converged_above_tolerance(self, solved):
        model, _, _, diag, _ = solved
        bad = dataclasses.replace(diag, converged=True,
                                  final_residual=1.0)
        audit = audit_diagnostics(bad, model.solver.tolerance, "bad")
        assert any(v.law == "converged-residual"
                   for v in _errors(audit))

    def test_diagnostics_bad_ladder(self, solved):
        model, _, _, diag, _ = solved
        bad = dataclasses.replace(diag, ladder=(0.5, 1.0),
                                  recovered=True)
        audit = audit_diagnostics(bad, model.solver.tolerance, "bad")
        assert any(v.law == "ladder-descending"
                   for v in _errors(audit))

    def test_sweep_shape_catches_utilization_drop(self):
        model = CacheMVAModel(
            appendix_a_workload(SharingLevel.FIVE_PERCENT))
        reports = [model.solve(n) for n in (5, 10)]
        corrupted = dataclasses.replace(reports[1], u_bus=0.0)
        audit = audit_sweep_shape([reports[0], corrupted], "sweep")
        assert any(v.law == "bus-utilization-monotone"
                   for v in _errors(audit))

    def test_sweep_shape_rejects_duplicate_sizes(self):
        model = CacheMVAModel(
            appendix_a_workload(SharingLevel.FIVE_PERCENT))
        report = model.solve(8)
        audit = audit_sweep_shape([report, report], "sweep")
        assert any(v.law == "sweep-distinct-sizes"
                   for v in _errors(audit))


class TestProtocolMachineAudit:
    def test_every_combination_passes_at_depth_three(self):
        for spec in all_combinations():
            audit = audit_protocol_machine(spec, spec.label, depth=3)
            assert audit.checks > 0
            assert not audit.violations, (spec.label, audit.violations)

    def test_detects_planted_coherence_bug(self, monkeypatch):
        """Force the machine to leave memory staleness inconsistent and
        confirm the external check (not only the machine's own assert)
        reports it as a structured violation."""
        from repro.protocols import machine as machine_mod

        original = machine_mod.CoherenceMachine.access

        def stale(self, cache_id, op):
            result = original(self, cache_id, op)
            self.memory_fresh = not self.memory_fresh
            return result

        monkeypatch.setattr(machine_mod.CoherenceMachine, "access",
                            stale)
        audit = audit_protocol_machine(ProtocolSpec(), "WO", depth=2)
        assert any(v.law in ("memory-freshness", "protocol-transition")
                   for v in _errors(audit))
