"""Tests for the 3-bit block state space."""

from repro.protocols.states import BlockState, StateBits


class TestBlockState:
    def test_five_reachable_states(self):
        assert len(BlockState) == 5

    def test_invalid_bits(self):
        s = BlockState.INVALID
        assert not s.valid and not s.exclusive and not s.wback

    def test_exclusive_states_writable_without_bus(self):
        assert BlockState.EXCLUSIVE_CLEAN.writable_without_bus
        assert BlockState.EXCLUSIVE_WBACK.writable_without_bus

    def test_shared_states_need_bus_for_writes(self):
        assert not BlockState.SHARED_CLEAN.writable_without_bus
        assert not BlockState.SHARED_WBACK.writable_without_bus
        assert not BlockState.INVALID.writable_without_bus

    def test_wback_flag(self):
        assert BlockState.SHARED_WBACK.wback
        assert BlockState.EXCLUSIVE_WBACK.wback
        assert not BlockState.SHARED_CLEAN.wback
        assert not BlockState.EXCLUSIVE_CLEAN.wback

    def test_from_bits_roundtrip(self):
        for state in BlockState:
            if not state.valid:
                continue
            bits = state.bits
            assert BlockState.from_bits(bits.valid, bits.exclusive, bits.wback) is state

    def test_from_bits_invalid_ignores_other_bits(self):
        assert BlockState.from_bits(False, True, True) is BlockState.INVALID

    def test_bits_dataclass_equality(self):
        assert StateBits(True, False, False) == StateBits(True, False, False)
        assert StateBits(True, False, False) != StateBits(True, True, False)

    def test_states_distinct(self):
        bit_patterns = {s.bits for s in BlockState}
        assert len(bit_patterns) == 5
