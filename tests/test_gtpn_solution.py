"""Tests for reachability, steady-state solution, and measures."""

import pytest

from repro.gtpn.markov import solve_steady_state
from repro.gtpn.measures import SteadyStateMeasures
from repro.gtpn.models import (
    coherence_net,
    machine_repairman_net,
    mm1_net,
    solve_coherence_speedup,
)
from repro.gtpn.net import PetriNet
from repro.gtpn.reachability import StateSpaceExplosion, build_reachability
from repro.queueing import MM1, delay, exact_mva, queueing
from repro.workload.derived import derive_inputs


def _measures(net):
    graph = build_reachability(net)
    return graph, SteadyStateMeasures(solve_steady_state(graph))


class TestReachability:
    def test_mm1_capacity_bounds_states(self):
        graph = build_reachability(mm1_net(0.5, 1.0, capacity=7))
        # markings (q, room) with q + room = 7 -> 8 states.
        assert graph.n_states == 8
        assert graph.n_tangible == 8
        assert graph.n_vanishing == 0

    def test_immediate_states_classified_vanishing(self):
        net = PetriNet()
        a = net.add_place("a", tokens=1)
        b = net.add_place("b")
        c = net.add_place("c")
        slow = net.add_transition("slow", rate=1.0)
        fast = net.add_transition("imm")
        net.connect(a, slow)
        net.connect(slow, b)
        net.connect(b, fast)
        net.connect(fast, c)
        graph = build_reachability(net)
        # a=1 tangible; b=1 vanishing; c=1 tangible (deadlock).
        assert graph.n_vanishing == 1
        assert graph.n_tangible == 2

    def test_state_budget_enforced(self):
        net = PetriNet()
        a = net.add_place("a", tokens=0)
        t = net.add_transition("source", rate=1.0)
        net.connect(t, a)  # unbounded growth
        with pytest.raises(StateSpaceExplosion):
            build_reachability(net, max_states=50)

    def test_edges_capture_rates(self):
        net = mm1_net(0.5, 2.0, capacity=3)
        graph = build_reachability(net)
        first = graph.edges[graph.state_id(net.initial_marking)]
        assert len(first) == 1  # only arrivals from the empty state
        assert first[0].value == pytest.approx(0.5)


class TestSteadyStateOracles:
    def test_mm1_queue_length(self):
        """Large capacity approximates the infinite M/M/1."""
        net = mm1_net(0.5, 1.0, capacity=30)
        _, m = _measures(net)
        expected = MM1(0.5, 1.0).mean_queue_length
        assert m.expected_tokens(net.place("queue")) == pytest.approx(
            expected, rel=1e-3)

    def test_mm1_utilization(self):
        net = mm1_net(0.4, 1.0, capacity=30)
        _, m = _measures(net)
        assert m.utilization(net.place("queue")) == pytest.approx(0.4, rel=1e-3)

    def test_mm1_throughput_balance(self):
        net = mm1_net(0.6, 1.0, capacity=30)
        _, m = _measures(net)
        arrive = m.throughput(net.transition("arrive"))
        serve = m.throughput(net.transition("serve"))
        assert arrive == pytest.approx(serve, rel=1e-9)
        assert serve == pytest.approx(0.6, rel=1e-3)

    def test_repairman_matches_exact_mva(self):
        """Exponential closed network: GTPN must equal product-form MVA."""
        net = machine_repairman_net(6, think_rate=0.2, service_rate=1.0)
        _, m = _measures(net)
        gtpn_x = m.throughput(net.transition("repair"))
        mva = exact_mva([delay("think", 5.0), queueing("server", 1.0)], 6)
        assert gtpn_x == pytest.approx(mva.throughput, rel=1e-9)

    def test_repairman_queue_matches_mva(self):
        net = machine_repairman_net(4, think_rate=0.5, service_rate=1.0)
        _, m = _measures(net)
        mva = exact_mva([delay("think", 2.0), queueing("server", 1.0)], 4)
        assert m.expected_tokens(net.place("waiting")) == pytest.approx(
            mva.queue_lengths["server"], rel=1e-9)

    def test_probabilities_sum_to_one(self):
        net = machine_repairman_net(5, 0.3, 1.0)
        graph, m = _measures(net)
        total = m.probability(lambda marking: True)
        assert total == pytest.approx(1.0, abs=1e-12)

    def test_probability_of_state(self):
        net = mm1_net(0.5, 1.0, capacity=10)
        graph = build_reachability(net)
        steady = solve_steady_state(graph)
        p_empty = steady.probability_of(graph.state_id(net.initial_marking))
        # M/M/1/c with rho=0.5, c=10: p0 = (1-rho)/(1-rho^{c+1}).
        expected = 0.5 / (1.0 - 0.5 ** 11)
        assert p_empty == pytest.approx(expected, rel=1e-9)


class TestVanishingElimination:
    def test_immediate_branch_probabilities(self):
        """A 70/30 immediate split must shape the downstream stationary
        distribution accordingly."""
        net = PetriNet()
        src = net.add_place("src", tokens=1)
        fork = net.add_place("fork")
        left = net.add_place("left")
        right = net.add_place("right")
        go = net.add_transition("go", rate=1.0)
        to_left = net.add_transition("to_left", weight=0.7)
        to_right = net.add_transition("to_right", weight=0.3)
        back_l = net.add_transition("back_l", rate=1.0)
        back_r = net.add_transition("back_r", rate=1.0)
        net.connect(src, go)
        net.connect(go, fork)
        net.connect(fork, to_left)
        net.connect(to_left, left)
        net.connect(fork, to_right)
        net.connect(to_right, right)
        net.connect(left, back_l)
        net.connect(back_l, src)
        net.connect(right, back_r)
        net.connect(back_r, src)
        _, m = _measures(net)
        p_left = m.utilization(net.place("left"))
        p_right = m.utilization(net.place("right"))
        assert p_left / (p_left + p_right) == pytest.approx(0.7, rel=1e-9)

    def test_immediate_throughput_matches_split(self):
        net = PetriNet()
        src = net.add_place("src", tokens=1)
        fork = net.add_place("fork")
        go = net.add_transition("go", rate=2.0)
        a = net.add_transition("a", weight=1.0)
        b = net.add_transition("b", weight=3.0)
        net.connect(src, go)
        net.connect(go, fork)
        net.connect(fork, a)
        net.connect(a, src)
        net.connect(fork, b)
        net.connect(b, src)
        _, m = _measures(net)
        x_go = m.throughput(net.transition("go"))
        assert m.throughput(a) == pytest.approx(0.25 * x_go, rel=1e-9)
        assert m.throughput(b) == pytest.approx(0.75 * x_go, rel=1e-9)

    def test_chained_immediates(self):
        """Two vanishing hops in a row fold correctly."""
        net = PetriNet()
        src = net.add_place("src", tokens=1)
        v1 = net.add_place("v1")
        v2 = net.add_place("v2")
        dst = net.add_place("dst")
        go = net.add_transition("go", rate=1.0)
        i1 = net.add_transition("i1")
        i2 = net.add_transition("i2")
        back = net.add_transition("back", rate=1.0)
        net.connect(src, go)
        net.connect(go, v1)
        net.connect(v1, i1)
        net.connect(i1, v2)
        net.connect(v2, i2)
        net.connect(i2, dst)
        net.connect(dst, back)
        net.connect(back, src)
        _, m = _measures(net)
        # Symmetric two-state cycle in effect: half the time in each.
        assert m.utilization(net.place("dst")) == pytest.approx(0.5, rel=1e-9)


class TestCoherenceNet:
    def test_small_system_close_to_mva(self, workload_5pct):
        """At N=1-2 contention is mild, so the exponential GTPN should sit
        within ~10 % of the MVA (service-distribution differences grow
        with contention)."""
        from repro.core.model import CacheMVAModel
        inputs = derive_inputs(workload_5pct)
        mva = CacheMVAModel(workload_5pct)
        for n in (1, 2):
            sol = solve_coherence_speedup(n, inputs)
            assert sol.speedup == pytest.approx(mva.speedup(n), rel=0.10), n

    def test_state_space_grows_fast(self, workload_5pct):
        """The paper's Section 3.2 complaint, in miniature."""
        inputs = derive_inputs(workload_5pct)
        counts = [solve_coherence_speedup(n, inputs).n_states
                  for n in (1, 2, 3, 4)]
        assert counts == sorted(counts)
        growth = [b / a for a, b in zip(counts, counts[1:])]
        assert min(growth) > 1.4  # super-linear growth per added processor

    def test_erlang_stages_increase_states_and_speedup(self, workload_5pct):
        """Sharper (more deterministic) service reduces queueing variance
        -> less waiting -> more speedup; and costs more states."""
        inputs = derive_inputs(workload_5pct)
        k1 = solve_coherence_speedup(3, inputs, erlang=1)
        k4 = solve_coherence_speedup(3, inputs, erlang=4)
        assert k4.n_states > 2 * k1.n_states
        assert k4.speedup > k1.speedup

    def test_erlang_ladder_converges(self, workload_5pct):
        """The Erlang ladder increases monotonically (less service
        variance -> less queueing) and converges towards the
        deterministic-time limit, staying within a few percent of the
        MVA (which the paper shows slightly *underestimates* the
        deterministic detailed model)."""
        from repro.core.model import CacheMVAModel
        inputs = derive_inputs(workload_5pct)
        mva = CacheMVAModel(workload_5pct).speedup(3)
        ladder = [solve_coherence_speedup(3, inputs, erlang=k).speedup
                  for k in (1, 2, 4, 6)]
        assert ladder == sorted(ladder)
        # Converging: later rungs move less than earlier ones.
        assert ladder[3] - ladder[2] < ladder[1] - ladder[0]
        for value in ladder:
            assert value == pytest.approx(mva, rel=0.05)

    def test_bus_utilization_reported(self, workload_5pct):
        inputs = derive_inputs(workload_5pct)
        sol = solve_coherence_speedup(4, inputs)
        assert 0.0 < sol.bus_utilization < 1.0

    def test_invalid_n(self, workload_5pct):
        with pytest.raises(ValueError):
            coherence_net(0, derive_inputs(workload_5pct))


class TestDetailedCoherenceNet:
    def test_much_larger_state_space(self, workload_5pct):
        """The added mechanisms cost roughly an order of magnitude in
        states -- the fidelity/cost trade the paper is about."""
        inputs = derive_inputs(workload_5pct)
        reduced = solve_coherence_speedup(3, inputs)
        detailed = solve_coherence_speedup(3, inputs, detailed=True)
        assert detailed.n_states > 5 * reduced.n_states

    def test_agrees_with_reduced_and_mva(self, workload_5pct):
        from repro.core.model import CacheMVAModel
        inputs = derive_inputs(workload_5pct)
        mva = CacheMVAModel(workload_5pct)
        for n in (1, 2, 4):
            detailed = solve_coherence_speedup(n, inputs, detailed=True)
            assert detailed.speedup == pytest.approx(mva.speedup(n),
                                                     rel=0.05), n

    def test_memory_contention_slows_it_down(self, workload_5pct):
        """With the module pool represented, broadcasts can stall on
        memory, so the detailed net sits at or below the reduced one."""
        inputs = derive_inputs(workload_5pct)
        for n in (2, 3, 4):
            reduced = solve_coherence_speedup(n, inputs)
            detailed = solve_coherence_speedup(n, inputs, detailed=True)
            assert detailed.speedup <= reduced.speedup + 1e-6, n

    def test_mod3_skips_the_memory_stage(self, workload_5pct):
        """Under modification 3 broadcasts do not touch memory, so the
        detailed net omits the module pool on the broadcast path."""
        from repro.gtpn.models import coherence_net_detailed
        from repro.protocols.modifications import ProtocolSpec
        w3 = ProtocolSpec.of(3).adjust_workload(workload_5pct)
        inputs = derive_inputs(w3, mods={3})
        net = coherence_net_detailed(2, inputs)
        names = {t.name for t in net.transitions}
        assert "bc_acquire_mem" not in names

    def test_branch_variance_represented(self, workload_5pct):
        """The detailed net has distinct remote-read service branches."""
        from repro.gtpn.models import coherence_net_detailed
        inputs = derive_inputs(workload_5pct)
        net = coherence_net_detailed(2, inputs)
        picks = [t.name for t in net.transitions if t.name.endswith("_pick")]
        assert len(picks) >= 3

    def test_detailed_mod2_uses_supply_branch(self, workload_5pct):
        from repro.core.model import CacheMVAModel
        from repro.protocols.modifications import ProtocolSpec
        model = CacheMVAModel(workload_5pct, ProtocolSpec.of(2))
        detailed = solve_coherence_speedup(3, model.inputs, detailed=True)
        assert detailed.speedup == pytest.approx(model.speedup(3), rel=0.05)
