"""Tests for the synthetic trace generator."""

from collections import Counter

import pytest

from repro.trace.generator import (
    GeneratorConfig,
    SyntheticTraceGenerator,
    StreamKind,
)


@pytest.fixture
def generator():
    return SyntheticTraceGenerator(GeneratorConfig(seed=11))


class TestGeneratorConfig:
    def test_defaults_valid(self):
        GeneratorConfig()

    def test_mix_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            GeneratorConfig(p_private=0.9, p_sro=0.05, p_sw=0.02)

    def test_bounds(self):
        with pytest.raises(ValueError):
            GeneratorConfig(n_processors=0)
        with pytest.raises(ValueError):
            GeneratorConfig(hot_probability=1.5)
        with pytest.raises(ValueError):
            GeneratorConfig(sw_blocks=0)


class TestAddressLayout:
    def test_regions_disjoint_and_classified(self, generator):
        cfg = generator.config
        for ref in generator.trace(20_000):
            assert generator.stream_of(ref.block) is ref.stream
            if ref.stream is StreamKind.PRIVATE:
                assert ref.block < cfg.n_processors * cfg.private_blocks

    def test_private_blocks_per_cpu_disjoint(self, generator):
        cfg = generator.config
        seen: dict[int, int] = {}
        for ref in generator.trace(30_000):
            if ref.stream is not StreamKind.PRIVATE:
                continue
            owner = ref.block // cfg.private_blocks
            assert owner == ref.cpu
            seen.setdefault(ref.block, ref.cpu)

    def test_sro_never_written(self, generator):
        for ref in generator.trace(20_000):
            if ref.stream is StreamKind.SRO:
                assert not ref.is_write


class TestFrequencies:
    def test_stream_mix(self, generator):
        counts = Counter(ref.stream for ref in generator.trace(100_000))
        total = sum(counts.values())
        assert counts[StreamKind.PRIVATE] / total == pytest.approx(0.95, abs=0.01)
        assert counts[StreamKind.SRO] / total == pytest.approx(0.03, abs=0.005)
        assert counts[StreamKind.SW] / total == pytest.approx(0.02, abs=0.005)

    def test_read_fractions(self, generator):
        refs = list(generator.trace(100_000))
        private = [r for r in refs if r.stream is StreamKind.PRIVATE]
        sw = [r for r in refs if r.stream is StreamKind.SW]
        read_frac_p = sum(not r.is_write for r in private) / len(private)
        read_frac_sw = sum(not r.is_write for r in sw) / len(sw)
        assert read_frac_p == pytest.approx(0.7, abs=0.01)
        assert read_frac_sw == pytest.approx(0.5, abs=0.03)

    def test_hot_set_concentration(self):
        cfg = GeneratorConfig(hot_fraction=0.05, hot_probability=0.9, seed=2)
        gen = SyntheticTraceGenerator(cfg)
        hot_limit = int(cfg.sw_blocks * cfg.hot_fraction)
        sw_base = cfg.n_processors * cfg.private_blocks + cfg.sro_blocks
        hits = total = 0
        for ref in gen.trace(200_000):
            if ref.stream is StreamKind.SW:
                total += 1
                if ref.block - sw_base < hot_limit:
                    hits += 1
        # hot_probability + cold picks landing in the hot range.
        expected = 0.9 + 0.1 * cfg.hot_fraction
        assert hits / total == pytest.approx(expected, abs=0.02)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = SyntheticTraceGenerator(GeneratorConfig(seed=5))
        b = SyntheticTraceGenerator(GeneratorConfig(seed=5))
        assert list(a.trace(500)) == list(b.trace(500))

    def test_different_seed_differs(self):
        a = SyntheticTraceGenerator(GeneratorConfig(seed=5))
        b = SyntheticTraceGenerator(GeneratorConfig(seed=6))
        assert list(a.trace(500)) != list(b.trace(500))

    def test_round_robin_cpus(self):
        gen = SyntheticTraceGenerator(GeneratorConfig(n_processors=3, seed=1))
        cpus = [ref.cpu for ref in gen.trace_round_robin(9)]
        assert cpus == [0, 1, 2, 0, 1, 2, 0, 1, 2]

    def test_negative_length_rejected(self, generator):
        with pytest.raises(ValueError):
            list(generator.trace(-1))
        with pytest.raises(ValueError):
            list(generator.trace_round_robin(-1))
