"""Shared fixtures: the paper's workloads, protocols, and models."""

from __future__ import annotations

import pytest

from repro.core.model import CacheMVAModel
from repro.protocols.modifications import ProtocolSpec
from repro.workload.parameters import (
    ArchitectureParams,
    SharingLevel,
    WorkloadParameters,
    appendix_a_workload,
    stress_test_workload,
)


@pytest.fixture
def workload_5pct() -> WorkloadParameters:
    """The Appendix-A workload at the 5 % sharing level."""
    return appendix_a_workload(SharingLevel.FIVE_PERCENT)


@pytest.fixture
def workload_1pct() -> WorkloadParameters:
    return appendix_a_workload(SharingLevel.ONE_PERCENT)


@pytest.fixture
def workload_20pct() -> WorkloadParameters:
    return appendix_a_workload(SharingLevel.TWENTY_PERCENT)


@pytest.fixture
def stress_workload() -> WorkloadParameters:
    return stress_test_workload()


@pytest.fixture
def default_arch() -> ArchitectureParams:
    return ArchitectureParams()


@pytest.fixture
def write_once_spec() -> ProtocolSpec:
    return ProtocolSpec()


@pytest.fixture(params=[(), (1,), (2,), (3,), (4,), (1, 4), (2, 3), (1, 2, 3), (1, 2, 3, 4)],
                ids=lambda mods: "WO" if not mods else "WO+" + "+".join(map(str, mods)))
def any_protocol(request) -> ProtocolSpec:
    """A representative slice of the 16 modification combinations."""
    return ProtocolSpec.of(*request.param)


@pytest.fixture
def model_wo_5pct(workload_5pct) -> CacheMVAModel:
    """Write-Once model at 5 % sharing -- the paper's central instance."""
    return CacheMVAModel(workload_5pct, ProtocolSpec())
