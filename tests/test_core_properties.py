"""Hypothesis property tests on the MVA model's global invariants.

These run the full fixed-point solve on randomly generated (valid)
workloads, protocols and system sizes, and check the physics the model
must never violate regardless of parameters:

* R >= tau + T_supply (a request cannot beat the no-contention path);
* speedup <= N, and <= the bus-capacity bound;
* utilizations and probabilities stay in range;
* adding processors never reduces total throughput;
* inflating any contention parameter never helps.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.model import CacheMVAModel
from repro.core.solver import FixedPointSolver
from repro.protocols.modifications import ProtocolSpec
from repro.workload.parameters import WorkloadParameters

from tests.strategies import PROTOCOLS, SIZES, workloads

#: Tolerant solver: extreme random workloads may need damping-free
#: iteration past the default comfort zone.
SOLVER = FixedPointSolver(max_iterations=3000, raise_on_divergence=False)


def _solve(workload, protocol, n):
    model = CacheMVAModel(workload, protocol, solver=SOLVER)
    return model, model.solve(n)


class TestPhysicalInvariants:
    @given(workloads(), PROTOCOLS, SIZES)
    @settings(max_examples=150, deadline=None)
    def test_cycle_time_floor_and_speedup_ceiling(self, w, protocol, n):
        model, report = _solve(w, protocol, n)
        assume(report.converged)
        ideal = model.workload.tau + 1.0
        assert report.cycle_time >= ideal - 1e-9
        assert report.speedup <= n + 1e-9
        assert report.speedup >= 0.0

    @given(workloads(), PROTOCOLS, SIZES)
    @settings(max_examples=150, deadline=None)
    def test_reported_quantities_in_range(self, w, protocol, n):
        model, report = _solve(w, protocol, n)
        assume(report.converged)
        assert 0.0 <= report.u_bus <= 1.0
        assert 0.0 <= report.u_mem <= 1.0
        assert report.w_bus >= 0.0
        assert report.w_mem >= 0.0
        assert report.q_bus >= 0.0
        assert 0.0 <= report.p_prime_interference <= report.p_interference <= 1.0
        assert math.isfinite(report.cycle_time)

    @given(workloads(), PROTOCOLS, SIZES)
    @settings(max_examples=100, deadline=None)
    def test_bus_capacity_bound_approximately(self, w, protocol, n):
        """The true system obeys speedup <= (tau+1) / (bus demand per
        request).  The *approximate* MVA can overshoot this bound in
        deep saturation (the equation-6 arrival estimate drops the
        arriving customer; in the tau = 0 all-miss limit the overshoot
        reaches ~23 % at N=2).  The property we hold the model to is
        that the violation stays bounded -- everywhere."""
        model, report = _solve(w, protocol, n)
        assume(report.converged)
        inp = model.inputs
        bus_per_request = inp.p_bc * inp.t_bc + inp.p_rr * inp.t_read
        assume(bus_per_request > 1e-9)
        bound = (model.workload.tau + 1.0) / bus_per_request
        assert report.speedup <= bound * 1.25

    @given(workloads(), PROTOCOLS)
    @settings(max_examples=80, deadline=None)
    def test_throughput_nearly_monotone_in_n(self, w, protocol):
        """Total request throughput N/R never drops *materially* when N
        grows.  Exact monotonicity fails in deep saturation for the
        same arrival-estimate reason as the capacity bound; the drop is
        bounded at ~15 %."""
        values = []
        for n in (1, 4, 16, 64):
            _, report = _solve(w, protocol, n)
            assume(report.converged)
            values.append(n / report.cycle_time)
        for earlier, later in zip(values, values[1:]):
            assert later >= earlier * 0.85


class TestParameterMonotonicity:
    @given(workloads(), st.integers(min_value=2, max_value=32))
    @settings(max_examples=60, deadline=None)
    def test_hit_rate_improvement_never_hurts(self, w, n):
        assume(w.h_private <= 0.98)
        _, base = _solve(w, ProtocolSpec(), n)
        better = w.replace(h_private=min(w.h_private + 0.02, 1.0))
        _, improved = _solve(better, ProtocolSpec(), n)
        assume(base.converged and improved.converged)
        # Exact parameter monotonicity is not a theorem of the
        # approximate MVA: in deep bus saturation the eq-(6) arrival
        # estimate can invert the trend slightly even though the
        # detailed simulator shows the true system improving (see
        # test_saturated_hit_rate_dip_is_bounded for the pinned
        # counterexample).  Demand monotonicity away from saturation,
        # a bounded dip inside it.
        dip = 0.05 if base.u_bus > 0.85 else 1e-6
        assert improved.speedup >= base.speedup * (1.0 - dip)

    def test_saturated_hit_rate_dip_is_bounded(self):
        """Pinned hypothesis counterexample (2026-08): at tau=0 with
        all-write private traffic the MVA's contention terms grow
        faster than the shrinking service demand, so raising
        h_private 0.9375 -> 0.9575 *lowers* speedup ~0.5 % while the
        seeded DES improves ~4 % on the same inputs.  The inversion is
        an approximation artifact, not an implementation bug (the
        fixed point satisfies every eq-(1)-(13) identity); pin that it
        stays small so a model change that widens it fails loudly."""
        w = WorkloadParameters(
            tau=0.0, p_private=0.5, p_sro=0.5, p_sw=0.0,
            h_private=0.9375, h_sro=0.75, h_sw=0.0,
            r_private=0.0, r_sw=0.0, amod_private=1.0, amod_sw=0.0,
            csupply_sro=1.0, csupply_sw=0.0, wb_csupply=1.0,
            rep_p=0.0, rep_sw=0.0)
        _, base = _solve(w, ProtocolSpec(), 3)
        _, improved = _solve(w.replace(h_private=0.9575), ProtocolSpec(), 3)
        assert base.converged and improved.converged
        assert base.u_bus > 0.85  # only bites in deep saturation
        assert improved.speedup < base.speedup  # the artifact exists...
        assert improved.speedup >= base.speedup * 0.98  # ...and is tiny

    @given(workloads(), st.integers(min_value=2, max_value=32))
    @settings(max_examples=60, deadline=None)
    def test_slower_thinking_lowers_utilization(self, w, n):
        _, base = _solve(w, ProtocolSpec(), n)
        slower = w.replace(tau=w.tau + 5.0)
        _, relaxed = _solve(slower, ProtocolSpec(), n)
        assume(base.converged and relaxed.converged)
        assert relaxed.u_bus <= base.u_bus + 1e-6

    @given(workloads(), st.integers(min_value=2, max_value=32))
    @settings(max_examples=60, deadline=None)
    def test_more_writebacks_never_help(self, w, n):
        assume(w.rep_p <= 0.9)
        _, base = _solve(w, ProtocolSpec(), n)
        worse = w.replace(rep_p=min(w.rep_p + 0.1, 1.0))
        _, degraded = _solve(worse, ProtocolSpec(), n)
        assume(base.converged and degraded.converged)
        assert degraded.speedup <= base.speedup * (1.0 + 1e-6)


class TestSolverRobustness:
    @given(workloads(), PROTOCOLS, SIZES)
    @settings(max_examples=150, deadline=None)
    def test_solver_always_terminates_cleanly(self, w, protocol, n):
        """No exceptions, no NaNs, for any valid input."""
        model = CacheMVAModel(w, protocol, solver=SOLVER)
        report = model.solve(n)
        assert math.isfinite(report.cycle_time)
        assert report.cycle_time > 0.0

    @given(workloads())
    @settings(max_examples=60, deadline=None)
    def test_damping_reaches_same_fixed_point(self, w):
        plain = CacheMVAModel(
            w, solver=FixedPointSolver(max_iterations=3000,
                                       raise_on_divergence=False))
        damped = CacheMVAModel(
            w, solver=FixedPointSolver(max_iterations=3000, damping=0.5,
                                       raise_on_divergence=False))
        a, b = plain.solve(16), damped.solve(16)
        assume(a.converged and b.converged)
        assert a.speedup == pytest.approx(b.speedup, rel=1e-4)
