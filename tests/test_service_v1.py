"""The versioned /v1 API: unified schema, error envelope, retirement.

The consolidated /v1 routes (including the 410 answers on the retired
unversioned endpoints) are covered by ``test_service_http.py``; this
module covers the contract details on top:

* the structured error envelope ``{"error": {code, message, detail}}``;
* strict request parsing (unknown top-level fields are a 400);
* the retired legacy endpoints answering 410 ``gone`` everywhere;
* ``Allow`` headers on 405 responses;
* the ``engine`` request field and the typed schema module itself.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import ModelService, start_server
from repro.service.schema import (
    GridRequest,
    ServiceError,
    SolveRequest,
)
from repro.workload.parameters import SharingLevel


@pytest.fixture()
def server():
    server = start_server(ModelService())
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _get(server, path):
    try:
        with urllib.request.urlopen(server.url + path, timeout=10) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def _post(server, path, body):
    request = urllib.request.Request(
        server.url + path, data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, dict(resp.headers), json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())


class TestV1Routes:
    def test_healthz(self, server):
        status, headers, body = _get(server, "/v1/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["engine"] == "scalar"
        assert "Deprecation" not in headers

    def test_metrics(self, server):
        _post(server, "/v1/solve", {"protocol": "berkeley", "n": 4})
        status, headers, body = _get(server, "/v1/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "repro_cells_solved_total" in body.decode()
        assert "Deprecation" not in headers

    def test_solve_response_schema(self, server):
        body = {"protocol": "berkeley", "n": [4, 10]}
        status, headers, v1 = _post(server, "/v1/solve", body)
        assert status == 200
        assert "Deprecation" not in headers
        assert set(v1) == {"protocol", "sharing", "results", "failures",
                           "summary"}
        assert [r["n_processors"] for r in v1["results"]] == [4, 10]

    def test_grid(self, server):
        status, _, payload = _post(server, "/v1/grid", {
            "protocols": ["write-once", "1"], "n": [2, 4],
            "sharing": ["5"]})
        assert status == 200
        assert len(payload["cells"]) == 4
        assert payload["summary"]["total"] == 4

    def test_unknown_v1_path_is_404_with_envelope(self, server):
        status, _, body = _get(server, "/v1/nope")
        assert status == 404
        error = json.loads(body)["error"]
        assert error["code"] == "not-found"
        assert "unknown path" in error["message"]

    def test_unknown_version_is_404(self, server):
        status, _, _ = _get(server, "/v2/healthz")
        assert status == 404


class TestV1ErrorEnvelope:
    def test_missing_field(self, server):
        status, _, payload = _post(server, "/v1/solve", {"n": 4})
        assert status == 400
        error = payload["error"]
        assert error["code"] == "missing-field"
        assert "missing required field 'protocol'" in error["message"]

    def test_bad_engine(self, server):
        status, _, payload = _post(server, "/v1/solve", {
            "protocol": "berkeley", "n": 4, "engine": "quantum"})
        assert status == 400
        assert payload["error"]["code"] == "bad-request"
        assert "'engine'" in payload["error"]["message"]

    def test_unknown_top_level_field_rejected(self, server):
        status, _, payload = _post(server, "/v1/solve", {
            "protocol": "berkeley", "n": 4, "shading": "5"})
        assert status == 400
        error = payload["error"]
        assert error["code"] == "unknown-field"
        assert "'shading'" in error["message"]
        assert error["detail"]["unknown"] == ["shading"]
        assert "sharing" in error["detail"]["allowed"]

    def test_method_not_allowed_carries_allow_header(self, server):
        status, headers, body = _get(server, "/v1/solve")
        assert status == 405
        assert headers["Allow"] == "POST"
        assert json.loads(body)["error"]["code"] == "method-not-allowed"
        status, headers, _ = _post(server, "/v1/metrics", {})
        assert status == 405
        assert headers["Allow"] == "GET"


class TestLegacyRetirement:
    """The unversioned endpoints shipped Deprecation/Link headers for
    two release cycles and are now 410 Gone per the documented policy."""

    def test_legacy_get_paths_are_gone_with_successor(self, server):
        for path in ("/healthz", "/metrics"):
            status, headers, body = _get(server, path)
            assert status == 410
            error = json.loads(body)["error"]
            assert error["code"] == "gone"
            assert error["detail"]["successor"] == f"/v1{path}"
            assert f"</v1{path}>" in headers["Link"]
            assert 'rel="successor-version"' in headers["Link"]

    def test_legacy_solve_is_gone_even_with_a_valid_body(self, server):
        status, _, payload = _post(server, "/solve",
                                   {"protocol": "berkeley", "n": 4})
        assert status == 410
        assert payload["error"]["code"] == "gone"
        assert payload["error"]["detail"]["successor"] == "/v1/solve"

    def test_plain_404_carries_no_successor_link(self, server):
        _, headers, _ = _get(server, "/nope")
        assert "Link" not in headers


class TestEngineField:
    def test_solve_with_batch_engine_matches_scalar(self, server):
        scalar = _post(server, "/v1/solve",
                       {"protocol": "berkeley", "n": [4, 10]})[2]
        # Fresh service so the cache cannot mask the engine.
        batch_server = start_server(ModelService())
        thread = threading.Thread(target=batch_server.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            batch = _post(batch_server, "/v1/solve",
                          {"protocol": "berkeley", "n": [4, 10],
                           "engine": "batch"})[2]
        finally:
            batch_server.shutdown()
            batch_server.server_close()
            thread.join(timeout=5)
        assert batch["summary"]["mode"] == "batch"
        assert [r["speedup"] for r in batch["results"]] == \
            [r["speedup"] for r in scalar["results"]]

    def test_grid_engine_field(self, server):
        status, _, payload = _post(server, "/v1/grid", {
            "protocols": ["write-once"], "n": [2, 4], "sharing": ["5"],
            "engine": "batch"})
        assert status == 200
        assert payload["summary"]["mode"] == "batch"
        assert all(c["status"] == "ok" for c in payload["cells"])

    def test_service_default_engine(self):
        service = ModelService(engine="batch")
        payload = service.grid({"protocols": ["write-once"], "n": [2],
                                "sharing": ["5"]})
        assert payload["summary"]["mode"] == "batch"
        with pytest.raises(ValueError):
            ModelService(engine="quantum")


class TestSchemaModule:
    def test_solve_request_defaults(self):
        request = SolveRequest.from_payload(
            {"protocol": "berkeley", "n": 4})
        assert request.sizes == (4,)
        assert request.sharing is SharingLevel.FIVE_PERCENT
        assert request.engine is None

    def test_grid_request_cell_count_doubles_with_simulate(self):
        base = {"protocols": ["write-once"], "n": [2, 4],
                "sharing": ["5"]}
        plain = GridRequest.from_payload(base)
        assert plain.cell_count == 2
        sim = GridRequest.from_payload(dict(base, simulate=True))
        assert sim.cell_count == 4

    def test_grid_request_spec_round_trip(self):
        request = GridRequest.from_payload(
            {"protocols": ["write-once", "1,4"], "n": [2, 8],
             "sharing": ["1", "20"], "seed": 7, "requests": 1000})
        spec = request.spec()
        assert [p.label for p in spec.protocols] == ["Write-Once", "WO+1+4"]
        assert tuple(spec.sizes) == (2, 8)
        assert spec.sim_seed == 7
        assert spec.sim_requests == 1000

    def test_strict_rejects_unknown_fields_with_code(self):
        with pytest.raises(ServiceError) as excinfo:
            GridRequest.from_payload(
                {"protocols": ["write-once"], "n": [2], "engines": "batch"},
                strict=True)
        assert excinfo.value.status == 400
        assert excinfo.value.code == "unknown-field"
        assert excinfo.value.details["unknown"] == ["engines"]

    def test_lenient_accepts_unknown_fields(self):
        request = GridRequest.from_payload(
            {"protocols": ["write-once"], "n": [2], "engines": "batch"})
        assert request.engine is None

    def test_bad_requests_field(self):
        with pytest.raises(ServiceError) as excinfo:
            GridRequest.from_payload(
                {"protocols": ["write-once"], "n": [2], "requests": "many"})
        assert "'requests'" in excinfo.value.message

    def test_error_code_defaults_from_status(self):
        assert ServiceError(400, "x").code == "bad-request"
        assert ServiceError(404, "x").code == "not-found"
        assert ServiceError(500, "x").code == "internal-error"
        assert ServiceError(418, "x").code == "error"
        assert ServiceError(400, "x", code="custom").code == "custom"


class TestVerifyEndpoint:
    """POST /v1/verify: the verification suite behind the service.

    The endpoint is /v1-only (it never existed unversioned, so there
    is no legacy behaviour to preserve); most cases stub ``run_verify``
    to keep the suite fast, plus one real quick-tier run end to end.
    """

    def _stub(self, monkeypatch, report=None):
        from repro.verify.violations import VerifyReport
        import repro.verify.runner as runner_mod

        calls = []

        def fake(tier="quick", metrics=None, **kwargs):
            calls.append({"tier": tier, "metrics": metrics})
            stubbed = report or VerifyReport(tier=tier, checks=7)
            return stubbed

        monkeypatch.setattr(runner_mod, "run_verify", fake)
        return calls

    def test_verify_default_tier(self, server, monkeypatch):
        calls = self._stub(monkeypatch)
        status, headers, payload = _post(server, "/v1/verify", {})
        assert status == 200
        assert payload["ok"] is True
        assert payload["tier"] == "quick"
        assert payload["checks"] == 7
        assert "Deprecation" not in headers
        # The run feeds the service's own metrics registry.
        assert calls[0]["metrics"] is server.service.metrics

    def test_verify_reports_violations_as_data(self, server,
                                               monkeypatch):
        """A failing verification is still HTTP 200: violations are
        the payload, not a transport error."""
        from repro.verify.violations import VerifyReport, Violation

        failing = VerifyReport(tier="quick", checks=3)
        failing.add([Violation(law="engine-parity", subject="cell",
                               message="drift")], 0, "engine-parity")
        self._stub(monkeypatch, report=failing)
        status, _, payload = _post(server, "/v1/verify", {})
        assert status == 200
        assert payload["ok"] is False
        assert payload["violations"][0]["law"] == "engine-parity"

    def test_bad_tier_envelope(self, server):
        status, _, payload = _post(server, "/v1/verify",
                                   {"tier": "exhaustive"})
        assert status == 400
        error = payload["error"]
        assert error["code"] == "unknown-tier"
        assert "'tier'" in error["message"]

    def test_unknown_field_rejected(self, server):
        status, _, payload = _post(server, "/v1/verify",
                                   {"tier": "quick", "golden": "x"})
        assert status == 400
        error = payload["error"]
        assert error["code"] == "unknown-field"
        assert error["detail"]["unknown"] == ["golden"]
        assert error["detail"]["allowed"] == ["tier"]

    def test_no_legacy_alias(self, server):
        """Unversioned /verify never existed: 404 (with a hint), not a
        deprecated alias -- and GET on it is 404 too, while GET on the
        real /v1/verify is a 405 with Allow."""
        status, headers, payload = _post(server, "/verify", {})
        assert status == 404
        assert "Deprecation" not in headers
        assert "/v1/verify" in payload["error"]["message"]
        status, headers, _ = _get(server, "/verify")
        assert status == 404
        status, headers, _ = _get(server, "/v1/verify")
        assert status == 405
        assert headers["Allow"] == "POST"

    def test_real_quick_run_end_to_end(self, server):
        status, _, payload = _post(server, "/v1/verify",
                                   {"tier": "quick"})
        assert status == 200
        assert payload["ok"] is True
        assert payload["checks"] > 10_000
        assert sorted(payload["sections"]) == list(payload["sections"])
        _, _, body = _get(server, "/v1/metrics")
        text = body.decode()
        assert "repro_verify_checks_total" in text
