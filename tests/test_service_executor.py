"""Tests for the parallel sweep executor."""

import pytest

import repro.service.executor as executor_module
from repro.analysis.grid import GridSpec, run_grid
from repro.core.solver import FixedPointSolver
from repro.protocols.modifications import ProtocolSpec
from repro.service.cache import ResultCache
from repro.service.executor import (
    CellTask,
    SweepExecutor,
    evaluate_with_retry,
    tasks_for_spec,
)
from repro.service.metrics import MetricsRegistry
from repro.workload.parameters import SharingLevel, appendix_a_workload


@pytest.fixture()
def spec():
    return GridSpec(
        protocols=[ProtocolSpec(), ProtocolSpec.of(1)],
        sizes=[2, 8],
        sharing_levels=[SharingLevel.FIVE_PERCENT],
    )


class TestTaskExpansion:
    def test_canonical_order(self, spec):
        tasks = tasks_for_spec(spec)
        assert [(t.protocol.label, t.n) for t in tasks] == [
            ("Write-Once", 2), ("Write-Once", 8), ("WO+1", 2), ("WO+1", 8)]
        assert all(t.method == "mva" for t in tasks)

    def test_sim_tasks_follow_their_mva_cell(self):
        spec = GridSpec(protocols=[ProtocolSpec()], sizes=[2, 4],
                        sharing_levels=[SharingLevel.FIVE_PERCENT],
                        include_simulation=True, sim_seed=50)
        tasks = tasks_for_spec(spec)
        assert [(t.method, t.n) for t in tasks] == [
            ("mva", 2), ("sim", 2), ("mva", 4), ("sim", 4)]
        # the seed's per-cell seeding (sim_seed + n) is preserved
        assert [t.sim_seed for t in tasks if t.method == "sim"] == [52, 54]

    def test_task_validation(self):
        workload = appendix_a_workload(SharingLevel.FIVE_PERCENT)
        with pytest.raises(ValueError):
            CellTask(protocol=ProtocolSpec(), sharing_label="5%",
                     workload=workload, n=0)
        with pytest.raises(ValueError):
            CellTask(protocol=ProtocolSpec(), sharing_label="5%",
                     workload=workload, n=2, method="petri")


class TestDeterminism:
    def test_serial_matches_run_grid(self, spec):
        rows = [c.as_row() for c in run_grid(spec)]
        result = SweepExecutor(jobs=1).run_spec(spec)
        assert [c.as_row() for c in result.cells] == rows
        assert result.summary.mode == "serial"

    def test_parallel_matches_serial(self, spec):
        rows = [c.as_row() for c in run_grid(spec)]
        result = SweepExecutor(jobs=2).run_spec(spec)
        assert [c.as_row() for c in result.cells] == rows
        assert result.summary.mode in ("chunked", "chunked-inprocess",
                                       "serial-fallback")

    def test_cells_dispatch_matches_serial(self, spec):
        rows = [c.as_row() for c in run_grid(spec)]
        result = SweepExecutor(jobs=2, dispatch="cells").run_spec(spec)
        assert [c.as_row() for c in result.cells] == rows
        assert result.summary.mode in ("process-pool", "serial-fallback")

    def test_run_grid_accepts_an_executor(self, spec):
        cache = ResultCache()
        cells = run_grid(spec, executor=SweepExecutor(cache=cache))
        assert [c.as_row() for c in run_grid(spec)] == \
            [c.as_row() for c in cells]
        assert len(cache) == 4


class TestCaching:
    def test_second_sweep_is_all_hits(self, spec):
        executor = SweepExecutor(cache=ResultCache())
        first = executor.run_spec(spec)
        second = executor.run_spec(spec)
        assert first.summary.solved == 4
        assert second.summary.solved == 0
        assert second.summary.cache_hits == 4
        assert second.summary.cache_hit_rate == 1.0
        assert all(second.cached)
        assert [c.as_row() for c in first.cells] == \
            [c.as_row() for c in second.cells]

    def test_cache_survives_process_boundaries(self, spec, tmp_path):
        """A parallel sweep fills a disk cache a later serial run reads."""
        path = tmp_path / "cells.json"
        SweepExecutor(jobs=2, cache=ResultCache(path=path)).run_spec(spec)
        rerun = SweepExecutor(cache=ResultCache(path=path)).run_spec(spec)
        assert rerun.summary.solved == 0
        assert rerun.summary.cache_hit_rate == 1.0

    def test_metrics_fed(self, spec):
        registry = MetricsRegistry()
        executor = SweepExecutor(cache=ResultCache(), metrics=registry)
        executor.run_spec(spec)
        executor.run_spec(spec)
        snapshot = registry.snapshot()
        assert snapshot["repro_cache_misses_total"] == 4
        assert snapshot["repro_cache_hits_total"] == 4
        assert snapshot["repro_cells_solved_total"] == 4
        assert snapshot["repro_solve_latency_seconds_count"] == 4
        # every MVA cell feeds the iterations histogram
        assert snapshot["repro_solver_iterations_count"] == 4


class TestRetry:
    def _flaky_simulate(self, failures):
        calls = {"n": 0}
        real_simulate = executor_module.simulate

        def fake(config):
            calls["n"] += 1
            if calls["n"] <= failures:
                raise RuntimeError(f"transient failure {calls['n']}")
            return real_simulate(config)
        return fake, calls

    def _sim_task(self):
        return CellTask(
            protocol=ProtocolSpec(), sharing_label="5%",
            workload=appendix_a_workload(SharingLevel.FIVE_PERCENT),
            n=2, method="sim", sim_requests=2_000, sim_seed=7)

    def test_sim_cell_retries_then_succeeds(self, monkeypatch):
        fake, calls = self._flaky_simulate(failures=2)
        monkeypatch.setattr(executor_module, "simulate", fake)
        value = evaluate_with_retry(self._sim_task(), retries=2)
        assert calls["n"] == 3
        assert value["attempts"] == 3
        assert "transient failure" in value["retried_after"]

    def test_sim_cell_exhausts_retries_into_error_payload(self, monkeypatch):
        fake, _ = self._flaky_simulate(failures=10)
        monkeypatch.setattr(executor_module, "simulate", fake)
        value = evaluate_with_retry(self._sim_task(), retries=2)
        assert value["error"]["type"] == "RuntimeError"
        assert "transient failure 3" in value["error"]["message"]
        assert value["attempts"] == 3

    def test_mva_cells_never_retry(self, monkeypatch):
        def boom(task):
            raise RuntimeError("modelling error")
        monkeypatch.setattr(executor_module, "evaluate_task", boom)
        task = CellTask(protocol=ProtocolSpec(), sharing_label="5%",
                        workload=appendix_a_workload(
                            SharingLevel.FIVE_PERCENT), n=2)
        value = evaluate_with_retry(task, retries=5)
        assert value["attempts"] == 1  # the seed bump is sim-only
        assert "modelling error" in value["error"]["message"]

    def test_retried_cell_records_effective_seed(self, monkeypatch):
        """A retried simulation cell is traceable to the seed that
        actually produced it, not the originally requested one."""
        fake, _ = self._flaky_simulate(failures=1)
        monkeypatch.setattr(executor_module, "simulate", fake)
        task = self._sim_task()
        value = evaluate_with_retry(task, retries=2)
        stride = executor_module._RETRY_SEED_STRIDE
        assert value["effective_seed"] == task.sim_seed + stride
        assert value["attempts"] == 2
        # a clean cell reports the seed it was asked for
        clean = evaluate_with_retry(task, retries=0)
        assert clean["effective_seed"] == task.sim_seed

    def test_effective_seed_reaches_cache_and_meta(self, monkeypatch):
        fake, _ = self._flaky_simulate(failures=1)
        monkeypatch.setattr(executor_module, "simulate", fake)
        cache = ResultCache()
        task = self._sim_task()
        result = SweepExecutor(jobs=1, cache=cache).run([task])
        stride = executor_module._RETRY_SEED_STRIDE
        expected = task.sim_seed + stride
        assert result.meta[0]["effective_seed"] == expected
        assert cache.get(task.key)["effective_seed"] == expected

    def test_executor_counts_retries(self, monkeypatch):
        fake, _ = self._flaky_simulate(failures=1)
        monkeypatch.setattr(executor_module, "simulate", fake)
        result = SweepExecutor(jobs=1).run([self._sim_task()])
        assert result.summary.retries == 1


def _mva_task(n, solver=None):
    return CellTask(
        protocol=ProtocolSpec(), sharing_label="5%",
        workload=appendix_a_workload(SharingLevel.FIVE_PERCENT), n=n,
        **({"solver": solver} if solver is not None else {}))


#: A solver no damping rung can save: the tolerance is unreachable.
_POISONED = FixedPointSolver(tolerance=1e-30, max_iterations=3)

#: A solver that fails plain substitution (cap too low for ~15 sweeps
#: to 1e-3) but converges on the warm-started 0.5 rung of the ladder.
_RECOVERABLE = FixedPointSolver(tolerance=1e-3, max_iterations=10)


class TestFailureIsolation:
    """One dead cell must not take down (or perturb) the sweep."""

    def _tasks_with_one_poisoned(self):
        tasks = [_mva_task(n) for n in (2, 4, 8)]
        tasks.insert(2, _mva_task(6, solver=_POISONED))
        return tasks

    def test_sweep_completes_with_one_error_row(self):
        tasks = self._tasks_with_one_poisoned()
        result = SweepExecutor(jobs=1).run(tasks)
        assert result.summary.failed == 1
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.index == 2
        assert failure.error_type == "SolverError"
        assert failure.ladder == (1.0, 0.5, 0.25, 0.1)
        error_cell = result.cells[2]
        assert error_cell.error is not None
        assert error_cell.speedup is None
        assert error_cell.n_processors == 6

    def test_surviving_cells_match_a_clean_run(self):
        clean = SweepExecutor(jobs=1).run([_mva_task(n) for n in (2, 4, 8)])
        mixed = SweepExecutor(jobs=1).run(self._tasks_with_one_poisoned())
        survivors = [c for c in mixed.cells if c.error is None]
        assert [c.as_row() for c in survivors] == \
            [c.as_row() for c in clean.cells]

    def test_completed_cells_are_cached_but_failures_are_not(self):
        cache = ResultCache()
        tasks = self._tasks_with_one_poisoned()
        SweepExecutor(jobs=1, cache=cache).run(tasks)
        assert len(cache) == 3
        assert cache.get(tasks[2].key) is None
        # a rerun re-attempts only the failed cell
        rerun = SweepExecutor(jobs=1, cache=cache).run(tasks)
        assert rerun.summary.cache_hits == 3
        assert rerun.summary.solved == 1
        assert rerun.summary.failed == 1

    def test_cache_is_flushed_incrementally(self, tmp_path, monkeypatch):
        """An interrupted sweep keeps every cell completed before the
        interruption in the on-disk store."""
        path = tmp_path / "cells.json"
        cache = ResultCache(path=path)
        tasks = [_mva_task(n) for n in (2, 4, 8)]
        calls = {"n": 0}
        real = executor_module.evaluate_task

        def dies_on_third(task):
            calls["n"] += 1
            if calls["n"] == 3:
                raise KeyboardInterrupt
            return real(task)
        monkeypatch.setattr(executor_module, "evaluate_task", dies_on_third)
        with pytest.raises(KeyboardInterrupt):
            SweepExecutor(jobs=1, cache=cache).run(tasks)
        reloaded = ResultCache(path=path)
        assert len(reloaded) == 2  # the two cells solved before the cut

    def test_parallel_sweep_isolates_failures_too(self):
        tasks = self._tasks_with_one_poisoned()
        serial = SweepExecutor(jobs=1).run(tasks)
        parallel = SweepExecutor(jobs=2).run(tasks)
        assert parallel.summary.failed == 1
        assert [c.as_row() for c in parallel.cells] == \
            [c.as_row() for c in serial.cells]

    def test_failure_metrics(self):
        registry = MetricsRegistry()
        SweepExecutor(jobs=1, metrics=registry).run(
            self._tasks_with_one_poisoned())
        snapshot = registry.snapshot()
        assert snapshot["repro_cells_failed_total"] == 1
        assert snapshot["repro_cells_solved_total"] == 3

    def test_strict_mode_raises_on_first_failure(self):
        from repro.service.executor import CellFailedError
        with pytest.raises(CellFailedError, match="SolverError"):
            SweepExecutor(jobs=1, strict=True).run(
                self._tasks_with_one_poisoned())

    def test_summary_line_mentions_failures(self):
        result = SweepExecutor(jobs=1).run(self._tasks_with_one_poisoned())
        assert "1 failed" in result.summary.line()


class TestDampingRecovery:
    """A cell that diverges at damping 1.0 is rescued by the ladder."""

    def test_recoverable_cell_converges_via_ladder(self):
        result = SweepExecutor(jobs=1).run(
            [_mva_task(10, solver=_RECOVERABLE)])
        assert result.summary.failed == 0
        assert result.summary.recovered == 1
        meta = result.meta[0]
        assert meta["recovered"] is True
        assert meta["damping"] < 1.0
        assert any(w["code"] == "damping-recovery"
                   for w in meta["warnings"])
        # the rescued value agrees with an unconstrained solve
        reference = SweepExecutor(jobs=1).run([_mva_task(10)])
        assert result.cells[0].speedup == pytest.approx(
            reference.cells[0].speedup, rel=1e-2)

    def test_recovery_metrics(self):
        registry = MetricsRegistry()
        SweepExecutor(jobs=1, metrics=registry).run(
            [_mva_task(10, solver=_RECOVERABLE)])
        assert registry.snapshot()["repro_cells_recovered_total"] == 1

    def test_summary_counts_recoveries(self):
        result = SweepExecutor(jobs=1).run(
            [_mva_task(10, solver=_RECOVERABLE), _mva_task(4)])
        assert result.summary.recovered == 1
        assert "1 recovered" in result.summary.line()


class TestSerialFallback:
    def test_pool_failure_degrades_to_serial(self, spec, monkeypatch):
        def broken_pool(*args, **kwargs):
            raise OSError("no processes for you")
        monkeypatch.setattr(executor_module, "ProcessPoolExecutor",
                            broken_pool)
        rows = [c.as_row() for c in run_grid(spec)]
        result = SweepExecutor(jobs=4, dispatch="cells").run_spec(spec)
        assert result.summary.mode == "serial-fallback"
        assert [c.as_row() for c in result.cells] == rows

    def test_broken_queue_degrades_to_process_pool(self, spec,
                                                   monkeypatch):
        """The chunked path must never take the executor down with it:
        a queue that blows up falls back to per-cell dispatch."""
        import repro.sweepq as sweepq_module

        def broken_queue(*args, **kwargs):
            raise RuntimeError("journal on fire")
        monkeypatch.setattr(sweepq_module, "SweepQueue", broken_queue)
        rows = [c.as_row() for c in run_grid(spec)]
        result = SweepExecutor(jobs=2).run_spec(spec)
        assert result.summary.mode in ("process-pool", "serial-fallback")
        assert [c.as_row() for c in result.cells] == rows

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            SweepExecutor(jobs=0)
        with pytest.raises(ValueError):
            SweepExecutor(sim_retries=-1)
        with pytest.raises(ValueError):
            SweepExecutor(dispatch="osmosis")
