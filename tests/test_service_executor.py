"""Tests for the parallel sweep executor."""

import pytest

import repro.service.executor as executor_module
from repro.analysis.grid import GridSpec, run_grid
from repro.protocols.modifications import ProtocolSpec
from repro.service.cache import ResultCache
from repro.service.executor import (
    CellTask,
    SweepExecutor,
    evaluate_with_retry,
    tasks_for_spec,
)
from repro.service.metrics import MetricsRegistry
from repro.workload.parameters import SharingLevel, appendix_a_workload


@pytest.fixture()
def spec():
    return GridSpec(
        protocols=[ProtocolSpec(), ProtocolSpec.of(1)],
        sizes=[2, 8],
        sharing_levels=[SharingLevel.FIVE_PERCENT],
    )


class TestTaskExpansion:
    def test_canonical_order(self, spec):
        tasks = tasks_for_spec(spec)
        assert [(t.protocol.label, t.n) for t in tasks] == [
            ("Write-Once", 2), ("Write-Once", 8), ("WO+1", 2), ("WO+1", 8)]
        assert all(t.method == "mva" for t in tasks)

    def test_sim_tasks_follow_their_mva_cell(self):
        spec = GridSpec(protocols=[ProtocolSpec()], sizes=[2, 4],
                        sharing_levels=[SharingLevel.FIVE_PERCENT],
                        include_simulation=True, sim_seed=50)
        tasks = tasks_for_spec(spec)
        assert [(t.method, t.n) for t in tasks] == [
            ("mva", 2), ("sim", 2), ("mva", 4), ("sim", 4)]
        # the seed's per-cell seeding (sim_seed + n) is preserved
        assert [t.sim_seed for t in tasks if t.method == "sim"] == [52, 54]

    def test_task_validation(self):
        workload = appendix_a_workload(SharingLevel.FIVE_PERCENT)
        with pytest.raises(ValueError):
            CellTask(protocol=ProtocolSpec(), sharing_label="5%",
                     workload=workload, n=0)
        with pytest.raises(ValueError):
            CellTask(protocol=ProtocolSpec(), sharing_label="5%",
                     workload=workload, n=2, method="petri")


class TestDeterminism:
    def test_serial_matches_run_grid(self, spec):
        rows = [c.as_row() for c in run_grid(spec)]
        result = SweepExecutor(jobs=1).run_spec(spec)
        assert [c.as_row() for c in result.cells] == rows
        assert result.summary.mode == "serial"

    def test_parallel_matches_serial(self, spec):
        rows = [c.as_row() for c in run_grid(spec)]
        result = SweepExecutor(jobs=2).run_spec(spec)
        assert [c.as_row() for c in result.cells] == rows
        assert result.summary.mode in ("process-pool", "serial-fallback")

    def test_run_grid_accepts_an_executor(self, spec):
        cache = ResultCache()
        cells = run_grid(spec, executor=SweepExecutor(cache=cache))
        assert [c.as_row() for c in run_grid(spec)] == \
            [c.as_row() for c in cells]
        assert len(cache) == 4


class TestCaching:
    def test_second_sweep_is_all_hits(self, spec):
        executor = SweepExecutor(cache=ResultCache())
        first = executor.run_spec(spec)
        second = executor.run_spec(spec)
        assert first.summary.solved == 4
        assert second.summary.solved == 0
        assert second.summary.cache_hits == 4
        assert second.summary.cache_hit_rate == 1.0
        assert all(second.cached)
        assert [c.as_row() for c in first.cells] == \
            [c.as_row() for c in second.cells]

    def test_cache_survives_process_boundaries(self, spec, tmp_path):
        """A parallel sweep fills a disk cache a later serial run reads."""
        path = tmp_path / "cells.json"
        SweepExecutor(jobs=2, cache=ResultCache(path=path)).run_spec(spec)
        rerun = SweepExecutor(cache=ResultCache(path=path)).run_spec(spec)
        assert rerun.summary.solved == 0
        assert rerun.summary.cache_hit_rate == 1.0

    def test_metrics_fed(self, spec):
        registry = MetricsRegistry()
        executor = SweepExecutor(cache=ResultCache(), metrics=registry)
        executor.run_spec(spec)
        executor.run_spec(spec)
        snapshot = registry.snapshot()
        assert snapshot["repro_cache_misses_total"] == 4
        assert snapshot["repro_cache_hits_total"] == 4
        assert snapshot["repro_cells_solved_total"] == 4
        assert snapshot["repro_solve_latency_seconds_count"] == 4
        # every MVA cell feeds the iterations histogram
        assert snapshot["repro_solver_iterations_count"] == 4


class TestRetry:
    def _flaky_simulate(self, failures):
        calls = {"n": 0}
        real_simulate = executor_module.simulate

        def fake(config):
            calls["n"] += 1
            if calls["n"] <= failures:
                raise RuntimeError(f"transient failure {calls['n']}")
            return real_simulate(config)
        return fake, calls

    def _sim_task(self):
        return CellTask(
            protocol=ProtocolSpec(), sharing_label="5%",
            workload=appendix_a_workload(SharingLevel.FIVE_PERCENT),
            n=2, method="sim", sim_requests=2_000, sim_seed=7)

    def test_sim_cell_retries_then_succeeds(self, monkeypatch):
        fake, calls = self._flaky_simulate(failures=2)
        monkeypatch.setattr(executor_module, "simulate", fake)
        value = evaluate_with_retry(self._sim_task(), retries=2)
        assert calls["n"] == 3
        assert value["attempts"] == 3
        assert "transient failure" in value["retried_after"]

    def test_sim_cell_exhausts_retries(self, monkeypatch):
        fake, _ = self._flaky_simulate(failures=10)
        monkeypatch.setattr(executor_module, "simulate", fake)
        with pytest.raises(RuntimeError, match="transient failure 3"):
            evaluate_with_retry(self._sim_task(), retries=2)

    def test_mva_cells_never_retry(self, monkeypatch):
        def boom(task):
            raise RuntimeError("modelling error")
        monkeypatch.setattr(executor_module, "evaluate_task", boom)
        task = CellTask(protocol=ProtocolSpec(), sharing_label="5%",
                        workload=appendix_a_workload(
                            SharingLevel.FIVE_PERCENT), n=2)
        with pytest.raises(RuntimeError, match="modelling error"):
            evaluate_with_retry(task, retries=5)

    def test_executor_counts_retries(self, monkeypatch):
        fake, _ = self._flaky_simulate(failures=1)
        monkeypatch.setattr(executor_module, "simulate", fake)
        result = SweepExecutor(jobs=1).run([self._sim_task()])
        assert result.summary.retries == 1


class TestSerialFallback:
    def test_pool_failure_degrades_to_serial(self, spec, monkeypatch):
        def broken_pool(*args, **kwargs):
            raise OSError("no processes for you")
        monkeypatch.setattr(executor_module, "ProcessPoolExecutor",
                            broken_pool)
        rows = [c.as_row() for c in run_grid(spec)]
        result = SweepExecutor(jobs=4).run_spec(spec)
        assert result.summary.mode == "serial-fallback"
        assert [c.as_row() for c in result.cells] == rows

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            SweepExecutor(jobs=0)
        with pytest.raises(ValueError):
            SweepExecutor(sim_retries=-1)
