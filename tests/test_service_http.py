"""Tests for the HTTP JSON API (ephemeral-port servers, stdlib client)."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.model import CacheMVAModel
from repro.protocols.family import PROTOCOLS
from repro.service import ModelService, start_server
from repro.workload.parameters import SharingLevel, appendix_a_workload


@pytest.fixture()
def server():
    server = start_server(ModelService())
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _get(server, path):
    try:
        with urllib.request.urlopen(server.url + path, timeout=10) as resp:
            return resp.status, resp.headers["Content-Type"], resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.headers["Content-Type"], exc.read()


def _post(server, path, body, raw=False):
    data = body if raw else json.dumps(body).encode()
    request = urllib.request.Request(
        server.url + path, data=data,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _message(payload):
    """The error message out of the /v1 envelope."""
    return payload["error"]["message"]


class TestHealthz:
    def test_ok(self, server):
        status, content_type, body = _get(server, "/v1/healthz")
        assert status == 200
        assert content_type == "application/json"
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["uptime_seconds"] >= 0


class TestSolve:
    def test_matches_the_solve_subcommand(self, server):
        """POST /v1/solve returns exactly what `repro solve` computes."""
        status, payload = _post(server, "/v1/solve",
                                {"protocol": "berkeley", "n": [4, 10]})
        assert status == 200
        expected = CacheMVAModel(
            appendix_a_workload(SharingLevel.FIVE_PERCENT),
            PROTOCOLS["berkeley"])
        assert payload["protocol"] == "Berkeley"
        for row, n in zip(payload["results"], [4, 10]):
            report = expected.solve(n)
            assert row["n_processors"] == n
            assert row["speedup"] == pytest.approx(report.speedup)
            assert row["u_bus"] == pytest.approx(report.u_bus)
            assert row["cached"] is False

    def test_repeat_request_is_served_from_cache(self, server):
        body = {"protocol": "1,4", "n": 6, "sharing": "20"}
        _, first = _post(server, "/v1/solve", body)
        _, second = _post(server, "/v1/solve", body)
        assert first["results"][0]["cached"] is False
        assert second["results"][0]["cached"] is True
        assert second["summary"]["cache_hit_rate"] == 1.0
        assert second["results"][0]["speedup"] == \
            first["results"][0]["speedup"]

    def test_workload_overrides(self, server):
        status, payload = _post(server, "/v1/solve", {
            "protocol": "write-once", "n": 4, "workload": {"tau": 5.0}})
        assert status == 200
        expected = CacheMVAModel(
            appendix_a_workload(SharingLevel.FIVE_PERCENT).replace(tau=5.0))
        assert payload["results"][0]["speedup"] == pytest.approx(
            expected.speedup(4))

    def test_malformed_json_body_is_400(self, server):
        status, payload = _post(server, "/v1/solve", b"{not json", raw=True)
        assert status == 400
        assert "not valid JSON" in _message(payload)

    def test_missing_fields_are_400(self, server):
        for body in ({}, {"protocol": "berkeley"}, {"n": 4}):
            status, payload = _post(server, "/v1/solve", body)
            assert status == 400
            assert "missing required field" in _message(payload)
            assert payload["error"]["code"] == "missing-field"

    def test_bad_values_are_400(self, server):
        cases = [
            {"protocol": "warp-drive", "n": 4},
            {"protocol": "berkeley", "n": 0},
            {"protocol": "berkeley", "n": [], },
            {"protocol": "berkeley", "n": 4, "sharing": "37"},
            {"protocol": "berkeley", "n": 4, "workload": {"tau": -1}},
            {"protocol": "berkeley", "n": 4, "workload": {"nope": 1}},
        ]
        for body in cases:
            status, payload = _post(server, "/v1/solve", body)
            assert status == 400, body
            assert "error" in payload

    def test_non_object_body_is_400(self, server):
        status, payload = _post(server, "/v1/solve", [1, 2, 3])
        assert status == 400
        assert "JSON object" in _message(payload)


class TestGrid:
    def test_sweep(self, server):
        status, payload = _post(server, "/v1/grid", {
            "protocols": ["write-once", "1"], "n": [2, 4],
            "sharing": ["5"]})
        assert status == 200
        assert len(payload["cells"]) == 4
        assert payload["summary"]["total"] == 4
        assert [c["protocol"] for c in payload["cells"]] == \
            ["Write-Once", "Write-Once", "WO+1", "WO+1"]

    def test_cell_limit_enforced(self, server):
        server.service.max_grid_cells = 3
        status, payload = _post(server, "/v1/grid", {
            "protocols": ["write-once"], "n": [1, 2, 4, 8],
            "sharing": ["5"]})
        assert status == 400
        assert "exceeds" in _message(payload)
        assert payload["error"]["code"] == "grid-too-large"

    def test_missing_protocols_is_400(self, server):
        status, _ = _post(server, "/v1/grid", {"n": [2]})
        assert status == 400

    def test_rows_carry_per_cell_status(self, server):
        status, payload = _post(server, "/v1/grid", {
            "protocols": ["write-once"], "n": [2, 4], "sharing": ["5"]})
        assert status == 200
        assert all(cell["status"] == "ok" for cell in payload["cells"])
        assert all(cell["error"] is None for cell in payload["cells"])
        assert payload["failures"] == []
        assert payload["summary"]["failed"] == 0
        assert payload["summary"]["recovered"] == 0


class TestFailureSemantics:
    """Partial failure is a 200 with error rows; only a sweep with no
    surviving cell is a request-level error."""

    def _poison(self, monkeypatch, dead_sizes):
        import repro.service.executor as executor_module
        real = executor_module.evaluate_task

        def poisoned(task):
            if task.n in dead_sizes:
                raise RuntimeError(f"injected failure at N={task.n}")
            return real(task)
        monkeypatch.setattr(executor_module, "evaluate_task", poisoned)

    def test_partial_failure_is_200_with_error_row(self, server,
                                                   monkeypatch):
        self._poison(monkeypatch, {4})
        status, payload = _post(server, "/v1/grid", {
            "protocols": ["write-once"], "n": [2, 4, 8], "sharing": ["5"]})
        assert status == 200
        by_n = {cell["n_processors"]: cell for cell in payload["cells"]}
        assert by_n[4]["status"] == "error"
        assert by_n[4]["speedup"] is None
        assert "injected failure" in by_n[4]["error"]
        assert by_n[2]["status"] == by_n[8]["status"] == "ok"
        assert payload["summary"]["failed"] == 1
        assert len(payload["failures"]) == 1
        assert payload["failures"][0]["n_processors"] == 4

    def test_total_failure_is_500_with_failure_records(self, server,
                                                       monkeypatch):
        self._poison(monkeypatch, {2, 4})
        status, payload = _post(server, "/v1/grid", {
            "protocols": ["write-once"], "n": [2, 4], "sharing": ["5"]})
        assert status == 500
        assert "all 2 cells failed" in _message(payload)
        assert payload["error"]["code"] == "all-cells-failed"
        assert len(payload["error"]["detail"]["failures"]) == 2

    def test_metrics_expose_failures(self, server, monkeypatch):
        self._poison(monkeypatch, {4})
        _post(server, "/v1/grid", {"protocols": ["write-once"],
                                   "n": [2, 4], "sharing": ["5"]})
        _, _, body = _get(server, "/v1/metrics")
        text = body.decode()
        assert 'repro_cells_failed_total{method="mva"} 1' in text


class TestMetrics:
    def test_exposition_after_traffic(self, server):
        _post(server, "/v1/solve", {"protocol": "berkeley", "n": 4})
        _post(server, "/v1/solve", {"protocol": "berkeley", "n": 4})
        status, content_type, body = _get(server, "/v1/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        text = body.decode()
        assert "# TYPE repro_cache_hits_total counter" in text
        assert "repro_cache_hits_total 1" in text
        assert "repro_cache_misses_total 1" in text
        assert 'repro_cells_solved_total{method="mva"} 1' in text
        assert "repro_solve_latency_seconds_bucket" in text
        assert "repro_solver_iterations_count 1" in text


class TestRouting:
    def test_unknown_path_is_404(self, server):
        status, _, body = _get(server, "/nope")
        assert status == 404
        assert "unknown path" in _message(json.loads(body))

    def test_post_only_routes_reject_get(self, server):
        status, _, body = _get(server, "/v1/solve")
        assert status == 405
        assert "requires POST" in _message(json.loads(body))

    def test_get_only_routes_reject_post(self, server):
        status, payload = _post(server, "/v1/healthz", {})
        assert status == 405
        assert "requires GET" in _message(payload)

    def test_405_carries_allow_header(self, server):
        request = urllib.request.Request(server.url + "/v1/solve")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.headers["Allow"] == "POST"

    def test_empty_post_body_is_400(self, server):
        request = urllib.request.Request(server.url + "/v1/solve", data=b"")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400


class TestLegacyGone:
    """The retired unversioned endpoints answer 410 with the /v1
    envelope and a machine-readable successor pointer."""

    @pytest.mark.parametrize("method,path,successor", [
        ("GET", "/healthz", "/v1/healthz"),
        ("GET", "/metrics", "/v1/metrics"),
        ("POST", "/solve", "/v1/solve"),
        ("POST", "/grid", "/v1/grid"),
    ])
    def test_legacy_paths_are_gone(self, server, method, path, successor):
        if method == "GET":
            status, _, body = _get(server, path)
            payload = json.loads(body)
        else:
            status, payload = _post(server, path, {"protocol": "berkeley",
                                                   "n": 4})
        assert status == 410
        assert payload["error"]["code"] == "gone"
        assert successor in payload["error"]["message"]
        assert payload["error"]["detail"]["successor"] == successor

    def test_gone_applies_to_any_method(self, server):
        """410 on a retired path even with the 'wrong' verb -- the
        resource is gone, not method-confused."""
        status, payload = _post(server, "/healthz", {})
        assert status == 410
        assert payload["error"]["code"] == "gone"

    def test_gone_carries_successor_link_header(self, server):
        try:
            urllib.request.urlopen(server.url + "/healthz", timeout=10)
            raise AssertionError("expected HTTP 410")
        except urllib.error.HTTPError as exc:
            assert exc.code == 410
            assert "/v1/healthz" in exc.headers["Link"]
            assert "successor-version" in exc.headers["Link"]

    def test_unversioned_sweep_suggests_v1(self, server):
        status, payload = _post(server, "/sweep",
                                {"protocols": ["write-once"], "n": [2]})
        assert status == 404
        assert "/v1/sweep" in _message(payload)


class TestCapabilities:
    def test_capabilities_advertise_the_surface(self, server):
        status, _, body = _get(server, "/v1/capabilities")
        assert status == 200
        payload = json.loads(body)
        assert payload["api_version"] == "v1"
        assert payload["engines"] == ["scalar", "batch"]
        assert payload["default_engine"] == "scalar"
        assert payload["dispatch_modes"] == ["auto", "cells", "chunked"]
        assert payload["coalesce"] == {"enabled": False}
        assert payload["limits"]["max_grid_cells"] == 4096
        assert "/v1/solve" in payload["endpoints"]["post"]
        assert "/v1/capabilities" in payload["endpoints"]["get"]

    def test_capabilities_report_coalescing_settings(self):
        service = ModelService.with_coalescer(window_ms=1.5, max_batch=32)
        try:
            coalesce = service.capabilities()["coalesce"]
            assert coalesce == {"enabled": True, "window_ms": 1.5,
                                "max_batch": 32}
        finally:
            service.close()


class TestJobs:
    def test_empty_listing(self, server):
        status, _, body = _get(server, "/v1/jobs")
        assert status == 200
        assert json.loads(body) == {"jobs": [], "count": 0}

    def test_lists_submitted_sweeps_with_progress(self, server):
        status, submitted = _post(server, "/v1/sweep", {
            "protocols": ["write-once"], "sharing": ["5"], "n": [2, 4]})
        assert status == 200
        job_id = submitted["job_id"]
        import time
        deadline = time.time() + 30
        while time.time() < deadline:
            _, _, body = _get(server, "/v1/jobs")
            listing = json.loads(body)
            if listing["jobs"] and listing["jobs"][0]["state"] == "done":
                break
            time.sleep(0.05)
        assert listing["count"] == 1
        (job,) = listing["jobs"]
        assert job["job_id"] == job_id
        assert job["kind"] == "sweep"
        assert job["state"] == "done"
        assert job["cells"] == 2
        assert job["cells_done"] == 2
        assert job["cells_failed"] == 0
        assert job["status_path"] == f"/v1/sweep/{job_id}"
