"""End-to-end integration tests through the public API only.

Each test is a realistic user workflow from the README/examples,
exercising several subsystems together.
"""

import pytest

import repro
from repro import (
    CacheMVAModel,
    ProtocolSpec,
    SharingLevel,
    appendix_a_workload,
    protocol_by_name,
)


class TestPublicApi:
    def test_package_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"


class TestQuickstartWorkflow:
    def test_readme_snippet(self):
        workload = appendix_a_workload(SharingLevel.FIVE_PERCENT)
        protocol = ProtocolSpec.of(1)
        model = CacheMVAModel(workload, protocol)
        report = model.solve(n_processors=10)
        assert report.speedup == pytest.approx(6.05, abs=0.05)
        assert 0.9 < report.u_bus <= 1.0
        assert report.iterations < 100

    def test_named_protocol_flow(self):
        dragon = protocol_by_name("dragon")
        assert dragon.mod_numbers == {1, 2, 3, 4}
        speedup = CacheMVAModel(
            appendix_a_workload(SharingLevel.FIVE_PERCENT), dragon).speedup(10)
        assert speedup == pytest.approx(6.78, abs=0.05)


class TestDesignSpaceWorkflow:
    def test_rank_and_verify_with_simulation(self):
        """Rank protocols with the MVA, then spot-check the winner and
        the baseline with the detailed simulator."""
        from repro.sim import SimulationConfig, simulate

        workload = appendix_a_workload(SharingLevel.TWENTY_PERCENT)
        candidates = [ProtocolSpec(), ProtocolSpec.of(1), ProtocolSpec.of(1, 4)]
        ranked = sorted(
            candidates,
            key=lambda spec: CacheMVAModel(workload, spec).speedup(10))
        assert ranked[-1] == ProtocolSpec.of(1, 4)
        for spec in (ranked[0], ranked[-1]):
            mva = CacheMVAModel(workload, spec).speedup(10)
            sim = simulate(SimulationConfig(
                n_processors=10, workload=workload, protocol=spec,
                seed=1212, warmup_requests=3_000,
                measured_requests=30_000)).speedup
            assert mva == pytest.approx(sim, rel=0.07), spec.label


class TestScaledHierarchyWorkflow:
    def test_refined_sharing_inside_a_cluster_study(self):
        """Combine the two extensions: size the clusters with the MVA,
        using N-scaled csupply for the per-cluster workload."""
        from repro.core.scaled import ScaledSharingMVAModel
        from repro.hierarchy import HierarchicalMVAModel, HierarchyParams

        base = appendix_a_workload(SharingLevel.FIVE_PERCENT)
        scaled = ScaledSharingMVAModel(base, reference_size=10)
        per_cluster = 8
        cluster_workload = scaled.scaling.scale(scaled.workload, per_cluster)
        report = HierarchicalMVAModel(cluster_workload, HierarchyParams(
            clusters=8, per_cluster=per_cluster, cluster_locality=0.9,
            cluster_cache_hit=0.8)).solve()
        flat_ceiling = CacheMVAModel(base).speedup(1024)
        assert report.converged
        assert report.speedup > flat_ceiling

    def test_measurement_to_model_to_simulation_triangle(self):
        """trace -> parameters -> MVA, then the sampled-outcome DES on
        the *measured* workload must agree with that MVA (the models are
        input-compatible regardless of where the inputs came from)."""
        from repro.sim import SimulationConfig, simulate
        from repro.trace import (
            CoherentCacheSystem,
            GeneratorConfig,
            SyntheticTraceGenerator,
            WorkloadEstimator,
        )

        gen_cfg = GeneratorConfig(n_processors=4, seed=5)
        generator = SyntheticTraceGenerator(gen_cfg)
        system = CoherentCacheSystem(4, 256, 4)
        estimator = WorkloadEstimator(system, generator.stream_of)
        estimator.observe_trace(generator.trace(80_000))
        workload = estimator.estimate().workload

        mva = CacheMVAModel(workload).speedup(6)
        sim = simulate(SimulationConfig(
            n_processors=6, workload=workload, seed=77,
            warmup_requests=3_000, measured_requests=30_000)).speedup
        assert mva == pytest.approx(sim, rel=0.06)


class TestCrossModelWorkflow:
    def test_four_way_agreement_small_n(self):
        from repro.analysis.crossmodel import cross_validate

        cells = cross_validate(
            appendix_a_workload(SharingLevel.FIVE_PERCENT),
            sizes=(2, 3), sim_requests=25_000)
        for cell in cells:
            assert cell.spread < 0.06
