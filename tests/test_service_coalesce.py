"""Edge-case tests for the /v1/solve micro-batching coalescer.

Covers the contract corners that only show up under concurrency:
which trigger flushes a batch (window vs max-batch vs close), poison
cells failing only their own waiter, identical in-flight requests
deduplicating onto one solve, a cancelled waiter (client disconnect)
leaving its batch siblings untouched, and -- the determinism
non-negotiable -- a coalesced HTTP response carrying byte-identical
model results to a solo solve, end to end through the socket.
"""

import json
import threading
import time
import urllib.request

import pytest

import repro.service.coalesce as coalesce_module
from repro.service import ModelService, SolveCoalescer, start_server
from repro.service.cache import ResultCache
from repro.service.coalesce import FLUSH_REASONS
from repro.service.executor import CellTask
from repro.service.metrics import MetricsRegistry
from repro.protocols.family import PROTOCOLS
from repro.workload.parameters import SharingLevel, appendix_a_workload


def _task(n, protocol="berkeley"):
    return CellTask(
        protocol=PROTOCOLS[protocol],
        sharing_label="5",
        workload=appendix_a_workload(SharingLevel.FIVE_PERCENT),
        n=n)


def _poison(monkeypatch, bad_n):
    """Make the batch engine return an error payload for n == bad_n."""
    real = coalesce_module.evaluate_mva_batch

    def poisoned(tasks):
        results = real(tasks)
        for i, task in enumerate(tasks):
            if task.n == bad_n:
                results[i] = {"error": {"type": "RuntimeError",
                                        "message": "poison cell"},
                              "attempts": 1, "elapsed_s": 0.0}
        return results

    monkeypatch.setattr(coalesce_module, "evaluate_mva_batch", poisoned)


class TestFlushTriggers:
    def test_window_flush(self):
        metrics = MetricsRegistry()
        coalescer = SolveCoalescer(metrics=metrics, window_ms=20,
                                   max_batch=64)
        try:
            futures, cached = coalescer.submit_all(
                [_task(2), _task(4), _task(8)])
            assert cached == [False, False, False]
            values = [f.result(timeout=10) for f in futures]
            assert all(v.get("error") is None for v in values)
            stats = coalescer.stats()
            assert stats["batches"] == 1
            assert stats["cells"] == 3
            assert stats["mean_batch_cells"] == 3.0
            text = metrics.render()
            assert ('repro_coalesce_flushes_total{reason="window"} 1'
                    in text)
        finally:
            coalescer.close()

    def test_max_batch_flush_beats_the_window(self):
        metrics = MetricsRegistry()
        # A window far longer than the test: only max-batch can flush.
        coalescer = SolveCoalescer(metrics=metrics, window_ms=60_000,
                                   max_batch=2)
        try:
            futures, _ = coalescer.submit_all([_task(2), _task(4)])
            started = time.monotonic()
            for future in futures:
                future.result(timeout=10)
            assert time.monotonic() - started < 30  # not the window
            assert ('repro_coalesce_flushes_total{reason="max-batch"} 1'
                    in metrics.render())
        finally:
            coalescer.close()

    def test_close_flushes_the_queue(self):
        coalescer = SolveCoalescer(window_ms=60_000, max_batch=64)
        future, cached = coalescer.submit(_task(4))
        assert not cached
        coalescer.close()
        assert future.result(timeout=1).get("error") is None

    def test_submit_after_close_solves_inline(self):
        coalescer = SolveCoalescer(window_ms=5, max_batch=64)
        coalescer.close()
        future, cached = coalescer.submit(_task(4))
        assert not cached
        assert future.result(timeout=0)["cell"]["speedup"] > 0

    def test_reason_labels_are_the_documented_set(self):
        assert FLUSH_REASONS == ("window", "max-batch", "close")

    def test_rejects_bad_settings(self):
        with pytest.raises(ValueError):
            SolveCoalescer(window_ms=0)
        with pytest.raises(ValueError):
            SolveCoalescer(max_batch=0)


class TestPoisonIsolation:
    def test_poison_cell_fails_only_its_own_waiter(self, monkeypatch):
        _poison(monkeypatch, bad_n=4)
        metrics = MetricsRegistry()
        coalescer = SolveCoalescer(metrics=metrics, window_ms=20,
                                   max_batch=64)
        try:
            futures, _ = coalescer.submit_all(
                [_task(2), _task(4), _task(8)])
            ok_a, bad, ok_b = [f.result(timeout=10) for f in futures]
            assert ok_a["cell"]["speedup"] > 0
            assert ok_b["cell"]["speedup"] > 0
            assert bad["error"]["message"] == "poison cell"
            # One batch solved all three; the poison did not split it.
            assert coalescer.stats()["batches"] == 1
            assert coalescer.stats()["cells"] == 3
        finally:
            coalescer.close()

    def test_poison_cell_is_not_cached(self, monkeypatch, tmp_path):
        _poison(monkeypatch, bad_n=4)
        cache = ResultCache(path=tmp_path / "cache.json")
        coalescer = SolveCoalescer(cache=cache, window_ms=20, max_batch=64)
        try:
            futures, _ = coalescer.submit_all([_task(2), _task(4)])
            for future in futures:
                future.result(timeout=10)
            assert cache.get(_task(2).key) is not None
            assert cache.get(_task(4).key) is None
        finally:
            coalescer.close()

    def test_wholesale_batch_failure_falls_back_per_cell(self, monkeypatch):
        def explode(tasks):
            raise RuntimeError("batch engine down")

        monkeypatch.setattr(coalesce_module, "evaluate_mva_batch", explode)
        coalescer = SolveCoalescer(window_ms=20, max_batch=64)
        try:
            futures, _ = coalescer.submit_all([_task(2), _task(4)])
            values = [f.result(timeout=10) for f in futures]
            assert all(v.get("error") is None for v in values)
            assert all(v["cell"]["speedup"] > 0 for v in values)
        finally:
            coalescer.close()


class TestWaiterThreadSafety:
    def test_concurrent_deliver_never_loses_a_decrement(self):
        """The submit thread (cache hits) and the flusher (batch
        results) may deliver to one waiter concurrently; an unguarded
        ``missing -= 1`` loses decrements and the future never
        resolves.  Hammer one waiter from two threads and require the
        fan-in future to land every time."""
        from repro.service.coalesce import _Waiter

        for _ in range(25):
            waiter = _Waiter(400)
            barrier = threading.Barrier(2)

            def hammer(slots, waiter=waiter, barrier=barrier):
                barrier.wait()
                for slot in slots:
                    waiter.deliver(slot, {"slot": slot})

            threads = [threading.Thread(target=hammer,
                                        args=(range(start, 400, 2),))
                       for start in (0, 1)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10)
            values = waiter.future.result(timeout=1)
            assert len(values) == 400
            assert all(value is not None for value in values)

    def test_mixed_cached_and_miss_request_resolves(self):
        """A request whose slots split between immediate cache hits and
        queued misses exercises both delivery paths on one waiter."""
        cache = ResultCache()
        coalescer = SolveCoalescer(cache=cache, window_ms=2, max_batch=64)
        try:
            warm, _ = coalescer.submit(_task(2))
            assert warm.result(timeout=10).get("error") is None
            for n in range(3, 20):
                future, cached = coalescer.submit_request(
                    [_task(2), _task(n)])
                assert cached == [True, False]
                values = future.result(timeout=10)
                assert all(v.get("error") is None for v in values)
        finally:
            coalescer.close()


class TestFlusherResilience:
    def test_cache_write_failure_still_serves_the_batch(self, monkeypatch,
                                                        tmp_path):
        """An OSError from the cache (disk full, bad --cache path) must
        not kill the singleton flusher thread or strand the waiters."""
        cache = ResultCache(path=tmp_path / "cache.json")

        def explode():
            raise OSError("disk full")

        monkeypatch.setattr(cache, "flush", explode)
        coalescer = SolveCoalescer(cache=cache, window_ms=5, max_batch=64)
        try:
            first, _ = coalescer.submit(_task(4))
            assert first.result(timeout=10).get("error") is None
            # The flusher survived: a second batch still solves.
            second, _ = coalescer.submit(_task(8))
            assert second.result(timeout=10).get("error") is None
            assert coalescer.stats()["batches"] == 2
        finally:
            coalescer.close()

    def test_flush_crash_fails_waiters_but_not_the_flusher(self,
                                                           monkeypatch):
        """An unexpected exception inside a flush delivers error
        payloads to that batch's waiters (no hang) and leaves the
        flusher alive for the next batch."""
        calls = {"n": 0}
        real = coalesce_module.record_solve_metrics_batch

        def flaky(metrics, solved):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("metrics sink down")
            real(metrics, solved)

        monkeypatch.setattr(coalesce_module,
                            "record_solve_metrics_batch", flaky)
        coalescer = SolveCoalescer(window_ms=5, max_batch=64)
        try:
            doomed, _ = coalescer.submit(_task(4))
            value = doomed.result(timeout=10)
            assert value["error"]["type"] == "RuntimeError"
            assert "coalesced flush failed" in value["error"]["message"]
            healthy, _ = coalescer.submit(_task(8))
            assert healthy.result(timeout=10).get("error") is None
        finally:
            coalescer.close()


class TestEngineOverride:
    def test_explicit_engine_bypasses_the_coalescer(self):
        """A request that pins ``engine`` must be honoured: coalesced
        batches always use the batch engine, so the request solves on
        the executor path instead of being silently overridden."""
        service = ModelService.with_coalescer(window_ms=5)
        try:
            explicit = service.solve({"protocol": "berkeley", "n": 4,
                                      "engine": "scalar"})
            assert explicit["summary"]["mode"] != "coalesced"
            assert service.coalescer.stats()["cells"] == 0
            default = service.solve({"protocol": "berkeley", "n": 6})
            assert default["summary"]["mode"] == "coalesced"
            assert service.coalescer.stats()["cells"] == 1
        finally:
            service.close()


class TestDedup:
    def test_identical_inflight_cells_share_one_solve(self):
        metrics = MetricsRegistry()
        coalescer = SolveCoalescer(metrics=metrics, window_ms=50,
                                   max_batch=64)
        try:
            first, cached_first = coalescer.submit(_task(4))
            second, cached_second = coalescer.submit(_task(4))
            assert not cached_first and not cached_second
            a = first.result(timeout=10)
            b = second.result(timeout=10)
            assert a == b
            stats = coalescer.stats()
            assert stats["cells"] == 1  # one solve fanned to two waiters
            assert stats["deduped"] == 1
            assert "repro_coalesce_deduped_total 1" in metrics.render()
        finally:
            coalescer.close()

    def test_cache_hit_resolves_without_queueing(self, tmp_path):
        cache = ResultCache(path=tmp_path / "cache.json")
        coalescer = SolveCoalescer(cache=cache, window_ms=5, max_batch=64)
        try:
            warm, cached = coalescer.submit(_task(4))
            assert not cached
            value = warm.result(timeout=10)
            repeat, cached = coalescer.submit(_task(4))
            assert cached
            assert repeat.result(timeout=0) == value
            assert coalescer.stats()["cells"] == 1
        finally:
            coalescer.close()


class TestCancellation:
    def test_cancelled_waiter_leaves_siblings_untouched(self):
        coalescer = SolveCoalescer(window_ms=100, max_batch=64)
        try:
            gone, _ = coalescer.submit(_task(4))
            stays, _ = coalescer.submit(_task(8))
            assert gone.cancel()  # "client disconnected" before the flush
            value = stays.result(timeout=10)
            assert value["cell"]["speedup"] > 0
            assert gone.cancelled()
            # The batch still solved the abandoned cell.
            assert coalescer.stats()["cells"] == 2
        finally:
            coalescer.close()

    def test_cancelled_duplicate_does_not_starve_its_twin(self):
        coalescer = SolveCoalescer(window_ms=100, max_batch=64)
        try:
            gone, _ = coalescer.submit(_task(4))
            twin, _ = coalescer.submit(_task(4))  # dedup-attached
            assert gone.cancel()
            assert twin.result(timeout=10)["cell"]["speedup"] > 0
        finally:
            coalescer.close()


def _http_solve(url, body):
    request = urllib.request.Request(
        url + "/v1/solve", data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=30) as resp:
        return resp.read()


def _normalized(raw):
    """Strip the two operational summary fields that legitimately
    differ between a solo and a coalesced solve (wall-clock and
    dispatch-mode label); everything else must match exactly."""
    payload = json.loads(raw)
    payload["summary"].pop("wall_seconds")
    mode = payload["summary"].pop("mode")
    return json.dumps(payload, sort_keys=True), mode


class TestByteParity:
    """The determinism acceptance test, end to end through the socket."""

    BODY = {"protocol": "berkeley", "n": [2, 4, 10], "sharing": "5"}

    def _serve(self, service):
        server = start_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        return server, thread

    def test_coalesced_response_matches_solo(self):
        solo_service = ModelService()
        co_service = ModelService.with_coalescer(window_ms=5)
        solo_server, solo_thread = self._serve(solo_service)
        co_server, co_thread = self._serve(co_service)
        try:
            solo_raw = _http_solve(solo_server.url, self.BODY)
            co_raw = _http_solve(co_server.url, self.BODY)
            solo_norm, solo_mode = _normalized(solo_raw)
            co_norm, co_mode = _normalized(co_raw)
            assert co_mode == "coalesced"
            assert solo_mode != "coalesced"
            assert co_norm == solo_norm
        finally:
            for server, thread in ((solo_server, solo_thread),
                                   (co_server, co_thread)):
                server.shutdown()
                server.server_close()
                thread.join(timeout=5)
            co_service.close()
            solo_service.close()

    def test_concurrent_requests_coalesce_into_shared_batches(self):
        service = ModelService.with_coalescer(window_ms=30)
        server, thread = self._serve(service)
        results = {}
        try:
            def worker(n):
                raw = _http_solve(server.url,
                                  {"protocol": "dragon", "n": n})
                results[n] = json.loads(raw)["results"][0]["speedup"]

            sizes = [2, 4, 6, 8, 10, 12]
            threads = [threading.Thread(target=worker, args=(n,))
                       for n in sizes]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert set(results) == set(sizes)
            stats = service.coalescer.stats()
            assert stats["cells"] == len(sizes)
            # Batching happened: fewer flushes than requests.
            assert stats["batches"] < len(sizes)
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            service.close()
