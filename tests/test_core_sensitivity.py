"""Tests for the design-space exploration helpers."""

import math

import pytest

from repro.core.sensitivity import (
    asymptotic_speedup,
    parameter_sensitivity,
    protocol_comparison,
    speedup_curve,
    sweep_parameter,
)
from repro.protocols.modifications import ProtocolSpec
from repro.workload.parameters import SharingLevel, appendix_a_workload


class TestSpeedupCurve:
    def test_points_match_direct_solve(self, workload_5pct):
        from repro.core.model import CacheMVAModel
        curve = speedup_curve(workload_5pct, ProtocolSpec(), [1, 4, 10])
        model = CacheMVAModel(workload_5pct, ProtocolSpec())
        for n, s in curve:
            assert math.isclose(s, model.speedup(n))

    def test_curve_ordering(self, workload_5pct):
        curve = speedup_curve(workload_5pct, ProtocolSpec(), [1, 2, 4, 8, 16])
        speedups = [s for _, s in curve]
        assert speedups == sorted(speedups)


class TestAsymptoticSpeedup:
    def test_matches_large_n_solve(self, workload_5pct):
        from repro.core.model import CacheMVAModel
        limit = asymptotic_speedup(workload_5pct, ProtocolSpec())
        direct = CacheMVAModel(workload_5pct, ProtocolSpec()).speedup(4096)
        assert limit == pytest.approx(direct, rel=1e-2)

    def test_table_41_asymptote_consistency(self, workload_5pct):
        """Table 4.1(a) shows the N=100 column as effectively asymptotic."""
        from repro.core.model import CacheMVAModel
        limit = asymptotic_speedup(workload_5pct, ProtocolSpec())
        s100 = CacheMVAModel(workload_5pct, ProtocolSpec()).speedup(100)
        assert limit == pytest.approx(s100, rel=0.02)

    def test_mod14_asymptote_beats_mod1(self):
        """Section 4.1: 'The asymptotic results indicate a greater
        potential gain for modification 4 than was evident from previous
        results for ten processors.'"""
        w = appendix_a_workload(SharingLevel.TWENTY_PERCENT)
        lim_1 = asymptotic_speedup(w, ProtocolSpec.of(1))
        lim_14 = asymptotic_speedup(w, ProtocolSpec.of(1, 4))
        gain_at_10 = (lambda a, b: b / a)(
            *[__import__("repro").CacheMVAModel(w, p).speedup(10)
              for p in (ProtocolSpec.of(1), ProtocolSpec.of(1, 4))])
        assert lim_14 / lim_1 > gain_at_10


class TestSweeps:
    def test_sweep_parameter_values(self, workload_5pct):
        points = sweep_parameter(workload_5pct, ProtocolSpec(), 10,
                                 "h_private", [0.90, 0.95, 0.99])
        assert [p.value for p in points] == [0.90, 0.95, 0.99]
        # Better hit rates -> better speedup.
        assert points[0].speedup < points[1].speedup < points[2].speedup

    def test_sweep_reports_utilization(self, workload_5pct):
        points = sweep_parameter(workload_5pct, ProtocolSpec(), 10,
                                 "h_private", [0.5, 0.95])
        assert points[0].u_bus > points[1].u_bus

    def test_sensitivity_sign(self, workload_5pct):
        """Higher private hit rate must help; higher wb_csupply must hurt."""
        assert parameter_sensitivity(workload_5pct, ProtocolSpec(), 10,
                                     "h_private") > 0.0
        assert parameter_sensitivity(workload_5pct, ProtocolSpec(), 10,
                                     "wb_csupply") < 0.0

    def test_sensitivity_rejects_degenerate_range(self, workload_5pct):
        with pytest.raises(ValueError):
            parameter_sensitivity(workload_5pct.replace(h_sw=0.0),
                                  ProtocolSpec(), 10, "h_sw", delta=0.0)


class TestProtocolComparison:
    def test_labels_and_ordering(self, workload_5pct):
        comp = protocol_comparison(
            workload_5pct,
            [ProtocolSpec(), ProtocolSpec.of(1), ProtocolSpec.of(1, 4)],
            n_processors=20)
        assert set(comp) == {"Write-Once", "WO+1", "WO+1+4"}
        assert comp["Write-Once"] < comp["WO+1"] < comp["WO+1+4"]
