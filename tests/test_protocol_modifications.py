"""Tests for the modification algebra and named protocol family."""

import pytest

from repro.protocols.family import (
    PROTOCOLS,
    berkeley,
    dragon,
    illinois,
    protocol_by_name,
    rwb,
    synapse,
    write_once,
)
from repro.protocols.modifications import (
    Modification,
    ProtocolSpec,
    all_combinations,
    parse_mods,
)
from repro.workload.parameters import WorkloadParameters


class TestModification:
    def test_numbers_match_paper(self):
        assert int(Modification.EXCLUSIVE_ON_MISS) == 1
        assert int(Modification.CACHE_TO_CACHE_SUPPLY) == 2
        assert int(Modification.INVALIDATE_INSTEAD_OF_WRITE_WORD) == 3
        assert int(Modification.WRITE_BROADCAST) == 4

    def test_short_names(self):
        assert Modification.WRITE_BROADCAST.short_name == "mod4"


class TestProtocolSpec:
    def test_empty_is_write_once(self):
        spec = ProtocolSpec()
        assert len(spec) == 0
        assert spec.label == "Write-Once"

    def test_of_accepts_ints_and_enums(self):
        a = ProtocolSpec.of(1, 4)
        b = ProtocolSpec.of(Modification.EXCLUSIVE_ON_MISS,
                            Modification.WRITE_BROADCAST)
        assert a == b
        assert a.label == "WO+1+4"

    def test_membership_and_iteration(self):
        spec = ProtocolSpec.of(2, 3)
        assert 2 in spec and Modification(3) in spec and 1 not in spec
        assert list(spec) == [Modification.CACHE_TO_CACHE_SUPPLY,
                              Modification.INVALIDATE_INSTEAD_OF_WRITE_WORD]

    def test_invalid_mod_rejected(self):
        with pytest.raises(ValueError):
            ProtocolSpec.of(5)

    def test_hashable(self):
        assert len({ProtocolSpec.of(1), ProtocolSpec.of(1), ProtocolSpec.of(2)}) == 2

    def test_with_mods(self):
        assert ProtocolSpec.of(1).with_mods(4) == ProtocolSpec.of(1, 4)

    def test_mod4_alone_impractical(self):
        """Section 2.2: modification 4 alone reduces to write-through."""
        assert not ProtocolSpec.of(4).is_practical
        assert ProtocolSpec.of(1, 4).is_practical
        assert ProtocolSpec.of(1).is_practical
        assert ProtocolSpec().is_practical

    def test_all_combinations(self):
        combos = all_combinations()
        assert len(combos) == 16
        assert len(set(combos)) == 16
        assert combos[0] == ProtocolSpec()


class TestWorkloadAdjustment:
    """The Appendix-A per-protocol overrides."""

    def test_mod1_raises_rep_p(self):
        w = ProtocolSpec.of(1).adjust_workload(WorkloadParameters())
        assert w.rep_p == 0.3

    def test_mod2_or_mod3_raise_rep_sw(self):
        for mods in [(2,), (3,)]:
            w = ProtocolSpec.of(*mods).adjust_workload(WorkloadParameters())
            assert w.rep_sw == 0.6, mods

    def test_mods_2_and_3_raise_rep_sw_further(self):
        w = ProtocolSpec.of(2, 3).adjust_workload(WorkloadParameters())
        assert w.rep_sw == 0.7

    def test_mods_1_and_4_raise_h_sw(self):
        w = ProtocolSpec.of(1, 4).adjust_workload(WorkloadParameters())
        assert w.h_sw == 0.95
        # Modification 4 alone does not (needs mod 1 to be practical).
        assert ProtocolSpec.of(4).adjust_workload(WorkloadParameters()).h_sw == 0.5

    def test_write_once_unchanged(self):
        w = WorkloadParameters()
        assert ProtocolSpec().adjust_workload(w) is w

    def test_explicit_values_not_overridden(self):
        w = WorkloadParameters(rep_p=0.4)
        assert ProtocolSpec.of(1).adjust_workload(w).rep_p == 0.4

    def test_dragon_gets_all_adjustments(self):
        w = dragon().adjust_workload(WorkloadParameters())
        assert w.rep_p == 0.3
        assert w.rep_sw == 0.7
        assert w.h_sw == 0.95


class TestFamily:
    def test_modification_sets_match_paper_table(self):
        assert write_once().mod_numbers == frozenset()
        assert synapse().mod_numbers == {3}
        assert illinois().mod_numbers == {1, 3}
        assert berkeley().mod_numbers == {2, 3}
        assert rwb().mod_numbers == {1, 3, 4}
        assert dragon().mod_numbers == {1, 2, 3, 4}

    def test_mod3_in_all_five_successors(self):
        for spec in (synapse(), illinois(), berkeley(), rwb(), dragon()):
            assert 3 in spec, spec.name

    def test_registry_lookup(self):
        assert protocol_by_name("Dragon") == dragon()
        assert protocol_by_name("  berkeley ") == berkeley()
        with pytest.raises(ValueError, match="unknown protocol"):
            protocol_by_name("MESIF")

    def test_registry_complete(self):
        assert set(PROTOCOLS) == {
            "write-once", "synapse", "illinois", "berkeley", "rwb", "dragon"}

    def test_all_named_protocols_practical(self):
        for spec in PROTOCOLS.values():
            assert spec.is_practical, spec.name


class TestParseMods:
    def test_parse_empty_forms(self):
        for text in ("", "wo", "Write-Once", "none"):
            assert parse_mods(text) == ProtocolSpec()

    def test_parse_lists(self):
        assert parse_mods("1,4") == ProtocolSpec.of(1, 4)
        assert parse_mods("1+4") == ProtocolSpec.of(1, 4)
        assert parse_mods([2, 3]) == ProtocolSpec.of(2, 3)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_mods("fast")
