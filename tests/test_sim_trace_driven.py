"""Tests for the trace-driven timing simulator (the third comparator)."""

import pytest

from repro.core.model import CacheMVAModel
from repro.protocols.modifications import ProtocolSpec
from repro.protocols.states import BlockState
from repro.sim.trace_driven import (
    ProtocolCache,
    TraceDrivenConfig,
    TraceDrivenSimulator,
    simulate_trace_driven,
)
from repro.trace import (
    CoherentCacheSystem,
    GeneratorConfig,
    SyntheticTraceGenerator,
    WorkloadEstimator,
)


def _config(n=4, seed=33, mods=(), measured=15_000, **kwargs):
    return TraceDrivenConfig(
        generator=GeneratorConfig(n_processors=n, seed=seed),
        protocol=ProtocolSpec.of(*mods),
        warmup_requests=4_000,
        measured_requests=measured,
        **kwargs)


class TestProtocolCache:
    def test_fill_and_find(self):
        cache = ProtocolCache(n_sets=2, associativity=2)
        assert cache.find(4) is None
        assert cache.fill(4, BlockState.SHARED_CLEAN) is None
        line = cache.find(4)
        assert line is not None and line.state is BlockState.SHARED_CLEAN

    def test_lru_eviction(self):
        cache = ProtocolCache(n_sets=1, associativity=2)
        cache.fill(1, BlockState.SHARED_CLEAN)
        cache.fill(2, BlockState.EXCLUSIVE_WBACK)
        cache.touch(1)
        victim = cache.fill(3, BlockState.SHARED_CLEAN)
        assert victim is not None and victim.block == 2
        assert victim.dirty  # EXCLUSIVE_WBACK victim needs write-back

    def test_drop(self):
        cache = ProtocolCache(n_sets=2, associativity=2)
        cache.fill(5, BlockState.SHARED_CLEAN)
        cache.drop(5)
        assert cache.find(5) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ProtocolCache(n_sets=0, associativity=1)


class TestProtocolResolution:
    def _sim(self, *mods):
        return TraceDrivenSimulator(_config(n=3, mods=mods))

    def test_read_miss_then_hit(self):
        sim = self._sim()
        from repro.workload.streams import RequestKind
        kind, occ, snoops = sim.resolve(0, 100, is_write=False)
        assert kind is RequestKind.REMOTE_READ
        assert occ == 8.0
        assert snoops == []
        kind, occ, _ = sim.resolve(0, 100, is_write=False)
        assert kind is RequestKind.LOCAL

    def test_write_once_write_through_then_local(self):
        from repro.workload.streams import RequestKind
        sim = self._sim()
        sim.resolve(0, 7, is_write=False)
        kind, occ, _ = sim.resolve(0, 7, is_write=True)
        assert kind is RequestKind.BROADCAST  # first write: write-word
        kind, _, _ = sim.resolve(0, 7, is_write=True)
        assert kind is RequestKind.LOCAL      # now exclusive

    def test_mod1_lonely_load_is_exclusive(self):
        from repro.workload.streams import RequestKind
        sim = self._sim(1)
        sim.resolve(0, 7, is_write=False)
        assert sim.caches[0].find(7).state is BlockState.EXCLUSIVE_CLEAN
        kind, _, _ = sim.resolve(0, 7, is_write=True)
        assert kind is RequestKind.LOCAL

    def test_write_once_flush_on_dirty_remote(self):
        sim = self._sim()
        sim.resolve(0, 7, is_write=True)   # write miss -> EXCLUSIVE_WBACK
        kind, occ, snoops = sim.resolve(1, 7, is_write=False)
        # base read 8 + flush transfer 4
        assert occ == pytest.approx(12.0)
        assert snoops and snoops[0][0] == 0
        assert sim.caches[0].find(7).state is BlockState.SHARED_CLEAN

    def test_mod2_direct_supply(self):
        sim = self._sim(2)
        sim.resolve(0, 7, is_write=True)
        kind, occ, snoops = sim.resolve(1, 7, is_write=False)
        assert occ == pytest.approx(5.0)  # cache-to-cache
        assert sim.caches[0].find(7).state is BlockState.SHARED_WBACK

    def test_mod4_keeps_copies_valid(self):
        sim = self._sim(1, 4)
        sim.resolve(0, 7, is_write=False)
        sim.resolve(1, 7, is_write=False)
        sim.resolve(0, 7, is_write=True)   # broadcast update
        assert sim.caches[1].find(7) is not None

    def test_invalidation_protocol_kills_copies(self):
        sim = self._sim(3)
        sim.resolve(0, 7, is_write=False)
        sim.resolve(1, 7, is_write=False)
        sim.resolve(0, 7, is_write=True)
        assert sim.caches[1].find(7) is None

    def test_dirty_eviction_adds_writeback_transfer(self):
        config = TraceDrivenConfig(
            generator=GeneratorConfig(n_processors=1, seed=1),
            n_sets=1, associativity=1)
        sim = TraceDrivenSimulator(config)
        sim.resolve(0, 1, is_write=True)        # dirty block 1
        _, occ, _ = sim.resolve(0, 2, is_write=False)
        assert occ == pytest.approx(8.0 + 4.0)  # read + victim write-back


class TestRuns:
    def test_reproducible(self):
        a = simulate_trace_driven(_config(measured=5_000))
        b = simulate_trace_driven(_config(measured=5_000))
        assert a.speedup == b.speedup

    def test_plausible_measures(self):
        result = simulate_trace_driven(_config())
        assert 0.5 < result.speedup < 4.0
        assert 0.7 < result.hit_rate < 1.0
        assert 0.0 < result.u_bus <= 1.0
        assert result.bus_transactions > 0

    def test_summary(self):
        result = simulate_trace_driven(_config(measured=2_000))
        assert "trace-driven" in result.summary()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TraceDrivenConfig(generator=GeneratorConfig(), n_sets=0)
        with pytest.raises(ValueError):
            TraceDrivenConfig(generator=GeneratorConfig(), tau=-1.0)


@pytest.mark.slow
class TestClosedLoopWithMVA:
    """The full measurement loop: parameters measured from the same
    trace feed the MVA; its prediction is compared against the
    trace-driven timing.  Agreement is looser than the sampled-outcome
    comparisons (the MVA's probabilistic workload cannot capture trace
    correlations -- exactly the caveat of the paper's Section 4.4), but
    must hold to ~10 % at small N and ~20 % at N = 8."""

    def _loop(self, n, mods=()):
        gen_cfg = GeneratorConfig(n_processors=n, seed=21)
        trace_driven = simulate_trace_driven(TraceDrivenConfig(
            generator=gen_cfg, protocol=ProtocolSpec.of(*mods),
            warmup_requests=8_000, measured_requests=40_000))
        generator = SyntheticTraceGenerator(gen_cfg)
        system = CoherentCacheSystem(n, 256, 4)
        estimator = WorkloadEstimator(system, generator.stream_of)
        estimator.observe_trace(generator.trace(150_000))
        workload = estimator.estimate().workload
        mva = CacheMVAModel(workload, ProtocolSpec.of(*mods),
                            apply_overrides=False).speedup(n)
        return trace_driven.speedup, mva

    def test_small_system(self):
        measured, predicted = self._loop(2)
        assert predicted == pytest.approx(measured, rel=0.10)

    def test_mid_system(self):
        measured, predicted = self._loop(4)
        assert predicted == pytest.approx(measured, rel=0.12)

    def test_large_system(self):
        measured, predicted = self._loop(8)
        assert predicted == pytest.approx(measured, rel=0.20)

    def test_protocol_effect_direction_preserved(self):
        """Ownership supply helps in both worlds on this dirty-sharing
        trace."""
        base_m, base_p = self._loop(4)
        mod23_m, mod23_p = self._loop(4, mods=(2, 3))
        assert mod23_m >= base_m * 0.99
        assert mod23_p >= base_p * 0.99
