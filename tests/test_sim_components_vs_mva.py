"""Component-level validation: equations (2)-(4) term by term.

Beyond comparing headline speedups, the simulator's per-request-kind
response means are compared against the corresponding MVA terms:

* local requests: the snoop-interference wait, n_int * t_int;
* broadcasts: w_bus + w_mem + t_bc;
* remote reads: w_bus + t_read.

This catches compensating-error situations a speedup comparison would
miss (e.g. overestimated bus wait hiding underestimated interference).
"""

import pytest

from repro.core.model import CacheMVAModel
from repro.protocols.modifications import ProtocolSpec
from repro.sim.config import SimulationConfig
from repro.sim.system import simulate
from repro.workload.parameters import SharingLevel, appendix_a_workload
from repro.workload.streams import RequestKind


@pytest.fixture(scope="module")
def cell():
    """One well-exercised comparison cell (N = 6, 5 % sharing)."""
    workload = appendix_a_workload(SharingLevel.FIVE_PERCENT)
    result = simulate(SimulationConfig(
        n_processors=6, workload=workload, seed=99,
        warmup_requests=5_000, measured_requests=120_000))
    report = CacheMVAModel(workload).solve(6)
    return result, report


class TestPerKindResponses:
    def test_all_kinds_observed(self, cell):
        result, _ = cell
        assert set(result.response_by_kind) == {
            k.value for k in RequestKind}

    def test_broadcast_response_matches_equation_3(self, cell):
        result, report = cell
        mva = report.w_bus + report.w_mem + 1.0  # t_bc = 1 for Write-Once
        sim = result.response_by_kind[RequestKind.BROADCAST.value]
        assert sim == pytest.approx(mva, rel=0.15)

    def test_remote_read_response_matches_equation_4(self, cell):
        result, report = cell
        workload = appendix_a_workload(SharingLevel.FIVE_PERCENT)
        t_read = CacheMVAModel(workload).inputs.t_read
        mva = report.w_bus + t_read
        sim = result.response_by_kind[RequestKind.REMOTE_READ.value]
        assert sim == pytest.approx(mva, rel=0.15)

    def test_local_response_matches_equation_2(self, cell):
        """The smallest term: the MVA overestimates interference
        (Section 4.2 says so), so allow a wide band but require the
        magnitude to match."""
        result, report = cell
        mva = report.n_interference * report.t_interference
        sim = result.response_by_kind[RequestKind.LOCAL.value]
        assert sim == pytest.approx(mva, abs=0.1, rel=0.8)
        # Section 4.2's bias direction: MVA overestimates interference.
        assert mva >= sim * 0.5

    def test_components_reassemble_cycle_time(self, cell):
        """Mix-weighted per-kind responses + tau + supply ~ R."""
        result, _ = cell
        workload = appendix_a_workload(SharingLevel.FIVE_PERCENT)
        inputs = CacheMVAModel(workload).inputs
        reassembled = (workload.tau + 1.0
                       + inputs.p_local * result.response_by_kind["local"]
                       + inputs.p_bc * result.response_by_kind["broadcast"]
                       + inputs.p_rr * result.response_by_kind["remote-read"])
        assert reassembled == pytest.approx(result.mean_cycle_time, rel=0.02)


class TestMemoryUtilization:
    def test_u_mem_matches_equation_12(self, cell):
        """Per-module memory utilization, simulator vs equation (12)."""
        result, report = cell
        assert result.u_mem == pytest.approx(report.u_mem, rel=0.15)

    def test_memory_ops_rate_matches(self, cell):
        """Memory write operations per cycle: simulator count vs the
        MVA's N * memory_ops_per_request / R."""
        result, report = cell
        workload = appendix_a_workload(SharingLevel.FIVE_PERCENT)
        inputs = CacheMVAModel(workload).inputs
        mva_rate = 6 * inputs.memory_ops_per_request() / report.cycle_time
        # Simulator: ops during measurement / elapsed cycles -- recover
        # from the utilization identity U_mem = rate * d_mem / modules.
        sim_rate = result.u_mem * 4 / 3.0
        assert sim_rate == pytest.approx(mva_rate, rel=0.15)


class TestPerKindUnderModifications:
    def test_mod2_shortens_remote_reads(self):
        workload = appendix_a_workload(SharingLevel.TWENTY_PERCENT)

        def read_response(mods):
            result = simulate(SimulationConfig(
                n_processors=4, workload=workload,
                protocol=ProtocolSpec.of(*mods), seed=17,
                warmup_requests=3_000, measured_requests=40_000))
            return result.response_by_kind[RequestKind.REMOTE_READ.value]

        assert read_response((2,)) < read_response(())

    def test_mod3_shortens_broadcasts_via_memory(self):
        """Invalidates skip the memory module, so broadcast responses
        lose the w_mem component."""
        workload = appendix_a_workload(SharingLevel.TWENTY_PERCENT)

        def bc_response(mods):
            result = simulate(SimulationConfig(
                n_processors=8, workload=workload,
                protocol=ProtocolSpec.of(*mods), seed=17,
                warmup_requests=3_000, measured_requests=40_000,
                apply_overrides=False))
            return (result.response_by_kind[RequestKind.BROADCAST.value]
                    - result.w_bus)
        assert bc_response((3,)) < bc_response(())
