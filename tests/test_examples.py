"""Smoke tests: every example script runs and prints its key output."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_examples_directory_complete():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "design_space.py",
            "validate_with_simulation.py", "asymptotic_scaling.py",
            "gtpn_demo.py", "hierarchical_scaling.py",
            "trace_calibration.py"} <= scripts


def test_quickstart():
    out = _run("quickstart.py")
    assert "speedup" in out
    assert "bus-saturated speedup limit" in out


def test_design_space():
    out = _run("design_space.py")
    assert "all 16 modification combinations" in out
    assert "dragon" in out
    assert "block-size sensitivity" in out


@pytest.mark.slow
def test_validate_with_simulation_fast():
    out = _run("validate_with_simulation.py", "--fast")
    assert "max |error|" in out
    assert "Write-Once" in out


def test_asymptotic_scaling():
    out = _run("asymptotic_scaling.py")
    assert "gain of modification 4" in out
    assert "saturate" in out


def test_gtpn_demo():
    out = _run("gtpn_demo.py")
    assert "states" in out
    assert "MVA speedup" in out


def test_hierarchical_scaling():
    out = _run("hierarchical_scaling.py")
    assert "flat single-bus speedup limit" in out
    assert "cluster scaling" in out


@pytest.mark.slow
def test_trace_calibration():
    out = _run("trace_calibration.py")
    assert "protocol ranking" in out
    assert "csupply" in out
