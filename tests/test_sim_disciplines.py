"""Testing the paper's Section 2.1 scheduling claim.

"Bus requests are served in random order in the GTPN model [VeHo86],
but are assumed to be scheduled in first-come first-served order in the
mean-value model developed in this paper.  Both scheduling disciplines
have the same mean waiting time, and thus yield the same predicted
speedup measures."

Mean waiting time is insensitive to any non-preemptive,
service-time-blind queue discipline (a classical M/G/1 result that
carries over here); the waiting-time *variance* is not -- random order
is more variable than FCFS.  Both facts are checked against the
simulator.
"""

import numpy as np
import pytest

from repro.sim.bus import Bus, BusDiscipline, BusRequest
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulation
from repro.sim.system import simulate
from repro.workload.parameters import SharingLevel, appendix_a_workload
from repro.workload.streams import ReferenceOutcome, RequestKind


def _run(discipline: BusDiscipline, seed: int, n: int = 8,
         requests: int = 60_000):
    return simulate(SimulationConfig(
        n_processors=n,
        workload=appendix_a_workload(SharingLevel.FIVE_PERCENT),
        seed=seed,
        warmup_requests=4_000,
        measured_requests=requests,
        bus_discipline=discipline,
    ))


class TestBusDisciplineUnit:
    def test_random_requires_rng(self):
        with pytest.raises(ValueError, match="rng"):
            Bus(discipline=BusDiscipline.RANDOM)

    def test_random_order_can_reorder(self):
        """With many queued requests, random service must (eventually)
        grant somebody out of arrival order."""
        sim = Simulation()
        bus = Bus(discipline=BusDiscipline.RANDOM,
                  rng=np.random.default_rng(3))
        grant_order = []

        def grant(s, req):
            grant_order.append(req.cache_id)
            s.schedule(1.0, lambda s2: bus.complete(s2, grant))

        for i in range(12):
            bus.submit(sim, BusRequest(
                cache_id=i,
                outcome=ReferenceOutcome(kind=RequestKind.REMOTE_READ),
                enqueue_time=0.0,
                on_complete=lambda s, r: None), grant)
        sim.run()
        assert sorted(grant_order) == list(range(12))
        assert grant_order != list(range(12))

    def test_fcfs_never_reorders(self):
        sim = Simulation()
        bus = Bus()
        grant_order = []

        def grant(s, req):
            grant_order.append(req.cache_id)
            s.schedule(1.0, lambda s2: bus.complete(s2, grant))

        for i in range(6):
            bus.submit(sim, BusRequest(
                cache_id=i,
                outcome=ReferenceOutcome(kind=RequestKind.BROADCAST),
                enqueue_time=0.0,
                on_complete=lambda s, r: None), grant)
        sim.run()
        assert grant_order == list(range(6))


@pytest.mark.slow
class TestDisciplineEquivalence:
    """The full-system version of the Section 2.1 claim."""

    def test_same_mean_wait_and_speedup(self):
        fcfs = [_run(BusDiscipline.FCFS, seed=s) for s in (11, 12)]
        rand = [_run(BusDiscipline.RANDOM, seed=s) for s in (11, 12)]
        mean = lambda rs, attr: sum(getattr(r, attr) for r in rs) / len(rs)  # noqa: E731
        w_f, w_r = mean(fcfs, "w_bus"), mean(rand, "w_bus")
        s_f, s_r = mean(fcfs, "speedup"), mean(rand, "speedup")
        assert w_r == pytest.approx(w_f, rel=0.06)
        assert s_r == pytest.approx(s_f, rel=0.03)

    def test_random_order_more_variable(self):
        fcfs = _run(BusDiscipline.FCFS, seed=21)
        rand = _run(BusDiscipline.RANDOM, seed=21)
        assert rand.w_bus_stddev > fcfs.w_bus_stddev
