"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import EventQueue, Simulation, cancel


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        order = []
        q.push(2.0, lambda s: order.append("b"))
        q.push(1.0, lambda s: order.append("a"))
        q.push(3.0, lambda s: order.append("c"))
        while (e := q.pop()) is not None:
            e.callback(None)
        assert order == ["a", "b", "c"]

    def test_ties_break_by_priority_then_insertion(self):
        q = EventQueue()
        order = []
        q.push(1.0, lambda s: order.append("late"), priority=2)
        q.push(1.0, lambda s: order.append("early"), priority=0)
        q.push(1.0, lambda s: order.append("late2"), priority=2)
        while (e := q.pop()) is not None:
            e.callback(None)
        assert order == ["early", "late", "late2"]

    def test_cancellation(self):
        q = EventQueue()
        e1 = q.push(1.0, lambda s: None)
        q.push(2.0, lambda s: None)
        cancel(e1)
        assert len(q) == 1
        popped = q.pop()
        assert popped is not None and popped.time == 2.0

    def test_rejects_nonfinite_time(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push(float("inf"), lambda s: None)

    def test_bool(self):
        q = EventQueue()
        assert not q
        e = q.push(1.0, lambda s: None)
        assert q
        cancel(e)
        assert not q


class TestSimulation:
    def test_clock_advances_monotonically(self):
        sim = Simulation()
        times = []
        sim.schedule(5.0, lambda s: times.append(s.now))
        sim.schedule(1.0, lambda s: times.append(s.now))
        sim.run()
        assert times == [1.0, 5.0]
        assert sim.now == 5.0

    def test_callbacks_can_schedule_more(self):
        sim = Simulation()
        seen = []

        def chain(s, depth=0):
            seen.append(s.now)
            if depth < 3:
                s.schedule(1.0, lambda s2: chain(s2, depth + 1))

        sim.schedule(0.0, chain)
        sim.run()
        assert seen == [0.0, 1.0, 2.0, 3.0]

    def test_run_until(self):
        sim = Simulation()
        seen = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda s: seen.append(s.now))
        sim.run(until=2.5)
        assert seen == [1.0, 2.0]
        assert sim.now == 2.5
        sim.run()  # rest of the queue still there
        assert seen == [1.0, 2.0, 3.0]

    def test_stop_from_callback(self):
        sim = Simulation()
        seen = []
        sim.schedule(1.0, lambda s: (seen.append(1), s.stop()))
        sim.schedule(2.0, lambda s: seen.append(2))
        sim.run()
        assert seen == [1]
        sim.run()
        assert seen == [1, 2]

    def test_max_events(self):
        sim = Simulation()
        for t in range(5):
            sim.schedule(float(t), lambda s: None)
        assert sim.run(max_events=3) == 3

    def test_cannot_schedule_in_past(self):
        sim = Simulation()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda s: None)
        sim.schedule(1.0, lambda s: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda s: None)

    def test_schedule_at_clamps_to_now(self):
        sim = Simulation()
        fired = []
        sim.schedule(1.0, lambda s: s.schedule_at(
            1.0, lambda s2: fired.append(s2.now)))
        sim.run()
        assert fired == [1.0]
