"""Shared hypothesis strategies for model-level property tests.

One home for the generators that used to be copy-pasted between
``test_core_properties.py`` and ``test_core_batch.py`` (and that the
verify-subsystem tests reuse): random-but-valid workloads, arbitrary
protocol-modification combinations, and system sizes.  Keeping them
here means a new workload field is added to *one* strategy and every
property suite picks it up.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.protocols.modifications import ProtocolSpec
from repro.workload.parameters import WorkloadParameters


@st.composite
def workloads(draw) -> WorkloadParameters:
    """Any *valid* workload: mix normalized, all rates in [0, 1].

    The three mix fractions are drawn independently then normalized
    (with ``p_private`` bounded away from zero so the normalization is
    well-conditioned); every hit ratio / conditional probability is a
    free draw from the unit interval.
    """
    prob = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
    a = draw(st.floats(min_value=0.05, max_value=1.0))
    b = draw(st.floats(min_value=0.0, max_value=1.0))
    c = draw(st.floats(min_value=0.0, max_value=1.0))
    total = a + b + c
    return WorkloadParameters(
        tau=draw(st.floats(min_value=0.0, max_value=20.0)),
        p_private=a / total, p_sro=b / total, p_sw=c / total,
        h_private=draw(prob), h_sro=draw(prob), h_sw=draw(prob),
        r_private=draw(prob), r_sw=draw(prob),
        amod_private=draw(prob), amod_sw=draw(prob),
        csupply_sro=draw(prob), csupply_sw=draw(prob),
        wb_csupply=draw(prob), rep_p=draw(prob), rep_sw=draw(prob),
    )


#: Any of the 16 modification combinations (including the base WO).
PROTOCOLS = st.builds(
    lambda mods: ProtocolSpec.of(*mods),
    st.sets(st.integers(min_value=1, max_value=4), max_size=4))

#: A single system size spanning degenerate (N=1) to deep saturation.
SIZES = st.integers(min_value=1, max_value=128)

#: A small mix of sizes for batch-engine lanes.
SIZE_LISTS = st.lists(st.integers(min_value=1, max_value=128),
                      min_size=1, max_size=4)
