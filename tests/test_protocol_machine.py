"""Protocol semantics tests: the Section 2.2 walk-throughs, plus
hypothesis-driven model checking of the coherence invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.machine import (
    CoherenceMachine,
    ProcessorOp,
    SnoopAction,
)
from repro.protocols.modifications import ProtocolSpec
from repro.protocols.states import BlockState
from repro.protocols.transactions import BusOp

READ = ProcessorOp.READ
WRITE = ProcessorOp.WRITE


def machine(*mods: int, n: int = 3) -> CoherenceMachine:
    return CoherenceMachine(ProtocolSpec.of(*mods), n_caches=n)


class TestWriteOnce:
    """The Section 2.2 Write-Once narrative, step by step."""

    def test_read_miss_loads_shared_clean(self):
        m = machine()
        result = m.access(0, READ)
        assert result.bus_ops == (BusOp.READ,)
        assert m.states[0] is BlockState.SHARED_CLEAN
        assert result.memory_supplied

    def test_write_miss_loads_exclusive_wback(self):
        """'A bus read-mod request invalidates all other copies of the
        block, and loads the block in state exclusive and wback.'"""
        m = machine()
        m.access(1, READ)
        result = m.access(0, WRITE)
        assert BusOp.READ_MOD in result.bus_ops
        assert m.states[0] is BlockState.EXCLUSIVE_WBACK
        assert m.states[1] is BlockState.INVALID
        assert result.actions[1] is SnoopAction.INVALIDATE

    def test_first_write_hits_write_through(self):
        """'the first time a processor writes a word to a non-exclusive
        block in its cache, the word is written through to main memory
        ... changes the state of the block to exclusive and no-wback.'"""
        m = machine()
        m.access(0, READ)
        m.access(1, READ)
        result = m.access(0, WRITE)
        assert result.bus_ops == (BusOp.WRITE_WORD,)
        assert m.states[0] is BlockState.EXCLUSIVE_CLEAN
        assert m.states[1] is BlockState.INVALID
        assert m.memory_fresh

    def test_second_write_is_local(self):
        """'Writes to a block in state exclusive in the cache are written
        only locally, changing the state to wback.'"""
        m = machine()
        m.access(0, READ)
        m.access(0, WRITE)
        result = m.access(0, WRITE)
        assert result.bus_ops == ()
        assert m.states[0] is BlockState.EXCLUSIVE_WBACK
        assert not m.memory_fresh

    def test_read_miss_flushes_wback_holder(self):
        """'a cache containing the block in state wback interrupts the bus
        transaction and writes the block to main memory ... The state of
        the block changes to no-wback if the bus request is of type
        read.'"""
        m = machine()
        m.access(0, READ)
        m.access(0, WRITE)
        m.access(0, WRITE)  # now EXCLUSIVE_WBACK
        result = m.access(1, READ)
        assert result.bus_ops == (BusOp.READ, BusOp.WRITE_BLOCK)
        assert result.actions[0] is SnoopAction.FLUSH
        assert result.memory_supplied
        assert m.states[0] is BlockState.SHARED_CLEAN
        assert m.states[1] is BlockState.SHARED_CLEAN
        assert m.memory_fresh

    def test_wback_implies_sole_copy(self):
        """'if a cache contains a block in state wback, it is the only
        cache containing the block.'"""
        m = machine()
        m.access(0, READ)
        m.access(0, WRITE)
        m.access(0, WRITE)
        holders = m.holders()
        assert holders == [0]
        assert m.states[0].exclusive

    def test_purge_of_dirty_block_writes_back(self):
        m = machine()
        m.access(0, WRITE)  # write miss -> EXCLUSIVE_WBACK
        result = m.purge(0)
        assert result.bus_ops == (BusOp.WRITE_BLOCK,)
        assert m.states[0] is BlockState.INVALID
        assert m.memory_fresh

    def test_purge_of_clean_block_silent(self):
        m = machine()
        m.access(0, READ)
        assert m.purge(0).bus_ops == ()

    def test_without_mod1_miss_loads_nonexclusive_even_if_alone(self):
        m = machine()
        result = m.access(0, READ)
        assert m.states[0] is BlockState.SHARED_CLEAN
        assert not m.states[0].exclusive
        assert result.memory_supplied


class TestModification1:
    def test_lone_read_miss_loads_exclusive(self):
        m = machine(1)
        m.access(0, READ)
        assert m.states[0] is BlockState.EXCLUSIVE_CLEAN

    def test_read_miss_with_holder_loads_shared(self):
        """The shared line is raised, so the block loads non-exclusive."""
        m = machine(1)
        m.access(0, READ)
        m.access(1, READ)
        assert m.states[1] is BlockState.SHARED_CLEAN
        assert m.states[0] is BlockState.SHARED_CLEAN  # lost exclusivity

    def test_write_after_exclusive_load_needs_no_bus(self):
        """The case modification 1 exists for: block not resident
        elsewhere and written after loading."""
        m = machine(1)
        m.access(0, READ)
        result = m.access(0, WRITE)
        assert result.bus_ops == ()
        assert m.states[0] is BlockState.EXCLUSIVE_WBACK


class TestModification2:
    def test_wback_holder_supplies_directly(self):
        """'a cache that has a requested block in state wback supplies the
        copy directly to the requesting cache and does not update main
        memory ... the supplying cache sets the state to non-exclusive
        and wback.'"""
        m = machine(2)
        m.access(0, WRITE)  # EXCLUSIVE_WBACK
        result = m.access(1, READ)
        assert result.bus_ops == (BusOp.READ,)  # no write-block
        assert result.actions[0] is SnoopAction.SUPPLY
        assert not result.memory_supplied
        assert m.states[0] is BlockState.SHARED_WBACK  # keeps ownership
        assert m.states[1] is BlockState.SHARED_CLEAN
        assert not m.memory_fresh  # memory not updated

    def test_owner_purge_writes_back(self):
        m = machine(2)
        m.access(0, WRITE)
        m.access(1, READ)
        result = m.purge(0)
        assert result.bus_ops == (BusOp.WRITE_BLOCK,)
        assert m.memory_fresh

    def test_read_mod_supply_transfers_dirty_data(self):
        m = machine(2)
        m.access(0, WRITE)
        result = m.access(1, WRITE)  # read-mod
        assert result.bus_ops == (BusOp.READ_MOD,)
        assert result.actions[0] is SnoopAction.SUPPLY
        assert m.states[0] is BlockState.INVALID
        assert m.states[1] is BlockState.EXCLUSIVE_WBACK


class TestModification3:
    def test_first_write_invalidates_instead_of_write_word(self):
        m = machine(3)
        m.access(0, READ)
        m.access(1, READ)
        result = m.access(0, WRITE)
        assert result.bus_ops == (BusOp.INVALIDATE,)
        assert m.states[0] is BlockState.EXCLUSIVE_WBACK  # dirty: no write-through
        assert m.states[1] is BlockState.INVALID
        assert not m.memory_fresh


class TestModification4:
    def test_broadcast_write_keeps_copies_valid(self):
        """'all caches update their copies, and main memory is updated by
        the broadcast write. Cache blocks remain in state no-wback.'"""
        m = machine(1, 4)
        m.access(0, READ)
        m.access(1, READ)
        result = m.access(0, WRITE)
        assert result.bus_ops == (BusOp.WRITE_WORD,)
        assert result.actions[1] is SnoopAction.UPDATE
        assert m.states[0] is BlockState.SHARED_CLEAN
        assert m.states[1] is BlockState.SHARED_CLEAN
        assert m.memory_fresh

    def test_mods_3_and_4_broadcast_without_memory_update(self):
        """Section 2.2 Summary: broadcasting cache takes write-back
        responsibility."""
        m = machine(1, 3, 4)
        m.access(0, READ)
        m.access(1, READ)
        result = m.access(0, WRITE)
        assert result.bus_ops == (BusOp.WRITE_WORD,)
        assert m.states[0] is BlockState.SHARED_WBACK
        assert m.states[1] is BlockState.SHARED_CLEAN
        assert not m.memory_fresh

    def test_mods_3_and_4_ownership_moves_to_latest_writer(self):
        m = machine(1, 3, 4)
        m.access(0, READ)
        m.access(1, READ)
        m.access(0, WRITE)
        m.access(1, WRITE)
        assert m.states[1] is BlockState.SHARED_WBACK
        assert m.states[0] is BlockState.SHARED_CLEAN


class TestValidation:
    def test_bad_cache_id(self):
        with pytest.raises(IndexError):
            machine().access(9, READ)

    def test_bad_n_caches(self):
        with pytest.raises(ValueError):
            CoherenceMachine(ProtocolSpec(), n_caches=0)


# --- hypothesis model checking -------------------------------------------

MOD_COMBOS = st.sets(st.integers(min_value=1, max_value=4), max_size=4)
OPS = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),
              st.sampled_from([ProcessorOp.READ, ProcessorOp.WRITE, "purge"])),
    min_size=1, max_size=60)


@given(MOD_COMBOS, OPS)
@settings(max_examples=300, deadline=None)
def test_random_access_sequences_preserve_invariants(mods, ops):
    """The machine asserts its invariants after every transition, so
    surviving a random sequence *is* the property: single owner, exclusive
    implies sole holder, memory freshness consistent with ownership."""
    m = CoherenceMachine(ProtocolSpec.of(*mods), n_caches=4)
    for cache_id, op in ops:
        if op == "purge":
            m.purge(cache_id)
        else:
            m.access(cache_id, op)


@given(MOD_COMBOS, OPS)
@settings(max_examples=200, deadline=None)
def test_purge_all_restores_fresh_memory(mods, ops):
    """After every cache evicts the block, memory must hold its value."""
    m = CoherenceMachine(ProtocolSpec.of(*mods), n_caches=4)
    for cache_id, op in ops:
        if op == "purge":
            m.purge(cache_id)
        else:
            m.access(cache_id, op)
    for cache_id in range(4):
        m.purge(cache_id)
    assert m.memory_fresh
    assert m.holders() == []


@given(MOD_COMBOS, OPS)
@settings(max_examples=200, deadline=None)
def test_reader_always_ends_with_valid_copy(mods, ops):
    m = CoherenceMachine(ProtocolSpec.of(*mods), n_caches=4)
    for cache_id, op in ops:
        if op == "purge":
            m.purge(cache_id)
        else:
            m.access(cache_id, op)
            assert m.states[cache_id].valid
