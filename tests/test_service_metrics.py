"""Tests for the metrics registry and its Prometheus exposition."""

import pytest

from repro.service.metrics import (
    Counter,
    DEFAULT_ITERATION_BUCKETS,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestHistogram:
    def test_observe_and_cumulate(self):
        histogram = Histogram(buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 3.0, 7.0, 100.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(110.5)
        assert histogram.cumulative_counts() == [
            (1.0, 1), (5.0, 2), (10.0, 3), (float("inf"), 4)]

    def test_boundary_value_lands_in_its_bucket(self):
        histogram = Histogram(buckets=(1.0, 5.0))
        histogram.observe(5.0)  # le="5" is inclusive
        assert histogram.cumulative_counts()[1] == (5.0, 1)

    def test_quantile(self):
        histogram = Histogram(buckets=(1, 2, 4, 8))
        for value in (0.5, 1.5, 3, 7):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 2
        assert histogram.quantile(1.0) == 8
        assert Histogram(buckets=(1,)).quantile(0.9) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(1,)).quantile(1.5)


class TestRegistry:
    def test_create_or_get_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("x_total") is registry.counter("x_total")

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_labels_create_child_series(self):
        registry = MetricsRegistry()
        family = registry.counter("req_total", "requests")
        family.labels(code="200").inc(3)
        family.labels(code="404").inc()
        family.labels(code="200").inc()
        assert family.labels(code="200").value == 4
        assert family.value == 5

    def test_render_counter_format(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", "cache hits").labels(kind="mva").inc(2)
        text = registry.render()
        assert "# HELP hits_total cache hits" in text
        assert "# TYPE hits_total counter" in text
        assert 'hits_total{kind="mva"} 2' in text
        assert text.endswith("\n")

    def test_render_histogram_format(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds", "latency",
                                       buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        text = registry.render()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_count 2" in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render() == ""

    def test_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(3)
        registry.histogram("h", buckets=DEFAULT_ITERATION_BUCKETS).observe(7)
        snapshot = registry.snapshot()
        assert snapshot["c_total"] == 3
        assert snapshot["h_count"] == 1
        assert snapshot["h_sum"] == 7
