"""Tests for the operational laws and the cross-model audits."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.operational import (
    audit_mva_report,
    bottleneck_throughput_bound,
    check_consistency,
    forced_flow_law,
    littles_law_n,
    response_time_law,
    utilization_law,
)


class TestLaws:
    def test_littles_law(self):
        assert littles_law_n(0.5, 8.0) == 4.0

    def test_utilization_law(self):
        assert utilization_law(0.5, 1.2) == pytest.approx(0.6)

    def test_forced_flow(self):
        assert forced_flow_law(2.0, 3.0) == 6.0

    def test_response_time_law(self):
        assert response_time_law(10, 0.5, think_time=5.0) == pytest.approx(15.0)
        assert math.isinf(response_time_law(10, 0.0, 5.0))

    def test_bottleneck_bound(self):
        assert bottleneck_throughput_bound(0.25) == 4.0
        assert math.isinf(bottleneck_throughput_bound(0.0))


class TestConsistency:
    def test_consistent_measurements(self):
        # X=0.5, R=8 -> N=4; U = 0.5 * 1.2 = 0.6.
        report = check_consistency(population=4, throughput=0.5,
                                   response_time=8.0, utilization=0.6,
                                   service_demand=1.2)
        assert report.consistent
        assert report.littles_law_residual < 1e-12

    def test_inconsistent_flagged(self):
        report = check_consistency(population=4, throughput=0.5,
                                   response_time=9.0, utilization=0.6,
                                   service_demand=1.2)
        assert not report.consistent
        assert report.littles_law_residual > 0.05

    def test_saturation_skips_utilization_check(self):
        report = check_consistency(population=100, throughput=1.0,
                                   response_time=100.0, utilization=1.0,
                                   service_demand=5.0)
        assert report.utilization_residual == 0.0

    def test_tolerance_validation(self):
        with pytest.raises(ValueError):
            check_consistency(1, 1.0, 1.0, 0.5, 0.5, tolerance=0.0)


class TestAuditMVA:
    @given(st.integers(min_value=1, max_value=64))
    @settings(max_examples=40, deadline=None)
    def test_mva_reports_pass_the_audit(self, n):
        """The MVA's own outputs must satisfy the operational laws."""
        from repro.core.model import CacheMVAModel
        from repro.workload.parameters import SharingLevel, appendix_a_workload
        model = CacheMVAModel(appendix_a_workload(SharingLevel.FIVE_PERCENT))
        report = model.solve(n)
        inp = model.inputs
        bus_demand = (inp.p_bc * (report.w_mem + inp.t_bc)
                      + inp.p_rr * inp.t_read)
        audit = audit_mva_report(report, bus_demand, tolerance=1e-6)
        assert audit.consistent, (n, audit)

    def test_simulator_passes_the_audit(self, workload_5pct):
        """The simulator's measured utilization obeys U = X * D with the
        *measured* mean occupancy per transaction."""
        from repro.sim.config import SimulationConfig
        from repro.sim.system import simulate
        result = simulate(SimulationConfig(
            n_processors=6, workload=workload_5pct, seed=8,
            warmup_requests=3_000, measured_requests=40_000))
        bus_throughput = result.bus_transactions / result.elapsed_cycles
        mean_occupancy = (result.u_bus * result.elapsed_cycles
                          / result.bus_transactions)
        audit = check_consistency(
            population=6,
            throughput=6 / result.mean_cycle_time,
            response_time=result.mean_cycle_time,
            utilization=result.u_bus,
            service_demand=mean_occupancy * bus_throughput
            / (6 / result.mean_cycle_time),
            tolerance=0.02,
        )
        assert audit.utilization_residual < 0.02
