"""Unit tests for the equation system (one sweep at a time)."""

import math

import pytest

from repro.core.equations import EquationSystem, ModelState, _p_busy
from repro.workload.derived import derive_inputs
from repro.workload.parameters import ArchitectureParams


@pytest.fixture
def system_8(workload_5pct):
    return EquationSystem(derive_inputs(workload_5pct), n_processors=8)


class TestPBusy:
    def test_single_server_is_never_seen_busy(self):
        assert _p_busy(0.9, 1) == 0.0

    def test_equation_8_value(self):
        # p_busy = (U - U/N) / (1 - U/N)
        u, n = 0.6, 4
        expected = (u - u / n) / (1.0 - u / n)
        assert math.isclose(_p_busy(u, n), expected)

    def test_clamped_to_unit_interval(self):
        assert 0.0 <= _p_busy(5.0, 4) < 1.0
        assert _p_busy(0.0, 4) == 0.0

    def test_monotone_in_utilization(self):
        values = [_p_busy(u, 8) for u in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert values == sorted(values)


class TestFirstSweep:
    """From a cold start (all waits zero) the sweep must reproduce the
    no-contention response time exactly."""

    def test_cold_start_response(self, system_8, workload_5pct):
        state = system_8.step(ModelState())
        inp = system_8.inputs
        expected_r = (workload_5pct.tau
                      + inp.p_bc * inp.t_bc
                      + inp.p_rr * inp.t_read
                      + 1.0)
        assert state.response is not None
        assert math.isclose(state.response.total, expected_r)
        assert state.response.r_local == 0.0  # no queue yet -> no interference

    def test_cold_start_queue_length(self, system_8):
        state = system_8.step(ModelState())
        inp = system_8.inputs
        r = state.response.total
        expected_q = 7 * (inp.p_bc * inp.t_bc + inp.p_rr * inp.t_read) / r
        assert math.isclose(state.q_bus, expected_q)

    def test_utilization_scales_with_n(self, workload_5pct):
        inputs = derive_inputs(workload_5pct)
        u4 = EquationSystem(inputs, 4).step(ModelState()).u_bus
        u8 = EquationSystem(inputs, 8).step(ModelState()).u_bus
        assert math.isclose(u8, 2 * u4)  # same R on the first sweep


class TestSweepConsistency:
    def test_waiting_times_nonnegative(self, system_8):
        state = ModelState()
        for _ in range(30):
            state = system_8.step(state)
            assert state.w_bus >= 0.0
            assert state.w_mem >= 0.0
            assert state.q_bus >= 0.0
            assert state.n_interference >= 0.0

    def test_n_interference_bounded_by_queue(self, system_8):
        state = ModelState()
        for _ in range(30):
            state = system_8.step(state)
        # Equation 13: n_int = p (1 - p'^Q)/(1 - p') <= Q for p <= 1.
        assert state.n_interference <= state.q_bus + 1e-9

    def test_memory_wait_bounded_by_half_latency(self, system_8):
        state = ModelState()
        for _ in range(30):
            state = system_8.step(state)
        # w_mem = p_busy * d/2 < d/2.
        assert state.w_mem < 1.5

    def test_single_processor_no_waiting(self, workload_5pct):
        system = EquationSystem(derive_inputs(workload_5pct), 1)
        state = system.step(system.step(ModelState()))
        assert state.w_bus == 0.0
        assert state.w_mem == 0.0
        assert state.q_bus == 0.0
        assert state.n_interference == 0.0

    def test_invalid_n_rejected(self, workload_5pct):
        with pytest.raises(ValueError):
            EquationSystem(derive_inputs(workload_5pct), 0)

    def test_distance_metric(self):
        a = ModelState(w_bus=1.0, w_mem=0.5, q_bus=2.0)
        b = ModelState(w_bus=1.5, w_mem=0.5, q_bus=2.1)
        assert math.isclose(a.distance(b), 0.5)
        assert a.distance(a) == 0.0


class TestDamping:
    def test_full_damping_returns_proposed(self, system_8):
        previous = ModelState()
        proposed = system_8.step(previous)
        assert system_8.damped(previous, proposed, 1.0) is proposed

    def test_half_damping_blends(self, system_8):
        previous = ModelState()
        proposed = system_8.step(previous)
        blended = system_8.damped(previous, proposed, 0.5)
        assert math.isclose(blended.w_bus, proposed.w_bus * 0.5)
        assert math.isclose(blended.q_bus, proposed.q_bus * 0.5)


class TestBroadcastHoldsBusThroughMemoryWait:
    """Equation 7/9: the bus is occupied for w_mem + T_write on a
    broadcast, so memory congestion inflates bus utilization."""

    def test_u_bus_increases_with_memory_wait(self, workload_5pct):
        inputs = derive_inputs(workload_5pct)
        system = EquationSystem(inputs, 8)
        lo = system.step(ModelState(w_mem=0.0))
        hi = system.step(ModelState(w_mem=1.0))
        assert hi.u_bus > lo.u_bus


class TestArchitectureVariants:
    def test_larger_blocks_slow_reads(self, workload_5pct):
        small = derive_inputs(workload_5pct, ArchitectureParams(block_size=4))
        large = derive_inputs(workload_5pct, ArchitectureParams(block_size=16,
                                                                memory_modules=16))
        assert large.t_read > small.t_read

    def test_more_modules_reduce_memory_utilization(self, workload_5pct):
        few = EquationSystem(
            derive_inputs(workload_5pct, ArchitectureParams(memory_modules=2)), 8)
        many = EquationSystem(
            derive_inputs(workload_5pct, ArchitectureParams(memory_modules=8)), 8)
        assert few.step(ModelState()).u_mem > many.step(ModelState()).u_mem
