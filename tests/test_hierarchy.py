"""Tests for the hierarchical-bus MVA extension."""

import math

import pytest

from repro.core.model import CacheMVAModel
from repro.hierarchy import HierarchicalMVAModel, HierarchyParams
from repro.protocols.modifications import ProtocolSpec


class TestHierarchyParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            HierarchyParams(clusters=0, per_cluster=4)
        with pytest.raises(ValueError):
            HierarchyParams(clusters=2, per_cluster=0)
        with pytest.raises(ValueError):
            HierarchyParams(clusters=2, per_cluster=4, cluster_locality=1.2)
        with pytest.raises(ValueError):
            HierarchyParams(clusters=2, per_cluster=4,
                            global_overhead_cycles=-1.0)
        with pytest.raises(ValueError):
            HierarchyParams(clusters=2, per_cluster=4, cluster_cache_hit=2.0)

    def test_n_processors(self):
        assert HierarchyParams(clusters=4, per_cluster=8).n_processors == 32

    def test_flat_detection(self):
        assert HierarchyParams(clusters=1, per_cluster=8).is_flat
        assert not HierarchyParams(clusters=2, per_cluster=8).is_flat

    def test_uniform_sharing_locality(self):
        params = HierarchyParams.uniform_sharing(clusters=4, per_cluster=4)
        assert params.cluster_locality == pytest.approx(3 / 15)
        single = HierarchyParams.uniform_sharing(clusters=1, per_cluster=1)
        assert single.cluster_locality == 1.0


class TestFlatReduction:
    """With one cluster the extension must equal the paper's model."""

    @pytest.mark.parametrize("k", [1, 2, 6, 10, 20])
    def test_exact_reduction(self, workload_5pct, k):
        flat = CacheMVAModel(workload_5pct).solve(k)
        hier = HierarchicalMVAModel(
            workload_5pct, HierarchyParams(clusters=1, per_cluster=k)).solve()
        assert hier.speedup == pytest.approx(flat.speedup, rel=1e-6)
        assert hier.w_local_bus == pytest.approx(flat.w_bus, rel=1e-6,
                                                 abs=1e-9)
        assert hier.w_global_bus == 0.0
        assert hier.u_global_bus == 0.0

    def test_reduction_holds_per_protocol(self, workload_20pct):
        for mods in [(1,), (2, 3), (1, 2, 3, 4)]:
            spec = ProtocolSpec.of(*mods)
            flat = CacheMVAModel(workload_20pct, spec).solve(8)
            hier = HierarchicalMVAModel(
                workload_20pct, HierarchyParams(clusters=1, per_cluster=8),
                protocol=spec).solve()
            assert hier.speedup == pytest.approx(flat.speedup, rel=1e-6), mods


class TestHierarchyBehaviour:
    def test_breaks_the_flat_bus_ceiling(self, workload_5pct):
        """The motivation: clustered buses push past the single-bus
        saturation speedup."""
        flat_limit = CacheMVAModel(workload_5pct).speedup(64)
        hier = HierarchicalMVAModel(workload_5pct, HierarchyParams(
            clusters=8, per_cluster=8, cluster_locality=0.9,
            cluster_cache_hit=0.8)).solve()
        assert hier.speedup > 1.5 * flat_limit

    def test_more_clusters_until_global_saturates(self, workload_5pct):
        speedups = []
        for clusters in (2, 4, 8, 16):
            hier = HierarchicalMVAModel(workload_5pct, HierarchyParams(
                clusters=clusters, per_cluster=8, cluster_locality=0.9,
                cluster_cache_hit=0.8)).solve()
            speedups.append(hier.speedup)
        assert speedups == sorted(speedups)
        # Diminishing returns once the global bus saturates.
        assert speedups[3] - speedups[2] < speedups[1] - speedups[0]

    def test_locality_helps(self, workload_20pct):
        def speedup(theta):
            return HierarchicalMVAModel(workload_20pct, HierarchyParams(
                clusters=4, per_cluster=8, cluster_locality=theta)).speedup()

        assert speedup(0.9) > speedup(0.5) > speedup(0.1)

    def test_cluster_cache_helps(self, workload_5pct):
        def speedup(hit):
            return HierarchicalMVAModel(workload_5pct, HierarchyParams(
                clusters=4, per_cluster=8, cluster_cache_hit=hit)).speedup()

        assert speedup(0.9) > speedup(0.5) > speedup(0.0)

    def test_split_transactions_help(self, workload_5pct):
        def speedup(split):
            return HierarchicalMVAModel(workload_5pct, HierarchyParams(
                clusters=4, per_cluster=8, split_transactions=split)).speedup()

        assert speedup(True) > speedup(False)

    def test_global_overhead_hurts(self, workload_5pct):
        def speedup(overhead):
            return HierarchicalMVAModel(workload_5pct, HierarchyParams(
                clusters=4, per_cluster=8,
                global_overhead_cycles=overhead)).speedup()

        assert speedup(0.0) > speedup(4.0)

    def test_escape_probabilities(self, workload_5pct):
        model = HierarchicalMVAModel(workload_5pct, HierarchyParams(
            clusters=4, per_cluster=8, cluster_locality=0.5,
            cluster_cache_hit=0.75))
        peer_local = model.inputs.p_csup_rr * 0.5
        assert model.p_read_escape == pytest.approx(
            (1.0 - peer_local) * 0.25)
        # Write-Once broadcasts update memory -> always escape.
        assert model.p_bc_escape == 1.0

    def test_invalidates_can_stay_local(self, workload_5pct):
        """Under modification 3 broadcasts skip memory, so locality
        keeps a fraction of them off the global bus."""
        model = HierarchicalMVAModel(
            workload_5pct,
            HierarchyParams(clusters=4, per_cluster=8, cluster_locality=0.7),
            protocol=ProtocolSpec.of(3))
        assert model.p_bc_escape == pytest.approx(0.3)

    def test_report_measures_finite_and_converged(self, workload_20pct):
        report = HierarchicalMVAModel(workload_20pct, HierarchyParams(
            clusters=8, per_cluster=16)).solve()
        assert report.converged
        assert math.isfinite(report.speedup)
        assert 0.0 <= report.u_local_bus <= 1.0
        assert 0.0 <= report.u_global_bus <= 1.0
        assert report.processing_power < report.n_processors

    def test_speedup_formula(self, workload_5pct):
        report = HierarchicalMVAModel(workload_5pct, HierarchyParams(
            clusters=2, per_cluster=4)).solve()
        expected = 8 * 3.5 / report.cycle_time
        assert report.speedup == pytest.approx(expected)
