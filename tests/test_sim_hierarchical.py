"""Tests for the hierarchical discrete-event simulator."""

import pytest

from repro.core.model import CacheMVAModel
from repro.hierarchy import HierarchicalMVAModel, HierarchyParams
from repro.sim.hierarchical import (
    HierarchicalBusSimulator,
    HierarchicalSimConfig,
    simulate_hierarchy,
)
from repro.workload.parameters import SharingLevel, appendix_a_workload


def _config(clusters, per_cluster, seed=9, measured=20_000, **hier_kwargs):
    return HierarchicalSimConfig(
        hierarchy=HierarchyParams(clusters=clusters, per_cluster=per_cluster,
                                  **hier_kwargs),
        workload=appendix_a_workload(SharingLevel.FIVE_PERCENT),
        seed=seed,
        warmup_requests=2_000,
        measured_requests=measured,
    )


class TestTopology:
    def test_cluster_mapping(self):
        sim = HierarchicalBusSimulator(_config(3, 4))
        assert sim.cluster_of(0) == 0
        assert sim.cluster_of(3) == 0
        assert sim.cluster_of(4) == 1
        assert sim.cluster_of(11) == 2
        assert sim.cluster_peers(5) == [4, 6, 7]

    def test_bus_counts(self):
        sim = HierarchicalBusSimulator(_config(4, 2))
        assert len(sim.local_buses) == 4
        assert len(sim.caches) == 8

    def test_escape_probabilities_match_mva(self):
        config = _config(4, 4, cluster_locality=0.6, cluster_cache_hit=0.5)
        sim = HierarchicalBusSimulator(config)
        mva = HierarchicalMVAModel(config.workload, config.hierarchy)
        assert sim.p_read_escape == pytest.approx(mva.p_read_escape)
        assert sim.p_bc_escape == pytest.approx(mva.p_bc_escape)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HierarchicalSimConfig(
                hierarchy=HierarchyParams(clusters=2, per_cluster=2),
                workload=appendix_a_workload(SharingLevel.FIVE_PERCENT),
                measured_requests=0)


class TestRuns:
    def test_reproducible(self):
        a = simulate_hierarchy(_config(2, 3, seed=4, measured=5_000))
        b = simulate_hierarchy(_config(2, 3, seed=4, measured=5_000))
        assert a.speedup == b.speedup

    def test_flat_cluster_never_uses_global_bus(self):
        result = simulate_hierarchy(_config(1, 6, measured=10_000))
        assert result.u_global_bus == 0.0
        assert result.w_global_bus == 0.0

    def test_flat_cluster_matches_flat_simulator(self):
        """C = 1 must look like the flat system (same MVA target)."""
        result = simulate_hierarchy(_config(1, 6, measured=40_000))
        flat_mva = CacheMVAModel(
            appendix_a_workload(SharingLevel.FIVE_PERCENT)).speedup(6)
        assert result.speedup == pytest.approx(flat_mva, rel=0.05)

    def test_summary(self):
        result = simulate_hierarchy(_config(2, 2, measured=3_000))
        assert "hier C=2" in result.summary()

    def test_hierarchy_beats_flat_bus_in_simulation(self):
        hier = simulate_hierarchy(_config(
            4, 8, measured=25_000, cluster_locality=0.9,
            cluster_cache_hit=0.8))
        flat_limit = CacheMVAModel(
            appendix_a_workload(SharingLevel.FIVE_PERCENT)).speedup(128)
        assert hier.speedup > 1.5 * flat_limit


@pytest.mark.slow
class TestAgainstHierarchicalMVA:
    """The extension's own Section-4.2-style validation."""

    @pytest.mark.parametrize("clusters,per_cluster", [(2, 4), (4, 8)])
    def test_speedup_agreement(self, clusters, per_cluster):
        """Within ~8 %: looser than the flat model's band because the
        saturated-global-bus cells carry ~5 % simulation CI themselves."""
        config = _config(clusters, per_cluster, measured=60_000,
                         cluster_locality=0.9, cluster_cache_hit=0.8)
        sim = simulate_hierarchy(config)
        mva = HierarchicalMVAModel(config.workload, config.hierarchy).solve()
        rel_err = abs(mva.speedup - sim.speedup) / sim.speedup
        assert rel_err < 0.08, (clusters, per_cluster, mva.speedup,
                                sim.speedup)

    def test_global_utilization_agreement(self):
        config = _config(4, 8, measured=40_000, cluster_locality=0.9,
                         cluster_cache_hit=0.8)
        sim = simulate_hierarchy(config)
        mva = HierarchicalMVAModel(config.workload, config.hierarchy).solve()
        assert mva.u_global_bus == pytest.approx(sim.u_global_bus, abs=0.06)
