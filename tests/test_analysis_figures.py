"""Tests for Figure 4.1 series and the ASCII chart."""

import pytest

from repro.analysis.figures import (
    FIGURE_41_SIZES,
    FigureSeries,
    ascii_chart,
    figure_41_series,
    to_csv,
)


@pytest.fixture(scope="module")
def series():
    return figure_41_series()


class TestFigure41Series:
    def test_seven_curves(self, series):
        """WO and WO+1 at three sharing levels plus WO+1+4 at 5 %."""
        assert len(series) == 7
        labels = [s.label for s in series]
        assert "Write-Once (1%)" in labels
        assert "WO+1 (20%)" in labels
        assert "WO+1+4 (5%)" in labels
        assert "WO+1+4 (1%)" not in labels  # the paper draws only 5 %

    def test_x_axis(self, series):
        for s in series:
            assert s.xs == tuple(float(n) for n in FIGURE_41_SIZES)

    def test_monotone_curves(self, series):
        for s in series:
            assert list(s.ys) == sorted(s.ys), s.label

    def test_protocol_ordering_at_right_edge(self, series):
        by_label = {s.label: s for s in series}
        wo = by_label["Write-Once (5%)"].ys[-1]
        mod1 = by_label["WO+1 (5%)"].ys[-1]
        mod14 = by_label["WO+1+4 (5%)"].ys[-1]
        assert wo < mod1 < mod14

    def test_series_length_validation(self):
        with pytest.raises(ValueError):
            FigureSeries(label="bad", xs=(1.0, 2.0), ys=(1.0,))


class TestAsciiChart:
    def test_contains_labels_and_markers(self, series):
        chart = ascii_chart(series, title="Figure 4.1")
        assert chart.startswith("Figure 4.1")
        for s in series:
            assert s.label in chart

    def test_degenerate_series_ok(self):
        flat = FigureSeries(label="flat", xs=(1.0, 2.0), ys=(3.0, 3.0))
        chart = ascii_chart([flat])
        assert "flat" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart([])


class TestCsv:
    def test_long_format(self, series):
        csv = to_csv(series[:2])
        lines = csv.strip().splitlines()
        assert lines[0] == "series,n_processors,speedup"
        assert len(lines) == 1 + 2 * len(FIGURE_41_SIZES)
        assert lines[1].startswith("Write-Once (1%),1,")
