"""Journal semantics: leases, expiry, double-lease rejection, counters.

All timestamps are injected (``now=``), so every lease-lifecycle law is
exercised without sleeping: expiry is just a claim at a later clock.
"""

import pickle

import pytest

from repro.sweepq import SweepJournal, UnknownJobError, chunk_key, chunk_tasks
from repro.sweepq.chunks import Chunk, auto_chunk_size


class _Task:
    """Minimal task double: chunking only reads ``.key``."""

    def __init__(self, key: str):
        self.key = key


def _chunks(n_cells: int, size: int) -> list[Chunk]:
    return chunk_tasks([_Task(f"k{i}") for i in range(n_cells)], size)


@pytest.fixture
def journal(tmp_path):
    return SweepJournal(tmp_path / "journal.db")


def _job(journal, n_cells=10, size=4, job_id="job") -> str:
    journal.create_job(job_id, pickle.dumps(list(range(n_cells))),
                       _chunks(n_cells, size), chunk_size=size, now=0.0)
    return job_id


class TestChunking:
    def test_contiguous_cover(self):
        chunks = _chunks(10, 4)
        assert [(c.start, c.stop) for c in chunks] == [(0, 4), (4, 8),
                                                       (8, 10)]
        assert [c.index for c in chunks] == [0, 1, 2]

    def test_content_addressed_keys_are_stable(self):
        assert _chunks(10, 4)[1].key == _chunks(10, 4)[1].key
        assert chunk_key(["a", "b"]) != chunk_key(["b", "a"])
        # Member keys, not positions, define identity.
        assert _chunks(10, 4)[0].key == chunk_key(
            ["k0", "k1", "k2", "k3"])

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            chunk_tasks([_Task("k")], 0)

    def test_auto_chunk_size(self):
        assert auto_chunk_size(0, 4) == 1
        assert auto_chunk_size(16, 4) == 1       # ~4 chunks per worker
        assert auto_chunk_size(1024, 4) == 64
        assert auto_chunk_size(100, 1) == 25
        assert auto_chunk_size(100_000, 4) == 256  # capped at the default


class TestJobs:
    def test_create_and_get(self, journal):
        job_id = _job(journal)
        job = journal.get_job(job_id)
        assert job.total_cells == 10
        assert job.chunk_size == 4
        assert job.state == "queued"
        assert pickle.loads(journal.load_tasks(job_id)) == list(range(10))

    def test_unknown_job(self, journal):
        with pytest.raises(UnknownJobError):
            journal.get_job("nope")
        with pytest.raises(UnknownJobError):
            journal.load_tasks("nope")

    def test_list_jobs(self, journal):
        _job(journal, job_id="a")
        _job(journal, job_id="b")
        assert [j.job_id for j in journal.list_jobs()] == ["a", "b"]


class TestLeases:
    def test_claims_in_index_order(self, journal):
        job_id = _job(journal)
        first = journal.claim(job_id, "w1", lease_ttl=10, now=1.0)
        second = journal.claim(job_id, "w2", lease_ttl=10, now=1.0)
        assert (first.index, second.index) == (0, 1)
        assert first.attempts == 1 and not first.requeued

    def test_no_claimable_chunk_returns_none(self, journal):
        job_id = _job(journal, n_cells=4, size=4)
        journal.claim(job_id, "w1", lease_ttl=10, now=1.0)
        assert journal.claim(job_id, "w2", lease_ttl=10, now=2.0) is None

    def test_expired_lease_is_requeued_to_next_claimer(self, journal):
        job_id = _job(journal, n_cells=4, size=4)
        stale = journal.claim(job_id, "w1", lease_ttl=10, now=0.0)
        takeover = journal.claim(job_id, "w2", lease_ttl=10, now=11.0)
        assert takeover.index == stale.index
        assert takeover.requeued
        assert takeover.attempts == 2
        assert journal.counters(job_id)["requeues"] == 1

    def test_heartbeat_extends_the_lease(self, journal):
        job_id = _job(journal, n_cells=4, size=4)
        lease = journal.claim(job_id, "w1", lease_ttl=10, now=0.0)
        assert journal.heartbeat(job_id, lease.index, lease.lease_id,
                                 lease_ttl=10, now=9.0)
        # Would have expired at t=10 without the heartbeat.
        assert journal.claim(job_id, "w2", lease_ttl=10, now=15.0) is None

    def test_double_lease_rejection_on_complete(self, journal):
        """The zombie-worker race: a worker whose lease expired and was
        reassigned must not complete the chunk under the new owner."""
        job_id = _job(journal, n_cells=4, size=4)
        stale = journal.claim(job_id, "w1", lease_ttl=10, now=0.0)
        fresh = journal.claim(job_id, "w2", lease_ttl=10, now=11.0)
        assert not journal.complete(job_id, stale.index, stale.lease_id)
        assert journal.counters(job_id)["done"] == 0
        assert journal.complete(job_id, fresh.index, fresh.lease_id)
        assert journal.counters(job_id)["done"] == 1

    def test_double_lease_rejection_on_heartbeat(self, journal):
        job_id = _job(journal, n_cells=4, size=4)
        stale = journal.claim(job_id, "w1", lease_ttl=10, now=0.0)
        journal.claim(job_id, "w2", lease_ttl=10, now=11.0)
        assert not journal.heartbeat(job_id, stale.index, stale.lease_id,
                                     lease_ttl=10, now=12.0)

    def test_max_attempts_marks_chunk_failed(self, journal):
        job_id = _job(journal, n_cells=4, size=4)
        now = 0.0
        for _ in range(3):
            lease = journal.claim(job_id, "w", lease_ttl=10,
                                  max_attempts=3, now=now)
            assert lease is not None
            now += 11.0  # let it expire every time
        assert journal.claim(job_id, "w", lease_ttl=10, max_attempts=3,
                             now=now) is None
        counters = journal.counters(job_id)
        assert counters["failed"] == 1
        rows = journal.chunk_rows(job_id)
        assert "abandoned after 3 expired leases" in rows[0].error

    def test_complete_stores_extras(self, journal):
        job_id = _job(journal, n_cells=4, size=4)
        lease = journal.claim(job_id, "w1", lease_ttl=10, now=0.0)
        journal.complete(job_id, lease.index, lease.lease_id,
                         extras={"2": {"warnings": ["w"]}})
        row = journal.chunk_rows(job_id)[0]
        assert row.state == "done"
        assert row.source == "worker"
        assert row.extras == {"2": {"warnings": ["w"]}}


class TestChunkStateOps:
    def test_mark_done_cached_only_from_queued(self, journal):
        job_id = _job(journal)
        assert journal.mark_done_cached(job_id, 0)
        assert journal.chunk_rows(job_id)[0].source == "cache"
        assert not journal.mark_done_cached(job_id, 0)  # already done
        lease = journal.claim(job_id, "w", lease_ttl=10, now=0.0)
        assert not journal.mark_done_cached(job_id, lease.index)

    def test_reset_chunk_requeues_and_clears(self, journal):
        job_id = _job(journal)
        journal.mark_done_cached(job_id, 0)
        journal.reset_chunk(job_id, 0)
        row = journal.chunk_rows(job_id)[0]
        assert row.state == "queued"
        assert row.source is None and row.extras is None

    def test_fail_chunk(self, journal):
        job_id = _job(journal)
        journal.fail_chunk(job_id, 1, "engine exploded")
        row = journal.chunk_rows(job_id)[1]
        assert row.state == "failed" and row.error == "engine exploded"


class TestCounters:
    def test_counters_track_cells_and_recoveries(self, journal):
        job_id = _job(journal, n_cells=10, size=4)  # chunks of 4,4,2
        lease = journal.claim(job_id, "w1", lease_ttl=10, now=0.0)
        takeover = journal.claim(job_id, "w2", lease_ttl=10, now=11.0)
        assert takeover.index == lease.index
        journal.complete(job_id, takeover.index, takeover.lease_id)
        journal.mark_done_cached(job_id, 1)
        counters = journal.counters(job_id)
        assert counters["chunks"] == 3
        assert counters["done"] == 2
        assert counters["queued"] == 1
        assert counters["requeues"] == 1
        assert counters["recovered"] == 1  # the taken-over chunk is done
        assert counters["cells"] == 10
        assert counters["cells_done"] == 8
        assert journal.unfinished(job_id) == 1
