"""Tests for the grid runner and its exports."""

import json

import pytest

from repro.analysis.grid import (
    GridCell,
    GridSpec,
    best_protocol_per_cell,
    run_grid,
    to_csv,
    to_json,
)
from repro.protocols.modifications import ProtocolSpec
from repro.workload.parameters import SharingLevel


@pytest.fixture(scope="module")
def small_grid():
    spec = GridSpec(
        protocols=[ProtocolSpec(), ProtocolSpec.of(1)],
        sizes=[2, 8],
        sharing_levels=[SharingLevel.FIVE_PERCENT],
    )
    return run_grid(spec)


class TestGridSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            GridSpec(protocols=[], sizes=[2])
        with pytest.raises(ValueError):
            GridSpec(protocols=[ProtocolSpec()], sizes=[])
        with pytest.raises(ValueError):
            GridSpec(protocols=[ProtocolSpec()], sizes=[0])


class TestRunGrid:
    def test_cell_count(self, small_grid):
        assert len(small_grid) == 2 * 2  # protocols x sizes, one level

    def test_cells_are_mva_by_default(self, small_grid):
        assert all(cell.method == "mva" for cell in small_grid)
        assert all(cell.sim_ci is None for cell in small_grid)

    def test_values_match_direct_solve(self, small_grid):
        from repro.core.model import CacheMVAModel
        from repro.workload.parameters import appendix_a_workload
        direct = CacheMVAModel(
            appendix_a_workload(SharingLevel.FIVE_PERCENT)).speedup(8)
        cell = next(c for c in small_grid
                    if c.protocol == "Write-Once" and c.n_processors == 8)
        assert cell.speedup == pytest.approx(direct)

    def test_simulation_rows(self):
        spec = GridSpec(protocols=[ProtocolSpec()], sizes=[2],
                        sharing_levels=[SharingLevel.FIVE_PERCENT],
                        include_simulation=True, sim_requests=5_000)
        cells = run_grid(spec)
        methods = [c.method for c in cells]
        assert methods == ["mva", "sim"]
        sim_cell = cells[1]
        assert sim_cell.sim_ci is not None
        assert sim_cell.speedup == pytest.approx(cells[0].speedup, rel=0.1)


class TestExports:
    def test_csv_shape(self, small_grid):
        csv = to_csv(small_grid)
        lines = csv.strip().splitlines()
        assert lines[0].startswith("protocol,sharing,n_processors,method")
        assert len(lines) == 1 + len(small_grid)
        assert ",mva," in lines[1]

    def test_csv_empty_ci_field(self, small_grid):
        csv = to_csv(small_grid)
        assert csv.strip().splitlines()[1].endswith(",")  # sim_ci empty

    def test_json_roundtrip(self, small_grid):
        data = json.loads(to_json(small_grid))
        assert len(data) == len(small_grid)
        assert data[0]["protocol"] in ("Write-Once", "WO+1")
        assert isinstance(data[0]["speedup"], float)


class TestBestProtocol:
    def test_winner_per_cell(self, small_grid):
        winners = best_protocol_per_cell(small_grid)
        assert winners[("5%", 8)] == "WO+1"

    def test_ignores_sim_rows(self):
        cells = [
            GridCell("A", "5%", 4, speedup=1.0, u_bus=0, w_bus=0,
                     cycle_time=1, processing_power=1),
            GridCell("B", "5%", 4, speedup=9.0, u_bus=0, w_bus=0,
                     cycle_time=1, processing_power=1, method="sim"),
        ]
        assert best_protocol_per_cell(cells)[("5%", 4)] == "A"
