"""Tests for the workload estimator (trace -> Appendix-A parameters)."""

import pytest

from repro.core.model import CacheMVAModel
from repro.trace.cache_model import CoherentCacheSystem
from repro.trace.generator import (
    GeneratorConfig,
    MemoryReference,
    StreamKind,
    SyntheticTraceGenerator,
)
from repro.trace.estimator import WorkloadEstimator


def _pipeline(config: GeneratorConfig, refs: int,
              n_sets: int = 256, associativity: int = 4):
    gen = SyntheticTraceGenerator(config)
    system = CoherentCacheSystem(config.n_processors, n_sets, associativity)
    est = WorkloadEstimator(system, gen.stream_of)
    est.observe_trace(gen.trace(refs))
    return est, system


class TestEstimator:
    def test_requires_observations(self):
        gen = SyntheticTraceGenerator(GeneratorConfig())
        est = WorkloadEstimator(
            CoherentCacheSystem(4, 16, 2), gen.stream_of)
        with pytest.raises(ValueError, match="no references"):
            est.estimate()

    def test_mix_recovered(self):
        est, _ = _pipeline(GeneratorConfig(seed=1), 80_000)
        w = est.estimate().workload
        assert w.p_private == pytest.approx(0.95, abs=0.01)
        assert w.p_sro == pytest.approx(0.03, abs=0.005)
        assert w.p_sw == pytest.approx(0.02, abs=0.005)

    def test_read_fractions_recovered(self):
        est, _ = _pipeline(GeneratorConfig(seed=2), 80_000)
        w = est.estimate().workload
        assert w.r_private == pytest.approx(0.7, abs=0.02)
        assert w.r_sw == pytest.approx(0.5, abs=0.05)

    def test_estimated_workload_is_valid(self):
        est, _ = _pipeline(GeneratorConfig(seed=3), 60_000)
        w = est.estimate().workload  # WorkloadParameters validates itself
        assert 0.0 <= w.h_private <= 1.0
        assert 0.0 <= w.amod_sw <= 1.0
        assert 0.0 <= w.wb_csupply <= 1.0

    def test_larger_cache_higher_hit_rate(self):
        small, _ = _pipeline(GeneratorConfig(seed=4), 60_000,
                             n_sets=32, associativity=2)
        large, _ = _pipeline(GeneratorConfig(seed=4), 60_000,
                             n_sets=512, associativity=8)
        assert (large.estimate().workload.h_private
                > small.estimate().workload.h_private)

    def test_hotter_locality_higher_hit_rate(self):
        cold, _ = _pipeline(GeneratorConfig(seed=5, hot_probability=0.3),
                            60_000)
        hot, _ = _pipeline(GeneratorConfig(seed=5, hot_probability=0.95),
                           60_000)
        assert (hot.estimate().workload.h_private
                > cold.estimate().workload.h_private)

    def test_private_blocks_never_supplied(self):
        est, system = _pipeline(GeneratorConfig(seed=6), 60_000)
        tally = est.estimate().per_stream[StreamKind.PRIVATE]
        assert tally.misses_supplied == 0
        system.check_coherence()

    def test_sw_supplied_more_than_zero(self):
        est, _ = _pipeline(GeneratorConfig(seed=7), 120_000)
        w = est.estimate().workload
        assert w.csupply_sw > 0.3  # small hot region shared by 4 cpus

    def test_summary_text(self):
        est, _ = _pipeline(GeneratorConfig(seed=8), 20_000)
        text = est.estimate().summary()
        assert "references" in text
        assert "csupply" in text

    def test_hand_built_trace(self):
        """A deterministic three-reference scenario with known tallies."""
        system = CoherentCacheSystem(2, n_sets=4, associativity=2)
        est = WorkloadEstimator(system, lambda block: StreamKind.SW, tau=2.5)
        # cpu0 writes block 1 (miss), cpu1 reads block 1 (miss, dirty
        # supplier), cpu0 reads block 1 (hit).
        est.observe(MemoryReference(0, 1, True, StreamKind.SW))
        est.observe(MemoryReference(1, 1, False, StreamKind.SW))
        est.observe(MemoryReference(0, 1, False, StreamKind.SW))
        report = est.estimate()
        tally = report.per_stream[StreamKind.SW]
        assert tally.refs == 3
        assert tally.misses == 2
        assert tally.misses_supplied == 1
        assert tally.misses_supplier_dirty == 1
        assert tally.hits == 1
        w = report.workload
        assert w.csupply_sw == pytest.approx(0.5)
        assert w.wb_csupply == pytest.approx(1.0)


class TestEndToEnd:
    def test_measured_workload_drives_the_mva(self):
        """The paper's closing loop: measurement -> parameters -> model."""
        est, _ = _pipeline(GeneratorConfig(seed=9), 100_000)
        workload = est.estimate().workload
        model = CacheMVAModel(workload)
        report = model.solve(10)
        assert report.converged
        assert 1.0 < report.speedup < 10.0

    def test_protocol_ordering_with_measured_workload(self):
        from repro.protocols.modifications import ProtocolSpec
        est, _ = _pipeline(GeneratorConfig(seed=10), 100_000)
        workload = est.estimate().workload
        wo = CacheMVAModel(workload, ProtocolSpec()).speedup(16)
        mod1 = CacheMVAModel(workload, ProtocolSpec.of(1)).speedup(16)
        assert mod1 > wo
