"""Determinism: same inputs, same seed, same bytes.

The verification subsystem leans on reproducibility in three places --
the seeded DES differential, the parallel sweep executor, and the
golden-corpus regeneration -- so each is pinned here as a law of its
own:

* the simulator is a pure function of its (config, seed): two runs
  produce *byte-identical* statistics, not merely statistically
  compatible ones;
* the sweep executor returns rows in task order regardless of worker
  count (``jobs=1`` vs ``jobs=4``) and of MVA engine, so diffs of two
  sweeps line up row for row;
* the sharded sweep queue produces rows byte-identical to the serial
  scalar executor regardless of worker count, chunk size, or
  crash/resume history;
* different seeds actually change the sample (guarding against a seed
  that is silently ignored).
"""

from __future__ import annotations

import dataclasses
import json

from repro.analysis.grid import GridSpec
from repro.protocols.modifications import ProtocolSpec
from repro.service.executor import SweepExecutor, tasks_for_spec
from repro.sim.config import SimulationConfig
from repro.sim.system import simulate
from repro.workload.parameters import SharingLevel, appendix_a_workload


def _sim_result(seed: int):
    return simulate(SimulationConfig(
        n_processors=6,
        workload=appendix_a_workload(SharingLevel.FIVE_PERCENT),
        protocol=ProtocolSpec.of(1, 4),
        seed=seed,
        measured_requests=3_000))


def _result_bytes(result) -> bytes:
    """The full result record, canonically serialized."""
    return json.dumps(dataclasses.asdict(result), sort_keys=True).encode()


class TestSimulatorDeterminism:
    def test_same_seed_byte_identical(self):
        """Every field -- means, CIs, counters, per-kind breakdowns --
        must match exactly across two runs with the same seed."""
        assert _result_bytes(_sim_result(99)) == _result_bytes(
            _sim_result(99))

    def test_different_seed_changes_the_sample(self):
        a, b = _sim_result(1), _sim_result(2)
        assert a.mean_cycle_time != b.mean_cycle_time

    def test_verify_des_cells_reproducible(self):
        """The runner's MVA-vs-DES differential is seeded; the same
        cell audited twice yields identical violation payloads."""
        from repro.service.executor import CellTask
        from repro.verify.differential import diff_mva_des

        task = CellTask(
            protocol=ProtocolSpec.of(2),
            sharing_label="5%",
            workload=appendix_a_workload(SharingLevel.FIVE_PERCENT),
            n=4, method="sim", sim_requests=2_000, sim_seed=7)
        first, second = diff_mva_des(task), diff_mva_des(task)
        assert first.checks == second.checks
        assert ([v.as_dict() for v in first.violations]
                == [v.as_dict() for v in second.violations])


def _rows(spec: GridSpec, jobs: int, engine: str):
    result = SweepExecutor(jobs=jobs, engine=engine).run(
        tasks_for_spec(spec))
    return [cell.as_row() for cell in result.cells]


class TestExecutorDeterminism:
    #: MVA + simulation cells, small enough to run four times.
    SPEC = GridSpec(
        protocols=[ProtocolSpec(), ProtocolSpec.of(1, 4)],
        sizes=[2, 6],
        sharing_levels=[SharingLevel.FIVE_PERCENT],
        include_simulation=True,
        sim_requests=1_500,
        sim_seed=4321,
    )

    def test_row_order_and_values_survive_parallelism(self):
        """jobs=4 fans cells out to worker processes; the assembled
        rows (order *and* float values) must match the serial run."""
        assert _rows(self.SPEC, jobs=1, engine="scalar") == \
            _rows(self.SPEC, jobs=4, engine="scalar")

    def test_row_order_and_values_survive_engine_choice(self):
        assert _rows(self.SPEC, jobs=1, engine="scalar") == \
            _rows(self.SPEC, jobs=1, engine="batch")

    def test_parallel_batch_matches_serial_scalar(self):
        """The cross term: both knobs turned at once."""
        assert _rows(self.SPEC, jobs=1, engine="scalar") == \
            _rows(self.SPEC, jobs=4, engine="batch")


class TestSweepQueueDeterminism:
    """The sweepq contract: serial-scalar bytes no matter how the work
    was sharded, leased, cached, crashed, or resumed."""

    SPEC = TestExecutorDeterminism.SPEC

    def _queue_rows(self, tmp_path, name, workers, chunk_size,
                    chaos_kill=0, interrupt_after=0):
        from repro.analysis.grid import GridCell
        from repro.service.cache import ResultCache
        from repro.sweepq import SweepQueue

        tasks = tasks_for_spec(self.SPEC)
        queue = SweepQueue(
            state_dir=tmp_path / name,
            cache=ResultCache(path=str(tmp_path / f"{name}.json")),
            chunk_size=chunk_size, lease_ttl=1.0)
        job_id = queue.submit(tasks)
        if interrupt_after:
            # Simulate a killed driver: drain a few chunks, then start
            # over from the journal as a restarted process would.
            queue.process_chunks(job_id, limit=interrupt_after)
        outcome = queue.run(job_id, workers=workers,
                            chaos_kill=chaos_kill)
        rows = []
        for task, value in zip(tasks, outcome.values):
            assert value.get("error") is None
            rows.append(GridCell(**value["cell"]).as_row())
        return rows, outcome

    def test_workers_1_and_4_any_chunking_with_crash_resume(
            self, tmp_path):
        """workers in {1, 4}, two chunk sizes, one SIGKILLed worker and
        one interrupted-then-resumed run: every variant must reproduce
        the serial scalar executor's rows byte for byte."""
        serial = _rows(self.SPEC, jobs=1, engine="scalar")

        rows, _ = self._queue_rows(tmp_path, "w1", workers=1,
                                   chunk_size=3)
        assert rows == serial

        rows, _ = self._queue_rows(tmp_path, "w4", workers=4,
                                   chunk_size=2)
        assert rows == serial

        # Forced crash: one worker is SIGKILLed after its first claim;
        # the chunk is requeued on lease expiry and re-solved.
        rows, outcome = self._queue_rows(tmp_path, "crash", workers=4,
                                         chunk_size=2, chaos_kill=1)
        assert outcome.counters["requeues"] >= 1
        assert rows == serial

        # Interrupted driver: two chunks done before the "restart".
        rows, outcome = self._queue_rows(tmp_path, "resume", workers=1,
                                         chunk_size=3,
                                         interrupt_after=2)
        assert sum(outcome.cached) == 6
        assert rows == serial
