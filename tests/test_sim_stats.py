"""Tests for the streaming statistics helpers."""

import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.stats import BatchMeans, TimeWeightedAverage, Welford


class TestWelford:
    def test_empty(self):
        w = Welford()
        assert w.mean == 0.0
        assert w.variance == 0.0
        assert w.count == 0

    def test_known_values(self):
        w = Welford()
        for v in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            w.add(v)
        assert w.mean == pytest.approx(5.0)
        assert w.variance == pytest.approx(statistics.variance(
            [2, 4, 4, 4, 5, 5, 7, 9]))

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2,
                    max_size=200))
    @settings(max_examples=100)
    def test_matches_statistics_module(self, values):
        w = Welford()
        for v in values:
            w.add(v)
        assert w.mean == pytest.approx(statistics.fmean(values), abs=1e-6,
                                       rel=1e-9)
        assert w.variance == pytest.approx(statistics.variance(values),
                                           abs=1e-4, rel=1e-6)

    @given(st.lists(st.floats(min_value=-1e4, max_value=1e4), min_size=1,
                    max_size=50),
           st.lists(st.floats(min_value=-1e4, max_value=1e4), min_size=1,
                    max_size=50))
    @settings(max_examples=100)
    def test_merge_equals_concatenation(self, xs, ys):
        a, b, c = Welford(), Welford(), Welford()
        for v in xs:
            a.add(v)
            c.add(v)
        for v in ys:
            b.add(v)
            c.add(v)
        merged = a.merge(b)
        assert merged.count == c.count
        assert merged.mean == pytest.approx(c.mean, abs=1e-7, rel=1e-9)
        assert merged.variance == pytest.approx(c.variance, abs=1e-5, rel=1e-6)

    def test_merge_with_empty(self):
        a = Welford()
        a.add(3.0)
        merged = a.merge(Welford())
        assert merged.mean == 3.0
        assert Welford().merge(Welford()).count == 0


class TestTimeWeightedAverage:
    def test_square_wave(self):
        s = TimeWeightedAverage()
        s.update(0.0, 1.0)
        s.update(4.0, 0.0)
        assert s.average(8.0) == pytest.approx(0.5)

    def test_pending_segment_counted(self):
        s = TimeWeightedAverage()
        s.update(0.0, 2.0)
        assert s.average(10.0) == pytest.approx(2.0)

    def test_reset(self):
        s = TimeWeightedAverage()
        s.update(0.0, 1.0)
        s.reset(10.0)
        s.update(10.0, 0.0)
        assert s.average(20.0) == pytest.approx(0.0)

    def test_zero_elapsed(self):
        assert TimeWeightedAverage().average(0.0) == 0.0

    def test_time_going_backwards_rejected(self):
        s = TimeWeightedAverage()
        s.update(5.0, 1.0)
        with pytest.raises(ValueError):
            s.update(4.0, 0.0)

    def test_current_value(self):
        s = TimeWeightedAverage()
        s.update(1.0, 7.0)
        assert s.current == 7.0


class TestBatchMeans:
    def test_mean(self):
        b = BatchMeans(n_batches=2)
        for v in (1.0, 2.0, 3.0, 4.0):
            b.add(v)
        assert b.mean == pytest.approx(2.5)
        assert b.batch_means() == [1.5, 3.5]

    def test_ci_zero_when_too_few(self):
        b = BatchMeans(n_batches=10)
        b.add(1.0)
        half, mean = b.confidence_interval()
        assert half == 0.0
        assert mean == 1.0

    def test_ci_shrinks_with_constant_data(self):
        b = BatchMeans(n_batches=5)
        for _ in range(100):
            b.add(3.0)
        half, mean = b.confidence_interval()
        assert mean == pytest.approx(3.0)
        assert half == pytest.approx(0.0, abs=1e-12)

    def test_ci_covers_true_mean_for_iid_noise(self):
        import numpy as np
        rng = np.random.default_rng(0)
        b = BatchMeans(n_batches=10)
        for v in rng.normal(5.0, 1.0, size=5000):
            b.add(float(v))
        half, mean = b.confidence_interval()
        assert abs(mean - 5.0) < 3 * half + 0.1
        assert half < 0.2

    def test_uneven_tail_dropped(self):
        b = BatchMeans(n_batches=3)
        for v in range(10):
            b.add(float(v))
        means = b.batch_means()
        assert len(means) == 3
        # batches of size 3: [0,1,2], [3,4,5], [6,7,8]
        assert means == [1.0, 4.0, 7.0]

    def test_count(self):
        b = BatchMeans()
        assert b.count == 0
        b.add(1.0)
        assert b.count == 1
