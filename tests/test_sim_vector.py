"""The lockstep vector DES engine: edge cases and integration seams.

The statistical-equivalence oracle proper lives in
``repro.verify.differential`` (and runs in ``repro verify --tier
full``); these tests pin the cheap structural promises -- reps=1
parity with the scalar entry point, exact seed-permutation behaviour,
saturated corners, counter dtypes, and the cache-key/CLI seams the
engine plugs into.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.protocols.modifications import ProtocolSpec
from repro.service.executor import CellTask, evaluate_task
from repro.service.keys import task_key
from repro.sim.config import BusDiscipline, SimulationConfig
from repro.sim.system import SimulationResult, simulate
from repro.sim.vector import VectorSnoopingBusSimulator, simulate_many
from repro.verify.invariants import audit_sim_result


def _config(workload, n=4, mods=(), seed=77, warmup=500, measured=2_000,
            **kwargs):
    return SimulationConfig(
        n_processors=n, workload=workload, protocol=ProtocolSpec.of(*mods),
        seed=seed, warmup_requests=warmup, measured_requests=measured,
        **kwargs)


class TestSingleReplication:
    def test_reps_one_matches_scalar_result_shape(self, workload_5pct):
        result = simulate(_config(workload_5pct), engine="vector", reps=1)
        assert isinstance(result, SimulationResult)
        assert result.requests_measured >= 2_000
        assert 0.0 < result.speedup <= 4.0
        assert 0.0 < result.u_bus <= 1.0
        assert result.mean_cycle_time > 0.0
        assert set(result.response_by_kind) <= {"local", "broadcast",
                                                "remote-read"}

    def test_reps_one_aggregate_is_the_single_row(self, workload_5pct):
        vector = simulate_many(_config(workload_5pct), reps=1)
        agg = vector.aggregate()
        row = vector.replication(0)
        assert agg.speedup == row.speedup
        assert agg.u_bus == row.u_bus
        assert agg.requests_measured == row.requests_measured
        assert vector.speedup_band_halfwidth == 0.0

    def test_deterministic_given_seeds(self, workload_5pct):
        a = simulate_many(_config(workload_5pct), reps=3)
        b = simulate_many(_config(workload_5pct), reps=3)
        assert np.array_equal(a.speedup, b.speedup)
        assert np.array_equal(a.u_bus, b.u_bus)
        assert np.array_equal(a.requests_measured, b.requests_measured)


class TestSeedSemantics:
    def test_permuting_seeds_permutes_rows(self, workload_5pct):
        """Replication r depends on seeds[r] alone: the lockstep layout
        must not leak state across lanes."""
        seeds = (101, 202, 303)
        perm = (303, 101, 202)
        a = simulate_many(_config(workload_5pct), reps=3, seeds=seeds)
        b = simulate_many(_config(workload_5pct), reps=3, seeds=perm)
        order = [seeds.index(s) for s in perm]
        assert np.array_equal(b.speedup, a.speedup[order])
        assert np.array_equal(b.u_bus, a.u_bus[order])
        assert np.array_equal(b.w_bus, a.w_bus[order])
        assert np.array_equal(b.mean_cycle_time, a.mean_cycle_time[order])

    def test_distinct_seeds_give_distinct_rows(self, workload_5pct):
        vector = simulate_many(_config(workload_5pct), reps=4)
        assert len(set(vector.speedup.tolist())) == 4

    def test_seed_count_must_match_reps(self, workload_5pct):
        with pytest.raises(ValueError, match="exactly 3 seeds"):
            simulate_many(_config(workload_5pct), reps=3, seeds=(1, 2))

    def test_reps_must_be_positive(self, workload_5pct):
        with pytest.raises(ValueError, match="reps"):
            simulate_many(_config(workload_5pct), reps=0)

    def test_rejects_non_fcfs_bus(self, workload_5pct):
        config = _config(workload_5pct,
                         bus_discipline=BusDiscipline.RANDOM)
        with pytest.raises(ValueError, match="FCFS"):
            VectorSnoopingBusSimulator(config, reps=2)


class TestSaturatedCorners:
    def test_saturated_bus_n100(self, workload_20pct):
        """Deep saturation (N=100, 20% sharing): the bus is pinned, the
        queue is long, and every sim-stats law still holds per row."""
        config = _config(workload_20pct, n=100, warmup=200, measured=800)
        vector = simulate_many(config, reps=2)
        assert np.all(vector.u_bus > 0.9)
        assert np.all(vector.w_bus > 10.0)
        for rep in range(2):
            audit = audit_sim_result(
                vector.replication(rep), tau=workload_20pct.tau,
                t_supply=config.arch.t_supply, subject=f"rep={rep}")
            assert not audit.violations, audit.violations

    def test_aggregate_preserves_speedup_identity(self, workload_5pct):
        """The folded result must satisfy the same speedup identity the
        per-replication rows do (a mean of speedups would not)."""
        config = _config(workload_5pct, n=8)
        agg = simulate_many(config, reps=5).aggregate()
        audit = audit_sim_result(agg, tau=workload_5pct.tau,
                                 t_supply=config.arch.t_supply,
                                 subject="aggregate")
        assert not audit.violations, audit.violations


class TestLongRunCounters:
    def test_counter_dtypes_are_exact_integers(self, workload_5pct):
        vector = simulate_many(_config(workload_5pct, n=2, warmup=1_000,
                                       measured=20_000), reps=2)
        assert vector.requests_measured.dtype == np.int64
        assert vector.bus_transactions.dtype == np.int64
        # Exact counting: every replication measured at least the
        # target and stopped within one completion batch of it.
        assert np.all(vector.requests_measured >= 20_000)
        assert np.all(vector.requests_measured <= 20_000 + 2)

    def test_statistical_agreement_with_scalar_smoke(self, workload_5pct):
        """A coarse one-cell sanity band (the calibrated oracle runs in
        ``repro verify --tier full``)."""
        config = _config(workload_5pct, warmup=1_000, measured=4_000)
        scalar = simulate(config)
        vector = simulate_many(config, reps=6)
        assert float(vector.speedup.mean()) == pytest.approx(
            scalar.speedup, rel=0.10)
        assert float(vector.u_bus.mean()) == pytest.approx(
            scalar.u_bus, abs=0.08)


class TestIntegrationSeams:
    def _task(self, workload, **kwargs):
        return CellTask(protocol=ProtocolSpec.of(), sharing_label="5%",
                        workload=workload, n=2, method="sim",
                        sim_requests=1_000, sim_seed=9, **kwargs)

    def test_default_engine_cache_key_unchanged(self, workload_5pct):
        """Scalar single-run tasks must keep their historical cache
        keys: a cache populated before the vector engine existed stays
        valid."""
        legacy = self._task(workload_5pct)
        assert legacy.sim_engine == "scalar" and legacy.sim_reps == 1
        key = task_key(legacy)
        assert '"engine"' not in key and '"reps"' not in key

    def test_vector_tasks_get_distinct_keys(self, workload_5pct):
        scalar_key = task_key(self._task(workload_5pct))
        vector_key = task_key(self._task(workload_5pct,
                                         sim_engine="vector", sim_reps=4))
        assert scalar_key != vector_key
        assert task_key(self._task(workload_5pct, sim_engine="vector",
                                   sim_reps=8)) != vector_key

    def test_executor_records_vector_provenance(self, workload_5pct):
        value = evaluate_task(self._task(workload_5pct,
                                         sim_engine="vector", sim_reps=3))
        assert value["sim_engine"] == "vector"
        assert value["sim_reps"] == 3
        assert value["cell"]["method"] == "sim"
        assert value["cell"]["speedup"] > 0.0
        scalar_value = evaluate_task(self._task(workload_5pct))
        assert "sim_engine" not in scalar_value

    def test_vector_reps_require_vector_engine(self, workload_5pct):
        with pytest.raises(ValueError, match="sim_engine='vector'"):
            self._task(workload_5pct, sim_reps=4)

    def test_cli_simulate_vector(self, workload_5pct, capsys):
        from repro.cli import main
        rc = main(["simulate", "--protocol", "write-once", "-n", "2",
                   "--requests", "800", "--engine", "vector",
                   "--reps", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        # Three replications x 800 requests folded into one aggregate.
        assert "speedup=" in out and "[2400 requests]" in out

    def test_cli_simulate_rejects_scalar_reps(self, capsys):
        from repro.cli import main
        rc = main(["simulate", "-n", "2", "--reps", "2"])
        assert rc == 2
        assert "--engine vector" in capsys.readouterr().err
