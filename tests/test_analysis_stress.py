"""Tests for the stress harness (failure-isolated robustness sweep)."""

import pytest

from repro.analysis.stress import (
    DEFAULT_SIZES,
    StressCorner,
    run_stress,
    stress_corners,
    stress_tasks,
)
from repro.core.solver import FixedPointSolver
from repro.protocols.modifications import ProtocolSpec, all_combinations
from repro.workload.parameters import SharingLevel, appendix_a_workload


class TestStressGrid:
    def test_full_grid_shape(self):
        tasks = stress_tasks()
        expected = (len(all_combinations()) * len(stress_corners())
                    * len(DEFAULT_SIZES))
        assert len(tasks) == expected
        assert len(all_combinations()) == 16
        assert all(t.method == "mva" for t in tasks)

    def test_corner_labels_are_distinct(self):
        labels = [corner.label for corner in stress_corners()]
        assert len(labels) == len(set(labels))


class TestRunStress:
    @pytest.fixture(scope="class")
    def small_report(self):
        # Two protocols x all corners x two sizes: fast but still
        # exercises every corner.
        return run_stress(sizes=(4, 32),
                          protocols=[ProtocolSpec(), ProtocolSpec.of(1, 4)])

    def test_every_cell_resolves_in_isolation(self, small_report):
        assert small_report.isolated
        assert small_report.total == 2 * len(stress_corners()) * 2
        assert small_report.converged + len(small_report.failures) \
            == small_report.total

    def test_extreme_corners_converge_or_fail_structured(self, small_report):
        # The paper's robustness claim: these corners should mostly
        # converge; whatever does not must be a structured failure.
        assert small_report.converged > 0
        for failure in small_report.failures:
            assert failure.error_type
            assert failure.message

    def test_report_text(self, small_report):
        text = small_report.text()
        assert "stress sweep" in text
        assert "isolation invariant: ok" in text

    def test_poisoned_solver_fails_in_isolation(self):
        """Force failures: an unreachable tolerance must produce error
        rows for exactly the poisoned sweep's cells and a still-intact
        report."""
        report = run_stress(
            sizes=(4,),
            corners=(StressCorner(
                "baseline", appendix_a_workload(SharingLevel.FIVE_PERCENT)),),
            protocols=[ProtocolSpec()],
            solver=FixedPointSolver(tolerance=1e-30, max_iterations=2))
        assert report.total == 1
        assert len(report.failures) == 1
        assert report.isolated
        assert "VIOLATED" not in report.text()
        assert report.metrics.snapshot()["repro_cells_failed_total"] == 1
