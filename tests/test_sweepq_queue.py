"""SweepQueue behaviour: equivalence, resume, recovery, failed chunks.

The queue's contract is that *nothing* about chunking, worker count,
caching, or crash history may show up in the results: every test here
compares against the plain serial executor's values.
"""

import pytest

from repro.analysis.grid import GridCell, GridSpec
from repro.core.solver import FixedPointSolver
from repro.protocols.modifications import ProtocolSpec
from repro.service.cache import ResultCache
from repro.service.executor import (
    CellTask,
    SweepExecutor,
    tasks_for_spec,
)
from repro.service.metrics import MetricsRegistry
from repro.sweepq import ResultStore, SweepQueue
from repro.workload.parameters import SharingLevel, appendix_a_workload

SPEC = GridSpec(
    protocols=[ProtocolSpec(), ProtocolSpec.of(1, 4)],
    sizes=[2, 4, 8, 16],
    sharing_levels=[SharingLevel.FIVE_PERCENT],
)

#: Converges nowhere: every cell becomes an error payload.
_POISONED = FixedPointSolver(tolerance=1e-30, max_iterations=3)


def _tasks():
    return tasks_for_spec(SPEC)


def _serial_rows(tasks):
    result = SweepExecutor(jobs=1).run(tasks)
    return [cell.as_row() for cell in result.cells]


def _rows_from(tasks, outcome):
    rows = []
    for task, value in zip(tasks, outcome.values):
        error = value.get("error")
        if error is not None:
            rows.append(GridCell.failed(
                protocol=task.protocol.label, sharing=task.sharing_label,
                n_processors=task.n, method=task.method,
                error=f"{error.get('type', 'Exception')}: "
                      f"{error.get('message', '')}").as_row())
        else:
            rows.append(GridCell(**value["cell"]).as_row())
    return rows


def _queue(tmp_path, **kwargs):
    kwargs.setdefault("cache", ResultCache(path=str(tmp_path / "c.json")))
    kwargs.setdefault("chunk_size", 3)
    return SweepQueue(state_dir=tmp_path / "q", **kwargs)


class TestResultStore:
    def test_mva_value_roundtrips_bit_exact(self, tmp_path):
        task = CellTask(
            protocol=ProtocolSpec(), sharing_label="5%",
            workload=appendix_a_workload(SharingLevel.FIVE_PERCENT), n=4)
        from repro.service.executor import evaluate_with_retry
        value = evaluate_with_retry(task, 0)
        store = ResultStore.create(tmp_path / "r", 1)
        extras = store.write(0, task, value)
        assert store.read(0, task, extras) == value

    def test_sim_value_roundtrips(self, tmp_path):
        task = CellTask(
            protocol=ProtocolSpec(), sharing_label="5%",
            workload=appendix_a_workload(SharingLevel.FIVE_PERCENT), n=2,
            method="sim", sim_requests=500, sim_seed=9)
        from repro.service.executor import evaluate_with_retry
        value = evaluate_with_retry(task, 0)
        store = ResultStore.create(tmp_path / "r", 1)
        extras = store.write(0, task, value)
        assert store.read(0, task, extras) == value

    def test_error_value_rides_in_extras_verbatim(self, tmp_path):
        task = CellTask(
            protocol=ProtocolSpec(), sharing_label="5%",
            workload=appendix_a_workload(SharingLevel.FIVE_PERCENT), n=4,
            solver=_POISONED)
        from repro.service.executor import evaluate_with_retry
        value = evaluate_with_retry(task, 0)
        assert value.get("error") is not None
        store = ResultStore.create(tmp_path / "r", 1)
        extras = store.write(0, task, value)
        assert extras == value
        assert store.read(0, task, extras) == value

    def test_unwritten_cell_raises(self, tmp_path):
        task = CellTask(
            protocol=ProtocolSpec(), sharing_label="5%",
            workload=appendix_a_workload(SharingLevel.FIVE_PERCENT), n=4)
        store = ResultStore.create(tmp_path / "r", 2)
        with pytest.raises(ValueError, match="no result"):
            store.read(1, task, None)

    def test_attach_sees_creators_writes(self, tmp_path):
        task = CellTask(
            protocol=ProtocolSpec(), sharing_label="5%",
            workload=appendix_a_workload(SharingLevel.FIVE_PERCENT), n=4)
        from repro.service.executor import evaluate_with_retry
        value = evaluate_with_retry(task, 0)
        creator = ResultStore.create(tmp_path / "r", 1)
        extras = creator.write(0, task, value)
        creator.flush()
        attached = ResultStore.attach(tmp_path / "r", 1)
        assert attached.read(0, task, extras) == value


class TestQueueEquivalence:
    def test_inprocess_matches_serial_executor(self, tmp_path):
        tasks = _tasks()
        outcome = _queue(tmp_path).run_tasks(tasks, workers=1)
        assert outcome.mode == "chunked-inprocess"
        assert _rows_from(tasks, outcome) == _serial_rows(tasks)
        assert outcome.counters["done"] == outcome.counters["chunks"]

    def test_two_workers_match_serial_executor(self, tmp_path):
        tasks = _tasks()
        outcome = _queue(tmp_path).run_tasks(tasks, workers=2)
        assert _rows_from(tasks, outcome) == _serial_rows(tasks)

    def test_chunk_size_one_matches(self, tmp_path):
        tasks = _tasks()
        outcome = _queue(tmp_path, chunk_size=1).run_tasks(tasks,
                                                           workers=1)
        assert outcome.counters["chunks"] == len(tasks)
        assert _rows_from(tasks, outcome) == _serial_rows(tasks)

    def test_poisoned_cells_become_error_payloads(self, tmp_path):
        """Per-cell failure isolation survives the chunked path: the
        poisoned cell's error row matches the serial executor's."""
        tasks = _tasks()
        poisoned = list(tasks)
        poisoned[3] = CellTask(
            protocol=poisoned[3].protocol,
            sharing_label=poisoned[3].sharing_label,
            workload=poisoned[3].workload, n=poisoned[3].n,
            solver=_POISONED)
        outcome = _queue(tmp_path).run_tasks(poisoned, workers=1)
        assert outcome.values[3].get("error") is not None
        assert _rows_from(poisoned, outcome) == _serial_rows(poisoned)


class TestQueueCacheAndResume:
    def test_second_run_is_all_cache(self, tmp_path):
        tasks = _tasks()
        queue = _queue(tmp_path)
        first = queue.run_tasks(tasks, workers=1)
        assert not any(first.cached)
        job_id = queue.submit(tasks)
        second = queue.run(job_id, workers=1)
        assert all(second.cached)
        assert _rows_from(tasks, second) == _rows_from(tasks, first)

    def test_partial_run_then_resume(self, tmp_path):
        """The crash/restart workflow: drain two chunks, 'die', then a
        fresh run() completes only the remainder."""
        tasks = _tasks()
        queue = _queue(tmp_path)
        job_id = queue.submit(tasks)
        counters = queue.process_chunks(job_id, limit=2)
        assert counters["done"] == 2
        outcome = queue.run(job_id, workers=1)
        assert outcome.counters["done"] == outcome.counters["chunks"]
        # The first two chunks came back from the cache...
        assert sum(outcome.cached) == 6  # 2 chunks x chunk_size 3
        # ...and the rows are what an uninterrupted serial run gives.
        assert _rows_from(tasks, outcome) == _serial_rows(tasks)

    def test_evicted_cache_requeues_done_chunks(self, tmp_path):
        """A done chunk whose cached cells vanished is re-solved, not
        trusted: the cache is a fast path, never a correctness input."""
        tasks = _tasks()
        queue = _queue(tmp_path)
        job_id = queue.submit(tasks)
        queue.process_chunks(job_id, limit=2)
        queue.cache.clear()
        outcome = queue.run(job_id, workers=1)
        assert not any(outcome.cached)  # everything re-solved
        assert _rows_from(tasks, outcome) == _serial_rows(tasks)

    def test_precheck_completes_chunks_from_cache(self, tmp_path):
        tasks = _tasks()
        cache = ResultCache(path=str(tmp_path / "shared.json"))
        warm = SweepQueue(state_dir=tmp_path / "q1", cache=cache,
                          chunk_size=3)
        warm.run_tasks(tasks, workers=1)
        cold = SweepQueue(state_dir=tmp_path / "q2", cache=cache,
                          chunk_size=3)
        outcome = cold.run_tasks(tasks, workers=1)
        assert all(outcome.cached)
        assert outcome.counters["done"] == outcome.counters["chunks"]


class TestCrashRecovery:
    def test_chaos_killed_worker_is_recovered(self, tmp_path):
        """SIGKILL one worker after its first claim: the lease expires,
        another worker requeues the chunk, and the final rows are
        byte-identical to an undisturbed serial run."""
        tasks = _tasks()
        metrics = MetricsRegistry()
        queue = _queue(tmp_path, lease_ttl=1.0, metrics=metrics)
        job_id = queue.submit(tasks)
        outcome = queue.run(job_id, workers=2, chaos_kill=1)
        assert outcome.counters["requeues"] >= 1
        assert outcome.counters["recovered"] >= 1
        assert outcome.counters["done"] == outcome.counters["chunks"]
        assert _rows_from(tasks, outcome) == _serial_rows(tasks)
        assert metrics.snapshot()["repro_sweep_chunks_recovered"] >= 1

    def test_failed_chunk_becomes_error_rows(self, tmp_path):
        tasks = _tasks()
        queue = _queue(tmp_path)
        job_id = queue.submit(tasks)
        queue.journal.fail_chunk(job_id, 0, "abandoned after 5 "
                                            "expired leases")
        outcome = queue.run(job_id, workers=1)
        for value in outcome.values[:3]:
            assert value["error"]["type"] == "ChunkFailedError"
            assert "abandoned" in value["error"]["message"]
        for value in outcome.values[3:]:
            assert value.get("error") is None
        assert outcome.counters["failed"] == 1


class TestValidation:
    def test_empty_submit_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="empty task list"):
            _queue(tmp_path).submit([])

    def test_bad_workers_rejected(self, tmp_path):
        queue = _queue(tmp_path)
        job_id = queue.submit(_tasks())
        with pytest.raises(ValueError, match="workers"):
            queue.run(job_id, workers=0)

    def test_bad_lease_ttl_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="lease_ttl"):
            SweepQueue(state_dir=tmp_path, lease_ttl=0)

    def test_ephemeral_queue_cleans_up(self):
        queue = SweepQueue()
        state_dir = queue.state_dir
        assert state_dir.exists()
        queue.close()
        assert not state_dir.exists()
