"""Integration tests for the full multiprocessor simulation."""

import pytest

from repro.core.model import CacheMVAModel
from repro.protocols.modifications import ProtocolSpec
from repro.sim.config import SimulationConfig
from repro.sim.system import SnoopingBusSimulator, simulate
from repro.workload.parameters import (
    ArchitectureParams,
    SharingLevel,
    WorkloadParameters,
    appendix_a_workload,
)


def _quick(workload, n=4, mods=(), seed=11, measured=20_000, **kwargs):
    return simulate(SimulationConfig(
        n_processors=n, workload=workload, protocol=ProtocolSpec.of(*mods),
        seed=seed, warmup_requests=2_000, measured_requests=measured,
        **kwargs))


class TestBasicBehaviour:
    def test_reproducible_with_seed(self, workload_5pct):
        a = _quick(workload_5pct, seed=99, measured=5_000)
        b = _quick(workload_5pct, seed=99, measured=5_000)
        assert a.speedup == b.speedup
        assert a.u_bus == b.u_bus

    def test_different_seeds_differ(self, workload_5pct):
        a = _quick(workload_5pct, seed=1, measured=5_000)
        b = _quick(workload_5pct, seed=2, measured=5_000)
        assert a.speedup != b.speedup

    def test_requests_measured(self, workload_5pct):
        res = _quick(workload_5pct, measured=5_000)
        assert res.requests_measured >= 5_000
        assert res.elapsed_cycles > 0.0

    def test_speedup_scales_with_n(self, workload_5pct):
        s2 = _quick(workload_5pct, n=2, measured=10_000).speedup
        s6 = _quick(workload_5pct, n=6, measured=10_000).speedup
        assert s6 > s2 > 0.0

    def test_single_processor_matches_no_contention_mean(self, workload_5pct):
        """With N=1 there is no bus queueing: R = tau + p_bc t_bc +
        p_rr t_read + 1 exactly (in expectation)."""
        res = _quick(workload_5pct, n=1, measured=60_000)
        sim = SnoopingBusSimulator(SimulationConfig(
            n_processors=1, workload=workload_5pct))
        inp = sim.inputs
        expected = (workload_5pct.tau + inp.p_bc * inp.t_bc
                    + inp.p_rr * inp.t_read + 1.0)
        assert res.mean_cycle_time == pytest.approx(expected, rel=0.02)
        assert res.w_bus == 0.0

    def test_bus_utilization_below_one(self, workload_5pct):
        res = _quick(workload_5pct, n=6)
        assert 0.0 < res.u_bus <= 1.0

    def test_saturation_at_large_n(self, workload_5pct):
        res = _quick(workload_5pct, n=24, measured=20_000)
        assert res.u_bus == pytest.approx(1.0, abs=0.01)

    def test_memory_utilization_positive_but_small(self, workload_5pct):
        res = _quick(workload_5pct, n=8)
        assert 0.0 < res.u_mem < 0.5

    def test_processing_power_below_n(self, workload_5pct):
        res = _quick(workload_5pct, n=6)
        assert 0.0 < res.processing_power < 6.0
        # power ~ speedup * tau / (tau + 1): consistent within noise.
        assert res.processing_power == pytest.approx(
            res.speedup * 2.5 / 3.5, rel=0.05)

    def test_summary_string(self, workload_5pct):
        res = _quick(workload_5pct, measured=2_000)
        assert "speedup=" in res.summary()
        assert "Write-Once" in res.summary()

    def test_pure_local_workload_ideal_speedup(self):
        w = WorkloadParameters(p_private=1.0, p_sro=0.0, p_sw=0.0,
                               h_private=1.0, r_private=1.0)
        res = _quick(w, n=4, measured=10_000)
        assert res.speedup == pytest.approx(4.0, rel=0.02)
        assert res.u_bus == 0.0
        assert res.bus_transactions == 0


class TestProtocolEffectsInSimulation:
    def test_mod1_reduces_bus_transactions(self, workload_5pct):
        base = _quick(workload_5pct, n=6, measured=15_000)
        mod1 = _quick(workload_5pct, n=6, mods=(1,), measured=15_000)
        # Private write hits stop broadcasting: fewer transactions per
        # request (requests equal by construction).
        assert mod1.bus_transactions < base.bus_transactions

    def test_mod1_improves_speedup(self, workload_5pct):
        base = _quick(workload_5pct, n=10, measured=25_000)
        mod1 = _quick(workload_5pct, n=10, mods=(1,), measured=25_000)
        assert mod1.speedup > base.speedup * 1.03

    def test_mods_1_4_best_at_high_sharing(self):
        w = appendix_a_workload(SharingLevel.TWENTY_PERCENT)
        mod1 = _quick(w, n=10, mods=(1,), measured=25_000)
        mod14 = _quick(w, n=10, mods=(1, 4), measured=25_000)
        assert mod14.speedup > mod1.speedup * 1.1

    def test_overrides_respected(self, workload_5pct):
        cfg = SimulationConfig(n_processors=4, workload=workload_5pct,
                               protocol=ProtocolSpec.of(1))
        assert cfg.effective_workload.rep_p == 0.3
        cfg_no = SimulationConfig(n_processors=4, workload=workload_5pct,
                                  protocol=ProtocolSpec.of(1),
                                  apply_overrides=False)
        assert cfg_no.effective_workload.rep_p == 0.2


class TestConfigValidation:
    def test_bad_values(self, workload_5pct):
        with pytest.raises(ValueError):
            SimulationConfig(n_processors=0, workload=workload_5pct)
        with pytest.raises(ValueError):
            SimulationConfig(n_processors=2, workload=workload_5pct,
                             warmup_requests=-1)
        with pytest.raises(ValueError):
            SimulationConfig(n_processors=2, workload=workload_5pct,
                             measured_requests=0)
        with pytest.raises(ValueError):
            SimulationConfig(n_processors=2, workload=workload_5pct,
                             n_batches=0)


class TestAgainstMVA:
    """The reproduction's core claim (paper Section 4.2): the MVA agrees
    with the detailed model on speedup to within a few percent."""

    @pytest.mark.parametrize("n", [2, 6, 10])
    def test_speedup_agreement_write_once(self, workload_5pct, n):
        res = _quick(workload_5pct, n=n, measured=40_000)
        mva = CacheMVAModel(workload_5pct, ProtocolSpec()).solve(n)
        rel_err = abs(mva.speedup - res.speedup) / res.speedup
        assert rel_err < 0.05, (n, mva.speedup, res.speedup)

    def test_mva_underestimates_bus_utilization(self, workload_5pct):
        """Section 4.2: 'the approximate MVA equations generally
        underestimate bus utilization'."""
        res = _quick(workload_5pct, n=6, measured=40_000)
        mva = CacheMVAModel(workload_5pct, ProtocolSpec()).solve(6)
        assert mva.u_bus < res.u_bus + 0.01

    def test_bus_wait_agreement(self, workload_5pct):
        res = _quick(workload_5pct, n=6, measured=40_000)
        mva = CacheMVAModel(workload_5pct, ProtocolSpec()).solve(6)
        assert mva.w_bus == pytest.approx(res.w_bus, rel=0.25)


class TestStressWorkload:
    def test_stress_parameters_run(self, stress_workload):
        """Section 4.3 stress test: heavy cache interference still runs
        and the MVA stays within its 5 % band."""
        res = _quick(stress_workload, n=6, measured=40_000)
        mva = CacheMVAModel(stress_workload, ProtocolSpec()).solve(6)
        rel_err = abs(mva.speedup - res.speedup) / res.speedup
        assert rel_err < 0.08, (mva.speedup, res.speedup)
        assert res.mean_interference_wait >= 0.0


class TestArchitectureEffects:
    def test_slow_memory_hurts(self, workload_5pct):
        fast = _quick(workload_5pct, n=6, measured=10_000)
        slow = simulate(SimulationConfig(
            n_processors=6, workload=workload_5pct, seed=11,
            warmup_requests=2_000, measured_requests=10_000,
            arch=ArchitectureParams(memory_latency=12.0)))
        assert slow.speedup < fast.speedup

    def test_single_memory_module_contention(self, workload_5pct):
        one = simulate(SimulationConfig(
            n_processors=8, workload=workload_5pct, seed=11,
            warmup_requests=2_000, measured_requests=10_000,
            arch=ArchitectureParams(memory_modules=1)))
        four = _quick(workload_5pct, n=8, measured=10_000)
        assert one.u_mem > four.u_mem
