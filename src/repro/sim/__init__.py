"""Discrete-event simulator of the shared-bus multiprocessor.

This is the repository's *detailed model*: the role the GTPN plays in
the paper (its Section 4 validates the cheap MVA against an expensive
detailed solution of the same probabilistic system).  The simulator
models:

* N processors with exponential execution bursts (mean tau) that block
  on memory requests;
* per-processor snooping caches with dual directories -- processor
  requests are delayed only by bus transactions that require cache
  action, which have priority (Section 2.1);
* a single FCFS shared bus with deterministic per-transaction service
  segments (address cycle, block transfers, write-words);
* four interleaved main-memory modules with a fixed 3-cycle latency,
  occupied by memory-write operations;
* workload outcomes sampled per reference from the same
  :class:`~repro.workload.derived.DerivedInputs` the MVA consumes, so
  both models analyze *the same* stochastic system by construction.

Entry point: :class:`SnoopingBusSimulator` (or the convenience
:func:`simulate`).
"""

from repro.sim.bus import BusDiscipline
from repro.sim.config import SimulationConfig
from repro.sim.engine import EventQueue, Simulation
from repro.sim.hierarchical import (
    HierarchicalBusSimulator,
    HierarchicalSimConfig,
    HierarchicalSimResult,
    simulate_hierarchy,
)
from repro.sim.stats import BatchMeans, TimeWeightedAverage, Welford
from repro.sim.system import SimulationResult, SnoopingBusSimulator, simulate
from repro.sim.trace_driven import (
    TraceDrivenConfig,
    TraceDrivenResult,
    TraceDrivenSimulator,
    simulate_trace_driven,
)

__all__ = [
    "BatchMeans",
    "BusDiscipline",
    "EventQueue",
    "HierarchicalBusSimulator",
    "HierarchicalSimConfig",
    "HierarchicalSimResult",
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    "SnoopingBusSimulator",
    "TimeWeightedAverage",
    "TraceDrivenConfig",
    "TraceDrivenResult",
    "TraceDrivenSimulator",
    "Welford",
    "simulate",
    "simulate_hierarchy",
    "simulate_trace_driven",
]
