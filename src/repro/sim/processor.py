"""Processor model: think, request, stall, repeat.

"A processor executes for a variable number of cycles, assumed to be
exponentially distributed with mean tau, between memory requests.
Useful execution is not overlapped with fetching data from memory"
(Section 2.1).  Each processor records the full cycle time of every
request -- execution burst + response + cache supply -- whose mean is
the MVA's R.
"""

from __future__ import annotations

import enum

from repro.sim.stats import Welford


class ProcessorState(enum.Enum):
    """Lifecycle of one processor: executing, waiting, or polling."""
    EXECUTING = "executing"
    WAITING = "waiting"


class Processor:
    """One processor's state and per-request cycle statistics."""

    def __init__(self, proc_id: int):
        self.proc_id = proc_id
        self.state = ProcessorState.EXECUTING
        self.cycle_start = 0.0
        self.requests_completed = 0
        self.cycle_stats = Welford()
        self.busy_cycles = 0.0  # useful execution time accumulated

    def begin_cycle(self, now: float, burst: float) -> None:
        """Start an execution burst; the memory request fires after it."""
        self.state = ProcessorState.EXECUTING
        self.cycle_start = now
        self.busy_cycles += burst

    def begin_wait(self) -> None:
        """Record the fire time and enter the waiting state."""
        self.state = ProcessorState.WAITING

    def complete_cycle(self, now: float) -> float:
        """The request was satisfied; returns this cycle's total time."""
        cycle = now - self.cycle_start
        self.cycle_stats.add(cycle)
        self.requests_completed += 1
        return cycle

    def reset_statistics(self) -> None:
        """Zero the per-processor counters (warm-up reset)."""
        self.cycle_stats = Welford()
        self.requests_completed = 0
        self.busy_cycles = 0.0
