"""Trace-driven timing simulation (the Archibald & Baer methodology).

The paper's Section 4.4 compares its models against Archibald & Baer's
*trace-driven simulation* study.  This module implements that third
kind of comparator: no Appendix-A probabilities anywhere -- processors
issue references from a synthetic address trace, per-cache LRU
set-associative state machines run the actual coherence protocol
(Write-Once plus any modification subset), and hits, sharing, supplier
write-backs and replacement write-backs all *emerge* from cache state.

Timing uses the same deterministic bus occupancies as the rest of the
repository (address + latency + block transfer, flush and write-back
transfers, write-word/invalidate cycles), so the trace-driven results
are directly comparable to the MVA fed with parameters *measured from
the same trace* (``repro.trace.WorkloadEstimator``) -- the end-to-end
loop the paper's conclusion sketches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.protocols.modifications import Modification, ProtocolSpec
from repro.protocols.states import BlockState
from repro.sim.bus import Bus, BusRequest
from repro.sim.cache import CacheController
from repro.sim.engine import Simulation
from repro.sim.memory import MemoryBank
from repro.sim.processor import Processor
from repro.sim.stats import BatchMeans, Welford
from repro.trace.generator import GeneratorConfig, SyntheticTraceGenerator
from repro.workload.parameters import ArchitectureParams
from repro.workload.streams import ReferenceOutcome, RequestKind


@dataclass
class _Line:
    block: int
    state: BlockState

    @property
    def dirty(self) -> bool:
        return self.state.wback


class ProtocolCache:
    """LRU set-associative cache whose lines carry protocol states."""

    def __init__(self, n_sets: int, associativity: int):
        if n_sets < 1 or associativity < 1:
            raise ValueError("n_sets and associativity must be >= 1")
        self.n_sets = n_sets
        self.associativity = associativity
        self._sets: list[list[_Line]] = [[] for _ in range(n_sets)]

    def _set_of(self, block: int) -> list[_Line]:
        return self._sets[block % self.n_sets]

    def find(self, block: int) -> _Line | None:
        """Return the resident line for ``tag``, updating LRU order."""
        for line in self._set_of(block):
            if line.block == block:
                return line
        return None

    def touch(self, block: int) -> None:
        """Refresh LRU recency of a resident block."""
        lines = self._set_of(block)
        for line in lines:
            if line.block == block:
                lines.remove(line)
                lines.append(line)
                return

    def fill(self, block: int, state: BlockState) -> _Line | None:
        """Insert a block, returning the evicted line (if any)."""
        lines = self._set_of(block)
        victim = lines.pop(0) if len(lines) >= self.associativity else None
        lines.append(_Line(block=block, state=state))
        return victim

    def drop(self, block: int) -> None:
        """Evict ``tag`` if resident (invalidate)."""
        lines = self._set_of(block)
        for line in lines:
            if line.block == block:
                lines.remove(line)
                return


@dataclass(frozen=True)
class TraceDrivenConfig:
    """Configuration of a trace-driven run."""

    generator: GeneratorConfig
    protocol: ProtocolSpec = field(default_factory=ProtocolSpec)
    arch: ArchitectureParams = field(default_factory=ArchitectureParams)
    n_sets: int = 256
    associativity: int = 4
    tau: float = 2.5
    warmup_requests: int = 10_000
    measured_requests: int = 60_000
    n_batches: int = 10

    def __post_init__(self) -> None:
        if self.n_sets < 1 or self.associativity < 1:
            raise ValueError("n_sets and associativity must be >= 1")
        if self.tau < 0.0:
            raise ValueError("tau must be non-negative")
        if self.measured_requests < 1:
            raise ValueError("measured_requests must be >= 1")


@dataclass(frozen=True)
class TraceDrivenResult:
    """Measured performance of the trace-driven run."""

    n_processors: int
    protocol_label: str
    requests_measured: int
    mean_cycle_time: float
    speedup: float
    speedup_ci_halfwidth: float
    u_bus: float
    w_bus: float
    hit_rate: float
    bus_transactions: int

    def summary(self) -> str:
        """One-line digest of the trace-driven run."""
        return (f"trace-driven {self.protocol_label} "
                f"N={self.n_processors}: speedup={self.speedup:.3f}"
                f"±{self.speedup_ci_halfwidth:.3f} hit={self.hit_rate:.3f} "
                f"U_bus={self.u_bus:.3f}")


class TraceDrivenSimulator:
    """Processors + protocol caches + FCFS bus, driven by a trace."""

    def __init__(self, config: TraceDrivenConfig):
        self.config = config
        self.generator = SyntheticTraceGenerator(config.generator)
        n = config.generator.n_processors
        self._rng = np.random.default_rng(config.generator.seed + 1)
        self.sim = Simulation()
        self.bus = Bus()
        self.memory = MemoryBank(config.arch.memory_modules,
                                 config.arch.memory_latency, self._rng)
        self.processors = [Processor(i) for i in range(n)]
        self.snoops = [CacheController(i, supply_time=config.arch.t_supply)
                       for i in range(n)]
        self.caches = [ProtocolCache(config.n_sets, config.associativity)
                       for _ in range(n)]
        self._completed = 0
        self._measuring = config.warmup_requests == 0
        self._measured = 0
        self._measure_start = 0.0
        self._hits = 0
        self._refs = 0
        self.cycle_batches = BatchMeans(n_batches=config.n_batches)

    def _has(self, mod: Modification) -> bool:
        return mod in self.config.protocol.mods

    # -- protocol resolution ---------------------------------------------------

    def holders_of(self, block: int, except_cpu: int) -> list[int]:
        """Caches other than ``requester`` holding ``tag``."""
        return [i for i, cache in enumerate(self.caches)
                if i != except_cpu and cache.find(block) is not None]

    def resolve(self, cpu: int, block: int, is_write: bool) -> tuple[
            RequestKind, float, list[tuple[int, float]]]:
        """Apply the protocol and return (kind, bus occupancy,
        [(snooping cache, busy cycles), ...]).  All state changes happen
        here, at issue time; the bus replay is purely temporal, which is
        the standard trace-driven simplification."""
        cache = self.caches[cpu]
        line = cache.find(block)
        self._refs += 1
        if line is not None:
            self._hits += 1
            cache.touch(block)
            if not is_write:
                return RequestKind.LOCAL, 0.0, []
            if line.state.writable_without_bus:
                line.state = BlockState.EXCLUSIVE_WBACK
                return RequestKind.LOCAL, 0.0, []
            return self._write_to_shared(cpu, block, line)
        return self._miss(cpu, block, is_write)

    def _write_to_shared(self, cpu: int, block: int, line: _Line):
        arch = self.config.arch
        holders = self.holders_of(block, cpu)
        snoops = [(j, arch.invalidate_cycles) for j in holders]
        if self._has(Modification.WRITE_BROADCAST):
            # Copies stay valid; memory updated unless mod 3 too.
            if self._has(Modification.INVALIDATE_INSTEAD_OF_WRITE_WORD):
                line.state = (BlockState.SHARED_WBACK if holders
                              else BlockState.EXCLUSIVE_WBACK)
                for j in holders:
                    other = self.caches[j].find(block)
                    if other is not None and other.state.wback:
                        other.state = BlockState.SHARED_CLEAN
                occupancy = arch.write_word_cycles
            else:
                occupancy = arch.write_word_cycles + self.memory.write(self.sim.now)
            return RequestKind.BROADCAST, occupancy, snoops
        # Invalidation protocols: other copies die.
        for j in holders:
            self.caches[j].drop(block)
        if self._has(Modification.INVALIDATE_INSTEAD_OF_WRITE_WORD):
            line.state = BlockState.EXCLUSIVE_WBACK
            occupancy = arch.invalidate_cycles
        else:
            line.state = (BlockState.EXCLUSIVE_WBACK if line.state.wback
                          else BlockState.EXCLUSIVE_CLEAN)
            occupancy = arch.write_word_cycles + self.memory.write(self.sim.now)
        return RequestKind.BROADCAST, occupancy, snoops

    def _miss(self, cpu: int, block: int, is_write: bool):
        arch = self.config.arch
        holders = self.holders_of(block, cpu)
        owner = next((j for j in holders
                      if self.caches[j].find(block).state.wback), None)
        snoops: list[tuple[int, float]] = []
        occupancy = arch.base_read_cycles
        if owner is not None:
            owner_line = self.caches[owner].find(block)
            if self._has(Modification.CACHE_TO_CACHE_SUPPLY):
                occupancy = arch.cache_supply_cycles
                if not is_write:
                    owner_line.state = BlockState.SHARED_WBACK
            else:
                # Write-Once flush: extra block transfer, memory updated.
                occupancy = arch.base_read_cycles + arch.block_transfer_cycles
                self.memory.write(self.sim.now)
                owner_line.state = BlockState.SHARED_CLEAN
            snoops.append((owner, occupancy))

        if is_write:
            for j in holders:
                if j != owner:
                    snoops.append((j, arch.invalidate_cycles))
                self.caches[j].drop(block)
            new_state = BlockState.EXCLUSIVE_WBACK
            kind = RequestKind.REMOTE_READ
        else:
            for j in holders:
                if j != owner:
                    snoops.append((j, 1.0))
                    other = self.caches[j].find(block)
                    if other is not None and other.state.exclusive:
                        other.state = BlockState.SHARED_CLEAN
            if holders or not self._has(Modification.EXCLUSIVE_ON_MISS):
                new_state = BlockState.SHARED_CLEAN
            else:
                new_state = BlockState.EXCLUSIVE_CLEAN
            kind = RequestKind.REMOTE_READ

        victim = self.caches[cpu].fill(block, new_state)
        if victim is not None and victim.dirty:
            occupancy += arch.block_transfer_cycles
            self.memory.write(self.sim.now)
        return kind, occupancy, snoops

    # -- event flow ------------------------------------------------------------

    def run(self) -> TraceDrivenResult:
        """Replay the trace and return the measured statistics."""
        for cpu in range(self.config.generator.n_processors):
            self._begin_cycle(cpu)
        self.sim.run()
        return self._collect()

    def _begin_cycle(self, cpu: int) -> None:
        burst = (float(self._rng.exponential(self.config.tau))
                 if self.config.tau > 0.0 else 0.0)
        self.processors[cpu].begin_cycle(self.sim.now, burst)
        self.sim.schedule(burst, lambda sim: self._fire(cpu),
                          Simulation.PRIORITY_PROCESSOR)

    def _fire(self, cpu: int) -> None:
        ref = self.generator.reference(cpu)
        self.processors[cpu].begin_wait()
        kind, occupancy, snoops = self.resolve(cpu, ref.block, ref.is_write)
        if kind is RequestKind.LOCAL:
            controller = self.snoops[cpu]
            token = controller.begin_local_wait(self.sim.now)
            self._poll_local(cpu, token)
            return
        for j, busy in snoops:
            self.snoops[j].add_snoop_work(self.sim.now, busy)
        outcome = ReferenceOutcome(kind=kind)
        request = BusRequest(cache_id=cpu, outcome=outcome,
                             enqueue_time=self.sim.now,
                             on_complete=self._bus_done, tag=occupancy)
        self.bus.submit(self.sim, request, self._grant)

    def _grant(self, sim: Simulation, request: BusRequest) -> None:
        request.duration = float(request.tag)
        sim.schedule(request.duration,
                     lambda s: self.bus.complete(s, self._grant),
                     Simulation.PRIORITY_BUS)

    def _bus_done(self, sim: Simulation, request: BusRequest) -> None:
        sim.schedule(self.config.arch.t_supply,
                     lambda s: self._complete(request.cache_id),
                     Simulation.PRIORITY_PROCESSOR)

    def _poll_local(self, cpu: int, token: int) -> None:
        controller = self.snoops[cpu]
        if not controller.pending_token_valid(token):
            return
        completion = controller.try_start_local(self.sim.now)
        if completion is None:
            self.sim.schedule_at(controller.busy_until,
                                 lambda sim: self._poll_local(cpu, token),
                                 Simulation.PRIORITY_PROCESSOR)
            return
        controller.finish_local_wait(self.sim.now)
        self.sim.schedule_at(completion, lambda sim: self._complete(cpu),
                             Simulation.PRIORITY_PROCESSOR)

    def _complete(self, cpu: int) -> None:
        cycle = self.processors[cpu].complete_cycle(self.sim.now)
        self._completed += 1
        if self._measuring:
            self.cycle_batches.add(cycle)
            self._measured += 1
            if self._measured >= self.config.measured_requests:
                self.sim.stop()
        elif self._completed >= self.config.warmup_requests:
            self._measuring = True
            self._measure_start = self.sim.now
            self.bus.reset_statistics(self.sim.now)
            self.memory.reset_statistics(self.sim.now)
            for proc in self.processors:
                proc.reset_statistics()
            self._hits = 0
            self._refs = 0
        self._begin_cycle(cpu)

    def _collect(self) -> TraceDrivenResult:
        cfg = self.config
        merged = Welford()
        for proc in self.processors:
            merged = merged.merge(proc.cycle_stats)
        r_mean = merged.mean
        n = cfg.generator.n_processors
        ideal = cfg.tau + cfg.arch.t_supply
        speedup = n * ideal / r_mean if r_mean else 0.0
        half, batch_mean = self.cycle_batches.confidence_interval()
        ci = (n * ideal * half / (batch_mean ** 2)
              if batch_mean > 0.0 else 0.0)
        return TraceDrivenResult(
            n_processors=n,
            protocol_label=cfg.protocol.label,
            requests_measured=merged.count,
            mean_cycle_time=r_mean,
            speedup=speedup,
            speedup_ci_halfwidth=ci,
            u_bus=self.bus.utilization(self.sim.now),
            w_bus=self.bus.wait_stats.mean,
            hit_rate=self._hits / self._refs if self._refs else 0.0,
            bus_transactions=self.bus.transactions,
        )


def simulate_trace_driven(config: TraceDrivenConfig) -> TraceDrivenResult:
    """Build, run, and collect one trace-driven simulation."""
    return TraceDrivenSimulator(config).run()
