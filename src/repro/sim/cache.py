"""Snooping cache controller with dual directories.

Paper Section 2.1: "Bus requests have priority over processor requests
for service in a cache.  Dual directories are assumed, so processor
requests are only delayed by bus requests that require some action on
the part of the cache."

The controller therefore tracks a single busy-until horizon fed by two
sources: snoop work imposed by other caches' bus transactions
(invalidate/update: one cycle; supply/flush: the whole transaction) and
the one-cycle service of the local processor's request.  Snoop work has
priority: a pending processor request starts only once the horizon
stops moving.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.stats import Welford


@dataclass
class _PendingLocal:
    arrival: float
    token: int


class CacheController:
    """Busy-until bookkeeping for one cache."""

    def __init__(self, cache_id: int, supply_time: float = 1.0):
        self.cache_id = cache_id
        self.supply_time = supply_time
        self.busy_until = 0.0
        self.interference_stats = Welford()
        self.snoop_events = 0
        self._pending: _PendingLocal | None = None
        self._token = 0

    def add_snoop_work(self, now: float, duration: float) -> None:
        """Queue bus-imposed work; serialized at the cache, priority over
        the processor."""
        if duration < 0.0:
            raise ValueError("snoop duration must be non-negative")
        self.busy_until = max(self.busy_until, now) + duration
        self.snoop_events += 1

    def try_start_local(self, now: float) -> float | None:
        """Attempt to start the local processor request at ``now``.

        Returns the completion time if the cache is free (the request
        occupies the cache for ``supply_time``), or None if snoop work is
        still in progress -- the caller should re-poll at
        :attr:`busy_until` (which may grow again in the meantime; the
        re-poll loop in the system handles that).
        """
        if now + 1e-12 < self.busy_until:
            return None
        start = max(now, self.busy_until)
        self.busy_until = start + self.supply_time
        return self.busy_until

    def begin_local_wait(self, arrival: float) -> int:
        """Register a waiting processor request; returns a freshness token.

        Tokens guard against stale re-poll events: only the newest
        registration may start the request.
        """
        self._token += 1
        self._pending = _PendingLocal(arrival=arrival, token=self._token)
        return self._token

    def pending_token_valid(self, token: int) -> bool:
        """True if ``token`` still names the in-flight request."""
        return self._pending is not None and self._pending.token == token

    def finish_local_wait(self, now: float) -> None:
        """Record the interference delay and clear the pending slot."""
        assert self._pending is not None
        self.interference_stats.add(now - self._pending.arrival)
        self._pending = None

    def reset_statistics(self) -> None:
        """Zero the interference-wait accumulators (warm-up reset)."""
        self.interference_stats = Welford()
        self.snoop_events = 0
