"""The assembled multiprocessor simulation.

:class:`SnoopingBusSimulator` wires processors, caches, the FCFS bus and
the memory bank together and drives them with sampled reference
outcomes.  Timing semantics deliberately mirror the MVA's structure
(DESIGN.md Section 5 item 5):

* broadcast: bus held for (module wait +) one write-word / invalidate
  cycle; snooping caches holding the block are busy one cycle;
* remote read: bus held for the deterministic transfer decomposition
  (address + latency + block, plus supplier-flush and replacement
  write-back transfers); a supplying cache is busy for the whole
  transaction, other holders for one cycle;
* every satisfied request ends with the one-cycle cache supply to the
  processor.

so that discrepancies between simulator and MVA measure the *queueing
approximations* of the paper (arrival theorem, residual life, geometric
interference), not differences in assumed hardware timing.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.protocols.modifications import Modification
from repro.sim.bus import Bus, BusRequest
from repro.sim.cache import CacheController
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulation
from repro.sim.memory import MemoryBank
from repro.sim.processor import Processor
from repro.sim.stats import BatchMeans, Welford
from repro.workload.derived import DerivedInputs, derive_inputs
from repro.workload.streams import ReferenceOutcome, ReferenceStream, RequestKind

#: Cache occupancy of a one-cycle snoop action (invalidate / update /
#: share-line response), the "1.0" leading t_interference in Appendix B.
SNOOP_ACTION_CYCLES = 1.0


@dataclass(frozen=True)
class SimulationResult:
    """Steady-state estimates from one run, MVA-comparable."""

    n_processors: int
    protocol_label: str
    sharing_label: str
    requests_measured: int
    elapsed_cycles: float
    mean_cycle_time: float           # the MVA's R
    speedup: float
    speedup_ci_halfwidth: float
    processing_power: float
    u_bus: float
    u_mem: float
    w_bus: float
    w_bus_stddev: float
    q_bus_seen: float
    mean_interference_wait: float
    bus_transactions: int
    #: Mean response per request kind (net of the supply cycle), keyed
    #: by RequestKind value; compare with the MVA's per-class terms.
    response_by_kind: dict[str, float]

    def summary(self) -> str:
        """One-line digest of the run."""
        return (f"{self.protocol_label} N={self.n_processors} "
                f"({self.sharing_label} sharing): "
                f"speedup={self.speedup:.3f}±{self.speedup_ci_halfwidth:.3f} "
                f"U_bus={self.u_bus:.3f} w_bus={self.w_bus:.3f} "
                f"[{self.requests_measured} requests]")


class SnoopingBusSimulator:
    """Discrete-event model of the Figure 2.1 multiprocessor."""

    def __init__(self, config: SimulationConfig):
        self.config = config
        workload = config.effective_workload
        self.inputs: DerivedInputs = derive_inputs(
            workload, config.arch, config.protocol.mod_numbers,
            holder_probability=(config.holder_probability
                                if config.holder_probability is not None
                                else 0.5))
        self._rng = np.random.default_rng(config.seed)
        self.sim = Simulation()
        self.bus = Bus(discipline=config.bus_discipline, rng=self._rng)
        self.memory = MemoryBank(config.arch.memory_modules,
                                 config.arch.memory_latency, self._rng)
        n = config.n_processors
        self.processors = [Processor(i) for i in range(n)]
        self.caches = [CacheController(i, supply_time=config.arch.t_supply)
                       for i in range(n)]
        seeds = np.random.SeedSequence(config.seed).spawn(n)
        self.streams = [ReferenceStream(self.inputs,
                                        rng=np.random.default_rng(s))
                        for s in seeds]
        self._completed_total = 0
        self._measuring = config.warmup_requests == 0
        self._measured = 0
        self._measure_start_time = 0.0
        self.cycle_batches = BatchMeans(n_batches=config.n_batches)
        #: (kind, fire time) of the request each processor is stalled on.
        self._inflight: list[tuple[RequestKind, float] | None] = [None] * n
        #: Mean response per request kind, net of the cache supply cycle
        #: -- directly comparable to the MVA's per-class components:
        #: LOCAL ~ n_int * t_int, BROADCAST ~ w_bus + w_mem + t_bc,
        #: REMOTE_READ ~ w_bus + t_read.
        self.response_by_kind: dict[RequestKind, Welford] = {
            kind: Welford() for kind in RequestKind}

    # -- lifecycle ----------------------------------------------------------

    def run(self) -> SimulationResult:
        """Run warm-up plus measurement and return the estimates."""
        for proc_id in range(self.config.n_processors):
            self._begin_cycle(proc_id)
        self.sim.run()
        return self._collect()

    def _begin_cycle(self, proc_id: int) -> None:
        burst = self.streams[proc_id].execution_cycles()
        self.processors[proc_id].begin_cycle(self.sim.now, burst)
        self.sim.schedule(burst, lambda sim: self._fire_request(proc_id),
                          Simulation.PRIORITY_PROCESSOR)

    def _fire_request(self, proc_id: int) -> None:
        outcome = self.streams[proc_id].sample()
        self.processors[proc_id].begin_wait()
        self._inflight[proc_id] = (outcome.kind, self.sim.now)
        if outcome.kind is RequestKind.LOCAL:
            cache = self.caches[proc_id]
            token = cache.begin_local_wait(self.sim.now)
            self._poll_local(proc_id, token)
        else:
            request = BusRequest(
                cache_id=proc_id,
                outcome=outcome,
                enqueue_time=self.sim.now,
                on_complete=self._bus_request_done,
            )
            self.bus.submit(self.sim, request, self._grant)

    # -- local requests (cache interference) --------------------------------

    def _poll_local(self, proc_id: int, token: int) -> None:
        cache = self.caches[proc_id]
        if not cache.pending_token_valid(token):
            return
        completion = cache.try_start_local(self.sim.now)
        if completion is None:
            # Snoop work in progress; re-poll when the horizon passes.
            self.sim.schedule_at(
                cache.busy_until,
                lambda sim: self._poll_local(proc_id, token),
                Simulation.PRIORITY_PROCESSOR)
            return
        cache.finish_local_wait(self.sim.now)
        self.sim.schedule_at(completion,
                             lambda sim: self._complete_request(proc_id),
                             Simulation.PRIORITY_PROCESSOR)

    # -- bus transactions ----------------------------------------------------

    def _grant(self, sim: Simulation, request: BusRequest) -> None:
        duration = self._service(request)
        request.duration = duration
        sim.schedule(duration,
                     lambda s: self.bus.complete(s, self._grant),
                     Simulation.PRIORITY_BUS)

    def _bus_request_done(self, sim: Simulation, request: BusRequest) -> None:
        # The cache answers the processor one supply cycle later.
        sim.schedule(self.config.arch.t_supply,
                     lambda s: self._complete_request(request.cache_id),
                     Simulation.PRIORITY_PROCESSOR)

    def _service(self, request: BusRequest) -> float:
        """Bus occupancy of one transaction, with memory/snoop side effects."""
        outcome = request.outcome
        now = self.sim.now
        if outcome.kind is RequestKind.BROADCAST:
            return self._service_broadcast(now, request.cache_id, outcome)
        return self._service_remote_read(now, request.cache_id, outcome)

    def _service_broadcast(self, now: float, cache_id: int,
                           outcome: ReferenceOutcome) -> float:
        duration = self.inputs.t_bc
        if self.inputs.bc_updates_memory:
            # The bus is held while the target module drains (equation 7).
            duration += self.memory.write(now)
        if outcome.shared:
            self._snoop_holders(now, cache_id, SNOOP_ACTION_CYCLES)
        return duration

    def _service_remote_read(self, now: float, cache_id: int,
                             outcome: ReferenceOutcome) -> float:
        arch = self.config.arch
        mods = self.inputs.mods
        t_block = arch.block_transfer_cycles
        direct_supply = (outcome.supplier_writeback
                         and Modification.CACHE_TO_CACHE_SUPPLY.value in mods)
        if direct_supply:
            duration = arch.cache_supply_cycles
        else:
            duration = arch.base_read_cycles
            if self.config.model_read_memory_contention:
                # Optional extra detail the MVA deliberately omits: the
                # read waits for (and occupies) its target module.
                duration += self.memory.write(now)
            if outcome.supplier_writeback:
                # Write-Once: the owner flushes the block to memory first.
                duration += t_block
                self.memory.write(now)
        if outcome.req_writeback:
            duration += t_block
            self.memory.write(now)
        if outcome.shared:
            holders = self._snoop_holders(now, cache_id, SNOOP_ACTION_CYCLES,
                                          skip_one_for_supplier=outcome.cache_supplied)
            if outcome.cache_supplied:
                supplier = self._pick_supplier(cache_id, holders)
                if supplier is not None:
                    # The supplier is tied up for the whole transaction
                    # (Appendix B's p' events).
                    self.caches[supplier].add_snoop_work(now, duration)
        return duration

    def _snoop_holders(self, now: float, cache_id: int, duration: float,
                       skip_one_for_supplier: bool = False) -> list[int]:
        """Each other cache holds a shared block w.p.
        ``inputs.holder_probability`` (Appendix B's 0.5, or the refined
        N-dependent residency) and spends ``duration`` reacting.
        Returns the holders; when a supplier will be charged separately,
        one slot is left to it."""
        hp = self.inputs.holder_probability
        holders = [j for j in range(self.config.n_processors)
                   if j != cache_id and self._rng.random() < hp]
        reacting = holders[1:] if (skip_one_for_supplier and holders) else holders
        for j in reacting:
            self.caches[j].add_snoop_work(now, duration)
        return holders

    def _pick_supplier(self, cache_id: int, holders: list[int]) -> int | None:
        """The cache that sources the block: a sampled holder if any, else
        a random other cache (the holder sample and the csupply outcome
        are drawn independently).  None in a single-cache system, where
        the sampled supply outcome only affects timing."""
        if holders:
            return holders[0]
        others = [j for j in range(self.config.n_processors) if j != cache_id]
        if not others:
            return None
        return int(self._rng.choice(others))

    # -- completion & bookkeeping --------------------------------------------

    def _complete_request(self, proc_id: int) -> None:
        cycle = self.processors[proc_id].complete_cycle(self.sim.now)
        inflight = self._inflight[proc_id]
        if inflight is not None and self._measuring:
            kind, fired_at = inflight
            response = self.sim.now - fired_at - self.config.arch.t_supply
            self.response_by_kind[kind].add(max(response, 0.0))
        self._inflight[proc_id] = None
        self._completed_total += 1
        if self._measuring:
            self.cycle_batches.add(cycle)
            self._measured += 1
            if self._measured >= self.config.measured_requests:
                self.sim.stop()
        elif self._completed_total >= self.config.warmup_requests:
            self._start_measurement()
        self._begin_cycle(proc_id)

    def _start_measurement(self) -> None:
        self._measuring = True
        now = self.sim.now
        self._measure_start_time = now
        self.bus.reset_statistics(now)
        self.memory.reset_statistics(now)
        for cache in self.caches:
            cache.reset_statistics()
        for proc in self.processors:
            proc.reset_statistics()

    def _collect(self) -> SimulationResult:
        cfg = self.config
        now = self.sim.now
        elapsed = now - self._measure_start_time
        merged = Welford()
        for proc in self.processors:
            merged = merged.merge(proc.cycle_stats)
        r_mean = merged.mean if merged.count else float("nan")
        workload = cfg.effective_workload
        ideal = workload.tau + cfg.arch.t_supply
        speedup = cfg.n_processors * ideal / r_mean if r_mean else 0.0
        half, batch_mean = self.cycle_batches.confidence_interval()
        # Propagate the CI through speedup = c / R (delta method on 1/R).
        speedup_half = (cfg.n_processors * ideal * half / (batch_mean ** 2)
                        if batch_mean > 0.0 else 0.0)
        power = (sum(p.busy_cycles for p in self.processors) / elapsed
                 if elapsed > 0.0 else 0.0)
        interference = Welford()
        for cache in self.caches:
            interference = interference.merge(cache.interference_stats)
        return SimulationResult(
            n_processors=cfg.n_processors,
            protocol_label=cfg.protocol.label,
            sharing_label=f"{cfg.workload.sharing_fraction * 100:g}%",
            requests_measured=merged.count,
            elapsed_cycles=elapsed,
            mean_cycle_time=r_mean,
            speedup=speedup,
            speedup_ci_halfwidth=speedup_half,
            processing_power=power,
            u_bus=self.bus.utilization(now),
            u_mem=self.memory.utilization(now),
            w_bus=self.bus.wait_stats.mean,
            w_bus_stddev=self.bus.wait_stats.stddev,
            q_bus_seen=self.bus.seen_queue_stats.mean,
            mean_interference_wait=interference.mean,
            bus_transactions=self.bus.transactions,
            response_by_kind={kind.value: stats.mean
                              for kind, stats in self.response_by_kind.items()
                              if stats.count},
        )


#: The DES backends :func:`simulate` can dispatch to.  ``"scalar"`` is
#: the event-heap reference implementation in this module;
#: ``"vector"`` is the lockstep multi-replication engine in
#: :mod:`repro.sim.vector` (statistically equivalent, not bit-equal --
#: see docs/validation.md).
SIM_ENGINES = ("scalar", "vector")


def simulate(config: SimulationConfig, *, engine: str = "scalar",
             reps: int = 1,
             seeds: Sequence[int] | None = None) -> SimulationResult:
    """Build, run, and collect one simulation.

    ``engine="scalar"`` (default) runs the single-seed reference
    simulator.  ``engine="vector"`` runs ``reps`` independent
    replications in lockstep through
    :class:`repro.sim.vector.VectorSnoopingBusSimulator` and returns
    the aggregated result (across-replication confidence band); use
    :func:`repro.sim.vector.simulate_many` directly when the
    per-replication rows are needed.
    """
    if engine == "scalar":
        return SnoopingBusSimulator(config).run()
    if engine == "vector":
        from repro.sim.vector import simulate_many
        return simulate_many(config, reps=reps, seeds=seeds).aggregate()
    raise ValueError(f"engine must be one of {SIM_ENGINES}, got {engine!r}")
