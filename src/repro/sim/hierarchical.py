"""Discrete-event model of the two-level bus hierarchy.

Validates :class:`repro.hierarchy.HierarchicalMVAModel` the same way
the flat simulator validates the flat MVA: same derived inputs, same
escape probabilities, deterministic occupancies, seeded outcome
sampling.  The simulator models *split* (pended) transactions -- an
escaping request releases its cluster bus while it queues for the
global bus -- matching the extension's default; cluster-cache hits and
in-cluster supplies are resolved by the same escape sampling the MVA
uses.

Topology: C cluster buses (one per cluster of K processors), one global
bus, and the interleaved memory bank behind the global bus (behind the
single bus when C = 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hierarchy.model import HierarchicalMVAModel
from repro.hierarchy.params import HierarchyParams
from repro.protocols.modifications import ProtocolSpec
from repro.sim.bus import Bus, BusRequest
from repro.sim.cache import CacheController
from repro.sim.engine import Simulation
from repro.sim.memory import MemoryBank
from repro.sim.processor import Processor
from repro.sim.stats import BatchMeans, Welford
from repro.workload.derived import derive_inputs
from repro.workload.parameters import ArchitectureParams, WorkloadParameters
from repro.workload.streams import ReferenceOutcome, ReferenceStream, RequestKind

SNOOP_ACTION_CYCLES = 1.0


@dataclass(frozen=True)
class HierarchicalSimConfig:
    """Run configuration for the hierarchical simulator."""

    hierarchy: HierarchyParams
    workload: WorkloadParameters
    protocol: ProtocolSpec = field(default_factory=ProtocolSpec)
    arch: ArchitectureParams = field(default_factory=ArchitectureParams)
    seed: int = 31337
    warmup_requests: int = 5_000
    measured_requests: int = 50_000
    n_batches: int = 10

    def __post_init__(self) -> None:
        if self.warmup_requests < 0 or self.measured_requests < 1:
            raise ValueError("bad warmup/measured request counts")


@dataclass(frozen=True)
class HierarchicalSimResult:
    """MVA-comparable estimates from one hierarchical run."""

    params: HierarchyParams
    requests_measured: int
    mean_cycle_time: float
    speedup: float
    speedup_ci_halfwidth: float
    u_local_bus: float      # mean over cluster buses
    u_global_bus: float
    w_local_bus: float
    w_global_bus: float

    def summary(self) -> str:
        """One-line digest of the hierarchical run."""
        return (f"hier C={self.params.clusters} K={self.params.per_cluster}: "
                f"speedup={self.speedup:.3f}±{self.speedup_ci_halfwidth:.3f} "
                f"U_local={self.u_local_bus:.3f} U_global={self.u_global_bus:.3f}")


class HierarchicalBusSimulator:
    """Event-driven model of the clustered machine."""

    def __init__(self, config: HierarchicalSimConfig):
        self.config = config
        hier = config.hierarchy
        workload = config.protocol.adjust_workload(config.workload)
        self.inputs = derive_inputs(workload, config.arch,
                                    config.protocol.mod_numbers)
        # Reuse the analytic escape probabilities so the two models
        # sample the same routing distribution.
        reference_model = HierarchicalMVAModel(
            config.workload, hier, protocol=config.protocol,
            arch=config.arch)
        self.p_read_escape = reference_model.p_read_escape
        self.p_bc_escape = reference_model.p_bc_escape

        self._rng = np.random.default_rng(config.seed)
        self.sim = Simulation()
        n = hier.n_processors
        self.local_buses = [Bus() for _ in range(hier.clusters)]
        self.global_bus = Bus()
        self.memory = MemoryBank(config.arch.memory_modules,
                                 config.arch.memory_latency, self._rng)
        self.processors = [Processor(i) for i in range(n)]
        self.caches = [CacheController(i, supply_time=config.arch.t_supply)
                       for i in range(n)]
        seeds = np.random.SeedSequence(config.seed).spawn(n)
        self.streams = [ReferenceStream(self.inputs,
                                        rng=np.random.default_rng(s))
                        for s in seeds]
        self._completed = 0
        self._measuring = config.warmup_requests == 0
        self._measured = 0
        self._measure_start = 0.0
        self.cycle_batches = BatchMeans(n_batches=config.n_batches)

    # -- topology helpers ----------------------------------------------------

    def cluster_of(self, proc_id: int) -> int:
        """Cluster index owning processor ``proc``."""
        return proc_id // self.config.hierarchy.per_cluster

    def cluster_peers(self, proc_id: int) -> list[int]:
        """Processors sharing ``proc``'s local bus (excluding it)."""
        k = self.config.hierarchy.per_cluster
        base = self.cluster_of(proc_id) * k
        return [j for j in range(base, base + k) if j != proc_id]

    # -- lifecycle -------------------------------------------------------------

    def run(self) -> HierarchicalSimResult:
        """Run warm-up plus measurement and return the statistics."""
        for proc_id in range(self.config.hierarchy.n_processors):
            self._begin_cycle(proc_id)
        self.sim.run()
        return self._collect()

    def _begin_cycle(self, proc_id: int) -> None:
        burst = self.streams[proc_id].execution_cycles()
        self.processors[proc_id].begin_cycle(self.sim.now, burst)
        self.sim.schedule(burst, lambda sim: self._fire_request(proc_id),
                          Simulation.PRIORITY_PROCESSOR)

    def _fire_request(self, proc_id: int) -> None:
        outcome = self.streams[proc_id].sample()
        self.processors[proc_id].begin_wait()
        if outcome.kind is RequestKind.LOCAL:
            cache = self.caches[proc_id]
            token = cache.begin_local_wait(self.sim.now)
            self._poll_local(proc_id, token)
            return
        request = BusRequest(
            cache_id=proc_id, outcome=outcome, enqueue_time=self.sim.now,
            on_complete=self._local_phase_done,
            tag=self._sample_escape(outcome))
        bus = self.local_buses[self.cluster_of(proc_id)]
        bus.submit(self.sim, request, self._local_grant_fn(bus))

    def _sample_escape(self, outcome: ReferenceOutcome) -> bool:
        if self.config.hierarchy.is_flat:
            return False
        p = (self.p_bc_escape if outcome.kind is RequestKind.BROADCAST
             else self.p_read_escape)
        return bool(self._rng.random() < p)

    # -- local bus phase ---------------------------------------------------------

    def _local_grant_fn(self, bus: Bus):
        def grant(sim: Simulation, request: BusRequest) -> None:
            """Start the next local-bus transaction if one is queued."""
            self._grant_local(sim, request, bus, grant)
        return grant

    def _grant_local(self, sim: Simulation, request: BusRequest, bus: Bus,
                     grant) -> None:
        arch = self.config.arch
        hier = self.config.hierarchy
        overhead = hier.global_overhead_cycles
        outcome = request.outcome
        escapes = bool(request.tag)
        if hier.is_flat:
            duration = self._flat_service(outcome)
        elif outcome.kind is RequestKind.BROADCAST:
            duration = self.inputs.t_bc + (overhead if escapes else 0.0)
        else:
            duration = arch.cache_supply_cycles + (overhead if escapes else 0.0)
        if outcome.shared:
            self._snoop_cluster(request.cache_id, duration, outcome)
        request.duration = duration
        sim.schedule(duration, lambda s: bus.complete(s, grant),
                     Simulation.PRIORITY_BUS)

    def _flat_service(self, outcome: ReferenceOutcome) -> float:
        """C = 1: the single bus carries the full flat-model occupancy."""
        if outcome.kind is RequestKind.BROADCAST:
            duration = self.inputs.t_bc
            if self.inputs.bc_updates_memory:
                duration += self.memory.write(self.sim.now)
            return duration
        t_block = self.config.arch.block_transfer_cycles
        if outcome.supplier_writeback and 2 in self.inputs.mods:
            duration = self.config.arch.cache_supply_cycles
        else:
            duration = self.config.arch.base_read_cycles
            if outcome.supplier_writeback:
                duration += t_block
                self.memory.write(self.sim.now)
        if outcome.req_writeback:
            duration += t_block
            self.memory.write(self.sim.now)
        return duration

    def _snoop_cluster(self, proc_id: int, duration: float,
                       outcome: ReferenceOutcome) -> None:
        hp = self.inputs.holder_probability
        busy = (duration if outcome.cache_supplied else SNOOP_ACTION_CYCLES)
        for j in self.cluster_peers(proc_id):
            if self._rng.random() < hp:
                self.caches[j].add_snoop_work(self.sim.now, min(busy, duration))

    def _local_phase_done(self, sim: Simulation, request: BusRequest) -> None:
        escapes = bool(request.tag)
        if not escapes:
            self._finish_request(sim, request.cache_id)
            return
        global_request = BusRequest(
            cache_id=request.cache_id, outcome=request.outcome,
            enqueue_time=sim.now,
            on_complete=lambda s, r: self._finish_request(s, r.cache_id))
        self.global_bus.submit(sim, global_request, self._grant_global)

    # -- global bus phase -----------------------------------------------------------

    def _grant_global(self, sim: Simulation, request: BusRequest) -> None:
        overhead = self.config.hierarchy.global_overhead_cycles
        outcome = request.outcome
        if outcome.kind is RequestKind.BROADCAST:
            duration = self.inputs.t_bc + overhead
            if self.inputs.bc_updates_memory:
                duration += self.memory.write(sim.now)
        else:
            duration = self.inputs.t_read + overhead
            if outcome.supplier_writeback and 2 not in self.inputs.mods:
                self.memory.write(sim.now)
            if outcome.req_writeback:
                self.memory.write(sim.now)
        request.duration = duration
        sim.schedule(duration,
                     lambda s: self.global_bus.complete(s, self._grant_global),
                     Simulation.PRIORITY_BUS)

    # -- completion --------------------------------------------------------------------

    def _poll_local(self, proc_id: int, token: int) -> None:
        cache = self.caches[proc_id]
        if not cache.pending_token_valid(token):
            return
        completion = cache.try_start_local(self.sim.now)
        if completion is None:
            self.sim.schedule_at(cache.busy_until,
                                 lambda sim: self._poll_local(proc_id, token),
                                 Simulation.PRIORITY_PROCESSOR)
            return
        cache.finish_local_wait(self.sim.now)
        self.sim.schedule_at(completion,
                             lambda sim: self._complete(proc_id),
                             Simulation.PRIORITY_PROCESSOR)

    def _finish_request(self, sim: Simulation, proc_id: int) -> None:
        sim.schedule(self.config.arch.t_supply,
                     lambda s: self._complete(proc_id),
                     Simulation.PRIORITY_PROCESSOR)

    def _complete(self, proc_id: int) -> None:
        cycle = self.processors[proc_id].complete_cycle(self.sim.now)
        self._completed += 1
        if self._measuring:
            self.cycle_batches.add(cycle)
            self._measured += 1
            if self._measured >= self.config.measured_requests:
                self.sim.stop()
        elif self._completed >= self.config.warmup_requests:
            self._measuring = True
            self._measure_start = self.sim.now
            for bus in [*self.local_buses, self.global_bus]:
                bus.reset_statistics(self.sim.now)
            self.memory.reset_statistics(self.sim.now)
            for proc in self.processors:
                proc.reset_statistics()
            for cache in self.caches:
                cache.reset_statistics()
        self._begin_cycle(proc_id)

    def _collect(self) -> HierarchicalSimResult:
        cfg = self.config
        now = self.sim.now
        merged = Welford()
        for proc in self.processors:
            merged = merged.merge(proc.cycle_stats)
        r_mean = merged.mean
        workload = cfg.protocol.adjust_workload(cfg.workload)
        ideal = workload.tau + cfg.arch.t_supply
        n = cfg.hierarchy.n_processors
        speedup = n * ideal / r_mean if r_mean else 0.0
        half, batch_mean = self.cycle_batches.confidence_interval()
        ci = (n * ideal * half / (batch_mean ** 2)
              if batch_mean > 0.0 else 0.0)
        local_utils = [bus.utilization(now) for bus in self.local_buses]
        local_waits = Welford()
        for bus in self.local_buses:
            local_waits = local_waits.merge(bus.wait_stats)
        return HierarchicalSimResult(
            params=cfg.hierarchy,
            requests_measured=merged.count,
            mean_cycle_time=r_mean,
            speedup=speedup,
            speedup_ci_halfwidth=ci,
            u_local_bus=sum(local_utils) / len(local_utils),
            u_global_bus=self.global_bus.utilization(now),
            w_local_bus=local_waits.mean,
            w_global_bus=self.global_bus.wait_stats.mean,
        )


def simulate_hierarchy(config: HierarchicalSimConfig) -> HierarchicalSimResult:
    """Build, run, and collect one hierarchical simulation."""
    return HierarchicalBusSimulator(config).run()
