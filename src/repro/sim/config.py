"""Simulation run configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.protocols.modifications import ProtocolSpec
from repro.sim.bus import BusDiscipline
from repro.workload.parameters import ArchitectureParams, WorkloadParameters


@dataclass(frozen=True)
class SimulationConfig:
    """Everything needed for one reproducible simulation run.

    ``warmup_requests`` / ``measured_requests`` are totals across all
    processors; statistics reset after warm-up.  The protocol's
    Appendix-A workload overrides are applied exactly as in the MVA
    (``apply_overrides``), so the two models stay input-compatible.
    """

    n_processors: int
    workload: WorkloadParameters
    protocol: ProtocolSpec = field(default_factory=ProtocolSpec)
    arch: ArchitectureParams = field(default_factory=ArchitectureParams)
    seed: int = 12345
    warmup_requests: int = 5_000
    measured_requests: int = 50_000
    n_batches: int = 10
    apply_overrides: bool = True
    bus_discipline: BusDiscipline = BusDiscipline.FCFS
    #: Override Appendix B's 0.5 snoop-holder probability (None = 0.5);
    #: set by the N-dependent sharing refinement.
    holder_probability: float | None = None
    #: Model memory-module contention on the read path too.  The MVA
    #: ignores it ("memory interference is not an important factor in
    #: the response time for remote reads", Section 3.1); enabling this
    #: lets the ablation bench test that assumption.
    model_read_memory_contention: bool = False

    def __post_init__(self) -> None:
        if self.n_processors < 1:
            raise ValueError(f"n_processors must be >= 1, got {self.n_processors!r}")
        if self.warmup_requests < 0:
            raise ValueError("warmup_requests must be non-negative")
        if self.measured_requests < 1:
            raise ValueError("measured_requests must be >= 1")
        if self.n_batches < 1:
            raise ValueError("n_batches must be >= 1")
        if (self.holder_probability is not None
                and not 0.0 <= self.holder_probability <= 1.0):
            raise ValueError("holder_probability must be in [0, 1]")

    @property
    def effective_workload(self) -> WorkloadParameters:
        """The workload after protocol overrides (if enabled)."""
        if self.apply_overrides:
            return self.protocol.adjust_workload(self.workload)
        return self.workload
