"""A minimal deterministic discrete-event engine.

Events are (time, priority, sequence) ordered: ties in time break by
priority (lower first), then by insertion order, which makes runs fully
reproducible.  Callbacks receive the simulation so they can schedule
follow-up events.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

EventCallback = Callable[["Simulation"], None]


@dataclass(order=True)
class _Event:
    time: float
    priority: int
    seq: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventQueue:
    """A cancellable priority queue of timed events."""

    def __init__(self) -> None:
        self._heap: list[_Event] = []
        self._seq = 0

    def push(self, time: float, callback: EventCallback,
             priority: int = 0) -> _Event:
        """Schedule ``event`` at ``time`` (ties break by priority, then FIFO)."""
        if not math.isfinite(time):
            raise ValueError(f"event time must be finite, got {time!r}")
        event = _Event(time=time, priority=priority, seq=self._seq,
                       callback=callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> _Event | None:
        """Next live event, or None if the queue is drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def __len__(self) -> int:
        return sum(not e.cancelled for e in self._heap)

    def __bool__(self) -> bool:
        return any(not e.cancelled for e in self._heap)


class Simulation:
    """Clock plus event queue; the single source of simulated time."""

    #: Priority classes: bus grants before snoop bookkeeping before
    #: processor-side events at equal timestamps, so cache-priority
    #: semantics (Section 2.1) hold even on ties.
    PRIORITY_BUS = 0
    PRIORITY_SNOOP = 1
    PRIORITY_PROCESSOR = 2

    def __init__(self) -> None:
        self.now = 0.0
        self.events = EventQueue()
        self._stopped = False

    def schedule(self, delay: float, callback: EventCallback,
                 priority: int = PRIORITY_PROCESSOR) -> _Event:
        """Schedule ``callback`` at now + delay."""
        if delay < 0.0:
            raise ValueError(f"cannot schedule in the past (delay={delay!r})")
        return self.events.push(self.now + delay, callback, priority)

    def schedule_at(self, time: float, callback: EventCallback,
                    priority: int = PRIORITY_PROCESSOR) -> _Event:
        """Schedule ``callback`` at an absolute time >= now."""
        if time < self.now - 1e-9:
            raise ValueError(f"cannot schedule at {time} before now={self.now}")
        return self.events.push(max(time, self.now), callback, priority)

    def stop(self) -> None:
        """Stop the run loop after the current event."""
        self._stopped = True

    def run(self, until: float | None = None,
            max_events: int | None = None) -> int:
        """Process events in order; returns the number processed.

        Stops when the queue drains, ``until`` is passed, ``max_events``
        is reached, or :meth:`stop` is called from a callback.
        """
        processed = 0
        self._stopped = False
        while not self._stopped:
            if max_events is not None and processed >= max_events:
                break
            event = self.events.pop()
            if event is None:
                break
            if until is not None and event.time > until:
                # Not consumed: push back for a later run() call.
                self.events.push(event.time, event.callback, event.priority)
                self.now = until
                break
            assert event.time >= self.now - 1e-9, "time went backwards"
            self.now = max(self.now, event.time)
            event.callback(self)
            processed += 1
        return processed


def cancel(event: Any) -> None:
    """Cancel a previously scheduled event (lazy removal)."""
    event.cancelled = True
