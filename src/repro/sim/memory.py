"""Interleaved main-memory modules (paper Section 2.1).

"The main memory is divided into m modules, where m is the cache block
size, assumed to be four in this paper.  Main memory latency is assumed
to be three cycles."

Each memory *write* operation (broadcast write-word, supplier flush,
replacement write-block) occupies one module for the full latency; the
equation-(12) memory-utilization estimate of the MVA counts exactly
these occupancies, so the simulator mirrors that accounting.
"""

from __future__ import annotations

import numpy as np

from repro.sim.stats import TimeWeightedAverage


class MemoryBank:
    """The m interleaved modules, tracked by their busy-until times."""

    def __init__(self, n_modules: int, latency: float,
                 rng: np.random.Generator):
        if n_modules < 1:
            raise ValueError(f"n_modules must be >= 1, got {n_modules!r}")
        if latency < 0.0:
            raise ValueError(f"latency must be non-negative, got {latency!r}")
        self.n_modules = n_modules
        self.latency = latency
        self._rng = rng
        self._busy_until = [0.0] * n_modules
        self._busy_signals = [TimeWeightedAverage() for _ in range(n_modules)]
        self.operations = 0

    def pick_module(self) -> int:
        """A uniformly random module (references are spread by address)."""
        return int(self._rng.integers(self.n_modules))

    def write(self, now: float, module: int | None = None) -> float:
        """Occupy a module for one write; returns the wait until it was free.

        The caller (the bus) holds the bus while waiting, matching the
        MVA's equation (7): bus occupancy of a broadcast is
        w_mem + T_write.
        """
        if module is None:
            module = self.pick_module()
        start = max(now, self._busy_until[module])
        wait = start - now
        self._mark_busy(module, start, start + self.latency)
        self.operations += 1
        return wait

    def _mark_busy(self, module: int, start: float, end: float) -> None:
        self._busy_until[module] = end
        signal = self._busy_signals[module]
        # Approximate per-module utilization signal; back-to-back
        # occupancies merge into one busy interval.
        signal.update(start, 1.0)
        signal.update(end, 0.0)

    def busy_until(self, module: int) -> float:
        """Cycle at which the addressed module frees up."""
        return self._busy_until[module]

    def reset_statistics(self, now: float) -> None:
        """Zero the busy-time accumulator (warm-up reset)."""
        for signal in self._busy_signals:
            signal.reset(now)
        self.operations = 0

    def utilization(self, now: float) -> float:
        """Mean per-module utilization (the MVA's U_mem counterpart)."""
        if not self._busy_signals:
            return 0.0
        return sum(s.average(now) for s in self._busy_signals) / self.n_modules
