"""Streaming statistics for the simulator.

Welford accumulators for sample means, time-weighted averages for
utilizations and queue lengths, and batch-means confidence intervals
for the steady-state estimates reported against the MVA.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from scipy import stats as _scipy_stats


class Welford:
    """Numerically stable streaming mean / variance."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        """Fold one sample into the running mean/variance."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    @property
    def mean(self) -> float:
        """Running mean (0.0 before the first sample)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        """Running sample standard deviation (ddof=1)."""
        return math.sqrt(self.variance)

    def merge(self, other: "Welford") -> "Welford":
        """Combine two accumulators (parallel Welford)."""
        merged = Welford()
        n = self.count + other.count
        if n == 0:
            return merged
        delta = other.mean - self.mean
        merged.count = n
        merged._mean = self.mean + delta * other.count / n
        merged._m2 = (self._m2 + other._m2
                      + delta * delta * self.count * other.count / n)
        return merged


class TimeWeightedAverage:
    """Integral of a piecewise-constant signal divided by elapsed time.

    Used for utilizations (value in {0,1}) and queue lengths.
    """

    def __init__(self, start_time: float = 0.0, value: float = 0.0) -> None:
        self._last_time = start_time
        self._value = value
        self._integral = 0.0
        self._origin = start_time

    def update(self, now: float, value: float) -> None:
        """Record that the signal changes to ``value`` at ``now``."""
        if now < self._last_time - 1e-9:
            raise ValueError("time went backwards")
        self._integral += self._value * (now - self._last_time)
        self._last_time = max(now, self._last_time)
        self._value = value

    def reset(self, now: float) -> None:
        """Restart the integral (end of warm-up)."""
        self._integral = 0.0
        self._last_time = now
        self._origin = now

    def average(self, now: float) -> float:
        """Time-weighted mean of the tracked level."""
        elapsed = now - self._origin
        if elapsed <= 0.0:
            return 0.0
        pending = self._value * (now - self._last_time)
        return (self._integral + pending) / elapsed

    @property
    def current(self) -> float:
        """Level as of the last update."""
        return self._value


@dataclass
class BatchMeans:
    """Batch-means point estimate and confidence interval.

    Observations are appended in arrival order and split into
    ``n_batches`` equal batches; the CI treats batch means as i.i.d.
    normal (standard steady-state simulation practice).
    """

    n_batches: int = 10
    _values: list[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        """Append one observation to the current batch."""
        self._values.append(value)

    @property
    def count(self) -> int:
        """Observations folded in so far."""
        return len(self._values)

    @property
    def mean(self) -> float:
        """Grand mean over all observations."""
        return sum(self._values) / len(self._values) if self._values else 0.0

    def batch_means(self) -> list[float]:
        """Per-batch means for the completed batches."""
        n = len(self._values)
        if n < self.n_batches:
            return [sum(self._values) / n] if n else []
        size = n // self.n_batches
        return [
            sum(self._values[i * size:(i + 1) * size]) / size
            for i in range(self.n_batches)
        ]

    def confidence_interval(self, level: float = 0.95) -> tuple[float, float]:
        """(half-width, mean) CI from the batch means; half-width is 0
        when fewer than two batches exist."""
        means = self.batch_means()
        if len(means) < 2:
            return 0.0, self.mean
        k = len(means)
        grand = sum(means) / k
        var = sum((m - grand) ** 2 for m in means) / (k - 1)
        t_crit = float(_scipy_stats.t.ppf(0.5 + level / 2.0, df=k - 1))
        half = t_crit * math.sqrt(var / k)
        return half, grand
