"""The shared bus: a single non-preemptive server with deterministic
segments.

The paper's GTPN serves bus requests in *random order* while the MVA
assumes *FCFS*; "both scheduling disciplines have the same mean waiting
time, and thus yield the same predicted speedup measures" (Section
2.1).  The simulator supports both disciplines so that claim is itself
testable (see ``tests/test_sim_disciplines.py``); FCFS is the default.

Service durations are computed by the system (they depend on the
sampled outcome and on memory-module availability); the bus tracks the
queue, waiting times, and its utilization signal.
"""

from __future__ import annotations

import enum
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.sim.stats import TimeWeightedAverage, Welford
from repro.workload.streams import ReferenceOutcome


class BusDiscipline(enum.Enum):
    """Order in which queued bus requests are granted."""

    FCFS = "fcfs"
    RANDOM = "random"  # the GTPN's random-order service


@dataclass
class BusRequest:
    """One queued bus transaction."""

    cache_id: int
    outcome: ReferenceOutcome
    enqueue_time: float
    on_complete: Callable[[Any, "BusRequest"], None] = field(repr=False)
    grant_time: float = -1.0
    duration: float = 0.0
    #: Free-form routing decision attached at submit time (e.g. whether
    #: the transaction escapes to the global bus in the hierarchy).
    tag: Any = None

    @property
    def wait(self) -> float:
        """Queueing delay (grant - enqueue); the MVA's w_bus counterpart."""
        return self.grant_time - self.enqueue_time


class Bus:
    """Arbiter over one shared bus (FCFS or random-order)."""

    def __init__(self, discipline: BusDiscipline = BusDiscipline.FCFS,
                 rng: np.random.Generator | None = None) -> None:
        if discipline is BusDiscipline.RANDOM and rng is None:
            raise ValueError("random-order service needs an rng")
        self.discipline = discipline
        self._rng = rng
        self._queue: deque[BusRequest] = deque()
        self._current: BusRequest | None = None
        self.utilization_signal = TimeWeightedAverage()
        self.queue_signal = TimeWeightedAverage()
        self.wait_stats = Welford()
        self.seen_queue_stats = Welford()
        self.transactions = 0

    @property
    def busy(self) -> bool:
        """True while a transaction holds the bus."""
        return self._current is not None

    @property
    def queue_length(self) -> int:
        """Requests waiting (excluding the one in service)."""
        return len(self._queue)

    def submit(self, sim, request: BusRequest,
               grant: Callable[[Any, BusRequest], None]) -> None:
        """Enqueue a request; ``grant`` starts service when its turn comes.

        ``grant`` must call :meth:`complete` when the transaction's
        duration has elapsed (the system schedules that event).
        """
        # Arrival-instant statistics: number ahead of the arrival,
        # counting the request in service (the MVA's Q-bar).
        self.seen_queue_stats.add(len(self._queue) + (1 if self.busy else 0))
        self._queue.append(request)
        self._record_queue(sim.now)
        if not self.busy:
            self._start_next(sim, grant)

    def complete(self, sim, grant: Callable[[Any, BusRequest], None]) -> None:
        """End the in-service transaction and start the next, if any."""
        assert self._current is not None, "complete() with idle bus"
        finished = self._current
        self._current = None
        self.utilization_signal.update(sim.now, 0.0)
        self.transactions += 1
        if self._queue:
            self._start_next(sim, grant)
        finished.on_complete(sim, finished)

    def _start_next(self, sim,
                    grant: Callable[[Any, BusRequest], None]) -> None:
        if self.discipline is BusDiscipline.RANDOM and len(self._queue) > 1:
            assert self._rng is not None
            pick = int(self._rng.integers(len(self._queue)))
            self._queue.rotate(-pick)
            request = self._queue.popleft()
            self._queue.rotate(pick)
        else:
            request = self._queue.popleft()
        self._record_queue(sim.now)
        request.grant_time = sim.now
        self.wait_stats.add(request.wait)
        self._current = request
        self.utilization_signal.update(sim.now, 1.0)
        grant(sim, request)

    def _record_queue(self, now: float) -> None:
        self.queue_signal.update(now, float(len(self._queue)))

    def reset_statistics(self, now: float) -> None:
        """Zero the utilization and queue accumulators (warm-up reset)."""
        self.utilization_signal.reset(now)
        self.queue_signal.reset(now)
        self.wait_stats = Welford()
        self.seen_queue_stats = Welford()
        self.transactions = 0

    def utilization(self, now: float) -> float:
        """Fraction of elapsed time the bus was held."""
        return self.utilization_signal.average(now)

    def mean_queue_length(self, now: float) -> float:
        """Time-averaged FCFS queue length seen by the bus."""
        return self.queue_signal.average(now)
