"""Lockstep multi-replication DES: many seeds advanced as NumPy arrays.

:class:`VectorSnoopingBusSimulator` runs ``reps`` independent
replications of the Figure 2.1 snooping-bus system *in lockstep*: event
times, processor/cache/bus/memory occupancy and the Welford/batch-means
accumulators are ``(reps,)`` (or ``(reps, N)``) arrays, and every "tick"
advances each still-active replication by exactly its own next event --
the minimum of its bus-completion time and its per-processor timers,
with the bus winning ties exactly like the scalar engine's priority
classes.  One tick therefore costs a fixed number of small vectorized
NumPy operations regardless of how many replications ride along, which
is where the >=10x throughput over running
:class:`~repro.sim.system.SnoopingBusSimulator` once per seed comes
from (see ``benchmarks/bench_sim.py``).

The scalar simulator stays the semantic reference.  The vector engine
reproduces its *timing semantics* -- the same broadcast / remote-read
service decompositions, snoop-holder sampling, cache busy-until polling
with poll-retry, warm-up reset and batch-means bookkeeping -- but it
does **not** replay the scalar engine's random streams bit-for-bit
(the scalar draws via ziggurat exponentials, rejection-sampled
``choice`` and per-processor spawned generators; the vector engine
draws fixed-width uniforms from one buffered stream per replication),
and it applies each request's completion bookkeeping in the tick where
the completion time becomes causally determined, which can run a few
events ahead of interleaved bus traffic near the warm-up and stop
boundaries.  The promise is therefore *statistical* equivalence,
enforced by the scalar-vs-vector section of ``repro verify`` (see
docs/validation.md for the tolerance table).  What *is* bit-promised:
each replication's trajectory depends only on its own seed, so
permuting ``seeds`` permutes the result rows and nothing else.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np
from scipy import stats as _scipy_stats

from repro.protocols.modifications import Modification
from repro.sim.config import SimulationConfig
from repro.sim.system import SNOOP_ACTION_CYCLES, SimulationResult
from repro.workload.derived import derive_inputs
from repro.workload.streams import RequestKind

#: Processor phases in the lockstep state machine (int8 codes).
_EXEC, _POLL, _BUSY, _DONE = 0, 1, 2, 3

#: Request-kind codes; index into :data:`_KINDS`.
_KINDS = (RequestKind.LOCAL, RequestKind.BROADCAST, RequestKind.REMOTE_READ)

#: The scalar cache controller's "already free" slack (cache.py).
_EPS = 1e-12


class _UniformLanes:
    """One buffered uniform stream per replication.

    Each replication owns an independent ``np.random.Generator`` seeded
    from its own entry in ``seeds``; draws are served from a per-lane
    buffer refilled in amortized chunks.  Because a lane only ever
    consumes from its own generator, a replication's entire trajectory
    is a pure function of its seed -- the property the seed-permutation
    test pins down.
    """

    def __init__(self, seeds: Sequence[int], width: int):
        self._gens = [np.random.default_rng(s) for s in seeds]
        self._chunk = max(4096, 8 * width)
        n = len(self._gens)
        self._buf = np.empty((n, self._chunk), dtype=np.float64)
        for lane, gen in enumerate(self._gens):
            self._buf[lane] = gen.random(self._chunk)
        self._flat = self._buf.ravel()
        self._pos = np.zeros(n, dtype=np.int64)
        self._aranges: dict[int, np.ndarray] = {}

    def take(self, rows: np.ndarray, width: int) -> np.ndarray:
        """Draw ``width`` uniforms from each lane in ``rows``.

        Returns shape ``(len(rows),)`` when ``width == 1`` else
        ``(len(rows), width)``.
        """
        pos = self._pos
        chunk = self._chunk
        p = pos[rows]
        over = p + width > chunk
        if over.any():
            for lane in rows[over]:
                self._buf[lane] = self._gens[lane].random(chunk)
                pos[lane] = 0
            p = pos[rows]
        base = rows * chunk + p
        if width == 1:
            out = self._flat[base]
        else:
            offs = self._aranges.get(width)
            if offs is None:
                offs = self._aranges[width] = np.arange(width)
            out = self._flat[base[:, None] + offs]
        pos[rows] = p + width
        return out


def _wadd(count: np.ndarray, mean: np.ndarray, m2: np.ndarray,
          rows: np.ndarray, values: np.ndarray | float) -> None:
    """Vectorized Welford update; each row receives one sample."""
    if rows.size == 0:
        return
    count[rows] += 1
    delta = values - mean[rows]
    mean[rows] += delta / count[rows]
    m2[rows] += delta * (values - mean[rows])


def _wmean(count: np.ndarray, mean: np.ndarray) -> np.ndarray:
    """Welford mean with the scalar accumulator's empty -> 0 rule."""
    return np.where(count > 0, mean, 0.0)


def _wstd(count: np.ndarray, m2: np.ndarray) -> np.ndarray:
    """Welford sample standard deviation (0 below two samples)."""
    with np.errstate(invalid="ignore", divide="ignore"):
        var = np.where(count > 1, m2 / np.maximum(count - 1, 1), 0.0)
    return np.sqrt(np.maximum(var, 0.0))


@dataclass(frozen=True)
class VectorSimulationResult:
    """Per-replication estimates from one lockstep run.

    Every statistical field is a ``(reps,)`` NumPy array aligned with
    ``seeds``; :meth:`replication` materializes one row as the scalar
    engine's :class:`~repro.sim.system.SimulationResult`, and
    :meth:`aggregate` folds the rows into a single MVA-comparable
    result whose confidence interval comes from the across-replication
    spread (the "multi-seed band").
    """

    n_processors: int
    protocol_label: str
    sharing_label: str
    seeds: tuple[int, ...]
    requests_measured: np.ndarray
    elapsed_cycles: np.ndarray
    mean_cycle_time: np.ndarray
    speedup: np.ndarray
    speedup_ci_halfwidth: np.ndarray
    processing_power: np.ndarray
    u_bus: np.ndarray
    u_mem: np.ndarray
    w_bus: np.ndarray
    w_bus_stddev: np.ndarray
    q_bus_seen: np.ndarray
    mean_interference_wait: np.ndarray
    bus_transactions: np.ndarray
    #: Per-kind response means / sample counts, shape ``(3, reps)`` in
    #: :data:`_KINDS` order (LOCAL, BROADCAST, REMOTE_READ).
    response_means: np.ndarray
    response_counts: np.ndarray

    @property
    def n_replications(self) -> int:
        """Number of lockstep replications in this result."""
        return len(self.seeds)

    def _response_dict(self, rep: int) -> dict[str, float]:
        return {k.value: float(self.response_means[j, rep])
                for j, k in enumerate(_KINDS)
                if self.response_counts[j, rep] > 0}

    def replication(self, rep: int) -> SimulationResult:
        """One replication's estimates as a scalar-engine result."""
        return SimulationResult(
            n_processors=self.n_processors,
            protocol_label=self.protocol_label,
            sharing_label=self.sharing_label,
            requests_measured=int(self.requests_measured[rep]),
            elapsed_cycles=float(self.elapsed_cycles[rep]),
            mean_cycle_time=float(self.mean_cycle_time[rep]),
            speedup=float(self.speedup[rep]),
            speedup_ci_halfwidth=float(self.speedup_ci_halfwidth[rep]),
            processing_power=float(self.processing_power[rep]),
            u_bus=float(self.u_bus[rep]),
            u_mem=float(self.u_mem[rep]),
            w_bus=float(self.w_bus[rep]),
            w_bus_stddev=float(self.w_bus_stddev[rep]),
            q_bus_seen=float(self.q_bus_seen[rep]),
            mean_interference_wait=float(self.mean_interference_wait[rep]),
            bus_transactions=int(self.bus_transactions[rep]),
            response_by_kind=self._response_dict(rep),
        )

    @property
    def speedup_band_halfwidth(self) -> float:
        """95% t-CI half-width of the mean speedup across replications.

        This is the multi-seed band the MVA-vs-DES oracle checks
        against; it needs at least two replications (0.0 otherwise).
        """
        reps = self.n_replications
        if reps < 2:
            return 0.0
        t_crit = float(_scipy_stats.t.ppf(0.975, df=reps - 1))
        return t_crit * float(np.std(self.speedup, ddof=1)) / math.sqrt(reps)

    def aggregate(self) -> SimulationResult:
        """Fold all replications into one MVA-comparable result.

        Point estimates are unweighted means across replications (each
        replication measured the same number of requests), the CI
        half-width is the across-replication band, and
        ``requests_measured`` / ``bus_transactions`` are totals.
        """
        reps = self.n_replications
        if reps == 1:
            return self.replication(0)
        responses: dict[str, float] = {}
        for j, k in enumerate(_KINDS):
            weight = int(self.response_counts[j].sum())
            if weight > 0:
                responses[k.value] = float(
                    (self.response_means[j] * self.response_counts[j]).sum()
                    / weight)
        # The aggregate speedup is re-derived from the aggregated cycle
        # time so the speedup identity (speedup == N (tau + T_supply) / R,
        # a verified sim-stats law) holds for the folded result too --
        # the mean of per-replication speedups would not satisfy it.
        mean_cycle = float(self.mean_cycle_time.mean())
        ideal = float((self.speedup * self.mean_cycle_time).mean()
                      / self.n_processors)
        speedup = (self.n_processors * ideal / mean_cycle
                   if mean_cycle > 0.0 else 0.0)
        return SimulationResult(
            n_processors=self.n_processors,
            protocol_label=self.protocol_label,
            sharing_label=self.sharing_label,
            requests_measured=int(self.requests_measured.sum()),
            elapsed_cycles=float(self.elapsed_cycles.mean()),
            mean_cycle_time=mean_cycle,
            speedup=speedup,
            speedup_ci_halfwidth=self.speedup_band_halfwidth,
            processing_power=float(self.processing_power.mean()),
            u_bus=float(self.u_bus.mean()),
            u_mem=float(self.u_mem.mean()),
            w_bus=float(self.w_bus.mean()),
            w_bus_stddev=float(self.w_bus_stddev.mean()),
            q_bus_seen=float(self.q_bus_seen.mean()),
            mean_interference_wait=float(
                self.mean_interference_wait.mean()),
            bus_transactions=int(self.bus_transactions.sum()),
            response_by_kind=responses,
        )

    def summary(self) -> str:
        """One-line digest of the aggregate estimates."""
        agg = self.aggregate()
        return (f"{agg.protocol_label} N={agg.n_processors} "
                f"({agg.sharing_label} sharing, "
                f"{self.n_replications} reps): "
                f"speedup={agg.speedup:.3f}"
                f"±{agg.speedup_ci_halfwidth:.3f} "
                f"U_bus={agg.u_bus:.3f} w_bus={agg.w_bus:.3f} "
                f"[{agg.requests_measured} requests]")


class VectorSnoopingBusSimulator:
    """Discrete-event model advancing many replications in lockstep.

    Mirrors :class:`~repro.sim.system.SnoopingBusSimulator` event for
    event within each replication -- FCFS bus, dual-directory cache
    busy-until horizons with poll-retry, interleaved memory modules,
    warm-up reset and batch-means CI -- while storing every piece of
    state as a NumPy array indexed by replication.
    """

    def __init__(self, config: SimulationConfig, reps: int,
                 seeds: Sequence[int] | None = None):
        if reps < 1:
            raise ValueError(f"reps must be >= 1, got {reps!r}")
        if config.bus_discipline.value != "fcfs":
            raise ValueError(
                "the vector engine models FCFS bus service only; use the "
                "scalar engine for random-order runs")
        if seeds is None:
            seeds = tuple(int(config.seed) + r for r in range(reps))
        else:
            seeds = tuple(int(s) for s in seeds)
            if len(seeds) != reps:
                raise ValueError(
                    f"need exactly {reps} seeds, got {len(seeds)}")
        self.config = config
        self.reps = reps
        self.seeds = seeds
        self.inputs = derive_inputs(
            config.effective_workload, config.arch,
            config.protocol.mod_numbers,
            holder_probability=(config.holder_probability
                                if config.holder_probability is not None
                                else 0.5))

    # -- the lockstep event loop ---------------------------------------

    def run(self) -> VectorSimulationResult:
        """Run warm-up plus measurement in every replication."""
        cfg = self.config
        inputs = self.inputs
        reps, n = self.reps, cfg.n_processors
        arch = cfg.arch
        workload = inputs.workload

        # Sampling constants (identical thresholds to ReferenceStream).
        p_local = inputs.p_local
        p_loc_bc = inputs.p_local + inputs.p_bc
        if inputs.p_rr > 0.0:
            sr_frac, sw_frac = inputs.sr_miss_frac, inputs.sw_miss_frac
        else:
            sr_frac = sw_frac = 0.0
        sw_bc = inputs.mix.sw_broadcast(inputs.mods)
        bc_shared_frac = sw_bc / inputs.p_bc if inputs.p_bc > 0.0 else 0.0
        csupply_sro, csupply_sw = workload.csupply_sro, workload.csupply_sw
        wb_csupply, p_reqwb_rr = workload.wb_csupply, inputs.p_reqwb_rr
        hp = inputs.holder_probability
        tau = workload.tau
        t_supply = arch.t_supply
        t_bc, bc_mem = inputs.t_bc, inputs.bc_updates_memory
        t_block = arch.block_transfer_cycles
        base_read = arch.base_read_cycles
        cache_supply = arch.cache_supply_cycles
        c2c = Modification.CACHE_TO_CACHE_SUPPLY.value in inputs.mods
        model_contention = cfg.model_read_memory_contention
        n_modules, mem_latency = arch.memory_modules, arch.memory_latency
        warmup, target = cfg.warmup_requests, cfg.measured_requests
        n_batches = cfg.n_batches
        batch_size = target // n_batches
        batch_take = batch_size * n_batches

        lanes = _UniformLanes(self.seeds, width=max(5, n))
        rrange = np.arange(reps)
        rbase = rrange * n
        inf = np.inf

        # Per-(rep, proc) state.  The ``*_f`` aliases are flat views:
        # indexing one ``(rep, proc)`` pair costs a single fancy index
        # on ``rep * n + proc`` instead of a 2-D advanced index.
        proc_state = np.full((reps, n), _EXEC, dtype=np.int8)
        proc_time = np.zeros((reps, n), dtype=np.float64)
        cycle_start = np.zeros((reps, n), dtype=np.float64)
        fire_time = np.zeros((reps, n), dtype=np.float64)
        kind = np.zeros((reps, n), dtype=np.int8)
        f_shared = np.zeros((reps, n), dtype=bool)
        f_csup = np.zeros((reps, n), dtype=bool)
        f_supwb = np.zeros((reps, n), dtype=bool)
        f_reqwb = np.zeros((reps, n), dtype=bool)
        cache_until = np.zeros((reps, n), dtype=np.float64)
        state_f = proc_state.ravel()
        ptime_f = proc_time.ravel()
        cstart_f = cycle_start.ravel()
        fire_f = fire_time.ravel()
        kind_f = kind.ravel()
        cache_f = cache_until.ravel()

        # Per-rep bus: one in-service slot plus an FCFS ring of size n.
        bus_current = np.full(reps, -1, dtype=np.int32)
        bus_until = np.full(reps, inf, dtype=np.float64)
        bus_start = np.zeros(reps, dtype=np.float64)
        queue_buf = np.zeros((reps, n), dtype=np.int32)
        q_head = np.zeros(reps, dtype=np.int32)
        q_len = np.zeros(reps, dtype=np.int32)

        mem_until = np.zeros((reps, n_modules), dtype=np.float64)

        # Per-rep measurement machinery.
        measuring = np.full(reps, warmup == 0, dtype=bool)
        measure_start = np.zeros(reps, dtype=np.float64)
        completed = np.zeros(reps, dtype=np.int64)
        measured = np.zeros(reps, dtype=np.int64)
        end_time = np.zeros(reps, dtype=np.float64)
        done = np.zeros(reps, dtype=bool)

        cw_count = np.zeros(reps, dtype=np.int64)
        cw_mean = np.zeros(reps, dtype=np.float64)
        cw_m2 = np.zeros(reps, dtype=np.float64)
        batch_sums = np.zeros((reps, n_batches), dtype=np.float64)
        wb_count = np.zeros(reps, dtype=np.int64)
        wb_mean = np.zeros(reps, dtype=np.float64)
        wb_m2 = np.zeros(reps, dtype=np.float64)
        sq_count = np.zeros(reps, dtype=np.int64)
        sq_mean = np.zeros(reps, dtype=np.float64)
        sq_m2 = np.zeros(reps, dtype=np.float64)
        if_count = np.zeros(reps, dtype=np.int64)
        if_mean = np.zeros(reps, dtype=np.float64)
        if_m2 = np.zeros(reps, dtype=np.float64)
        resp_count = np.zeros((3, reps), dtype=np.int64)
        resp_mean = np.zeros((3, reps), dtype=np.float64)
        bus_busy = np.zeros(reps, dtype=np.float64)
        bus_tx = np.zeros(reps, dtype=np.int64)
        mem_busy = np.zeros(reps, dtype=np.float64)
        busy_cycles = np.zeros(reps, dtype=np.float64)

        resp_count_f = resp_count.ravel()
        resp_mean_f = resp_mean.ravel()

        def draw_bursts(rows: np.ndarray) -> np.ndarray:
            """Exponential execution bursts, one per listed replication."""
            if tau <= 0.0:
                return np.zeros(rows.size, dtype=np.float64)
            return -tau * np.log1p(-lanes.take(rows, 1))

        def memory_write(rows: np.ndarray, at: np.ndarray) -> np.ndarray:
            """Occupy one random module per row; returns the bus wait."""
            mods_pick = (lanes.take(rows, 1) * n_modules).astype(np.int64)
            start = np.maximum(at, mem_until[rows, mods_pick])
            mem_until[rows, mods_pick] = start + mem_latency
            mem_busy[rows[measuring[rows]]] += mem_latency
            return start - at

        # Initial execution bursts (one per processor per replication).
        if tau > 0.0:
            bursts0 = -tau * np.log1p(-lanes.take(rrange, n))
            proc_time[:] = bursts0
            busy_cycles[:] = np.where(measuring, bursts0.sum(axis=1), 0.0)

        # A tick advances each active replication by one event, so the
        # tick count is bounded by the busiest replication's event
        # count; the generous cap below only trips on a genuine bug
        # (lost event / non-advancing clock), never on a slow run.
        tick_limit = 400 * (warmup + target + 16 * n + 64)
        tick = 0
        active = reps

        while active > 0:
            tick += 1
            if tick > tick_limit:
                raise RuntimeError(
                    f"vector DES exceeded {tick_limit} ticks with "
                    f"{active} replications still live; event state is "
                    "corrupt (overflow guard)")

            pi = np.argmin(proc_time, axis=1)
            pt = ptime_f[rbase + pi]
            ebus = bus_until <= pt
            now_all = np.where(ebus, bus_until, pt)
            act = np.isfinite(now_all)
            if not act.any():
                raise RuntimeError(
                    "vector DES deadlock: live replications but no "
                    "finite pending event")

            grant_r: list[np.ndarray] = []
            grant_q: list[np.ndarray] = []
            grant_t: list[np.ndarray] = []
            # Requests whose completion time became determined this
            # tick: (rep, flat rep*n+proc index, completion time).
            comp_r: list[np.ndarray] = []
            comp_f: list[np.ndarray] = []
            comp_t: list[np.ndarray] = []

            # -- bus completions (priority over processor events) ------
            rb = np.flatnonzero(ebus & act)
            if rb.size:
                tb = bus_until[rb]
                qb = bus_current[rb]
                meas_b = measuring[rb]
                rbm = rb[meas_b]
                bus_busy[rbm] += (tb[meas_b]
                                  - np.maximum(bus_start[rbm],
                                               measure_start[rbm]))
                bus_tx[rbm] += 1
                # The cache answers the processor one supply cycle
                # later; that completion has no further interactions,
                # so it is folded into this tick's completion batch.
                comp_r.append(rb)
                comp_f.append(rb * n + qb)
                comp_t.append(tb + t_supply)
                has_next = q_len[rb] > 0
                rn = rb[has_next]
                if rn.size:
                    nq = queue_buf[rn, q_head[rn]]
                    q_head[rn] = (q_head[rn] + 1) % n
                    q_len[rn] -= 1
                    grant_r.append(rn)
                    grant_q.append(nq)
                    grant_t.append(tb[has_next])
                ridle = rb[~has_next]
                bus_current[ridle] = -1
                bus_until[ridle] = inf

            # -- processor events --------------------------------------
            rp = np.flatnonzero(act & ~ebus)
            if rp.size:
                ip = pi[rp]
                tp = pt[rp]
                fp = rp * n + ip
                st = state_f[fp]

                # fire: sample the outcome and route the request
                fire = st == _EXEC
                rf = rp[fire]
                if rf.size:
                    ff = fp[fire]
                    tf = tp[fire]
                    u = lanes.take(rf, 5)
                    u0, u1 = u[:, 0], u[:, 1]
                    kf = np.where(u0 < p_local, 0,
                                  np.where(u0 < p_loc_bc, 1, 2)
                                  ).astype(np.int8)
                    kind_f[ff] = kf
                    fire_f[ff] = tf

                    islocal = kf == 0
                    rl = rf[islocal]
                    if rl.size:
                        fl = ff[islocal]
                        tl = tf[islocal]
                        cu = cache_f[fl]
                        free = tl + _EPS >= cu
                        rs = rl[free]
                        if rs.size:
                            fsv = fl[free]
                            _wadd(if_count, if_mean, if_m2,
                                  rs[measuring[rs]], 0.0)
                            start = np.maximum(tl[free], cu[free])
                            cache_f[fsv] = start + t_supply
                            comp_r.append(rs)
                            comp_f.append(fsv)
                            comp_t.append(start + t_supply)
                        rw = rl[~free]
                        if rw.size:
                            fw = fl[~free]
                            state_f[fw] = _POLL
                            ptime_f[fw] = cu[~free]

                    tobus = ~islocal
                    rq = rf[tobus]
                    if rq.size:
                        fq = ff[tobus]
                        tq = tf[tobus]
                        # Resolve the sharing flags only for the bus
                        # subset; local requests never read them.
                        kq = kf[tobus]
                        u1q = u1[tobus]
                        isbc = kq == 1
                        shared = np.where(isbc, u1q < bc_shared_frac,
                                          False)
                        sr = ~isbc & (u1q < sr_frac)
                        sw = ~isbc & ~sr & (u1q < sr_frac + sw_frac)
                        shared |= sr | sw
                        csp = np.where(sr, csupply_sro,
                                       np.where(sw, csupply_sw, 0.0))
                        csupf = shared & ~isbc & (u[tobus, 2] < csp)
                        supwbf = csupf & (u[tobus, 3] < wb_csupply)
                        reqwbf = ~isbc & (u[tobus, 4] < p_reqwb_rr)
                        f_shared.ravel()[fq] = shared
                        f_csup.ravel()[fq] = csupf
                        f_supwb.ravel()[fq] = supwbf
                        f_reqwb.ravel()[fq] = reqwbf
                        seen = (q_len[rq]
                                + (bus_current[rq] >= 0)).astype(np.float64)
                        mq = measuring[rq]
                        _wadd(sq_count, sq_mean, sq_m2, rq[mq], seen[mq])
                        state_f[fq] = _BUSY
                        ptime_f[fq] = inf
                        idle = bus_current[rq] < 0
                        if idle.any():
                            grant_r.append(rq[idle])
                            grant_q.append((fq[idle] % n).astype(np.int32))
                            grant_t.append(tq[idle])
                        rpush = rq[~idle]
                        if rpush.size:
                            slot = (q_head[rpush] + q_len[rpush]) % n
                            queue_buf[rpush, slot] = fq[~idle] % n
                            q_len[rpush] += 1

                # poll: retry a local request against the snoop horizon
                poll = st == _POLL
                rv = rp[poll]
                if rv.size:
                    fv = fp[poll]
                    tv = tp[poll]
                    cu = cache_f[fv]
                    again = tv + _EPS < cu
                    fa = fv[again]
                    if fa.size:
                        ptime_f[fa] = cu[again]
                    rs = rv[~again]
                    if rs.size:
                        fsv = fv[~again]
                        ts = tv[~again]
                        waits = ts - fire_f[fsv]
                        mv = measuring[rs]
                        _wadd(if_count, if_mean, if_m2, rs[mv], waits[mv])
                        start = np.maximum(ts, cache_f[fsv])
                        cache_f[fsv] = start + t_supply
                        comp_r.append(rs)
                        comp_f.append(fsv)
                        comp_t.append(start + t_supply)

            # -- bus grants: compute service, occupy memory, snoop -----
            # Grants run before the completion batch, mirroring the
            # scalar bus (Bus.complete starts the next transaction
            # before the finished request's callback runs); a
            # replication stopped by a completion below then freezes
            # over any bus service granted this tick.
            if grant_r:
                r_g = (grant_r[0] if len(grant_r) == 1
                       else np.concatenate(grant_r))
                q_g = (grant_q[0] if len(grant_q) == 1
                       else np.concatenate(grant_q))
                t_g = (grant_t[0] if len(grant_t) == 1
                       else np.concatenate(grant_t))
                g_f = r_g * n + q_g
                mg = measuring[r_g]
                _wadd(wb_count, wb_mean, wb_m2, r_g[mg],
                      (t_g - fire_f[g_f])[mg])
                dur = np.empty(r_g.size, dtype=np.float64)

                isbc = kind_f[g_f] == 1
                rb2 = r_g[isbc]
                if rb2.size:
                    qb2 = q_g[isbc]
                    tb2 = t_g[isbc]
                    durb = np.full(rb2.size, t_bc)
                    if bc_mem:
                        durb += memory_write(rb2, tb2)
                    if n > 1:
                        shb = f_shared.ravel()[g_f[isbc]]
                        rsn = rb2[shb]
                        if rsn.size:
                            hold = lanes.take(rsn, n) < hp
                            hold[np.arange(rsn.size), qb2[shb]] = False
                            cu = cache_until[rsn]
                            cache_until[rsn] = np.where(
                                hold,
                                np.maximum(cu, tb2[shb][:, None])
                                + SNOOP_ACTION_CYCLES,
                                cu)
                    dur[isbc] = durb

                isrr = ~isbc
                rr2 = r_g[isrr]
                if rr2.size:
                    q2 = q_g[isrr]
                    t2 = t_g[isrr]
                    rr_f = g_f[isrr]
                    supwb = f_supwb.ravel()[rr_f]
                    reqwb = f_reqwb.ravel()[rr_f]
                    direct = supwb & c2c
                    durr = np.where(direct, cache_supply, base_read)
                    nd = ~direct
                    if model_contention and nd.any():
                        durr[nd] += memory_write(rr2[nd], t2[nd])
                    flush = nd & supwb
                    if flush.any():
                        durr[flush] += t_block
                        memory_write(rr2[flush], t2[flush])
                    if reqwb.any():
                        durr[reqwb] += t_block
                        memory_write(rr2[reqwb], t2[reqwb])
                    if n > 1:
                        sh2 = f_shared.ravel()[rr_f]
                        rs2 = rr2[sh2]
                        if rs2.size:
                            qs = q2[sh2]
                            ts = t2[sh2]
                            rows = np.arange(rs2.size)
                            hold = lanes.take(rs2, n) < hp
                            hold[rows, qs] = False
                            anyh = hold.any(axis=1)
                            firsth = hold.argmax(axis=1)
                            cs = f_csup.ravel()[rr_f[sh2]]
                            react = hold
                            skip = cs & anyh
                            react[rows[skip], firsth[skip]] = False
                            cu = cache_until[rs2]
                            cache_until[rs2] = np.where(
                                react,
                                np.maximum(cu, ts[:, None])
                                + SNOOP_ACTION_CYCLES,
                                cu)
                            # The supplier (first sampled holder, else a
                            # uniformly random other cache) is tied up
                            # for the whole transaction.
                            sup = np.full(rs2.size, -1, dtype=np.int64)
                            sup[skip] = firsth[skip]
                            fb = cs & ~anyh
                            if fb.any():
                                pick = (lanes.take(rs2[fb], 1)
                                        * (n - 1)).astype(np.int64)
                                sup[fb] = pick + (pick >= qs[fb])
                            have = sup >= 0
                            rsup = rs2[have]
                            if rsup.size:
                                supc = sup[have]
                                cu2 = cache_until[rsup, supc]
                                cache_until[rsup, supc] = (
                                    np.maximum(cu2, ts[have])
                                    + durr[sh2][have])
                    dur[isrr] = durr

                bus_current[r_g] = q_g
                bus_start[r_g] = t_g
                bus_until[r_g] = t_g + dur

            # -- completions: cycle stats, warm-up / stop, next burst --
            if comp_r:
                rc = (comp_r[0] if len(comp_r) == 1
                      else np.concatenate(comp_r))
                fc = (comp_f[0] if len(comp_f) == 1
                      else np.concatenate(comp_f))
                tc = (comp_t[0] if len(comp_t) == 1
                      else np.concatenate(comp_t))
                cyc = tc - cstart_f[fc]
                meas = measuring[rc]
                rm = rc[meas]
                if rm.size:
                    cm = cyc[meas]
                    _wadd(cw_count, cw_mean, cw_m2, rm, cm)
                    if batch_take > 0:
                        idx = measured[rm]
                        inb = idx < batch_take
                        batch_sums[rm[inb], idx[inb] // batch_size] \
                            += cm[inb]
                    fm = fc[meas]
                    resp = np.maximum(
                        tc[meas] - fire_f[fm] - t_supply, 0.0)
                    # One sample per (kind, rep) pair, so a single
                    # flat-indexed Welford step updates all three kinds.
                    rix = kind_f[fm].astype(np.int64) * reps + rm
                    resp_count_f[rix] += 1
                    delta = resp - resp_mean_f[rix]
                    resp_mean_f[rix] += delta / resp_count_f[rix]
                    measured[rm] += 1
                completed[rc] += 1

                stop = np.zeros(rc.size, dtype=bool)
                stop[meas] = measured[rm] >= target
                rstop = rc[stop]
                if rstop.size:
                    done[rstop] = True
                    end_time[rstop] = tc[stop]
                    proc_time[rstop, :] = inf
                    bus_until[rstop] = inf
                    active -= rstop.size

                warm = (~meas) & (completed[rc] >= warmup)
                rw = rc[warm]
                if rw.size:
                    measuring[rw] = True
                    measure_start[rw] = tc[warm]
                    cw_count[rw] = 0
                    cw_mean[rw] = 0.0
                    cw_m2[rw] = 0.0
                    batch_sums[rw] = 0.0
                    wb_count[rw] = 0
                    wb_mean[rw] = 0.0
                    wb_m2[rw] = 0.0
                    sq_count[rw] = 0
                    sq_mean[rw] = 0.0
                    sq_m2[rw] = 0.0
                    if_count[rw] = 0
                    if_mean[rw] = 0.0
                    if_m2[rw] = 0.0
                    resp_count[:, rw] = 0
                    resp_mean[:, rw] = 0.0
                    bus_busy[rw] = 0.0
                    bus_tx[rw] = 0
                    mem_busy[rw] = 0.0
                    busy_cycles[rw] = 0.0
                    measured[rw] = 0

                # Next burst; the scalar engine draws one even for the
                # replication that just stopped (the event never runs
                # but its burst lands in busy_cycles), so the vector
                # engine does too.
                burst = draw_bursts(rc)
                mnow = measuring[rc]
                busy_cycles[rc[mnow]] += burst[mnow]
                go = ~stop
                rgo = rc[go]
                if rgo.size:
                    fgo = fc[go]
                    cstart_f[fgo] = tc[go]
                    state_f[fgo] = _EXEC
                    ptime_f[fgo] = tc[go] + burst[go]

        return self._collect(
            measure_start=measure_start, end_time=end_time,
            cw_count=cw_count, cw_mean=cw_mean,
            batch_sums=batch_sums, batch_size=batch_size,
            wb_count=wb_count, wb_mean=wb_mean, wb_m2=wb_m2,
            sq_count=sq_count, sq_mean=sq_mean,
            if_count=if_count, if_mean=if_mean,
            resp_count=resp_count, resp_mean=resp_mean,
            bus_busy=bus_busy, bus_tx=bus_tx,
            bus_current=bus_current, bus_start=bus_start,
            mem_busy=mem_busy, busy_cycles=busy_cycles)

    # -- estimates -----------------------------------------------------

    def _collect(self, *, measure_start, end_time, cw_count, cw_mean,
                 batch_sums, batch_size, wb_count, wb_mean, wb_m2,
                 sq_count, sq_mean, if_count, if_mean, resp_count,
                 resp_mean, bus_busy, bus_tx, bus_current, bus_start,
                 mem_busy, busy_cycles) -> VectorSimulationResult:
        cfg = self.config
        arch = cfg.arch
        n_batches = cfg.n_batches
        elapsed = end_time - measure_start
        safe_elapsed = np.where(elapsed > 0.0, elapsed, np.inf)

        workload = cfg.effective_workload
        ideal = workload.tau + arch.t_supply
        r_mean = np.where(cw_count > 0, cw_mean, np.nan)
        with np.errstate(invalid="ignore", divide="ignore"):
            speedup = np.where(r_mean > 0.0,
                               cfg.n_processors * ideal / r_mean, 0.0)

        if batch_size > 0 and n_batches >= 2:
            bmeans = batch_sums / batch_size
            grand = bmeans.mean(axis=1)
            var = (((bmeans - grand[:, None]) ** 2).sum(axis=1)
                   / (n_batches - 1))
            t_crit = float(_scipy_stats.t.ppf(0.975, df=n_batches - 1))
            half = t_crit * np.sqrt(var / n_batches)
            with np.errstate(invalid="ignore", divide="ignore"):
                speedup_half = np.where(
                    grand > 0.0,
                    cfg.n_processors * ideal * half / (grand ** 2), 0.0)
        else:
            speedup_half = np.zeros(self.reps, dtype=np.float64)

        # In-service bus time still pending at each replication's end.
        pending = np.where(
            bus_current >= 0,
            np.maximum(end_time - np.maximum(bus_start, measure_start),
                       0.0),
            0.0)
        u_bus = (bus_busy + pending) / safe_elapsed
        u_mem = mem_busy / (arch.memory_modules * safe_elapsed)
        power = busy_cycles / safe_elapsed

        return VectorSimulationResult(
            n_processors=cfg.n_processors,
            protocol_label=cfg.protocol.label,
            sharing_label=f"{cfg.workload.sharing_fraction * 100:g}%",
            seeds=self.seeds,
            requests_measured=cw_count.copy(),
            elapsed_cycles=elapsed,
            mean_cycle_time=r_mean,
            speedup=speedup,
            speedup_ci_halfwidth=speedup_half,
            processing_power=power,
            u_bus=u_bus,
            u_mem=u_mem,
            w_bus=_wmean(wb_count, wb_mean),
            w_bus_stddev=_wstd(wb_count, wb_m2),
            q_bus_seen=_wmean(sq_count, sq_mean),
            mean_interference_wait=_wmean(if_count, if_mean),
            bus_transactions=bus_tx.copy(),
            response_means=resp_mean.copy(),
            response_counts=resp_count.copy(),
        )


def simulate_many(config: SimulationConfig, reps: int,
                  seeds: Sequence[int] | None = None,
                  ) -> VectorSimulationResult:
    """Build, run, and collect one lockstep multi-replication run.

    ``seeds`` defaults to ``config.seed + r`` for replication ``r``;
    pass an explicit sequence (length ``reps``) to control each
    replication's stream.
    """
    return VectorSnoopingBusSimulator(config, reps, seeds=seeds).run()
