"""The named protocol family mapped onto modification sets.

Paper Section 2.2 records which proposals adopt which modifications:

* modification 1 (exclusive on miss): Illinois, Dragon, RWB;
* modification 2 (cache-to-cache supply): Berkeley, Dragon
  (Illinois supplies and updates memory in one operation, which the
  paper calls "another optimization similar to this modification" --
  we model Illinois without it);
* modification 3 (invalidate instead of write-word): all five;
* modification 4 (write broadcast): RWB, Dragon.

These mappings are approximations -- each real protocol has additional
idiosyncrasies -- but they are the mappings the paper's study evaluates.
"""

from __future__ import annotations

from repro.protocols.modifications import ProtocolSpec


def write_once() -> ProtocolSpec:
    """Goodman's Write-Once protocol (the unmodified baseline)."""
    return ProtocolSpec.of(name="Write-Once")


def synapse() -> ProtocolSpec:
    """Synapse (Frank 1984): invalidate on first write."""
    return ProtocolSpec.of(3, name="Synapse")


def illinois() -> ProtocolSpec:
    """Illinois (Papamarcos & Patel 1984): exclusive on miss + invalidate."""
    return ProtocolSpec.of(1, 3, name="Illinois")


def berkeley() -> ProtocolSpec:
    """Berkeley (Katz et al. 1985): ownership supply + invalidate."""
    return ProtocolSpec.of(2, 3, name="Berkeley")


def rwb() -> ProtocolSpec:
    """RWB (Rudolph & Segall 1984): exclusive miss, invalidate, broadcast."""
    return ProtocolSpec.of(1, 3, 4, name="RWB")


def dragon() -> ProtocolSpec:
    """Dragon (McCreight 1984): all four modifications."""
    return ProtocolSpec.of(1, 2, 3, 4, name="Dragon")


#: Registry of the named protocols, in publication order.
PROTOCOLS: dict[str, ProtocolSpec] = {
    spec.name.lower(): spec  # type: ignore[union-attr]
    for spec in (write_once(), synapse(), illinois(), berkeley(), rwb(), dragon())
}


def protocol_by_name(name: str) -> ProtocolSpec:
    """Look up a named protocol (case-insensitive)."""
    key = name.strip().lower()
    try:
        return PROTOCOLS[key]
    except KeyError:
        known = ", ".join(sorted(PROTOCOLS))
        raise ValueError(f"unknown protocol {name!r}; known: {known}") from None
