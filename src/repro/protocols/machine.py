"""Executable block-level coherence state machine.

This module animates the Section 2.2 protocol descriptions: for one
cache block, it tracks the state held by each of N caches plus whether
main memory is up to date, and applies processor reads/writes and
replacements under any modification combination.

The machine is the *semantic reference* for the family: the protocol
unit tests and hypothesis property tests check the paper's invariants
against it (single-writer, exclusive-implies-others-invalid,
wback-implies-exclusive in the absence of modification 2, ...), and the
simulator's snoop accounting mirrors its :class:`SnoopResult` taxonomy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.protocols.modifications import Modification, ProtocolSpec
from repro.protocols.states import BlockState
from repro.protocols.transactions import BusOp


class ProcessorOp(enum.Enum):
    """A processor-side access to the block."""

    READ = "read"
    WRITE = "write"


class SnoopAction(enum.Enum):
    """What a snooping cache does in response to a bus transaction."""

    NONE = "none"
    INVALIDATE = "invalidate"
    UPDATE = "update"        # modification 4: refresh the local copy
    SHARE = "share"          # raise the shared line / drop exclusivity
    FLUSH = "flush"          # Write-Once: write the block to memory mid-transaction
    SUPPLY = "supply"        # modification 2: source the block cache-to-cache


@dataclass(frozen=True)
class SnoopResult:
    """The outcome of one access: bus traffic plus per-cache actions."""

    bus_ops: tuple[BusOp, ...]
    actions: dict[int, SnoopAction] = field(default_factory=dict)
    memory_supplied: bool = False

    @property
    def used_bus(self) -> bool:
        return bool(self.bus_ops)


class CoherenceMachine:
    """State of one cache block across ``n_caches`` caches.

    The machine is deliberately eager about consistency: every transition
    re-checks the protocol invariants and raises ``AssertionError`` on
    violation, so fuzzing it with random access sequences (see the
    property tests) doubles as a protocol model-checker.
    """

    def __init__(self, spec: ProtocolSpec, n_caches: int):
        if n_caches < 1:
            raise ValueError(f"n_caches must be >= 1, got {n_caches!r}")
        self.spec = spec
        self.n_caches = n_caches
        self.states: list[BlockState] = [BlockState.INVALID] * n_caches
        #: Main memory holds the current value of the block.
        self.memory_fresh: bool = True
        self._check_invariants()

    # -- helpers -----------------------------------------------------------

    def holders(self) -> list[int]:
        """Caches currently holding a valid copy."""
        return [i for i, s in enumerate(self.states) if s.valid]

    def owner(self) -> int | None:
        """The cache responsible for writing the block back, if any."""
        for i, s in enumerate(self.states):
            if s.wback:
                return i
        return None

    def _has(self, mod: Modification) -> bool:
        return mod in self.spec.mods

    # -- the access API ----------------------------------------------------

    def access(self, cache_id: int, op: ProcessorOp) -> SnoopResult:
        """Apply one processor access and return the resulting traffic."""
        if not 0 <= cache_id < self.n_caches:
            raise IndexError(f"cache_id {cache_id} out of range")
        state = self.states[cache_id]
        if op is ProcessorOp.READ:
            result = (self._read_hit(cache_id) if state.valid
                      else self._read_miss(cache_id))
        else:
            result = (self._write_hit(cache_id) if state.valid
                      else self._write_miss(cache_id))
        self._check_invariants()
        return result

    def purge(self, cache_id: int) -> SnoopResult:
        """Evict the block from ``cache_id`` (replacement)."""
        state = self.states[cache_id]
        self.states[cache_id] = BlockState.INVALID
        bus_ops: tuple[BusOp, ...] = ()
        if state.wback:
            bus_ops = (BusOp.WRITE_BLOCK,)
            self.memory_fresh = True
        self._check_invariants()
        return SnoopResult(bus_ops=bus_ops)

    # -- transitions -------------------------------------------------------

    def _read_hit(self, cache_id: int) -> SnoopResult:
        return SnoopResult(bus_ops=())

    def _read_miss(self, cache_id: int) -> SnoopResult:
        actions: dict[int, SnoopAction] = {}
        bus_ops = [BusOp.READ]
        holders = [i for i in self.holders() if i != cache_id]
        owner = self.owner()

        supplied_by_cache = False
        if owner is not None and owner != cache_id:
            if self._has(Modification.CACHE_TO_CACHE_SUPPLY):
                # The owner sources the block and keeps write-back duty.
                actions[owner] = SnoopAction.SUPPLY
                self.states[owner] = BlockState.SHARED_WBACK
                supplied_by_cache = True
            else:
                # Write-Once: the owner interrupts the transaction and
                # flushes to memory, which then supplies the data.
                actions[owner] = SnoopAction.FLUSH
                bus_ops.append(BusOp.WRITE_BLOCK)
                self.states[owner] = BlockState.SHARED_CLEAN
                self.memory_fresh = True

        for i in holders:
            if i in actions:
                continue
            actions[i] = SnoopAction.SHARE
            if self.states[i].exclusive:
                self.states[i] = (BlockState.SHARED_WBACK if self.states[i].wback
                                  else BlockState.SHARED_CLEAN)

        if holders or not self._has(Modification.EXCLUSIVE_ON_MISS):
            self.states[cache_id] = BlockState.SHARED_CLEAN
        else:
            # Modification 1: the shared line stayed low, load exclusive.
            self.states[cache_id] = BlockState.EXCLUSIVE_CLEAN
        return SnoopResult(bus_ops=tuple(bus_ops), actions=actions,
                           memory_supplied=not supplied_by_cache)

    def _write_hit(self, cache_id: int) -> SnoopResult:
        state = self.states[cache_id]
        if state.writable_without_bus:
            self.states[cache_id] = BlockState.EXCLUSIVE_WBACK
            self.memory_fresh = False
            return SnoopResult(bus_ops=())
        if self._has(Modification.WRITE_BROADCAST):
            return self._broadcast_write(cache_id)
        return self._first_write_through(cache_id)

    def _first_write_through(self, cache_id: int) -> SnoopResult:
        """Write to a non-exclusive block: write-word or invalidate."""
        actions = {i: SnoopAction.INVALIDATE
                   for i in self.holders() if i != cache_id}
        for i in actions:
            self.states[i] = BlockState.INVALID
        was_wback = self.states[cache_id].wback
        if self._has(Modification.INVALIDATE_INSTEAD_OF_WRITE_WORD):
            # Memory is not updated, so the block is dirty from here on.
            self.states[cache_id] = BlockState.EXCLUSIVE_WBACK
            self.memory_fresh = False
            bus_op = BusOp.INVALIDATE
        else:
            # Write-Once: the word goes through to memory.  If the block
            # carried shared-dirty ownership (possible only with
            # modification 2), other words are still stale in memory, so
            # wback duty is retained.
            self.states[cache_id] = (BlockState.EXCLUSIVE_WBACK if was_wback
                                     else BlockState.EXCLUSIVE_CLEAN)
            self.memory_fresh = not was_wback
            bus_op = BusOp.WRITE_WORD
        return SnoopResult(bus_ops=(bus_op,), actions=actions)

    def _broadcast_write(self, cache_id: int) -> SnoopResult:
        """Modification 4: update every copy, keep them valid."""
        actions = {i: SnoopAction.UPDATE
                   for i in self.holders() if i != cache_id}
        if self._has(Modification.INVALIDATE_INSTEAD_OF_WRITE_WORD):
            # Mods 3+4 together: broadcast without updating memory; the
            # broadcasting cache takes write-back responsibility
            # (Section 2.2 "Summary").
            prior_owner = self.owner()
            if prior_owner is not None and prior_owner != cache_id:
                self.states[prior_owner] = BlockState.SHARED_CLEAN
            if len(self.holders()) > 1:
                self.states[cache_id] = BlockState.SHARED_WBACK
            else:
                self.states[cache_id] = BlockState.EXCLUSIVE_WBACK
            self.memory_fresh = False
        else:
            # The broadcast word also updates memory.  Copies stay valid
            # and no-wback ("cache blocks remain in state no-wback"); a
            # pre-existing owner (shared-dirty under modification 2)
            # keeps ownership because its other words are still stale.
            self.memory_fresh = self.owner() is None
        return SnoopResult(bus_ops=(BusOp.WRITE_WORD,), actions=actions)

    def _write_miss(self, cache_id: int) -> SnoopResult:
        actions: dict[int, SnoopAction] = {}
        bus_ops = [BusOp.READ_MOD]
        owner = self.owner()
        supplied_by_cache = False
        if owner is not None and owner != cache_id:
            if self._has(Modification.CACHE_TO_CACHE_SUPPLY):
                actions[owner] = SnoopAction.SUPPLY
                supplied_by_cache = True
            else:
                actions[owner] = SnoopAction.FLUSH
                bus_ops.append(BusOp.WRITE_BLOCK)
                self.memory_fresh = True
        for i in self.holders():
            if i == cache_id:
                continue
            actions.setdefault(i, SnoopAction.INVALIDATE)
            self.states[i] = BlockState.INVALID
        # Read-mod loads the block exclusive and wback (Section 2.2).
        self.states[cache_id] = BlockState.EXCLUSIVE_WBACK
        self.memory_fresh = False
        return SnoopResult(bus_ops=tuple(bus_ops), actions=actions,
                           memory_supplied=not supplied_by_cache)

    # -- invariants ---------------------------------------------------------

    def _check_invariants(self) -> None:
        owners = [i for i, s in enumerate(self.states) if s.wback]
        assert len(owners) <= 1, f"multiple write-back owners: {owners}"
        for i, s in enumerate(self.states):
            if s.exclusive:
                others = [j for j in self.holders() if j != i]
                assert not others, (
                    f"cache {i} exclusive but {others} hold copies")
        if not self._has(Modification.CACHE_TO_CACHE_SUPPLY) and not (
                self._has(Modification.WRITE_BROADCAST)
                and self._has(Modification.INVALIDATE_INSTEAD_OF_WRITE_WORD)):
            for i, s in enumerate(self.states):
                assert not (s.wback and not s.exclusive), (
                    f"cache {i} shared-dirty without modification 2 "
                    f"or 3+4: {s}")
        if owners:
            # A wback holder means the block is modified relative to memory.
            assert not self.memory_fresh, (
                f"cache {owners[0]} holds wback but memory is marked fresh")
        else:
            # No owner anywhere: memory must hold the current value.
            assert self.memory_fresh, "no wback owner but memory is stale"
