"""Cache-block states (paper Section 2.1).

Block state is "defined by three bits of state information": valid /
invalid; exclusive / non-exclusive; wback / no-wback.  Not every
protocol uses every combination; :class:`BlockState` enumerates the five
reachable states and provides the predicates the protocol machine needs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


@dataclass(frozen=True)
class StateBits:
    """The raw three state bits of Section 2.1."""

    valid: bool
    exclusive: bool
    wback: bool


class BlockState(enum.Enum):
    """The reachable cache-block states.

    ``INVALID`` ignores the other two bits.  A *wback* block is modified
    relative to memory; under Write-Once a wback block is always
    exclusive, but modification 2 introduces shared-dirty ownership
    (``SHARED_WBACK``), e.g. Berkeley's "owned non-exclusively".
    """

    INVALID = StateBits(valid=False, exclusive=False, wback=False)
    SHARED_CLEAN = StateBits(valid=True, exclusive=False, wback=False)
    SHARED_WBACK = StateBits(valid=True, exclusive=False, wback=True)
    EXCLUSIVE_CLEAN = StateBits(valid=True, exclusive=True, wback=False)
    EXCLUSIVE_WBACK = StateBits(valid=True, exclusive=True, wback=True)

    @property
    def bits(self) -> StateBits:
        """The raw three bits backing this state."""
        return self.value

    @property
    def valid(self) -> bool:
        return self.value.valid

    @property
    def exclusive(self) -> bool:
        """The cache *knows* it holds the only copy."""
        return self.value.exclusive

    @property
    def wback(self) -> bool:
        """The block must be written back to memory when purged."""
        return self.value.wback

    @property
    def writable_without_bus(self) -> bool:
        """A processor write can proceed with no bus operation.

        True exactly for the exclusive states: writes to non-exclusive
        blocks must notify the other caches.
        """
        return self.value.valid and self.value.exclusive

    @classmethod
    def from_bits(cls, valid: bool, exclusive: bool, wback: bool) -> "BlockState":
        """Map raw bits to a state (invalid ignores the other bits)."""
        if not valid:
            return cls.INVALID
        for state in cls:
            if state.value == StateBits(valid, exclusive, wback):
                return state
        raise ValueError(f"unreachable state bits: valid={valid} "
                         f"exclusive={exclusive} wback={wback}")
