"""Snooping cache-consistency protocol family (paper Section 2.2).

The paper treats the five published successors of Goodman's Write-Once
protocol as combinations of four independent *modifications*.  This
package provides:

* :class:`Modification` / :class:`ProtocolSpec` -- the modification
  algebra, including the Appendix-A workload-parameter overrides each
  modification implies;
* :mod:`~repro.protocols.states` -- the 3-bit cache-block state space
  (valid, exclusive, wback) of Section 2.1;
* :mod:`~repro.protocols.transactions` -- the five bus transaction types;
* :mod:`~repro.protocols.machine` -- an executable block-level state
  machine for any modification combination (used by the simulator's
  consistency checks and by the protocol unit tests);
* :mod:`~repro.protocols.family` -- the named protocols (Write-Once,
  Synapse, Illinois, Berkeley, RWB, Dragon) mapped onto modification
  sets.
"""

from repro.protocols.modifications import Modification, ProtocolSpec
from repro.protocols.states import BlockState
from repro.protocols.transactions import BusOp
from repro.protocols.machine import CoherenceMachine, ProcessorOp, SnoopResult
from repro.protocols.family import (
    PROTOCOLS,
    berkeley,
    dragon,
    illinois,
    protocol_by_name,
    rwb,
    synapse,
    write_once,
)

__all__ = [
    "BlockState",
    "BusOp",
    "CoherenceMachine",
    "Modification",
    "PROTOCOLS",
    "ProcessorOp",
    "ProtocolSpec",
    "SnoopResult",
    "berkeley",
    "dragon",
    "illinois",
    "protocol_by_name",
    "rwb",
    "synapse",
    "write_once",
]
