"""Bus transaction types (paper Section 2.1).

"Bus transactions may be one of five types: read, read-mod (i.e.,
read-with-the-intent-to-modify), invalidate, write-word, or
write-block."  Modification 4 adds the broadcast *update* flavour of
write-word (copies are updated rather than invalidated); on the wire it
is the same one-word write, so it shares the WRITE_WORD occupancy.
"""

from __future__ import annotations

import enum


class BusOp(enum.Enum):
    """The bus transaction types and what issues them."""

    #: Processor read missed in the cache.
    READ = "read"
    #: Processor write missed in the cache (read-with-intent-to-modify).
    READ_MOD = "read-mod"
    #: First write to a clean non-exclusive block under modification 3.
    INVALIDATE = "invalidate"
    #: First write to a clean non-exclusive block (Write-Once write-through,
    #: or a broadcast update under modification 4).
    WRITE_WORD = "write-word"
    #: Write a modified block back to main memory.
    WRITE_BLOCK = "write-block"

    @property
    def is_miss(self) -> bool:
        """Transaction caused by a cache miss (loads a block)."""
        return self in (BusOp.READ, BusOp.READ_MOD)

    @property
    def is_broadcast(self) -> bool:
        """One-word broadcast operation (write-word or invalidate)."""
        return self in (BusOp.INVALIDATE, BusOp.WRITE_WORD)

    @property
    def updates_memory(self) -> bool:
        """Transaction writes data to main memory (on its own)."""
        return self in (BusOp.WRITE_WORD, BusOp.WRITE_BLOCK)
