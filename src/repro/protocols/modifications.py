"""The four Write-Once modifications and their combination algebra.

Paper Section 2.2 presents the modifications as independent changes that
"can be implemented in any combination"; Section 3.3 and Appendix A give
the workload-parameter adjustments each combination implies:

* modification 1 raises the private replacement write-back rate
  (rep_p: 0.2 -> 0.3) because blocks loaded exclusive are dirtied
  without a write-through;
* modification 2 or 3 raises rep_sw: 0.5 -> 0.6 (0.7 when both are
  active) because ownership/invalidate defers the memory update to
  purge time;
* modifications 1+4 raise h_sw to 0.95 because copies are updated in
  place instead of being invalidated.
"""

from __future__ import annotations

import enum
from collections.abc import Collection, Iterator
from dataclasses import dataclass, field

from repro.workload.parameters import WorkloadParameters


class Modification(enum.IntEnum):
    """The four proposed modifications to Write-Once (Section 2.2)."""

    #: Load a block exclusive when no other cache raises the shared line.
    EXCLUSIVE_ON_MISS = 1
    #: A wback holder supplies the block directly, without updating memory.
    CACHE_TO_CACHE_SUPPLY = 2
    #: Broadcast an invalidate instead of a write-word on the first write.
    INVALIDATE_INSTEAD_OF_WRITE_WORD = 3
    #: Broadcast writes keep all copies valid (write-update).
    WRITE_BROADCAST = 4

    @property
    def short_name(self) -> str:
        """Compact name used in tables ("mod1" ... "mod4")."""
        return f"mod{int(self)}"


#: Appendix-A override values.
_REP_P_WITH_MOD1 = 0.3
_REP_SW_WITH_MOD2_OR_3 = 0.6
_REP_SW_WITH_MOD2_AND_3 = 0.7
_H_SW_WITH_MODS_1_4 = 0.95


@dataclass(frozen=True)
class ProtocolSpec:
    """A coherence protocol expressed as a set of Write-Once modifications.

    The empty set is the Write-Once protocol itself.  Instances are
    hashable and iterable over their active modifications.
    """

    mods: frozenset[Modification] = field(default_factory=frozenset)
    name: str | None = None

    def __post_init__(self) -> None:
        mods = frozenset(Modification(m) for m in self.mods)
        object.__setattr__(self, "mods", mods)

    @classmethod
    def of(cls, *mods: int | Modification, name: str | None = None) -> "ProtocolSpec":
        """Build a spec from modification numbers: ``ProtocolSpec.of(1, 4)``."""
        return cls(mods=frozenset(Modification(m) for m in mods), name=name)

    def __iter__(self) -> Iterator[Modification]:
        return iter(sorted(self.mods))

    def __contains__(self, mod: int | Modification) -> bool:
        return Modification(mod) in self.mods

    def __len__(self) -> int:
        return len(self.mods)

    @property
    def mod_numbers(self) -> frozenset[int]:
        """The active modifications as plain integers (for derive_inputs)."""
        return frozenset(int(m) for m in self.mods)

    @property
    def label(self) -> str:
        """Display name: the given name, or e.g. "WO+1+4" / "Write-Once".

        Memoized on the instance: sweep row assembly asks per cell."""
        cached = self.__dict__.get("_label")
        if cached is None:
            if self.name:
                cached = self.name
            elif not self.mods:
                cached = "Write-Once"
            else:
                cached = "WO+" + "+".join(
                    str(int(m)) for m in sorted(self.mods))
            object.__setattr__(self, "_label", cached)
        return cached

    def with_mods(self, *mods: int | Modification) -> "ProtocolSpec":
        """Return a spec with additional modifications enabled."""
        extra = frozenset(Modification(m) for m in mods)
        return ProtocolSpec(mods=self.mods | extra)

    @property
    def is_write_update(self) -> bool:
        """True when writes broadcast updates instead of invalidating."""
        return Modification.WRITE_BROADCAST in self.mods

    @property
    def is_practical(self) -> bool:
        """Section 2.2: modification 4 alone degenerates to write-through,
        so it "is only practical when implemented together with
        modification 1"."""
        if Modification.WRITE_BROADCAST not in self.mods:
            return True
        return Modification.EXCLUSIVE_ON_MISS in self.mods

    def adjust_workload(self, workload: WorkloadParameters) -> WorkloadParameters:
        """Apply the Appendix-A parameter overrides for this protocol.

        Only parameters still at their Write-Once default are overridden,
        so callers who explicitly set e.g. rep_sw keep their value.
        """
        changes: dict[str, float] = {}
        if Modification.EXCLUSIVE_ON_MISS in self.mods and workload.rep_p == 0.2:
            changes["rep_p"] = _REP_P_WITH_MOD1
        has_2 = Modification.CACHE_TO_CACHE_SUPPLY in self.mods
        has_3 = Modification.INVALIDATE_INSTEAD_OF_WRITE_WORD in self.mods
        if (has_2 or has_3) and workload.rep_sw == 0.5:
            changes["rep_sw"] = (_REP_SW_WITH_MOD2_AND_3 if has_2 and has_3
                                 else _REP_SW_WITH_MOD2_OR_3)
        if (Modification.WRITE_BROADCAST in self.mods
                and Modification.EXCLUSIVE_ON_MISS in self.mods
                and workload.h_sw == 0.5):
            changes["h_sw"] = _H_SW_WITH_MODS_1_4
        return workload.replace(**changes) if changes else workload


def all_combinations() -> list[ProtocolSpec]:
    """All 16 modification combinations, Write-Once first."""
    specs = []
    for mask in range(16):
        mods = [m for m in Modification if mask & (1 << (int(m) - 1))]
        specs.append(ProtocolSpec(mods=frozenset(mods)))
    return specs


def parse_mods(text: str | Collection[int]) -> ProtocolSpec:
    """Parse a CLI-style modification list ("1,4", "wo", "" or ints)."""
    if not isinstance(text, str):
        return ProtocolSpec.of(*text)
    cleaned = text.strip().lower()
    if cleaned in {"", "wo", "write-once", "writeonce", "none"}:
        return ProtocolSpec()
    try:
        numbers = [int(part) for part in cleaned.replace("+", ",").split(",") if part]
    except ValueError as exc:
        raise ValueError(f"cannot parse modification list {text!r}") from exc
    return ProtocolSpec.of(*numbers)
