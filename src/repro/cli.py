"""Command-line interface: ``python -m repro`` or the ``repro-mva`` script.

Subcommands:

* ``solve``    -- one MVA solution (protocol, sharing, N)
* ``table``    -- regenerate Table 4.1(a|b|c) next to the published rows
* ``figure``   -- ASCII Figure 4.1 (or CSV for external plotting)
* ``simulate`` -- one discrete-event simulation run
* ``compare``  -- MVA vs simulation agreement study (Section 4.2)
* ``protocols``-- list the named protocol family
* ``hierarchy``-- two-level-bus extension (clusters on a global bus)
* ``estimate`` -- measure Appendix-A parameters from a synthetic trace
* ``serve``    -- HTTP JSON evaluation service (cache + process pool)
* ``sweep``    -- resumable sharded sweep through the journal-backed
  queue (worker leases, crash recovery, ``--resume JOB_ID``)
* ``stress``   -- robustness sweep over extreme parameter corners with
  per-cell failure isolation
* ``verify``   -- invariant audits, engine differential oracle and the
  golden-corpus regression diff (quick/full tiers)
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.analysis.comparison import agreement_table, compare_mva_and_simulation
from repro.analysis.experiments import paper_table
from repro.analysis.figures import ascii_chart, figure_41_series, to_csv
from repro.core.model import CacheMVAModel
from repro.protocols.family import PROTOCOLS
from repro.protocols.modifications import ProtocolSpec, parse_mods
from repro.sim.config import SimulationConfig
from repro.sim.system import simulate
from repro.workload.parameters import SharingLevel, appendix_a_workload

_SHARING = {
    "1": SharingLevel.ONE_PERCENT,
    "5": SharingLevel.FIVE_PERCENT,
    "20": SharingLevel.TWENTY_PERCENT,
}


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _protocol_from_args(args: argparse.Namespace) -> ProtocolSpec:
    if args.protocol:
        name = args.protocol.strip().lower()
        if name in PROTOCOLS:
            return PROTOCOLS[name]
        return parse_mods(args.protocol)
    return parse_mods(args.mods or "")


def _add_protocol_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--protocol", help="named protocol (write-once, "
                        "synapse, illinois, berkeley, rwb, dragon) or a "
                        "modification list like '1,4'")
    parser.add_argument("--mods", help="modification list, e.g. '1,4'")
    parser.add_argument("--sharing", choices=sorted(_SHARING), default="5",
                        help="Appendix-A sharing level in percent")


def _cmd_solve(args: argparse.Namespace) -> int:
    protocol = _protocol_from_args(args)
    workload = appendix_a_workload(_SHARING[args.sharing])
    model = CacheMVAModel(workload, protocol)
    for n in args.n:
        report = model.solve(n)
        print(report.summary())
        if args.verbose:
            r = report.response
            print(f"    R={r.total:.4f} (tau={r.tau} local={r.r_local:.4f} "
                  f"bc={r.r_broadcast:.4f} rr={r.r_remote_read:.4f} "
                  f"supply={r.t_supply})")
            print(f"    w_bus={report.w_bus:.4f} w_mem={report.w_mem:.4f} "
                  f"U_mem={report.u_mem:.4f} Q_bus={report.q_bus:.4f} "
                  f"power={report.processing_power:.4f}")
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    for part in args.part:
        try:
            print(paper_table(part).render())
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    series = figure_41_series()
    if args.csv:
        print(to_csv(series), end="")
    else:
        print(ascii_chart(series, title="Figure 4.1: speedup vs processors"))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    protocol = _protocol_from_args(args)
    workload = appendix_a_workload(_SHARING[args.sharing])
    if args.engine == "scalar" and args.reps != 1:
        print("error: --reps > 1 requires --engine vector",
              file=sys.stderr)
        return 2
    for n in args.n:
        result = simulate(SimulationConfig(
            n_processors=n, workload=workload, protocol=protocol,
            seed=args.seed, measured_requests=args.requests),
            engine=args.engine, reps=args.reps)
        print(result.summary())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    protocol = _protocol_from_args(args)
    workload = appendix_a_workload(_SHARING[args.sharing])
    study = compare_mva_and_simulation(
        workload, protocol, args.n, seed=args.seed,
        measured_requests=args.requests)
    print(agreement_table(study).render())
    print(study.summary())
    return 0


def _cmd_hierarchy(args: argparse.Namespace) -> int:
    from repro.hierarchy import HierarchicalMVAModel, HierarchyParams

    protocol = _protocol_from_args(args)
    workload = appendix_a_workload(_SHARING[args.sharing])
    print(f"{'C':>4} {'N':>5} {'speedup':>8} {'U_local':>8} {'U_global':>9}")
    for clusters in args.clusters:
        params = HierarchyParams(
            clusters=clusters, per_cluster=args.per_cluster,
            cluster_locality=args.locality,
            cluster_cache_hit=args.cluster_cache)
        report = HierarchicalMVAModel(workload, params,
                                      protocol=protocol).solve()
        print(f"{clusters:>4} {report.n_processors:>5} "
              f"{report.speedup:>8.3f} {report.u_local_bus:>8.3f} "
              f"{report.u_global_bus:>9.3f}")
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    from repro.core.model import CacheMVAModel as _Model
    from repro.trace import (
        CoherentCacheSystem,
        GeneratorConfig,
        SyntheticTraceGenerator,
        WorkloadEstimator,
    )

    config = GeneratorConfig(n_processors=args.cpus, seed=args.seed)
    generator = SyntheticTraceGenerator(config)
    system = CoherentCacheSystem(args.cpus, args.sets, args.ways)
    estimator = WorkloadEstimator(system, generator.stream_of)
    estimator.observe_trace(generator.trace(args.references))
    report = estimator.estimate()
    print(report.summary())
    protocol = _protocol_from_args(args)
    model = _Model(report.workload, protocol)
    for n in args.n:
        print(f"  -> {protocol.label} N={n}: "
              f"speedup {model.speedup(n):.3f}")
    return 0


def _cmd_crossmodel(args: argparse.Namespace) -> int:
    from repro.analysis.crossmodel import cross_model_table, cross_validate

    protocol = _protocol_from_args(args)
    workload = appendix_a_workload(_SHARING[args.sharing])
    cells = cross_validate(workload, protocol, sizes=tuple(args.n),
                           sim_requests=args.requests)
    print(cross_model_table(cells).render())
    worst = max(cell.spread for cell in cells)
    print(f"max cross-technique spread: {worst:.2%}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """A compact live reproduction report: tables, agreement, accuracy."""
    from repro.analysis.accuracy import summarize

    print("=" * 72)
    print("Reproduction report: Vernon, Lazowska & Zahorjan (ISCA 1988)")
    print("=" * 72 + "\n")
    for part in ("a", "b", "c"):
        print(paper_table(part).render())
    print("MVA vs detailed simulation (Section 4.2 methodology):\n")
    studies = []
    for mods in [(), (1,), (1, 4)]:
        protocol = ProtocolSpec.of(*mods)
        study = compare_mva_and_simulation(
            appendix_a_workload(SharingLevel.FIVE_PERCENT), protocol,
            sizes=args.n, measured_requests=args.requests)
        studies.append(study)
        print("  " + study.summary())
    print("\nPooled accuracy: " + summarize(studies).text())
    print("\n(paper: <= 2.6-4.25% max error vs its GTPN; MVA "
          "underestimates\nbus utilization and speedup under contention)")
    return 0


def _cmd_grid(args: argparse.Namespace) -> int:
    from repro.analysis.grid import GridSpec, to_csv, to_json
    from repro.service import CellFailedError, ResultCache, SweepExecutor

    try:
        spec = GridSpec(protocols=_grid_protocols(args), sizes=args.n,
                        include_simulation=args.simulate,
                        sim_requests=args.requests,
                        sim_engine=args.sim_engine,
                        sim_reps=args.sim_reps)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # Everything goes through the service executor; the default
    # (jobs=1, no cache) is byte-identical to the historical serial
    # loop.  Per-cell failures become error rows plus a stderr summary;
    # --strict restores the old raise-on-first-error behaviour.
    try:
        cache = ResultCache(path=args.cache) if args.cache else None
        executor = SweepExecutor(jobs=args.jobs, cache=cache,
                                 strict=args.strict, engine=args.engine)
        result = executor.run_spec(spec)
    except CellFailedError as exc:  # --strict: fail the whole sweep
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:  # e.g. an unwritable --cache path
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cells = result.cells
    if args.jobs > 1 or args.cache:
        # Sweep summary on stderr so stdout stays a clean CSV/JSON
        # document; the default run stays silent, as it always was.
        print(result.summary.line(), file=sys.stderr)
    failed = result.summary.failed
    if failed:
        for failure in result.failures:
            print(f"failed cell: {failure.describe()}", file=sys.stderr)
        print(f"{failed} of {result.summary.total} cells failed; error "
              "rows exported in place (use --strict to fail fast)",
              file=sys.stderr)
    payload = to_json(cells) if args.json else to_csv(cells)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(payload)
        print(f"wrote {len(cells)} cells to {args.output}")
    else:
        print(payload, end="")
    return 1 if failed == result.summary.total else 0


def _grid_protocols(args: argparse.Namespace) -> list[ProtocolSpec]:
    """The ``grid``/``sweep`` protocol selection (shared flags)."""
    if args.all_combinations:
        from repro.protocols.modifications import all_combinations
        return all_combinations()
    if args.protocols:
        protocols = []
        for text in args.protocols:
            name = text.strip().lower()
            protocols.append(PROTOCOLS[name] if name in PROTOCOLS
                             else parse_mods(text))
        return protocols
    return [ProtocolSpec(), ProtocolSpec.of(1), ProtocolSpec.of(1, 4)]


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.grid import GridCell, GridSpec, to_csv, to_json
    from repro.service import ResultCache, tasks_for_spec
    from repro.sweepq import SweepQueue, UnknownJobError

    cache_path = args.cache
    if cache_path is None and args.state_dir:
        # A persistent queue needs a persistent result store to resume
        # from; keep it next to the journal unless told otherwise.
        import os
        cache_path = os.path.join(args.state_dir, "cache.json")
    try:
        cache = ResultCache(path=cache_path) if cache_path \
            else ResultCache()
        queue = SweepQueue(state_dir=args.state_dir, cache=cache,
                           chunk_size=args.chunk_size,
                           lease_ttl=args.lease_ttl)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        if args.resume:
            job_id = args.resume
            try:
                tasks = queue.tasks_for(job_id)
            except UnknownJobError:
                print(f"error: unknown sweep job {job_id!r} (known: "
                      f"{[j.job_id for j in queue.journal.list_jobs()]})",
                      file=sys.stderr)
                return 2
        else:
            try:
                spec = GridSpec(protocols=_grid_protocols(args),
                                sizes=args.n,
                                include_simulation=args.simulate,
                                sim_requests=args.requests,
                                sim_seed=args.seed,
                                sim_engine=args.sim_engine,
                                sim_reps=args.sim_reps)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            tasks = tasks_for_spec(spec)
            job_id = queue.submit(tasks)
        outcome = queue.run(job_id, workers=args.workers,
                            chaos_kill=args.chaos_kill)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        queue.close()

    cells = []
    failed = 0
    for task, value in zip(tasks, outcome.values):
        error = value.get("error")
        if error is not None:
            failed += 1
            cells.append(GridCell.failed(
                protocol=task.protocol.label, sharing=task.sharing_label,
                n_processors=task.n, method=task.method,
                error=f"{error.get('type', 'Exception')}: "
                      f"{error.get('message', '')}"))
        else:
            cells.append(GridCell(**value["cell"]))
    counters = outcome.counters
    recovery = (f", {counters['requeues']} requeued"
                if counters["requeues"] else "")
    print(f"sweep job {job_id}: {counters['done']}/{counters['chunks']} "
          f"chunks done ({counters['cells_done']} cells, "
          f"{sum(outcome.cached)} from cache{recovery}); "
          f"{outcome.wall_seconds:.3f}s wall, workers={outcome.workers} "
          f"({outcome.mode})", file=sys.stderr)
    if args.state_dir:
        print(f"resume with: repro sweep --state-dir {args.state_dir} "
              f"--resume {job_id}", file=sys.stderr)
    if failed:
        print(f"{failed} of {len(cells)} cells failed; error rows "
              "exported in place", file=sys.stderr)
    payload = to_json(cells) if args.json else to_csv(cells)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(payload)
        print(f"wrote {len(cells)} cells to {args.output}")
    else:
        print(payload, end="")
    return 1 if failed == len(cells) else 0


def _cmd_stress(args: argparse.Namespace) -> int:
    from repro.analysis.stress import run_stress

    report = run_stress(sizes=tuple(args.n), jobs=args.jobs,
                        engine=args.engine, sim_engine=args.sim_engine,
                        sim_reps=args.sim_reps)
    print(report.text())
    if not report.isolated:  # pragma: no cover - invariant violation
        print("error: a cell failure leaked outside its row",
              file=sys.stderr)
        return 1
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify import run_verify, write_corpus
    from repro.verify.golden import DEFAULT_CORPUS_PATH

    golden_path = args.golden or DEFAULT_CORPUS_PATH
    if args.update_golden:
        path = write_corpus(golden_path)
        print(f"golden corpus regenerated at {path}")
        return 0
    report = run_verify(tier=args.tier, golden_path=golden_path,
                        sim_engine=args.sim_engine)
    if args.json:
        print(report.to_json())
    else:
        print(report.text())
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(report.to_json() + "\n")
        print(f"violation report written to {args.output}",
              file=sys.stderr)
    return report.exit_code


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import (
        ModelService,
        ResultCache,
        serve_async,
        start_server,
    )

    coalesce = not args.no_coalesce
    front = "async" if getattr(args, "async") else "threaded"
    try:
        cache = ResultCache(path=args.cache) if args.cache else ResultCache()
        common = dict(cache=cache, jobs=args.jobs, engine=args.engine,
                      sweep_state_dir=args.sweep_state_dir)
        if coalesce:
            service = ModelService.with_coalescer(
                window_ms=args.coalesce_window_ms,
                max_batch=args.max_batch, **common)
        else:
            service = ModelService(**common)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    settings = (f"jobs={args.jobs}, engine={args.engine}, front={front}, "
                + (f"coalesce={args.coalesce_window_ms}ms/"
                   f"{args.max_batch} cells, " if coalesce
                   else "coalesce=off, ")
                + f"cache={args.cache or 'in-memory'}")

    def announce(url: str) -> None:
        print(f"repro service listening on {url} "
              f"({settings}; Ctrl-C to stop)")

    try:
        if getattr(args, "async"):
            try:
                serve_async(service, host=args.host, port=args.port,
                            announce=announce)
            except KeyboardInterrupt:
                print("\nshutting down")
        else:
            server = start_server(service, host=args.host, port=args.port)
            announce(server.url)
            try:
                server.serve_forever()
            except KeyboardInterrupt:
                print("\nshutting down")
            finally:
                server.server_close()
    except OSError as exc:  # port in use, unresolvable host, ...
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        try:
            service.close()
        except OSError as exc:
            print(f"error: could not persist cache: {exc}", file=sys.stderr)
            return 2
    return 0


def _cmd_protocols(args: argparse.Namespace) -> int:
    for name, spec in PROTOCOLS.items():
        mods = ",".join(str(int(m)) for m in spec) or "none"
        print(f"{name:<12} modifications: {mods}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mva",
        description="Mean-value analysis of snooping cache-consistency "
                    "protocols (Vernon, Lazowska & Zahorjan, ISCA 1988)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_solve = sub.add_parser("solve", help="solve the MVA model")
    _add_protocol_options(p_solve)
    p_solve.add_argument("-n", type=int, nargs="+", default=[10],
                         help="system sizes")
    p_solve.add_argument("--verbose", action="store_true")
    p_solve.set_defaults(func=_cmd_solve)

    p_table = sub.add_parser("table", help="regenerate Table 4.1")
    p_table.add_argument("part", nargs="*", default=["a", "b", "c"],
                         help="table parts: a, b and/or c (default: all)")
    p_table.set_defaults(func=_cmd_table)

    p_fig = sub.add_parser("figure", help="regenerate Figure 4.1")
    p_fig.add_argument("--csv", action="store_true",
                       help="emit CSV instead of an ASCII chart")
    p_fig.set_defaults(func=_cmd_figure)

    p_sim = sub.add_parser("simulate", help="run the detailed simulator")
    _add_protocol_options(p_sim)
    p_sim.add_argument("-n", type=int, nargs="+", default=[10])
    p_sim.add_argument("--seed", type=int, default=2024)
    p_sim.add_argument("--requests", type=int, default=50_000)
    p_sim.add_argument("--engine", choices=["scalar", "vector"],
                       default="scalar",
                       help="DES backend: the scalar reference engine "
                            "(default) or the lockstep multi-replication "
                            "vector engine")
    p_sim.add_argument("--reps", type=_positive_int, default=1,
                       help="replications folded into one aggregate "
                            "(vector engine; --requests is then per "
                            "replication)")
    p_sim.set_defaults(func=_cmd_simulate)

    p_cmp = sub.add_parser("compare", help="MVA vs simulation agreement")
    _add_protocol_options(p_cmp)
    p_cmp.add_argument("-n", type=int, nargs="+", default=[2, 6, 10])
    p_cmp.add_argument("--seed", type=int, default=2024)
    p_cmp.add_argument("--requests", type=int, default=60_000)
    p_cmp.set_defaults(func=_cmd_compare)

    p_list = sub.add_parser("protocols", help="list named protocols")
    p_list.set_defaults(func=_cmd_protocols)

    p_hier = sub.add_parser("hierarchy",
                            help="two-level-bus extension study")
    _add_protocol_options(p_hier)
    p_hier.add_argument("--clusters", type=int, nargs="+",
                        default=[1, 2, 4, 8, 16])
    p_hier.add_argument("--per-cluster", type=int, default=8)
    p_hier.add_argument("--locality", type=float, default=0.9,
                        help="probability sharers are in-cluster")
    p_hier.add_argument("--cluster-cache", type=float, default=0.8,
                        help="cluster-cache hit rate for escaping misses")
    p_hier.set_defaults(func=_cmd_hierarchy)

    p_est = sub.add_parser("estimate",
                           help="measure workload parameters from a "
                                "synthetic trace and solve the MVA")
    _add_protocol_options(p_est)
    p_est.add_argument("--cpus", type=int, default=4)
    p_est.add_argument("--references", type=int, default=100_000)
    p_est.add_argument("--sets", type=int, default=256)
    p_est.add_argument("--ways", type=int, default=4)
    p_est.add_argument("--seed", type=int, default=7)
    p_est.add_argument("-n", type=int, nargs="+", default=[10])
    p_est.set_defaults(func=_cmd_estimate)

    p_grid = sub.add_parser("grid", help="sweep a protocol/size grid and "
                                         "export CSV or JSON")
    p_grid.add_argument("--protocols", nargs="+",
                        help="named protocols or modification lists")
    p_grid.add_argument("--all-combinations", action="store_true",
                        help="sweep all 16 modification combinations")
    p_grid.add_argument("-n", type=int, nargs="+",
                        default=[1, 2, 4, 8, 16, 32])
    p_grid.add_argument("--simulate", action="store_true",
                        help="add detailed-simulation rows per cell")
    p_grid.add_argument("--requests", type=int, default=40_000)
    p_grid.add_argument("--json", action="store_true")
    p_grid.add_argument("--output", "-o", help="write to a file")
    p_grid.add_argument("--jobs", type=_positive_int, default=1,
                        help="worker processes for the sweep (default: "
                             "1, serial)")
    p_grid.add_argument("--cache",
                        help="persistent result-cache JSON file; repeat "
                             "runs reuse previously solved cells")
    p_grid.add_argument("--strict", action="store_true",
                        help="abort the sweep on the first failed cell "
                             "(default: isolate failures as error rows "
                             "and print a summary to stderr)")
    p_grid.add_argument("--engine", choices=["scalar", "batch"],
                        default="scalar",
                        help="MVA backend: per-cell scalar solves "
                             "(default) or one vectorized batch for the "
                             "whole sweep")
    p_grid.add_argument("--sim-engine", choices=["scalar", "vector"],
                        default="scalar",
                        help="DES backend for --simulate rows: scalar "
                             "reference runs (default) or lockstep "
                             "multi-replication vector runs")
    p_grid.add_argument("--sim-reps", type=_positive_int, default=1,
                        help="replications per simulation row (vector "
                             "engine; --requests is then per "
                             "replication and sim_ci the across-"
                             "replication band)")
    p_grid.set_defaults(func=_cmd_grid)

    p_sweep = sub.add_parser(
        "sweep",
        help="resumable sharded sweep: journal-backed queue, chunk "
             "leases, batch-engine workers, crash recovery")
    p_sweep.add_argument("--protocols", nargs="+",
                         help="named protocols or modification lists")
    p_sweep.add_argument("--all-combinations", action="store_true",
                         help="sweep all 16 modification combinations")
    p_sweep.add_argument("-n", type=int, nargs="+",
                         default=[1, 2, 4, 8, 16, 32])
    p_sweep.add_argument("--simulate", action="store_true",
                         help="add detailed-simulation rows per cell")
    p_sweep.add_argument("--requests", type=int, default=40_000)
    p_sweep.add_argument("--seed", type=int, default=1234,
                         help="simulation seed base")
    p_sweep.add_argument("--sim-engine", choices=["scalar", "vector"],
                         default="scalar",
                         help="DES backend for --simulate rows (see "
                              "'grid --sim-engine')")
    p_sweep.add_argument("--sim-reps", type=_positive_int, default=1,
                         help="replications per simulation row (vector "
                              "engine)")
    p_sweep.add_argument("--workers", type=_positive_int, default=1,
                         help="worker processes leasing chunks")
    p_sweep.add_argument("--chunk-size", type=_positive_int,
                         help="cells per leased chunk (default: "
                              "auto-sized from the grid and workers)")
    p_sweep.add_argument("--lease-ttl", type=float, default=15.0,
                         help="seconds before an unheartbeaten lease is "
                              "requeued to another worker")
    p_sweep.add_argument("--state-dir",
                         help="persistent queue directory (journal + "
                              "cache); required to resume across runs")
    p_sweep.add_argument("--cache",
                         help="result-cache JSON file (default: "
                              "cache.json inside --state-dir)")
    p_sweep.add_argument("--resume", metavar="JOB_ID",
                         help="resume a journaled job instead of "
                              "submitting a new sweep")
    p_sweep.add_argument("--chaos-kill", type=int, default=0,
                         metavar="N",
                         help="fault injection: SIGKILL the first N "
                              "workers after their first lease (testing)")
    p_sweep.add_argument("--json", action="store_true")
    p_sweep.add_argument("--output", "-o", help="write to a file")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_stress = sub.add_parser("stress",
                              help="robustness sweep: all 16 modification "
                                   "combinations x extreme parameter "
                                   "corners, with per-cell failure "
                                   "isolation")
    p_stress.add_argument("-n", type=int, nargs="+", default=[4, 16, 128],
                          help="system sizes per corner")
    p_stress.add_argument("--jobs", type=_positive_int, default=1,
                          help="worker processes for the sweep")
    p_stress.add_argument("--engine", choices=["scalar", "batch"],
                          default="scalar",
                          help="MVA backend: per-cell scalar solves "
                               "(default) or one vectorized batch")
    p_stress.add_argument("--sim-engine", choices=["scalar", "vector"],
                          default=None,
                          help="opt-in DES spot-check: also simulate "
                               "the family-endpoint protocols on every "
                               "corner at sizes <= 16 (default: off)")
    p_stress.add_argument("--sim-reps", type=_positive_int, default=8,
                          help="replications per DES spot-check cell "
                               "(vector engine)")
    p_stress.set_defaults(func=_cmd_stress)

    p_verify = sub.add_parser(
        "verify",
        help="run the verification suite: paper-law invariant audits, "
             "the scalar/batch/DES differential oracle and the "
             "golden-corpus regression diff")
    p_verify.add_argument("--tier", choices=["quick", "full"],
                          default="quick",
                          help="quick: the <60s CI push gate; full: "
                               "deeper model checking, larger DES "
                               "samples, stress corners")
    p_verify.add_argument("--json", action="store_true",
                          help="emit the structured violation report as "
                               "JSON instead of text")
    p_verify.add_argument("--output", "-o",
                          help="also write the JSON violation report to "
                               "a file (CI artifact)")
    p_verify.add_argument("--update-golden", action="store_true",
                          help="regenerate the golden corpus instead of "
                               "verifying; review the diff and commit")
    p_verify.add_argument("--golden",
                          help="golden corpus path (default: the "
                               "committed package file)")
    p_verify.add_argument("--sim-engine",
                          choices=["auto", "scalar", "vector"],
                          default="auto",
                          help="DES backend for the MVA-vs-DES tier: "
                               "auto (scalar for quick, vector for "
                               "full), or force one engine")
    p_verify.set_defaults(func=_cmd_verify)

    p_serve = sub.add_parser("serve",
                             help="run the HTTP JSON evaluation service "
                                  "(POST /v1/solve, POST /v1/grid, "
                                  "GET /v1/healthz, GET /v1/metrics)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8321,
                         help="TCP port (0 picks an ephemeral port)")
    p_serve.add_argument("--jobs", type=_positive_int, default=1,
                         help="worker processes for grid sweeps")
    p_serve.add_argument("--cache",
                         help="persistent result-cache JSON file")
    p_serve.add_argument("--engine", choices=["scalar", "batch"],
                         default="scalar",
                         help="default MVA backend for requests that do "
                              "not set their own 'engine' field")
    p_serve.add_argument("--sweep-state-dir",
                         help="persistent directory for async /v1/sweep "
                              "jobs (journal survives restarts)")
    p_serve.add_argument("--async", action="store_true",
                         help="asyncio front-end: thousands of concurrent "
                              "connections without one thread each "
                              "(default: threaded http.server)")
    p_serve.add_argument("--coalesce-window-ms", type=float, default=2.0,
                         help="how long concurrent /v1/solve cells are "
                              "held before one vectorized batch solve "
                              "(default: 2 ms)")
    p_serve.add_argument("--max-batch", type=_positive_int, default=256,
                         help="queue depth that flushes a coalesced "
                              "batch early (default: 256 cells)")
    p_serve.add_argument("--no-coalesce", action="store_true",
                         help="disable /v1/solve micro-batching (each "
                              "request solves its own cells)")
    p_serve.set_defaults(func=_cmd_serve)

    p_report = sub.add_parser("report", help="compact live reproduction "
                                             "report (tables + agreement)")
    p_report.add_argument("-n", type=int, nargs="+", default=[2, 6, 10])
    p_report.add_argument("--requests", type=int, default=40_000)
    p_report.set_defaults(func=_cmd_report)

    p_cross = sub.add_parser("crossmodel",
                             help="four-technique cross-validation at "
                                  "small N (MVA/DES/Petri chains)")
    _add_protocol_options(p_cross)
    p_cross.add_argument("-n", type=int, nargs="+", default=[1, 2, 3, 4])
    p_cross.add_argument("--requests", type=int, default=30_000)
    p_cross.set_defaults(func=_cmd_crossmodel)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an
        # error.  Point stdout at devnull so the interpreter's shutdown
        # flush does not raise again (no-op where stdout has no real
        # file descriptor, e.g. under pytest capture).
        import io
        import os
        if sys.stdout is sys.__stdout__:  # a real process stdout only
            try:
                devnull = os.open(os.devnull, os.O_WRONLY)
                os.dup2(devnull, sys.stdout.fileno())
            except (OSError, ValueError, io.UnsupportedOperation):
                pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
