"""A timed Petri-net engine with exact Markov-chain solution.

The paper validates its MVA against a Generalized Timed Petri Net
(GTPN) model [HoVe85, VeHo86] whose exact solution "increases
exponentially with the number of processors analyzed" -- roughly an
hour of 1988 CPU time at ten processors.  This package provides that
style of detailed model:

* :class:`PetriNet` -- places, immediate transitions (weights) and
  timed transitions (rates, with single/multi/infinite-server
  semantics), plus inhibitor arcs;
* :func:`build_reachability` -- the (explosively growing) state space;
* :func:`solve_steady_state` -- vanishing-state elimination and exact
  stationary solution of the embedded continuous-time Markov chain
  (scipy sparse);
* :mod:`~repro.gtpn.measures` -- throughputs, token expectations, and
  state probabilities;
* :mod:`~repro.gtpn.models` -- textbook nets (M/M/1, machine
  repairman) used as oracles, and a reduced coherence net solvable for
  small N.

Semantics note: the original GTPN uses *deterministic* firing times;
exact solution of deterministic timing requires clocks in the state and
is what made the paper's comparator so expensive.  We implement the
memoryless (stochastic) subset and offer Erlang-stage expansion
(:func:`~repro.gtpn.net.erlang_stages`) to approximate deterministic
durations arbitrarily well -- at the usual state-space cost, which the
efficiency benchmark (experiment E10) measures.
"""

from repro.gtpn.net import PetriNet, Place, Transition, erlang_stages
from repro.gtpn.discrete import (
    Deterministic,
    DiscreteTimedNet,
    Geometric,
    Immediate,
    discrete_coherence_net,
    solve_discrete,
    solve_discrete_coherence_speedup,
)
from repro.gtpn.reachability import ReachabilityGraph, build_reachability
from repro.gtpn.markov import solve_steady_state
from repro.gtpn.measures import SteadyStateMeasures
from repro.gtpn.models import (
    coherence_net,
    coherence_net_detailed,
    machine_repairman_net,
    mm1_net,
    solve_coherence_speedup,
)

__all__ = [
    "Deterministic",
    "DiscreteTimedNet",
    "Geometric",
    "Immediate",
    "PetriNet",
    "Place",
    "ReachabilityGraph",
    "SteadyStateMeasures",
    "Transition",
    "build_reachability",
    "coherence_net",
    "coherence_net_detailed",
    "discrete_coherence_net",
    "erlang_stages",
    "solve_discrete",
    "solve_discrete_coherence_speedup",
    "machine_repairman_net",
    "mm1_net",
    "solve_coherence_speedup",
    "solve_steady_state",
]
