"""Discrete-time timed Petri nets with *deterministic* firing times.

This is the semantics of the paper's actual comparator (Holliday &
Vernon's GTPN): transitions fire a fixed integer number of cycles after
starting, or complete each cycle with a geometric probability
(discrete-time memorylessness); conflicts among simultaneously enabled
transitions resolve probabilistically by weight.  The price of
determinism is that *remaining firing times are part of the state*, so
the chain is over (marking, in-flight multiset) pairs -- the state
space the continuous (exponential) engine of :mod:`repro.gtpn.net`
avoids, and the reason the paper reports hours of CPU time at ten
processors.

The implementation enumerates, for each state, the full probability
tree of one cycle: (1) in-flight work advances one cycle (geometric
stages branch on completion), finished firings deposit their output
tokens; (2) newly enabled transitions start, consuming inputs, with
weighted branching at each conflict.  The stationary distribution of
the resulting DTMC is solved exactly (scipy sparse), and throughputs
are expected transition starts per cycle.

Only small nets are tractable -- which is the point (experiment E10).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field

import numpy as np
from scipy.sparse import csc_matrix, lil_matrix
from scipy.sparse.linalg import spsolve


@dataclass(frozen=True)
class Deterministic:
    """Fixed integer duration in cycles (>= 1)."""

    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 1:
            raise ValueError("deterministic duration must be >= 1 cycle")


@dataclass(frozen=True)
class Geometric:
    """Completes each cycle with probability p (mean 1/p cycles)."""

    p: float

    def __post_init__(self) -> None:
        if not 0.0 < self.p <= 1.0:
            raise ValueError("geometric p must be in (0, 1]")


@dataclass(frozen=True)
class Immediate:
    """Fires in zero time (resolved within the start phase)."""


Duration = Deterministic | Geometric | Immediate


@dataclass
class DTransition:
    tid: int
    name: str
    duration: Duration
    weight: float
    servers: int | None
    inputs: dict[int, int] = field(default_factory=dict)
    outputs: dict[int, int] = field(default_factory=dict)

    @property
    def immediate(self) -> bool:
        return isinstance(self.duration, Immediate)


#: In-flight entry: (transition id, remaining cycles).  Geometric
#: firings carry remaining = -1 (memoryless; no countdown needed).
GEOMETRIC_MARKER = -1
State = tuple[tuple[int, ...], tuple[tuple[int, int], ...]]


class DiscreteTimedNet:
    """Builder + one-cycle semantics."""

    def __init__(self, name: str = "dnet"):
        self.name = name
        self._n_places = 0
        self._initial: list[int] = []
        self._place_names: dict[str, int] = {}
        self.transitions: list[DTransition] = []
        self._transition_names: dict[str, int] = {}

    def add_place(self, name: str, tokens: int = 0) -> int:
        if name in self._place_names:
            raise ValueError(f"duplicate place {name!r}")
        if tokens < 0:
            raise ValueError("tokens must be non-negative")
        pid = self._n_places
        self._n_places += 1
        self._initial.append(tokens)
        self._place_names[name] = pid
        return pid

    def add_transition(self, name: str, duration: Duration,
                       weight: float = 1.0,
                       servers: int | None = 1) -> DTransition:
        if name in self._transition_names:
            raise ValueError(f"duplicate transition {name!r}")
        if weight <= 0.0:
            raise ValueError("weight must be positive")
        if servers is not None and servers < 1:
            raise ValueError("servers must be >= 1")
        t = DTransition(tid=len(self.transitions), name=name,
                        duration=duration, weight=weight, servers=servers)
        self.transitions.append(t)
        self._transition_names[name] = t.tid
        return t

    def connect(self, place: str | int, transition: DTransition,
                out: bool = False, multiplicity: int = 1) -> None:
        pid = (place if isinstance(place, int)
               else self._place_names[place])
        arcs = transition.outputs if out else transition.inputs
        arcs[pid] = arcs.get(pid, 0) + multiplicity

    def transition(self, name: str) -> DTransition:
        return self.transitions[self._transition_names[name]]

    @property
    def initial_state(self) -> State:
        return tuple(self._initial), ()

    # -- one-cycle semantics --------------------------------------------------

    def _active_count(self, t: DTransition, inflight) -> int:
        return sum(1 for tid, _ in inflight if tid == t.tid)

    def _can_start(self, t: DTransition, marking, inflight) -> bool:
        if t.servers is not None and self._active_count(t, inflight) >= t.servers:
            return False
        return all(marking[p] >= k for p, k in t.inputs.items())

    def _start_phase(self, marking: tuple[int, ...],
                     inflight: tuple[tuple[int, int], ...],
                     prob: float, starts: dict[int, float],
                     out: dict[State, float]) -> None:
        """Recursively resolve enabled transitions with weighted conflicts."""
        enabled = [t for t in self.transitions
                   if self._can_start(t, marking, inflight)]
        if not enabled:
            state = (marking, tuple(sorted(inflight)))
            out[state] = out.get(state, 0.0) + prob
            return
        total_weight = sum(t.weight for t in enabled)
        for t in enabled:
            p_branch = prob * t.weight / total_weight
            new_marking = list(marking)
            for pid, k in t.inputs.items():
                new_marking[pid] -= k
            starts[t.tid] = starts.get(t.tid, 0.0) + p_branch
            if t.immediate:
                for pid, k in t.outputs.items():
                    new_marking[pid] += k
                new_inflight = inflight
            elif isinstance(t.duration, Deterministic):
                new_inflight = inflight + ((t.tid, t.duration.cycles),)
            else:
                new_inflight = inflight + ((t.tid, GEOMETRIC_MARKER),)
            self._start_phase(tuple(new_marking), new_inflight,
                              p_branch, starts, out)

    def step(self, state: State) -> tuple[dict[State, float], dict[int, float]]:
        """One cycle: returns (successor distribution, expected starts)."""
        marking, inflight = state
        # Phase 1: advance deterministic countdowns; branch geometrics.
        fixed: list[tuple[int, int]] = []
        completed_now: list[int] = []
        geometrics: list[int] = []
        for tid, remaining in inflight:
            if remaining == GEOMETRIC_MARKER:
                geometrics.append(tid)
            elif remaining <= 1:
                completed_now.append(tid)
            else:
                fixed.append((tid, remaining - 1))

        successors: dict[State, float] = {}
        starts: dict[int, float] = {}
        for pattern in itertools.product((False, True), repeat=len(geometrics)):
            p_pattern = 1.0
            marking_after = list(marking)
            inflight_after = list(fixed)
            for tid in completed_now:
                for pid, k in self.transitions[tid].outputs.items():
                    marking_after[pid] += k
            for done, tid in zip(pattern, geometrics):
                p = self.transitions[tid].duration.p  # type: ignore[union-attr]
                if done:
                    p_pattern *= p
                    for pid, k in self.transitions[tid].outputs.items():
                        marking_after[pid] += k
                else:
                    p_pattern *= 1.0 - p
                    inflight_after.append((tid, GEOMETRIC_MARKER))
            if p_pattern <= 0.0:
                continue
            # Phase 2: start newly enabled work.
            self._start_phase(tuple(marking_after), tuple(inflight_after),
                              p_pattern, starts, successors)
        return successors, starts


def discrete_coherence_net(n_processors: int, inputs) -> DiscreteTimedNet:
    """The coherence model with the paper's *deterministic* bus times.

    Requires integer ``t_read`` / ``t_bc`` (e.g. a workload with
    csupply = rep = 0, where t_read is exactly the 8-cycle base); think
    time is geometric with mean tau + T_supply.  Compare with
    :func:`repro.gtpn.models.coherence_net`, whose exponential service
    avoids clocks-in-state at the cost of distribution fidelity.
    """
    if n_processors < 1:
        raise ValueError("n_processors must be >= 1")
    t_read = inputs.t_read
    t_bc = inputs.t_bc
    if abs(t_read - round(t_read)) > 1e-9 or abs(t_bc - round(t_bc)) > 1e-9:
        raise ValueError(
            "deterministic chain needs integer bus times, got "
            f"t_read={t_read}, t_bc={t_bc}; use a workload with "
            "csupply = rep = 0")
    think_mean = inputs.workload.tau + inputs.arch.t_supply
    if think_mean < 1.0:
        raise ValueError("tau + t_supply must be >= 1 cycle")

    net = DiscreteTimedNet(f"discrete_coherence_n{n_processors}")
    net.add_place("think", tokens=n_processors)
    net.add_place("choose")
    net.add_place("bus_free", tokens=1)
    net.add_place("wait_bc")
    net.add_place("wait_rr")

    issue = net.add_transition("issue", Geometric(1.0 / think_mean),
                               servers=None)
    net.connect("think", issue)
    net.connect("choose", issue, out=True)

    go_local = net.add_transition("go_local", Immediate(),
                                  weight=max(inputs.p_local, 1e-12))
    net.connect("choose", go_local)
    net.connect("think", go_local, out=True)
    go_bc = net.add_transition("go_bc", Immediate(),
                               weight=max(inputs.p_bc, 1e-12))
    net.connect("choose", go_bc)
    net.connect("wait_bc", go_bc, out=True)
    go_rr = net.add_transition("go_rr", Immediate(),
                               weight=max(inputs.p_rr, 1e-12))
    net.connect("choose", go_rr)
    net.connect("wait_rr", go_rr, out=True)

    serve_bc = net.add_transition("serve_bc", Deterministic(int(round(t_bc))))
    net.connect("wait_bc", serve_bc)
    net.connect("bus_free", serve_bc)
    net.connect("think", serve_bc, out=True)
    net.connect("bus_free", serve_bc, out=True)

    serve_rr = net.add_transition("serve_rr", Deterministic(int(round(t_read))))
    net.connect("wait_rr", serve_rr)
    net.connect("bus_free", serve_rr)
    net.connect("think", serve_rr, out=True)
    net.connect("bus_free", serve_rr, out=True)
    return net


def solve_discrete_coherence_speedup(n_processors: int, inputs,
                                     max_states: int = 100_000):
    """Speedup from the deterministic-time chain, plus its state count."""
    net = discrete_coherence_net(n_processors, inputs)
    solution = solve_discrete(net, max_states=max_states)
    throughput = solution.throughput("issue")
    ideal = inputs.workload.tau + inputs.arch.t_supply
    cycle = n_processors / throughput if throughput > 0.0 else float("inf")
    speedup = n_processors * ideal / cycle
    return speedup, solution.n_states


@dataclass(frozen=True)
class DiscreteSolution:
    """Stationary solution of the discrete-time chain."""

    n_states: int
    throughputs: dict[str, float]   # expected starts per cycle, by name

    def throughput(self, name: str) -> float:
        return self.throughputs.get(name, 0.0)


def solve_discrete(net: DiscreteTimedNet,
                   max_states: int = 100_000) -> DiscreteSolution:
    """Explore the chain and solve pi P = pi exactly."""
    index: dict[State, int] = {net.initial_state: 0}
    states: list[State] = [net.initial_state]
    rows: list[dict[int, float]] = []
    start_rows: list[dict[int, float]] = []
    frontier: deque[int] = deque([0])
    while frontier:
        sid = frontier.popleft()
        successors, starts = net.step(states[sid])
        row: dict[int, float] = {}
        for target, prob in successors.items():
            tid = index.get(target)
            if tid is None:
                if len(states) >= max_states:
                    raise RuntimeError(
                        f"more than {max_states} discrete states; the "
                        "deterministic-time chain explodes -- that is the "
                        "paper's point, but shrink the net to solve it")
                tid = len(states)
                index[target] = tid
                states.append(target)
                frontier.append(tid)
            row[tid] = row.get(tid, 0.0) + prob
        rows.append(row)
        start_rows.append(starts)

    n = len(states)
    p = lil_matrix((n, n))
    for i, row in enumerate(rows):
        for j, prob in row.items():
            p[i, j] = prob
    # Solve pi (P - I) = 0 with the last equation replaced by sum = 1.
    a = (p.T).tolil()
    for i in range(n):
        a[i, i] -= 1.0
    a[n - 1, :] = 1.0
    b = np.zeros(n)
    b[n - 1] = 1.0
    pi = np.asarray(spsolve(csc_matrix(a), b), dtype=float).ravel()
    pi[np.abs(pi) < 1e-15] = 0.0
    if (pi < -1e-9).any():
        raise RuntimeError("negative stationary probabilities")
    pi = np.clip(pi, 0.0, None)
    pi /= pi.sum()

    throughputs: dict[str, float] = {}
    for t in net.transitions:
        total = sum(float(pi[i]) * start_rows[i].get(t.tid, 0.0)
                    for i in range(n))
        throughputs[t.name] = total
    return DiscreteSolution(n_states=n, throughputs=throughputs)
