"""Petri-net structure: places, transitions, arcs, markings.

Markings are tuples of token counts indexed by place id, so they are
hashable and usable as Markov-chain state keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Place:
    """A token container."""

    pid: int
    name: str


@dataclass(frozen=True)
class Transition:
    """An immediate or timed transition.

    ``rate`` (timed) is the exponential firing rate per active server;
    ``weight`` (immediate) resolves probabilistic conflicts among
    simultaneously enabled immediate transitions.  ``servers`` bounds
    the number of concurrent firings counted into the effective rate:
    1 = single server, None = infinite server (rate scales with the
    enabling degree).
    """

    tid: int
    name: str
    rate: float | None = None
    weight: float = 1.0
    servers: int | None = 1

    @property
    def immediate(self) -> bool:
        return self.rate is None

    def __post_init__(self) -> None:
        if self.rate is not None and self.rate <= 0.0:
            raise ValueError(f"timed transition {self.name!r} needs rate > 0")
        if self.weight <= 0.0:
            raise ValueError(f"transition {self.name!r} needs weight > 0")
        if self.servers is not None and self.servers < 1:
            raise ValueError(f"transition {self.name!r} needs servers >= 1")


Marking = tuple[int, ...]


@dataclass
class _Arcs:
    inputs: dict[int, int] = field(default_factory=dict)      # place -> multiplicity
    outputs: dict[int, int] = field(default_factory=dict)
    inhibitors: dict[int, int] = field(default_factory=dict)  # place -> threshold


class PetriNet:
    """A mutable net builder with immutable query semantics once built."""

    def __init__(self, name: str = "net"):
        self.name = name
        self.places: list[Place] = []
        self.transitions: list[Transition] = []
        self._arcs: list[_Arcs] = []
        self._initial: list[int] = []
        self._place_index: dict[str, int] = {}
        self._transition_index: dict[str, int] = {}

    # -- construction -------------------------------------------------------

    def add_place(self, name: str, tokens: int = 0) -> Place:
        if name in self._place_index:
            raise ValueError(f"duplicate place name {name!r}")
        if tokens < 0:
            raise ValueError("initial tokens must be non-negative")
        place = Place(pid=len(self.places), name=name)
        self.places.append(place)
        self._initial.append(tokens)
        self._place_index[name] = place.pid
        return place

    def add_transition(self, name: str, rate: float | None = None,
                       weight: float = 1.0,
                       servers: int | None = 1) -> Transition:
        if name in self._transition_index:
            raise ValueError(f"duplicate transition name {name!r}")
        transition = Transition(tid=len(self.transitions), name=name,
                                rate=rate, weight=weight, servers=servers)
        self.transitions.append(transition)
        self._arcs.append(_Arcs())
        self._transition_index[name] = transition.tid
        return transition

    def connect(self, source: Place | Transition,
                target: Place | Transition, multiplicity: int = 1) -> None:
        """Add an arc place->transition (input) or transition->place (output)."""
        if multiplicity < 1:
            raise ValueError("arc multiplicity must be >= 1")
        if isinstance(source, Place) and isinstance(target, Transition):
            arcs = self._arcs[target.tid]
            arcs.inputs[source.pid] = arcs.inputs.get(source.pid, 0) + multiplicity
        elif isinstance(source, Transition) and isinstance(target, Place):
            arcs = self._arcs[source.tid]
            arcs.outputs[target.pid] = arcs.outputs.get(target.pid, 0) + multiplicity
        else:
            raise TypeError("arcs connect a place and a transition")

    def inhibit(self, place: Place, transition: Transition,
                threshold: int = 1) -> None:
        """Inhibitor arc: transition disabled when tokens(place) >= threshold."""
        if threshold < 1:
            raise ValueError("inhibitor threshold must be >= 1")
        self._arcs[transition.tid].inhibitors[place.pid] = threshold

    # -- lookup --------------------------------------------------------------

    def place(self, name: str) -> Place:
        return self.places[self._place_index[name]]

    def transition(self, name: str) -> Transition:
        return self.transitions[self._transition_index[name]]

    @property
    def initial_marking(self) -> Marking:
        return tuple(self._initial)

    # -- semantics ------------------------------------------------------------

    def enabling_degree(self, transition: Transition, marking: Marking) -> int:
        """How many times the transition could fire concurrently."""
        arcs = self._arcs[transition.tid]
        for pid, threshold in arcs.inhibitors.items():
            if marking[pid] >= threshold:
                return 0
        if not arcs.inputs:
            return 0 if arcs.inhibitors else 1
        degree = min(marking[pid] // mult for pid, mult in arcs.inputs.items())
        return degree

    def is_enabled(self, transition: Transition, marking: Marking) -> bool:
        return self.enabling_degree(transition, marking) > 0

    def effective_rate(self, transition: Transition, marking: Marking) -> float:
        """Rate x min(enabling degree, servers) for timed transitions."""
        if transition.immediate:
            raise ValueError("immediate transitions have no rate")
        degree = self.enabling_degree(transition, marking)
        if degree == 0:
            return 0.0
        if transition.servers is not None:
            degree = min(degree, transition.servers)
        assert transition.rate is not None
        return transition.rate * degree

    def fire(self, transition: Transition, marking: Marking) -> Marking:
        """The marking after one firing."""
        if not self.is_enabled(transition, marking):
            raise ValueError(f"{transition.name!r} not enabled in {marking}")
        arcs = self._arcs[transition.tid]
        next_marking = list(marking)
        for pid, mult in arcs.inputs.items():
            next_marking[pid] -= mult
        for pid, mult in arcs.outputs.items():
            next_marking[pid] += mult
        return tuple(next_marking)

    def enabled_transitions(self, marking: Marking) -> list[Transition]:
        return [t for t in self.transitions if self.is_enabled(t, marking)]

    def total_tokens(self, marking: Marking) -> int:
        return sum(marking)


def erlang_stages(net: PetriNet, name: str, source: Place, target: Place,
                  mean_time: float, stages: int,
                  servers: int | None = 1) -> list[Transition]:
    """Approximate a deterministic delay by an Erlang-k chain of places.

    Moves tokens from ``source`` to ``target`` through ``stages``
    exponential stages whose total mean is ``mean_time``; the squared
    coefficient of variation is 1/stages, so large k approaches the
    deterministic firing times of the original GTPN -- at the cost of
    k-1 extra places per delay, which is where the state space explodes.
    """
    if stages < 1:
        raise ValueError("stages must be >= 1")
    if mean_time <= 0.0:
        raise ValueError("mean_time must be positive")
    rate = stages / mean_time
    transitions = []
    previous = source
    for k in range(stages):
        is_last = k == stages - 1
        nxt = target if is_last else net.add_place(f"{name}_stage{k + 1}")
        t = net.add_transition(f"{name}_t{k + 1}", rate=rate, servers=servers)
        net.connect(previous, t)
        net.connect(t, nxt)
        transitions.append(t)
        previous = nxt
    return transitions
