"""Ready-made nets: textbook oracles plus a reduced coherence model.

The coherence net is the GTPN-style detailed comparator for *small* N:
it resolves every request through a probabilistic choice (immediate
transitions weighted by p_local / p_bc / p_rr), queues bus transactions
at a single-server bus, and routes broadcast transactions through a
memory-module stage.  Exponential (or Erlang-staged) service stands in
for the paper's deterministic firing times; experiment E10 shows how
the state space -- and hence solution cost -- explodes with N and with
the Erlang stage count, which is exactly the phenomenon that motivated
the paper's MVA.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gtpn.markov import solve_steady_state
from repro.gtpn.measures import SteadyStateMeasures
from repro.gtpn.net import PetriNet, erlang_stages
from repro.gtpn.reachability import build_reachability
from repro.workload.derived import DerivedInputs


def mm1_net(arrival_rate: float, service_rate: float,
            capacity: int) -> PetriNet:
    """An M/M/1/c queue: Poisson source, exponential server, finite room."""
    net = PetriNet("mm1")
    queue = net.add_place("queue", tokens=0)
    room = net.add_place("room", tokens=capacity)
    arrive = net.add_transition("arrive", rate=arrival_rate)
    serve = net.add_transition("serve", rate=service_rate)
    net.connect(room, arrive)
    net.connect(arrive, queue)
    net.connect(queue, serve)
    net.connect(serve, room)
    return net


def machine_repairman_net(n_machines: int, think_rate: float,
                          service_rate: float) -> PetriNet:
    """The interactive-system (machine repairman) model: N thinking
    customers, one exponential server."""
    net = PetriNet("repairman")
    thinking = net.add_place("thinking", tokens=n_machines)
    waiting = net.add_place("waiting", tokens=0)
    fail = net.add_transition("fail", rate=think_rate, servers=None)
    repair = net.add_transition("repair", rate=service_rate, servers=1)
    net.connect(thinking, fail)
    net.connect(fail, waiting)
    net.connect(waiting, repair)
    net.connect(repair, thinking)
    return net


def coherence_net(n_processors: int, inputs: DerivedInputs,
                  erlang: int = 1) -> PetriNet:
    """A reduced coherence GTPN for the paper's workload.

    Structure per request cycle: THINK --(rate 1/(tau+T_supply),
    infinite server)--> CHOOSE --(immediate, weights p_local/p_bc/
    p_rr)--> either back to THINK (local), through the broadcast bus
    stage, or through the remote-read bus stage.  The bus is a single
    server shared by both stages; ``erlang`` > 1 sharpens the service
    stages towards the deterministic durations of the true GTPN.

    Cache interference is not represented (it is second-order for the
    Appendix-A workloads); the comparison harness accounts for that.
    """
    if n_processors < 1:
        raise ValueError("n_processors must be >= 1")
    w = inputs.workload
    think_time = w.tau + inputs.arch.t_supply
    if think_time <= 0.0:
        raise ValueError("tau + t_supply must be positive for the GTPN model")

    net = PetriNet(f"coherence_n{n_processors}")
    think = net.add_place("think", tokens=n_processors)
    choose = net.add_place("choose")
    bus_free = net.add_place("bus_free", tokens=1)
    wait_bc = net.add_place("wait_bc")
    wait_rr = net.add_place("wait_rr")
    done_bc = net.add_place("done_bc")
    done_rr = net.add_place("done_rr")

    issue = net.add_transition("issue", rate=1.0 / think_time, servers=None)
    net.connect(think, issue)
    net.connect(issue, choose)

    go_local = net.add_transition("go_local", weight=max(inputs.p_local, 1e-12))
    net.connect(choose, go_local)
    net.connect(go_local, think)

    go_bc = net.add_transition("go_bc", weight=max(inputs.p_bc, 1e-12))
    net.connect(choose, go_bc)
    net.connect(go_bc, wait_bc)

    go_rr = net.add_transition("go_rr", weight=max(inputs.p_rr, 1e-12))
    net.connect(choose, go_rr)
    net.connect(go_rr, wait_rr)

    # Bus service: acquire the bus token, hold it through the (possibly
    # Erlang-staged) service, release on completion.
    grant_bc = net.add_transition("grant_bc", weight=1.0)
    net.connect(wait_bc, grant_bc)
    net.connect(bus_free, grant_bc)
    busy_bc = net.add_place("busy_bc")
    net.connect(grant_bc, busy_bc)
    # Mean broadcast bus holding: the write-word / invalidate cycle.  The
    # module wait the MVA folds into w_mem is second-order and, like
    # cache interference, is not represented in the reduced net.
    bc_hold = inputs.t_bc
    erlang_stages(net, "serve_bc", busy_bc, done_bc, bc_hold, erlang)
    release_bc = net.add_transition("release_bc", weight=1.0)
    net.connect(done_bc, release_bc)
    net.connect(release_bc, think)
    net.connect(release_bc, bus_free)

    grant_rr = net.add_transition("grant_rr", weight=1.0)
    net.connect(wait_rr, grant_rr)
    net.connect(bus_free, grant_rr)
    busy_rr = net.add_place("busy_rr")
    net.connect(grant_rr, busy_rr)
    erlang_stages(net, "serve_rr", busy_rr, done_rr, inputs.t_read, erlang)
    release_rr = net.add_transition("release_rr", weight=1.0)
    net.connect(done_rr, release_rr)
    net.connect(release_rr, think)
    net.connect(release_rr, bus_free)
    return net


def coherence_net_detailed(n_processors: int, inputs: DerivedInputs,
                           erlang: int = 1) -> PetriNet:
    """A richer coherence net: memory-module contention and remote-read
    branching.

    Extends :func:`coherence_net` with the two mechanisms the reduced
    net abstracts away:

    * broadcasts that update memory must first acquire one of the m
      module tokens and hold the bus while none is free -- the Petri
      analogue of equation (7)'s w_mem nesting (module recovery is a
      timed transition of mean d_mem);
    * remote reads split into explicit branches -- supplier-flush vs
      plain memory read, each with or without a replacement write-back
      -- with the exact per-branch durations, so the service-time
      *variance* the mean-value model discards is represented.

    The price is the state space: typically several times the reduced
    net's, which is the paper's cost story (experiment E10/X5).
    """
    if n_processors < 1:
        raise ValueError("n_processors must be >= 1")
    w = inputs.workload
    arch = inputs.arch
    think_time = w.tau + arch.t_supply
    if think_time <= 0.0:
        raise ValueError("tau + t_supply must be positive for the GTPN model")

    net = PetriNet(f"coherence_detailed_n{n_processors}")
    think = net.add_place("think", tokens=n_processors)
    choose = net.add_place("choose")
    bus_free = net.add_place("bus_free", tokens=1)
    mem_free = net.add_place("mem_free", tokens=arch.memory_modules)

    issue = net.add_transition("issue", rate=1.0 / think_time, servers=None)
    net.connect(think, issue)
    net.connect(issue, choose)

    go_local = net.add_transition("go_local", weight=max(inputs.p_local, 1e-12))
    net.connect(choose, go_local)
    net.connect(go_local, think)

    # --- broadcast stage ---------------------------------------------------
    wait_bc = net.add_place("wait_bc")
    go_bc = net.add_transition("go_bc", weight=max(inputs.p_bc, 1e-12))
    net.connect(choose, go_bc)
    net.connect(go_bc, wait_bc)
    grant_bc = net.add_transition("grant_bc", weight=1.0)
    net.connect(wait_bc, grant_bc)
    net.connect(bus_free, grant_bc)
    if inputs.bc_updates_memory:
        # Hold the bus until a module token is available.
        bc_need_mem = net.add_place("bc_need_mem")
        net.connect(grant_bc, bc_need_mem)
        acquire = net.add_transition("bc_acquire_mem", weight=1.0)
        net.connect(bc_need_mem, acquire)
        net.connect(mem_free, acquire)
        bc_busy = net.add_place("bc_busy")
        net.connect(acquire, bc_busy)
        done_bc = net.add_place("done_bc")
        erlang_stages(net, "serve_bc", bc_busy, done_bc, inputs.t_bc, erlang)
        release_bc = net.add_transition("release_bc", weight=1.0)
        net.connect(done_bc, release_bc)
        net.connect(release_bc, think)
        net.connect(release_bc, bus_free)
        # The module drains for d_mem after the bus moves on.
        mem_busy = net.add_place("mem_busy")
        net.connect(release_bc, mem_busy)
        recover = net.add_transition("mem_recover",
                                     rate=1.0 / arch.memory_latency,
                                     servers=None)
        net.connect(mem_busy, recover)
        net.connect(recover, mem_free)
    else:
        bc_busy = net.add_place("bc_busy")
        net.connect(grant_bc, bc_busy)
        done_bc = net.add_place("done_bc")
        erlang_stages(net, "serve_bc", bc_busy, done_bc, inputs.t_bc, erlang)
        release_bc = net.add_transition("release_bc", weight=1.0)
        net.connect(done_bc, release_bc)
        net.connect(release_bc, think)
        net.connect(release_bc, bus_free)

    # --- remote-read stage with explicit branches ----------------------------
    wait_rr = net.add_place("wait_rr")
    go_rr = net.add_transition("go_rr", weight=max(inputs.p_rr, 1e-12))
    net.connect(choose, go_rr)
    net.connect(go_rr, wait_rr)
    granted_rr = net.add_place("granted_rr")
    grant_rr = net.add_transition("grant_rr", weight=1.0)
    net.connect(wait_rr, grant_rr)
    net.connect(bus_free, grant_rr)
    net.connect(grant_rr, granted_rr)

    t_block = arch.block_transfer_cycles
    p_flush = inputs.p_csupwb_rr
    if 2 in inputs.mods:
        p_direct = inputs.p_csup_rr * w.wb_csupply
        base_main, base_alt, p_alt = (arch.base_read_cycles,
                                      arch.cache_supply_cycles, p_direct)
    else:
        base_main, base_alt, p_alt = (arch.base_read_cycles,
                                      arch.base_read_cycles + t_block,
                                      p_flush)
    branches = [
        ("rr_plain", (1.0 - p_alt) * (1.0 - inputs.p_reqwb_rr), base_main),
        ("rr_plain_wb", (1.0 - p_alt) * inputs.p_reqwb_rr,
         base_main + t_block),
        ("rr_alt", p_alt * (1.0 - inputs.p_reqwb_rr), base_alt),
        ("rr_alt_wb", p_alt * inputs.p_reqwb_rr, base_alt + t_block),
    ]
    done_rr = net.add_place("done_rr")
    for name, weight, duration in branches:
        if weight <= 0.0 or duration <= 0.0:
            continue
        stage = net.add_place(f"{name}_busy")
        pick = net.add_transition(f"{name}_pick", weight=max(weight, 1e-12))
        net.connect(granted_rr, pick)
        net.connect(pick, stage)
        erlang_stages(net, f"{name}_serve", stage, done_rr, duration, erlang)
    release_rr = net.add_transition("release_rr", weight=1.0)
    net.connect(done_rr, release_rr)
    net.connect(release_rr, think)
    net.connect(release_rr, bus_free)
    return net


@dataclass(frozen=True)
class CoherenceSolution:
    """Speedup and diagnostics from the exact coherence-net solution."""

    n_processors: int
    speedup: float
    cycle_time: float
    bus_utilization: float
    n_states: int
    n_tangible: int


def solve_coherence_speedup(n_processors: int, inputs: DerivedInputs,
                            erlang: int = 1,
                            max_states: int = 200_000,
                            detailed: bool = False) -> CoherenceSolution:
    """Build, explore and exactly solve the coherence net; report speedup.

    Speedup uses the paper's formula N (tau + T_supply) / R with R from
    Little's law on the issue transition's throughput.  ``detailed``
    selects :func:`coherence_net_detailed` (memory contention + branch
    variance) at its larger state-space cost.
    """
    build = coherence_net_detailed if detailed else coherence_net
    net = build(n_processors, inputs, erlang=erlang)
    graph = build_reachability(net, max_states=max_states)
    steady = solve_steady_state(graph)
    measures = SteadyStateMeasures(steady)
    throughput = measures.throughput(net.transition("issue"))
    w = inputs.workload
    ideal = w.tau + inputs.arch.t_supply
    cycle = n_processors / throughput if throughput > 0.0 else float("inf")
    speedup = n_processors * ideal / cycle
    bus_util = 1.0 - measures.utilization(net.place("bus_free"))
    return CoherenceSolution(
        n_processors=n_processors,
        speedup=speedup,
        cycle_time=cycle,
        bus_utilization=bus_util,
        n_states=graph.n_states,
        n_tangible=graph.n_tangible,
    )
