"""Vanishing-state elimination and CTMC steady-state solution.

The reachability graph mixes tangible markings (exponential sojourn)
with vanishing markings (zero sojourn).  We first fold vanishing
markings into direct tangible-to-tangible rates, then solve the
stationary equations pi Q = 0, sum(pi) = 1 with a sparse direct solve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import csc_matrix, lil_matrix
from scipy.sparse.linalg import spsolve

from repro.gtpn.reachability import ReachabilityGraph


class VanishingLoopError(RuntimeError):
    """Raised when immediate transitions form a probability-1 cycle."""


@dataclass(frozen=True)
class SteadyState:
    """Stationary distribution over tangible states.

    ``pi`` is indexed by position in ``tangible_ids`` (the state ids of
    the reachability graph that are tangible); ``probability_of`` maps
    back through the graph indices.
    """

    graph: ReachabilityGraph
    tangible_ids: tuple[int, ...]
    pi: np.ndarray

    def probability_of(self, state_id: int) -> float:
        """Stationary probability of one tangible state id."""
        try:
            position = self.tangible_ids.index(state_id)
        except ValueError:
            return 0.0  # vanishing states have zero sojourn time
        return float(self.pi[position])


def _absorb_vanishing(graph: ReachabilityGraph, source: int,
                      max_depth: int = 10_000) -> dict[int, float]:
    """Probabilities of reaching each tangible state from ``source``
    through vanishing states only (iterative, cycle-guarded)."""
    result: dict[int, float] = {}
    # Stack of (state, probability mass, depth).
    stack = [(source, 1.0, 0)]
    while stack:
        sid, mass, depth = stack.pop()
        if depth > max_depth:
            raise VanishingLoopError(
                "immediate-transition cycle (or extremely deep vanishing "
                f"chain) detected from state {source}")
        if graph.tangible[sid]:
            result[sid] = result.get(sid, 0.0) + mass
            continue
        edges = graph.edges[sid]
        if not edges:
            # Vanishing deadlock: treat as absorbing tangible-like state.
            result[sid] = result.get(sid, 0.0) + mass
            continue
        for edge in edges:
            if mass * edge.value > 1e-15:
                stack.append((edge.target, mass * edge.value, depth + 1))
    return result


def solve_steady_state(graph: ReachabilityGraph) -> SteadyState:
    """Exact stationary distribution of the embedded CTMC."""
    tangible_ids = tuple(sid for sid in range(graph.n_states)
                         if graph.tangible[sid])
    if not tangible_ids:
        raise ValueError("no tangible states: the net is purely immediate")
    position = {sid: k for k, sid in enumerate(tangible_ids)}
    n = len(tangible_ids)

    q = lil_matrix((n, n))
    for sid in tangible_ids:
        i = position[sid]
        for edge in graph.edges[sid]:
            rate = edge.value
            targets = ({edge.target: 1.0} if graph.tangible[edge.target]
                       else _absorb_vanishing(graph, edge.target))
            for target_sid, prob in targets.items():
                if target_sid not in position:
                    # Reached a vanishing deadlock; treat as a sink by
                    # ignoring (mass conservation is checked by tests on
                    # well-formed nets).
                    continue
                j = position[target_sid]
                q[i, j] += rate * prob
            q[i, i] -= rate

    # Replace one balance equation with the normalization sum(pi) = 1.
    # Solve Q^T pi = 0 with the last row forced to ones.
    a = csc_matrix(q.T)
    a = a.tolil()
    a[n - 1, :] = 1.0
    b = np.zeros(n)
    b[n - 1] = 1.0
    pi = spsolve(csc_matrix(a), b)
    pi = np.asarray(pi, dtype=float).ravel()
    # Clean tiny negatives from the direct solve.
    pi[pi < 0.0] = np.where(pi[pi < 0.0] > -1e-9, 0.0, pi[pi < 0.0])
    if (pi < 0.0).any():
        raise RuntimeError("stationary solve produced negative probabilities")
    total = pi.sum()
    if not np.isfinite(total) or total <= 0.0:
        raise RuntimeError("stationary solve failed to normalize")
    pi /= total
    return SteadyState(graph=graph, tangible_ids=tangible_ids, pi=pi)
