"""Reachability-graph construction.

States are markings; edges carry either an exponential rate (from a
*tangible* marking, where only timed transitions are enabled) or a
probability (from a *vanishing* marking, where immediate transitions
fire in zero time and win any race).  The graph size is the cost the
paper complains about: it "increases exponentially with the number of
processors analyzed" (Section 3.2), which experiment E10 measures.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.gtpn.net import Marking, PetriNet, Transition


class StateSpaceExplosion(RuntimeError):
    """Raised when exploration exceeds the configured state budget."""


@dataclass(frozen=True)
class Edge:
    """One transition firing: source/target are state indices."""

    source: int
    target: int
    transition: Transition
    #: Exponential rate (tangible source) or probability (vanishing source).
    value: float


@dataclass
class ReachabilityGraph:
    """The explored state space of a net."""

    net: PetriNet
    states: list[Marking] = field(default_factory=list)
    index: dict[Marking, int] = field(default_factory=dict)
    edges: list[list[Edge]] = field(default_factory=list)
    tangible: list[bool] = field(default_factory=list)

    @property
    def n_states(self) -> int:
        return len(self.states)

    @property
    def n_tangible(self) -> int:
        return sum(self.tangible)

    @property
    def n_vanishing(self) -> int:
        return len(self.states) - self.n_tangible

    def state_id(self, marking: Marking) -> int:
        return self.index[marking]


def build_reachability(net: PetriNet, max_states: int = 200_000) -> ReachabilityGraph:
    """Breadth-first exploration from the initial marking.

    Immediate transitions dominate: in a marking where any immediate
    transition is enabled (a vanishing marking), timed transitions do
    not compete, and the enabled immediate transitions fire with
    probability proportional to their weights.  Deadlocked markings
    (no enabled transitions) are permitted and become absorbing.
    """
    graph = ReachabilityGraph(net=net)
    initial = net.initial_marking
    graph.states.append(initial)
    graph.index[initial] = 0
    graph.edges.append([])
    graph.tangible.append(True)  # provisional; fixed below
    frontier: deque[int] = deque([0])

    while frontier:
        sid = frontier.popleft()
        marking = graph.states[sid]
        enabled = net.enabled_transitions(marking)
        immediates = [t for t in enabled if t.immediate]
        if immediates:
            graph.tangible[sid] = False
            total_weight = sum(t.weight for t in immediates)
            for t in immediates:
                target = net.fire(t, marking)
                tid = _intern(graph, target, frontier, max_states)
                graph.edges[sid].append(Edge(
                    source=sid, target=tid, transition=t,
                    value=t.weight / total_weight))
        else:
            graph.tangible[sid] = True
            for t in enabled:
                rate = net.effective_rate(t, marking)
                if rate <= 0.0:
                    continue
                target = net.fire(t, marking)
                tid = _intern(graph, target, frontier, max_states)
                graph.edges[sid].append(Edge(
                    source=sid, target=tid, transition=t, value=rate))
    return graph


def _intern(graph: ReachabilityGraph, marking: Marking,
            frontier: deque[int], max_states: int) -> int:
    """Index a marking, enqueueing it for exploration if new."""
    existing = graph.index.get(marking)
    if existing is not None:
        return existing
    if len(graph.states) >= max_states:
        raise StateSpaceExplosion(
            f"more than {max_states} reachable markings for net "
            f"{graph.net.name!r}; raise max_states or shrink the model")
    sid = len(graph.states)
    graph.states.append(marking)
    graph.index[marking] = sid
    graph.edges.append([])
    graph.tangible.append(True)
    frontier.append(sid)
    return sid
