"""Performance measures over a solved net."""

from __future__ import annotations

from collections.abc import Callable

from repro.gtpn.markov import SteadyState
from repro.gtpn.net import Marking, Place, Transition


class SteadyStateMeasures:
    """Token expectations, state probabilities, and throughputs."""

    def __init__(self, steady: SteadyState):
        self.steady = steady
        self.graph = steady.graph
        self.net = steady.graph.net

    def probability(self, predicate: Callable[[Marking], bool]) -> float:
        """Stationary probability that the marking satisfies ``predicate``."""
        total = 0.0
        for position, sid in enumerate(self.steady.tangible_ids):
            if predicate(self.graph.states[sid]):
                total += float(self.steady.pi[position])
        return total

    def expected_tokens(self, place: Place) -> float:
        """E[#tokens in place]."""
        total = 0.0
        for position, sid in enumerate(self.steady.tangible_ids):
            total += (self.graph.states[sid][place.pid]
                      * float(self.steady.pi[position]))
        return total

    def utilization(self, place: Place) -> float:
        """P(place non-empty) -- server-busy style measures."""
        return self.probability(lambda m: m[place.pid] > 0)

    def throughput(self, transition: Transition) -> float:
        """Mean firings per unit time.

        Timed transition: sum over tangible states of pi(s) times the
        effective (server-scaled) rate.  Immediate transition: the rate
        mass flowing through it out of vanishing states, computed by
        weighting each tangible exit rate with the probability that the
        subsequent vanishing walk fires the transition -- for the common
        single-hop case this reduces to rate * branching probability.
        """
        if not transition.immediate:
            total = 0.0
            for position, sid in enumerate(self.steady.tangible_ids):
                rate = self.net.effective_rate(
                    transition, self.graph.states[sid])
                total += rate * float(self.steady.pi[position])
            return total
        return self._immediate_throughput(transition)

    def _immediate_throughput(self, transition: Transition) -> float:
        total = 0.0
        for position, sid in enumerate(self.steady.tangible_ids):
            pi_s = float(self.steady.pi[position])
            if pi_s == 0.0:
                continue
            for edge in self.graph.edges[sid]:
                if self.graph.tangible[edge.target]:
                    continue
                total += (pi_s * edge.value
                          * self._firing_frequency(edge.target, transition))
        return total

    def _firing_frequency(self, vanishing_sid: int,
                          transition: Transition,
                          depth: int = 0) -> float:
        """Expected firings of ``transition`` during the vanishing walk
        starting at ``vanishing_sid``."""
        if depth > 1000:
            raise RuntimeError("vanishing walk too deep")
        if self.graph.tangible[vanishing_sid]:
            return 0.0
        total = 0.0
        for edge in self.graph.edges[vanishing_sid]:
            fired = 1.0 if edge.transition.tid == transition.tid else 0.0
            downstream = self._firing_frequency(edge.target, transition,
                                                depth + 1)
            total += edge.value * (fired + downstream)
        return total

    def mean_cycle_time(self, population: int,
                        completion: Transition) -> float:
        """Little's-law cycle time: population / throughput(completion)."""
        x = self.throughput(completion)
        if x <= 0.0:
            return float("inf")
        return population / x
