"""Approximate (Schweitzer/Bard) Mean Value Analysis.

Replaces the exact population recursion with the fixed point of

    Q_k(N-1) ~= (N-1)/N * Q_k(N)

which is precisely the style of arrival-instant approximation the paper
uses in its equations (6) and (8): the queue seen by an arriving
customer is estimated by the steady-state queue with that customer
removed.  Cost O(K) per iteration, independent of N -- the property the
paper's Section 3.2 efficiency claims rest on.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.queueing.centers import Center, CenterKind
from repro.queueing.mva_exact import MVAResult, _validate


def approximate_mva(
    centers: Sequence[Center],
    population: int,
    tolerance: float = 1e-10,
    max_iterations: int = 10000,
) -> MVAResult:
    """Solve the closed network with the Schweitzer fixed point."""
    _validate(centers, population)
    if tolerance <= 0.0:
        raise ValueError("tolerance must be positive")
    n = population
    if n == 0:
        zeros = {c.name: 0.0 for c in centers}
        return MVAResult(population=0, throughput=0.0, response_time=0.0,
                         residence_times=dict(zeros), queue_lengths=dict(zeros),
                         utilizations=dict(zeros))

    queueing_centers = [c for c in centers if c.kind is CenterKind.QUEUEING]
    # Initial guess: population evenly spread over queueing centers.
    queue = {c.name: n / max(len(queueing_centers), 1) for c in queueing_centers}
    residence = {c.name: 0.0 for c in centers}
    throughput = 0.0
    for _ in range(max_iterations):
        for c in centers:
            if c.kind is CenterKind.QUEUEING:
                seen = (n - 1) / n * queue[c.name]
                residence[c.name] = c.demand * (1.0 + seen)
            else:
                residence[c.name] = c.demand
        total = sum(residence.values())
        throughput = n / total if total > 0.0 else float("inf")
        delta = 0.0
        for c in queueing_centers:
            new_q = throughput * residence[c.name]
            delta = max(delta, abs(new_q - queue[c.name]))
            queue[c.name] = new_q
        if delta < tolerance:
            break
    else:
        raise RuntimeError("Schweitzer MVA failed to converge")

    all_queues = {c.name: throughput * residence[c.name] for c in centers}
    utilizations = {
        c.name: (min(throughput * c.demand, 1.0)
                 if c.kind is CenterKind.QUEUEING else throughput * c.demand)
        for c in centers
    }
    return MVAResult(
        population=n,
        throughput=throughput,
        response_time=n / throughput if throughput > 0.0 else 0.0,
        residence_times=dict(residence),
        queue_lengths=all_queues,
        utilizations=utilizations,
    )
