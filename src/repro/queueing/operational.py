"""Operational laws ([LZGS84] Chapter 3) as checkable assertions.

Little's law, the utilization law, the forced-flow law, the response
time law, and bottleneck analysis.  Beyond their textbook role, they
are used as *consistency oracles*: any set of measurements (from the
MVA, the simulator, or the Petri-net solver) must satisfy them, so
:func:`check_consistency` is a cheap cross-model audit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def littles_law_n(throughput: float, response_time: float) -> float:
    """N = X * R."""
    return throughput * response_time


def utilization_law(throughput: float, service_demand: float) -> float:
    """U = X * D."""
    return throughput * service_demand


def forced_flow_law(system_throughput: float, visit_count: float) -> float:
    """X_k = X * V_k."""
    return system_throughput * visit_count


def response_time_law(population: int, throughput: float,
                      think_time: float) -> float:
    """R = N / X - Z (interactive response time law)."""
    if throughput <= 0.0:
        return math.inf
    return population / throughput - think_time


def bottleneck_throughput_bound(max_demand: float) -> float:
    """X <= 1 / D_max."""
    if max_demand <= 0.0:
        return math.inf
    return 1.0 / max_demand


@dataclass(frozen=True)
class ConsistencyReport:
    """Outcome of an operational-law audit on one set of measurements."""

    littles_law_residual: float
    utilization_residual: float
    consistent: bool
    tolerance: float


def check_consistency(
    population: int,
    throughput: float,
    response_time: float,
    utilization: float,
    service_demand: float,
    tolerance: float = 1e-6,
) -> ConsistencyReport:
    """Audit X, R, U, D against Little's law and the utilization law.

    ``response_time`` here is the full cycle time (including any think
    time), so Little's law reads N = X * R exactly.
    """
    if tolerance <= 0.0:
        raise ValueError("tolerance must be positive")
    n_implied = littles_law_n(throughput, response_time)
    little_residual = abs(n_implied - population) / max(population, 1)
    u_implied = utilization_law(throughput, service_demand)
    # Utilization saturates at 1; only audit the unsaturated regime.
    if u_implied < 0.999 and utilization < 0.999:
        util_residual = abs(u_implied - utilization) / max(u_implied, 1e-12)
    else:
        util_residual = 0.0
    return ConsistencyReport(
        littles_law_residual=little_residual,
        utilization_residual=util_residual,
        consistent=(little_residual <= tolerance
                    and util_residual <= tolerance),
        tolerance=tolerance,
    )


def audit_mva_report(report, bus_demand: float,
                     tolerance: float = 1e-6) -> ConsistencyReport:
    """Audit a :class:`~repro.core.metrics.PerformanceReport`.

    The system throughput is N/R by construction, so Little's law holds
    identically; the meaningful check is the utilization law on the
    bus: U_bus = (N/R) * (bus demand per request).
    """
    throughput = report.n_processors / report.cycle_time
    return check_consistency(
        population=report.n_processors,
        throughput=throughput,
        response_time=report.cycle_time,
        utilization=report.u_bus,
        service_demand=bus_demand,
        tolerance=tolerance,
    )
