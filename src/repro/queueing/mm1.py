"""M/M/1 and M/D/1 closed forms, used as oracles in the test suite."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class MM1:
    """M/M/1 queue: Poisson arrivals, exponential service, one server."""

    arrival_rate: float
    service_rate: float

    def __post_init__(self) -> None:
        if self.arrival_rate < 0.0 or self.service_rate <= 0.0:
            raise ValueError("need arrival_rate >= 0 and service_rate > 0")

    @property
    def utilization(self) -> float:
        return self.arrival_rate / self.service_rate

    @property
    def stable(self) -> bool:
        return self.utilization < 1.0

    @property
    def mean_queue_length(self) -> float:
        """Mean number in system, rho / (1 - rho)."""
        rho = self.utilization
        return rho / (1.0 - rho) if self.stable else math.inf

    @property
    def mean_response_time(self) -> float:
        """Mean time in system, 1 / (mu - lambda)."""
        if not self.stable:
            return math.inf
        return 1.0 / (self.service_rate - self.arrival_rate)

    @property
    def mean_waiting_time(self) -> float:
        """Mean time in queue (excluding service)."""
        if not self.stable:
            return math.inf
        return self.mean_response_time - 1.0 / self.service_rate


@dataclass(frozen=True)
class MD1:
    """M/D/1 queue: Poisson arrivals, deterministic service."""

    arrival_rate: float
    service_time: float

    def __post_init__(self) -> None:
        if self.arrival_rate < 0.0 or self.service_time < 0.0:
            raise ValueError("need non-negative arrival_rate and service_time")

    @property
    def utilization(self) -> float:
        return self.arrival_rate * self.service_time

    @property
    def stable(self) -> bool:
        return self.utilization < 1.0

    @property
    def mean_waiting_time(self) -> float:
        """Pollaczek-Khinchine: rho s / (2 (1 - rho))."""
        rho = self.utilization
        if not self.stable:
            return math.inf
        return rho * self.service_time / (2.0 * (1.0 - rho))

    @property
    def mean_response_time(self) -> float:
        return (self.mean_waiting_time + self.service_time
                if self.stable else math.inf)

    @property
    def mean_queue_length(self) -> float:
        """Little's law on the full system."""
        if not self.stable:
            return math.inf
        return self.arrival_rate * self.mean_response_time
