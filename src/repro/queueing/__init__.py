"""Classical queueing-network analysis (Lazowska et al. 1984, [LZGS84]).

The paper's "customized mean value equations" apply "techniques from
Product Form queueing networks [LZGS84] in an approximate way".  This
package provides the standard machinery those techniques come from:

* :func:`exact_mva` -- exact Mean Value Analysis of closed single-class
  product-form networks (queueing and delay centers);
* :func:`approximate_mva` -- the Schweitzer/Bard fixed-point
  approximation, the direct ancestor of the paper's arrival-instant
  estimates (equations 6 and 8);
* :mod:`~repro.queueing.residual` -- residual-life formulas behind
  equation (10);
* :mod:`~repro.queueing.mm1` -- M/M/1 and M/D/1 closed forms used as
  test oracles.

The substrate is used by the test-suite to cross-validate the custom
model in limiting cases (e.g. with cache and memory interference
switched off, the multiprocessor reduces to a delay center plus one
FCFS bus queue).
"""

from repro.queueing.centers import Center, CenterKind, delay, queueing
from repro.queueing.mva_exact import MVAResult, exact_mva
from repro.queueing.mva_approx import approximate_mva
from repro.queueing.mva_multiclass import (
    CustomerClass,
    MulticlassResult,
    approximate_mva_multiclass,
    exact_mva_multiclass,
)
from repro.queueing.mm1 import MD1, MM1
from repro.queueing.residual import mean_residual_life, residual_life_mixture

__all__ = [
    "Center",
    "CenterKind",
    "CustomerClass",
    "MD1",
    "MM1",
    "MVAResult",
    "MulticlassResult",
    "approximate_mva",
    "approximate_mva_multiclass",
    "delay",
    "exact_mva",
    "exact_mva_multiclass",
    "mean_residual_life",
    "queueing",
    "residual_life_mixture",
]
