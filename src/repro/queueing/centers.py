"""Service-center descriptions for closed queueing networks."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class CenterKind(enum.Enum):
    """Product-form center types used in this library.

    ``QUEUEING`` is a load-independent FCFS/PS single server;
    ``DELAY`` is an infinite-server (think-time) center.
    """

    QUEUEING = "queueing"
    DELAY = "delay"


@dataclass(frozen=True)
class Center:
    """One service center of a single-class closed network.

    ``demand`` is the total service demand per job visit cycle,
    D = V * S (visit count times service time per visit).
    """

    name: str
    demand: float
    kind: CenterKind = CenterKind.QUEUEING

    def __post_init__(self) -> None:
        if self.demand < 0.0:
            raise ValueError(f"demand must be non-negative, got {self.demand!r}")


def queueing(name: str, demand: float) -> Center:
    """A load-independent queueing center."""
    return Center(name=name, demand=demand, kind=CenterKind.QUEUEING)


def delay(name: str, demand: float) -> Center:
    """An infinite-server (delay) center."""
    return Center(name=name, demand=demand, kind=CenterKind.DELAY)
