"""Residual-life formulas (behind the paper's equation 10).

For a renewal process of service times with mean m and second moment
m2, the mean remaining service observed by a random (Poisson) arrival
that finds the server busy is  m2 / (2 m).  For a *deterministic*
service time t this is t/2, which is exactly the form the paper uses
for its fixed bus access times: equation (10) mixes (T_write+w_mem)/2
and t_read/2 weighted by each class's share of bus busy time.
"""

from __future__ import annotations

import math
from collections.abc import Sequence


def mean_residual_life(mean: float, second_moment: float | None = None,
                       cv2: float | None = None) -> float:
    """Mean residual service time of the job in service.

    Provide either the second moment or the squared coefficient of
    variation (cv2 = variance / mean^2).  Deterministic service has
    cv2 = 0 (residual = mean/2); exponential has cv2 = 1 (residual =
    mean).
    """
    if mean < 0.0:
        raise ValueError("mean must be non-negative")
    if (second_moment is None) == (cv2 is None):
        raise ValueError("provide exactly one of second_moment or cv2")
    if second_moment is None:
        assert cv2 is not None
        if cv2 < 0.0:
            raise ValueError("cv2 must be non-negative")
        second_moment = (cv2 + 1.0) * mean * mean
    if second_moment < mean * mean - 1e-12:
        raise ValueError("second moment below mean^2 is impossible")
    if mean == 0.0:
        return 0.0
    return second_moment / (2.0 * mean)


def residual_life_mixture(weights: Sequence[float],
                          service_times: Sequence[float]) -> float:
    """Equation (10)'s form: deterministic classes mixed by busy-time share.

    ``weights`` are the probabilities that a bus request is of each
    class; ``service_times`` the deterministic access time of each
    class.  The returned value is the mean residual life seen by an
    arrival that finds the server busy:

        sum_i [w_i t_i / sum_j w_j t_j] * t_i / 2
    """
    if len(weights) != len(service_times):
        raise ValueError("weights and service_times must have equal length")
    if any(w < 0.0 for w in weights) or any(t < 0.0 for t in service_times):
        raise ValueError("weights and service times must be non-negative")
    busy = sum(w * t for w, t in zip(weights, service_times))
    if busy == 0.0:
        return 0.0
    return sum((w * t / busy) * (t / 2.0)
               for w, t in zip(weights, service_times))


def residual_life_mixture_via_moments(weights: Sequence[float],
                                      service_times: Sequence[float]) -> float:
    """The same quantity from the renewal formula m2 / (2 m).

    Used by the tests to confirm that equation (10) *is* the standard
    residual-life of the deterministic mixture (weights are renormalized
    over the classes with positive weight).
    """
    total_w = sum(weights)
    if total_w == 0.0:
        return 0.0
    m = sum(w * t for w, t in zip(weights, service_times)) / total_w
    m2 = sum(w * t * t for w, t in zip(weights, service_times)) / total_w
    if m == 0.0:
        return 0.0
    return m2 / (2.0 * m)


def pollaczek_khinchine_wait(arrival_rate: float, mean_service: float,
                             cv2: float) -> float:
    """M/G/1 mean waiting time (oracle for the bus-wait style formulas).

    W = rho * R / (1 - rho) with R the mean residual life.
    """
    if arrival_rate < 0.0 or mean_service < 0.0:
        raise ValueError("rates and service times must be non-negative")
    rho = arrival_rate * mean_service
    if rho >= 1.0:
        return math.inf
    residual = mean_residual_life(mean_service, cv2=cv2)
    return rho * residual / (1.0 - rho)
