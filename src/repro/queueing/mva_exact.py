"""Exact Mean Value Analysis for single-class closed networks.

The classical recursion (Reiser & Lavenberg; [LZGS84] Chapter 6): for
population n = 1..N and each queueing center k,

    R_k(n) = D_k * (1 + Q_k(n-1))          (queueing center)
    R_k(n) = D_k                            (delay center)
    X(n)   = n / sum_k R_k(n)
    Q_k(n) = X(n) * R_k(n)

Exact for product-form networks; cost O(N * K).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.queueing.centers import Center, CenterKind


@dataclass(frozen=True)
class MVAResult:
    """Solution of a closed network at one population size.

    ``residence_times`` / ``queue_lengths`` / ``utilizations`` are keyed
    by center name; ``throughput`` is the system throughput X(N) and
    ``response_time`` the total cycle time N / X(N).
    """

    population: int
    throughput: float
    response_time: float
    residence_times: dict[str, float]
    queue_lengths: dict[str, float]
    utilizations: dict[str, float]

    def bottleneck(self) -> str:
        """The center with the highest utilization."""
        return max(self.utilizations, key=self.utilizations.get)  # type: ignore[arg-type]


def _validate(centers: Sequence[Center], population: int) -> None:
    if population < 0:
        raise ValueError(f"population must be non-negative, got {population!r}")
    if not centers:
        raise ValueError("at least one service center is required")
    names = [c.name for c in centers]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate center names: {names}")


def exact_mva(centers: Sequence[Center], population: int) -> MVAResult:
    """Solve the closed network exactly at the given population."""
    _validate(centers, population)
    queue = {c.name: 0.0 for c in centers}
    throughput = 0.0
    residence = {c.name: 0.0 for c in centers}
    for n in range(1, population + 1):
        for c in centers:
            if c.kind is CenterKind.QUEUEING:
                residence[c.name] = c.demand * (1.0 + queue[c.name])
            else:
                residence[c.name] = c.demand
        total = sum(residence.values())
        throughput = n / total if total > 0.0 else float("inf")
        for c in centers:
            queue[c.name] = throughput * residence[c.name]
    response = population / throughput if throughput > 0.0 else 0.0
    utilizations = {
        c.name: (min(throughput * c.demand, 1.0)
                 if c.kind is CenterKind.QUEUEING else throughput * c.demand)
        for c in centers
    }
    return MVAResult(
        population=population,
        throughput=throughput,
        response_time=response,
        residence_times=dict(residence),
        queue_lengths=dict(queue),
        utilizations=utilizations,
    )


def asymptotic_bounds(centers: Sequence[Center], population: int) -> tuple[float, float]:
    """Classical asymptotic throughput bounds (lower, upper).

    X(N) <= min(N / (D + Z), 1 / D_max) where D is the total queueing
    demand and Z the total delay demand; the balanced lower bound
    N / (D + Z + (N-1) D_max) is returned as the first element.
    """
    _validate(centers, population)
    d_total = sum(c.demand for c in centers if c.kind is CenterKind.QUEUEING)
    z_total = sum(c.demand for c in centers if c.kind is CenterKind.DELAY)
    d_max = max((c.demand for c in centers if c.kind is CenterKind.QUEUEING),
                default=0.0)
    if population == 0:
        return 0.0, 0.0
    upper = population / (d_total + z_total)
    if d_max > 0.0:
        upper = min(upper, 1.0 / d_max)
    lower = population / (d_total + z_total + (population - 1) * d_max)
    return lower, upper
