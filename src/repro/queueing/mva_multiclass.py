"""Exact and approximate MVA for multi-class closed networks.

Extends the single-class machinery to R customer classes, each with its
own population, think time, and per-center demands ([LZGS84] Chapter 7).
The exact recursion enumerates all population sub-vectors (cost
prod_r (N_r + 1) * K), so it is for small populations; the Schweitzer
fixed point scales to any population.

This substrate supports heterogeneous-processor studies (e.g. one class
of compute-bound and one class of I/O-bound processors sharing the
coherence bus), a generalization the flat paper model cannot express.
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.queueing.centers import Center, CenterKind


@dataclass(frozen=True)
class CustomerClass:
    """One closed customer class."""

    name: str
    population: int
    #: Service demand per center name; centers absent here have zero
    #: demand for this class.
    demands: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.population < 0:
            raise ValueError(f"population must be >= 0, got {self.population!r}")
        for center, demand in self.demands.items():
            if demand < 0.0:
                raise ValueError(
                    f"negative demand {demand!r} at {center!r} for class "
                    f"{self.name!r}")


@dataclass(frozen=True)
class MulticlassResult:
    """Per-class throughputs/response times plus per-center queues."""

    throughputs: dict[str, float]
    response_times: dict[str, float]
    queue_lengths: dict[str, float]          # by center, total over classes
    utilizations: dict[str, float]           # by center

    def throughput(self, class_name: str) -> float:
        return self.throughputs[class_name]


def _validate(centers: Sequence[Center], classes: Sequence[CustomerClass]) -> None:
    if not centers:
        raise ValueError("at least one center required")
    if not classes:
        raise ValueError("at least one class required")
    names = {c.name for c in centers}
    if len(names) != len(centers):
        raise ValueError("duplicate center names")
    class_names = [c.name for c in classes]
    if len(set(class_names)) != len(class_names):
        raise ValueError("duplicate class names")
    for cls in classes:
        unknown = set(cls.demands) - names
        if unknown:
            raise ValueError(f"class {cls.name!r} references unknown "
                             f"centers {sorted(unknown)}")


def exact_mva_multiclass(
    centers: Sequence[Center],
    classes: Sequence[CustomerClass],
) -> MulticlassResult:
    """Exact multi-class MVA over all population sub-vectors."""
    _validate(centers, classes)
    r_count = len(classes)
    populations = tuple(c.population for c in classes)
    queueing_centers = [c for c in centers if c.kind is CenterKind.QUEUEING]

    # queue[vector][center] = mean queue length at that population.
    zero = tuple([0] * r_count)
    queues: dict[tuple[int, ...], dict[str, float]] = {
        zero: {c.name: 0.0 for c in queueing_centers}}
    throughputs: dict[tuple[int, ...], list[float]] = {zero: [0.0] * r_count}

    def vectors_up_to(limits):
        return itertools.product(*(range(n + 1) for n in limits))

    for vector in sorted(vectors_up_to(populations), key=sum):
        if vector == zero:
            continue
        residence = [dict.fromkeys((c.name for c in centers), 0.0)
                     for _ in range(r_count)]
        x = [0.0] * r_count
        for r, cls in enumerate(classes):
            if vector[r] == 0:
                continue
            reduced = list(vector)
            reduced[r] -= 1
            reduced_queues = queues[tuple(reduced)]
            total = 0.0
            for center in centers:
                demand = cls.demands.get(center.name, 0.0)
                if center.kind is CenterKind.QUEUEING:
                    value = demand * (1.0 + reduced_queues[center.name])
                else:
                    value = demand
                residence[r][center.name] = value
                total += value
            x[r] = vector[r] / total if total > 0.0 else 0.0
        queues[vector] = {
            c.name: sum(x[r] * residence[r][c.name] for r in range(r_count))
            for c in queueing_centers}
        throughputs[vector] = x

    x_final = throughputs[populations]
    response = {
        cls.name: (cls.population / x_final[r] if x_final[r] > 0.0 else 0.0)
        for r, cls in enumerate(classes)}
    utilizations = {}
    for center in centers:
        util = sum(x_final[r] * cls.demands.get(center.name, 0.0)
                   for r, cls in enumerate(classes))
        if center.kind is CenterKind.QUEUEING:
            util = min(util, 1.0)
        utilizations[center.name] = util
    return MulticlassResult(
        throughputs={cls.name: x_final[r] for r, cls in enumerate(classes)},
        response_times=response,
        queue_lengths=dict(queues[populations]),
        utilizations=utilizations,
    )


def approximate_mva_multiclass(
    centers: Sequence[Center],
    classes: Sequence[CustomerClass],
    tolerance: float = 1e-10,
    max_iterations: int = 100_000,
) -> MulticlassResult:
    """Multi-class Schweitzer: Q_{r,k}(N - e_r) ~ Q_{r,k}(N) scaled by
    (N_r - 1)/N_r for the own class."""
    _validate(centers, classes)
    if tolerance <= 0.0:
        raise ValueError("tolerance must be positive")
    queueing_centers = [c for c in centers if c.kind is CenterKind.QUEUEING]
    r_count = len(classes)
    # per-class per-center queue estimates.
    q = {(r, c.name): classes[r].population / max(len(queueing_centers), 1)
         for r in range(r_count) for c in queueing_centers}
    x = [0.0] * r_count
    for _ in range(max_iterations):
        delta = 0.0
        new_q = dict(q)
        for r, cls in enumerate(classes):
            n_r = cls.population
            if n_r == 0:
                x[r] = 0.0
                continue
            total = 0.0
            residence = {}
            for center in centers:
                demand = cls.demands.get(center.name, 0.0)
                if center.kind is CenterKind.QUEUEING:
                    seen = sum(
                        q[(s, center.name)] * ((n_r - 1) / n_r if s == r else 1.0)
                        for s in range(r_count))
                    value = demand * (1.0 + seen)
                else:
                    value = demand
                residence[center.name] = value
                total += value
            x[r] = n_r / total if total > 0.0 else 0.0
            for center in queueing_centers:
                updated = x[r] * residence[center.name]
                delta = max(delta, abs(updated - q[(r, center.name)]))
                new_q[(r, center.name)] = updated
        q = new_q
        if delta < tolerance:
            break
    else:
        raise RuntimeError("multiclass Schweitzer failed to converge")

    utilizations = {}
    for center in centers:
        util = sum(x[r] * cls.demands.get(center.name, 0.0)
                   for r, cls in enumerate(classes))
        if center.kind is CenterKind.QUEUEING:
            util = min(util, 1.0)
        utilizations[center.name] = util
    return MulticlassResult(
        throughputs={cls.name: x[r] for r, cls in enumerate(classes)},
        response_times={
            cls.name: (cls.population / x[r] if x[r] > 0.0 else 0.0)
            for r, cls in enumerate(classes)},
        queue_lengths={
            c.name: sum(q[(r, c.name)] for r in range(r_count))
            for c in queueing_centers},
        utilizations=utilizations,
    )
