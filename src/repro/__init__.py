"""repro -- Mean-value analysis of snooping cache-consistency protocols.

A reproduction of Vernon, Lazowska & Zahorjan, *An Accurate and
Efficient Performance Analysis Technique for Multiprocessor Snooping
Cache-Consistency Protocols* (ISCA 1988 / UW CS TR #746).

The package provides:

* :class:`CacheMVAModel` -- the paper's customized mean-value equations,
  solved by fixed-point iteration in milliseconds for any system size;
* :mod:`repro.protocols` -- Write-Once and its four modifications in any
  combination, plus the named protocol family (Synapse, Illinois,
  Berkeley, RWB, Dragon);
* :mod:`repro.sim` -- a discrete-event simulator of the same system,
  used as the detailed comparator (standing in for the paper's GTPN);
* :mod:`repro.gtpn` -- a Generalized Timed Petri Net engine with exact
  Markov-chain solution for small nets;
* :mod:`repro.queueing` -- classical exact/approximate MVA for closed
  queueing networks;
* :mod:`repro.analysis` -- the experiment harness regenerating every
  table and figure of the paper (see DESIGN.md / EXPERIMENTS.md);
* :mod:`repro.service` -- the solver as an evaluation service: result
  cache, parallel sweep executor, metrics, HTTP JSON API
  (``repro serve``; see docs/service.md).
"""

from repro.core.metrics import PerformanceReport, ResponseBreakdown
from repro.core.model import TABLE_41_SIZES, CacheMVAModel
from repro.core.solver import FixedPointSolver, SolverDiagnostics, SolverError
from repro.protocols.modifications import Modification, ProtocolSpec
from repro.protocols.family import PROTOCOLS, protocol_by_name
from repro.workload.parameters import (
    ArchitectureParams,
    SharingLevel,
    WorkloadParameters,
    appendix_a_workload,
    stress_test_workload,
)
from repro.workload.derived import DerivedInputs, derive_inputs

__version__ = "1.0.0"

__all__ = [
    "ArchitectureParams",
    "CacheMVAModel",
    "DerivedInputs",
    "FixedPointSolver",
    "Modification",
    "PROTOCOLS",
    "PerformanceReport",
    "ProtocolSpec",
    "ResponseBreakdown",
    "SharingLevel",
    "SolverDiagnostics",
    "SolverError",
    "TABLE_41_SIZES",
    "WorkloadParameters",
    "appendix_a_workload",
    "derive_inputs",
    "protocol_by_name",
    "stress_test_workload",
    "__version__",
]
