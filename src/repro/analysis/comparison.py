"""MVA vs detailed-model agreement studies (the Section 4.2 methodology).

The paper's central experiment: solve the same (workload, protocol, N)
cell with the cheap mean-value equations and with an expensive detailed
model, and report the relative speedup error.  Here the detailed model
is the discrete-event simulator (see DESIGN.md on the GTPN
substitution).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.model import CacheMVAModel
from repro.protocols.modifications import ProtocolSpec
from repro.sim.config import SimulationConfig
from repro.sim.system import SimulationResult, simulate
from repro.workload.parameters import ArchitectureParams, WorkloadParameters


@dataclass(frozen=True)
class AgreementCell:
    """One (N,) comparison point."""

    n_processors: int
    mva_speedup: float
    detailed_speedup: float
    detailed_ci: float
    mva_u_bus: float
    detailed_u_bus: float
    mva_w_bus: float
    detailed_w_bus: float

    @property
    def relative_error(self) -> float:
        """(MVA - detailed) / detailed; the paper reports |.| <= ~3 %."""
        if self.detailed_speedup == 0.0:
            return 0.0
        return (self.mva_speedup - self.detailed_speedup) / self.detailed_speedup

    @property
    def u_bus_error(self) -> float:
        if self.detailed_u_bus == 0.0:
            return 0.0
        return (self.mva_u_bus - self.detailed_u_bus) / self.detailed_u_bus


@dataclass(frozen=True)
class AgreementStudy:
    """All comparison cells for one protocol/workload."""

    protocol_label: str
    sharing_label: str
    cells: tuple[AgreementCell, ...]

    @property
    def max_abs_error(self) -> float:
        return max((abs(c.relative_error) for c in self.cells), default=0.0)

    @property
    def mean_abs_error(self) -> float:
        if not self.cells:
            return 0.0
        return sum(abs(c.relative_error) for c in self.cells) / len(self.cells)

    def worst_cell(self) -> AgreementCell:
        return max(self.cells, key=lambda c: abs(c.relative_error))

    def summary(self) -> str:
        return (f"{self.protocol_label} @ {self.sharing_label}: "
                f"max |rel err| = {self.max_abs_error * 100:.2f}% over "
                f"N in {[c.n_processors for c in self.cells]}")


def compare_mva_and_simulation(
    workload: WorkloadParameters,
    protocol: ProtocolSpec,
    sizes: Iterable[int],
    arch: ArchitectureParams | None = None,
    seed: int = 2024,
    warmup_requests: int = 4_000,
    measured_requests: int = 60_000,
) -> AgreementStudy:
    """Run the Section-4.2 agreement experiment over ``sizes``."""
    arch = arch or ArchitectureParams()
    model = CacheMVAModel(workload, protocol, arch=arch)
    cells = []
    for n in sizes:
        mva = model.solve(n)
        detailed: SimulationResult = simulate(SimulationConfig(
            n_processors=n, workload=workload, protocol=protocol, arch=arch,
            seed=seed + n, warmup_requests=warmup_requests,
            measured_requests=measured_requests))
        cells.append(AgreementCell(
            n_processors=n,
            mva_speedup=mva.speedup,
            detailed_speedup=detailed.speedup,
            detailed_ci=detailed.speedup_ci_halfwidth,
            mva_u_bus=mva.u_bus,
            detailed_u_bus=detailed.u_bus,
            mva_w_bus=mva.w_bus,
            detailed_w_bus=detailed.w_bus,
        ))
    return AgreementStudy(
        protocol_label=protocol.label,
        sharing_label=model.sharing_label,
        cells=tuple(cells),
    )


def agreement_table(study: AgreementStudy):
    """Render an agreement study as a :class:`~repro.analysis.tables.Table`."""
    from repro.analysis.tables import Table

    table = Table(
        title=(f"MVA vs detailed model -- {study.protocol_label} "
               f"({study.sharing_label} sharing)"),
        columns=["N", "MVA", "detailed", "CI±", "rel err %",
                 "U_bus MVA", "U_bus det"],
    )
    for cell in study.cells:
        table.add_row(
            cell.n_processors,
            cell.mva_speedup,
            cell.detailed_speedup,
            cell.detailed_ci,
            cell.relative_error * 100.0,
            cell.mva_u_bus,
            cell.detailed_u_bus,
        )
    return table
