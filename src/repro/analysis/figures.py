"""Figure 4.1: speedup-versus-processors curves, with an ASCII renderer.

The paper plots speedup against system size for Write-Once, Write-Once
+ modification 1, and Write-Once + modifications 1 & 4, at three
sharing levels (mods 2 and 3 are "nearly indistinguishable" and are not
drawn).  :func:`figure_41_series` regenerates those series from the
MVA; :func:`ascii_chart` renders any set of series in the terminal, and
``to_csv`` supports external plotting.
"""

from __future__ import annotations

import io
import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.model import CacheMVAModel
from repro.protocols.modifications import ProtocolSpec
from repro.workload.parameters import SharingLevel, appendix_a_workload

#: The x-axis of Figure 4.1 (the paper draws 1..20; Table 4.1 adds 100).
FIGURE_41_SIZES: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 15, 20)


@dataclass(frozen=True)
class FigureSeries:
    """One labelled curve."""

    label: str
    xs: tuple[float, ...]
    ys: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ValueError("xs and ys must have equal length")


def figure_41_series(
    sizes: Sequence[int] = FIGURE_41_SIZES,
) -> list[FigureSeries]:
    """The seven curves of Figure 4.1.

    Write-Once and WO+1 at each sharing level, plus WO+1+4 at 5 %
    (the paper draws only the 5 % curve for the third protocol because
    "the other two curves are nearly identical").
    """
    series = []
    for protocol, levels in (
        (ProtocolSpec(), list(SharingLevel)),
        (ProtocolSpec.of(1), list(SharingLevel)),
        (ProtocolSpec.of(1, 4), [SharingLevel.FIVE_PERCENT]),
    ):
        for level in levels:
            model = CacheMVAModel(appendix_a_workload(level), protocol)
            ys = tuple(model.speedup(n) for n in sizes)
            series.append(FigureSeries(
                label=f"{protocol.label} ({level.label})",
                xs=tuple(float(n) for n in sizes),
                ys=ys,
            ))
    return series


def ascii_chart(series: Sequence[FigureSeries], width: int = 72,
                height: int = 20, title: str = "") -> str:
    """A quick terminal scatter/line chart of several series."""
    if not series:
        raise ValueError("no series to plot")
    markers = "ox+*#@%&"
    xs_all = [x for s in series for x in s.xs]
    ys_all = [y for s in series for y in s.ys]
    x_lo, x_hi = min(xs_all), max(xs_all)
    y_lo, y_hi = min(ys_all), max(ys_all)
    if math.isclose(x_lo, x_hi):
        x_hi = x_lo + 1.0
    if math.isclose(y_lo, y_hi):
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for k, s in enumerate(series):
        marker = markers[k % len(markers)]
        for x, y in zip(s.xs, s.ys):
            col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    out = io.StringIO()
    if title:
        out.write(title + "\n")
    out.write(f"{y_hi:8.2f} +" + "-" * width + "\n")
    for row in grid:
        out.write(" " * 9 + "|" + "".join(row) + "\n")
    out.write(f"{y_lo:8.2f} +" + "-" * width + "\n")
    out.write(" " * 10 + f"{x_lo:<8.0f}" + " " * max(width - 16, 0)
              + f"{x_hi:>8.0f}\n")
    for k, s in enumerate(series):
        out.write(f"   {markers[k % len(markers)]} {s.label}\n")
    return out.getvalue()


def to_csv(series: Sequence[FigureSeries]) -> str:
    """Long-format CSV (series,x,y) for external plotting."""
    out = io.StringIO()
    out.write("series,n_processors,speedup\n")
    for s in series:
        for x, y in zip(s.xs, s.ys):
            out.write(f"{s.label},{x:g},{y:.6f}\n")
    return out.getvalue()
