"""Grid runner: sweep (protocol x sharing x N) and persist results.

The interactive-exploration workflow the paper advertises, packaged:
define a grid, run it (MVA always; simulation optionally), and export
the cells as CSV/JSON for external analysis.  Used by the ``grid`` CLI
subcommand and the design-space example.
"""

from __future__ import annotations

import io
import json
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.protocols.modifications import ProtocolSpec
from repro.workload.parameters import (
    ArchitectureParams,
    SharingLevel,
    WorkloadParameters,
    appendix_a_workload,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.service.executor import SweepExecutor


@dataclass(frozen=True)
class GridCell:
    """One grid point: a solved cell, or an error row for a failed one.

    A failed cell (``error`` set) carries ``None`` for every numeric
    measure; it keeps its place in the sweep so exports stay aligned
    and the failure is visible next to its neighbours instead of
    killing the whole sweep.
    """

    protocol: str
    sharing: str
    n_processors: int
    speedup: float | None
    u_bus: float | None
    w_bus: float | None
    cycle_time: float | None
    processing_power: float | None
    method: str = "mva"
    sim_ci: float | None = None
    error: str | None = None

    @classmethod
    def failed(cls, protocol: str, sharing: str, n_processors: int,
               method: str, error: str) -> "GridCell":
        """The error row standing in for a cell that could not solve."""
        return cls(protocol=protocol, sharing=sharing,
                   n_processors=n_processors, speedup=None, u_bus=None,
                   w_bus=None, cycle_time=None, processing_power=None,
                   method=method, error=error)

    def as_row(self) -> dict[str, object]:
        # Hand-rolled (field order preserved): this sits on the sweep
        # hot path and the cells are flat, so the recursive
        # ``dataclasses.asdict`` machinery is measurable overhead.
        return {
            "protocol": self.protocol,
            "sharing": self.sharing,
            "n_processors": self.n_processors,
            "speedup": self.speedup,
            "u_bus": self.u_bus,
            "w_bus": self.w_bus,
            "cycle_time": self.cycle_time,
            "processing_power": self.processing_power,
            "method": self.method,
            "sim_ci": self.sim_ci,
            "error": self.error,
        }


@dataclass(frozen=True)
class GridSpec:
    """What to sweep."""

    protocols: Sequence[ProtocolSpec]
    sizes: Sequence[int]
    sharing_levels: Sequence[SharingLevel] = field(
        default_factory=lambda: list(SharingLevel))
    arch: ArchitectureParams = field(default_factory=ArchitectureParams)
    include_simulation: bool = False
    sim_requests: int = 40_000
    sim_seed: int = 1234
    #: DES backend for simulation rows: ``"scalar"`` (single-seed
    #: reference engine) or ``"vector"`` (``sim_reps`` replications in
    #: lockstep; ``sim_requests`` is then per replication and the row's
    #: ``sim_ci`` is the across-replication band).
    sim_engine: str = "scalar"
    sim_reps: int = 1

    def __post_init__(self) -> None:
        if not self.protocols:
            raise ValueError("at least one protocol required")
        if not self.sizes:
            raise ValueError("at least one system size required")
        if any(n < 1 for n in self.sizes):
            raise ValueError("system sizes must be >= 1")
        if self.sim_engine not in ("scalar", "vector"):
            raise ValueError("sim_engine must be 'scalar' or 'vector', "
                             f"got {self.sim_engine!r}")
        if self.sim_reps < 1:
            raise ValueError(f"sim_reps must be >= 1, got {self.sim_reps!r}")
        if self.sim_engine == "scalar" and self.sim_reps != 1:
            raise ValueError("sim_reps > 1 requires sim_engine='vector'")


def run_grid(spec: GridSpec,
             workload_for: Callable[[SharingLevel], WorkloadParameters] = appendix_a_workload,
             executor: "SweepExecutor | None" = None,
             engine: str = "scalar",
             ) -> list[GridCell]:
    """Solve every grid point; simulation cells follow their MVA cell.

    All evaluation goes through :class:`repro.service.SweepExecutor`;
    the default (no ``executor``) is a serial, uncached run whose cells
    are identical -- values and order -- to the historical in-line
    loop.  Pass an executor configured with ``jobs``/``cache`` to
    parallelize the sweep or reuse previously solved cells.

    ``engine`` selects the MVA evaluation backend when no explicit
    executor is passed: ``"scalar"`` (the historical per-cell loop) or
    ``"batch"`` (one vectorized fixed point for the whole grid; see
    :mod:`repro.core.batch`).  An explicit ``executor`` carries its own
    engine setting.
    """
    from repro.service.executor import SweepExecutor

    if executor is None:
        executor = SweepExecutor(jobs=1, engine=engine)
    return executor.run_spec(spec, workload_for).cells


_CSV_COLUMNS = ("protocol", "sharing", "n_processors", "method", "speedup",
                "u_bus", "w_bus", "cycle_time", "processing_power", "sim_ci",
                "error")


def to_csv(cells: Iterable[GridCell]) -> str:
    """Flat CSV export of a grid run."""
    out = io.StringIO()
    out.write(",".join(_CSV_COLUMNS) + "\n")
    for cell in cells:
        row = cell.as_row()
        values = []
        for column in _CSV_COLUMNS:
            value = row[column]
            if value is None:
                values.append("")
            elif isinstance(value, float):
                values.append(f"{value:.6g}")
            else:
                text = str(value)
                if any(ch in text for ch in ",\"\n"):
                    text = '"' + text.replace('"', '""') + '"'
                values.append(text)
        out.write(",".join(values) + "\n")
    return out.getvalue()


def to_json(cells: Iterable[GridCell]) -> str:
    """JSON-lines-free single-document export."""
    return json.dumps([cell.as_row() for cell in cells], indent=2)


def best_protocol_per_cell(cells: Iterable[GridCell]) -> dict[tuple[str, int], str]:
    """For each (sharing, N), the protocol with the highest MVA speedup."""
    best: dict[tuple[str, int], GridCell] = {}
    for cell in cells:
        if cell.method != "mva" or cell.error is not None:
            continue
        key = (cell.sharing, cell.n_processors)
        if key not in best or cell.speedup > best[key].speedup:
            best[key] = cell
    return {key: cell.protocol for key, cell in best.items()}
