"""Stress harness: every protocol modification combination under
pathological parameter corners, with per-cell failure isolation.

The paper's Section 5 deliberately picks "unrealistic" parameter values
to probe where the MVA approximations break.  This harness turns that
idea into an executable robustness sweep over the failure-tolerant
executor: all 16 modification combinations x a set of extreme workload
corners x several system sizes.  The claim it checks is *not* that
every cell converges -- some corners sit on or past the saturation
knee -- but that every cell either converges (possibly via the damping
ladder) or fails **in isolation**, as a structured error row that
leaves every other cell intact.

Used by the ``repro stress`` CLI subcommand and the failure-isolation
tests; run it after touching the solver or the equations.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.solver import FixedPointSolver
from repro.protocols.modifications import ProtocolSpec, all_combinations
from repro.service.executor import (
    CellTask,
    FailedCell,
    SweepExecutor,
    SweepResult,
)
from repro.service.metrics import MetricsRegistry
from repro.workload.parameters import (
    SharingLevel,
    WorkloadParameters,
    appendix_a_workload,
    stress_test_workload,
)

#: Default system sizes: one pre-knee, one around the knee, one deep in
#: saturation.
DEFAULT_SIZES: tuple[int, ...] = (4, 16, 128)


@dataclass(frozen=True)
class StressCorner:
    """One named extreme parameter setting."""

    label: str
    workload: WorkloadParameters


def stress_corners() -> tuple[StressCorner, ...]:
    """The extreme corners swept by :func:`run_stress`.

    Each pushes a different approximation: the Section-5 stress
    parameters (certain cache supply, heavy write sharing), zero think
    time (full saturation), a miss storm (no cache hits at all), and
    the heaviest Appendix-A sharing level as a sane baseline.
    """
    base = appendix_a_workload(SharingLevel.TWENTY_PERCENT)
    return (
        StressCorner("appendix-a-20%", base),
        StressCorner("section-5-stress", stress_test_workload()),
        StressCorner("zero-think-time", base.replace(tau=0.0)),
        StressCorner("miss-storm",
                     base.replace(h_private=0.0, h_sro=0.0, h_sw=0.0)),
    )


def stress_tasks(sizes: Sequence[int] = DEFAULT_SIZES,
                 corners: Sequence[StressCorner] | None = None,
                 protocols: Sequence[ProtocolSpec] | None = None,
                 solver: FixedPointSolver | None = None) -> list[CellTask]:
    """Expand the stress grid into executor tasks (MVA cells only)."""
    if corners is None:
        corners = stress_corners()
    if protocols is None:
        protocols = all_combinations()
    if solver is None:
        solver = FixedPointSolver()
    return [
        CellTask(protocol=protocol, sharing_label=corner.label,
                 workload=corner.workload, n=n, solver=solver)
        for protocol in protocols
        for corner in corners
        for n in sizes
    ]


#: Bounds for the opt-in DES spot-check: simulating the full stress
#: grid would dwarf the MVA sweep, so only tractable sizes are
#: simulated and only the protocol-family endpoints (the base
#: Write-Once protocol and the all-modifications corner).
SIM_SPOT_CHECK_MAX_N = 16
_SIM_SPOT_CHECK_MODS = (frozenset(), frozenset({1, 2, 3, 4}))


def stress_sim_tasks(sizes: Sequence[int] = DEFAULT_SIZES,
                     corners: Sequence[StressCorner] | None = None,
                     sim_engine: str = "vector",
                     sim_reps: int = 8,
                     sim_requests: int = 2_000,
                     sim_seed: int = 1234) -> list[CellTask]:
    """DES spot-check cells riding along the MVA stress grid.

    Every corner keeps the simulator honest on inputs the Appendix-A
    calibration never sees (zero think time, a pure miss storm), but
    the grid is bounded: sizes above ``SIM_SPOT_CHECK_MAX_N`` are
    skipped and only the family-endpoint protocols are simulated, so
    the opt-in check adds seconds, not minutes.
    """
    if corners is None:
        corners = stress_corners()
    reps = sim_reps if sim_engine == "vector" else 1
    return [
        CellTask(protocol=ProtocolSpec.of(*mods), sharing_label=corner.label,
                 workload=corner.workload, n=n, method="sim",
                 sim_requests=sim_requests, sim_seed=sim_seed + n,
                 sim_engine=sim_engine, sim_reps=reps)
        for mods in _SIM_SPOT_CHECK_MODS
        for corner in corners
        for n in sizes
        if n <= SIM_SPOT_CHECK_MAX_N
    ]


@dataclass(frozen=True)
class StressReport:
    """Outcome of one stress sweep."""

    result: SweepResult
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def total(self) -> int:
        return self.result.summary.total

    @property
    def converged(self) -> int:
        return self.total - len(self.result.failures)

    @property
    def recovered(self) -> int:
        return self.result.summary.recovered

    @property
    def failures(self) -> list[FailedCell]:
        return self.result.failures

    @property
    def saturation_warnings(self) -> int:
        """Cells that converged but sit on the saturation knee."""
        return sum(
            1 for meta in self.result.meta
            if any(w.get("code") == "saturation-knee"
                   for w in meta.get("warnings", ())))

    @property
    def isolated(self) -> bool:
        """True when every cell resolved independently: each task has
        exactly one row, each failure is a structured error row in
        place, and no failure leaked into a neighbouring cell."""
        cells = self.result.cells
        if len(cells) != self.total:
            return False
        failed_indices = {f.index for f in self.failures}
        for index, cell in enumerate(cells):
            if index in failed_indices:
                if cell.error is None or cell.speedup is not None:
                    return False
            elif cell.error is not None or cell.speedup is None:
                return False
        return True

    def text(self) -> str:
        """Human-readable report for the CLI."""
        lines = [
            f"stress sweep: {self.total} cells "
            f"({self.result.summary.line()})",
            f"  converged: {self.converged} "
            f"(of which {self.recovered} via the damping ladder, "
            f"{self.saturation_warnings} on the saturation knee)",
            f"  failed in isolation: {len(self.failures)}",
        ]
        for failure in self.failures:
            lines.append(f"    - {failure.describe()}")
        lines.append("  isolation invariant: "
                     f"{'ok' if self.isolated else 'VIOLATED'}")
        return "\n".join(lines)


def run_stress(sizes: Sequence[int] = DEFAULT_SIZES,
               corners: Sequence[StressCorner] | None = None,
               protocols: Sequence[ProtocolSpec] | None = None,
               solver: FixedPointSolver | None = None,
               jobs: int = 1, engine: str = "scalar",
               sim_engine: str | None = None,
               sim_reps: int = 8) -> StressReport:
    """Sweep the stress grid through a failure-isolating executor.

    ``engine`` selects the MVA backend (``"scalar"`` or ``"batch"``);
    the stress grid is all-MVA, so ``"batch"`` solves the whole sweep
    as one vectorized fixed point.  ``sim_engine`` (opt-in, default
    off) appends the bounded DES spot-check of
    :func:`stress_sim_tasks` -- ``"vector"`` runs each spot cell as
    ``sim_reps`` lockstep replications, ``"scalar"`` as one seeded run.
    """
    metrics = MetricsRegistry()
    executor = SweepExecutor(jobs=jobs, metrics=metrics, engine=engine)
    tasks = stress_tasks(sizes=sizes, corners=corners,
                         protocols=protocols, solver=solver)
    if sim_engine is not None:
        tasks.extend(stress_sim_tasks(sizes=sizes, corners=corners,
                                      sim_engine=sim_engine,
                                      sim_reps=sim_reps))
    result = executor.run(tasks)
    return StressReport(result=result, metrics=metrics)
