"""Accuracy summaries over agreement studies (Section 4.2 style).

Aggregates :class:`~repro.analysis.comparison.AgreementStudy` results
into the statistics the paper reports ("nearly all MVA estimates are
within 1%... the maximum relative error is 2.6%"), plus a significance
check: an MVA-vs-simulation discrepancy only counts as model bias when
it exceeds the simulation's own confidence interval.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.analysis.comparison import AgreementStudy


@dataclass(frozen=True)
class AccuracySummary:
    """Aggregate error statistics across one or more studies."""

    n_cells: int
    max_abs_error: float
    mean_abs_error: float
    rms_error: float
    #: Fraction of cells with |relative error| below 1 % (the paper's
    #: "nearly all ... within 1%" framing).
    within_1pct: float
    within_5pct: float
    #: Cells where the discrepancy exceeds the simulation CI -- the
    #: statistically meaningful disagreements.
    significant_cells: int
    #: Mean signed error: negative = the MVA underestimates speedup
    #: (the bias direction the paper reports).
    mean_signed_error: float

    def text(self) -> str:
        return (f"{self.n_cells} cells: max |err| "
                f"{self.max_abs_error:.2%}, mean |err| "
                f"{self.mean_abs_error:.2%}, RMS {self.rms_error:.2%}; "
                f"{self.within_1pct:.0%} within 1%, "
                f"{self.within_5pct:.0%} within 5%; "
                f"{self.significant_cells} cells beyond the simulation CI; "
                f"mean signed error {self.mean_signed_error:+.2%}")


def summarize(studies: Sequence[AgreementStudy]) -> AccuracySummary:
    """Aggregate every cell of the given studies."""
    cells = [cell for study in studies for cell in study.cells]
    if not cells:
        raise ValueError("no cells to summarize")
    errors = [cell.relative_error for cell in cells]
    abs_errors = [abs(e) for e in errors]
    significant = 0
    for cell in cells:
        gap = abs(cell.mva_speedup - cell.detailed_speedup)
        if gap > 2.0 * cell.detailed_ci and cell.detailed_ci > 0.0:
            significant += 1
    return AccuracySummary(
        n_cells=len(cells),
        max_abs_error=max(abs_errors),
        mean_abs_error=sum(abs_errors) / len(abs_errors),
        rms_error=math.sqrt(sum(e * e for e in errors) / len(errors)),
        within_1pct=sum(e <= 0.01 + 1e-12 for e in abs_errors) / len(abs_errors),
        within_5pct=sum(e <= 0.05 + 1e-12 for e in abs_errors) / len(abs_errors),
        significant_cells=significant,
        mean_signed_error=sum(errors) / len(errors),
    )
