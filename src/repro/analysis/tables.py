"""Plain-text, markdown, and CSV table rendering."""

from __future__ import annotations

import io
from collections.abc import Sequence
from dataclasses import dataclass, field


@dataclass
class Table:
    """A small column-oriented table: header row plus value rows.

    Values may be floats (formatted with ``float_format``), strings, or
    None (rendered as the ``missing`` marker, like the empty GTPN cells
    of Table 4.1 beyond ten processors).
    """

    title: str
    columns: Sequence[str]
    rows: list[list[object]] = field(default_factory=list)
    float_format: str = "{:.3f}"
    missing: str = "--"

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns")
        self.rows.append(list(values))

    def _cell(self, value: object) -> str:
        if value is None:
            return self.missing
        if isinstance(value, float):
            return self.float_format.format(value)
        return str(value)

    def render(self) -> str:
        """Fixed-width plain-text rendering."""
        cells = [[self._cell(v) for v in row] for row in self.rows]
        widths = [
            max(len(str(name)), *(len(row[i]) for row in cells))
            if cells else len(str(name))
            for i, name in enumerate(self.columns)
        ]
        out = io.StringIO()
        out.write(self.title + "\n")
        header = "  ".join(str(n).rjust(w) for n, w in zip(self.columns, widths))
        out.write(header + "\n")
        out.write("-" * len(header) + "\n")
        for row in cells:
            out.write("  ".join(c.rjust(w) for c, w in zip(row, widths)) + "\n")
        return out.getvalue()

    def render_markdown(self) -> str:
        out = io.StringIO()
        out.write(f"**{self.title}**\n\n")
        out.write("| " + " | ".join(str(c) for c in self.columns) + " |\n")
        out.write("|" + "|".join("---" for _ in self.columns) + "|\n")
        for row in self.rows:
            out.write("| " + " | ".join(self._cell(v) for v in row) + " |\n")
        return out.getvalue()

    def render_csv(self) -> str:
        out = io.StringIO()
        out.write(",".join(str(c) for c in self.columns) + "\n")
        for row in self.rows:
            out.write(",".join(self._cell(v) for v in row) + "\n")
        return out.getvalue()


def format_table(title: str, columns: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 style: str = "text") -> str:
    """One-shot convenience around :class:`Table`."""
    table = Table(title=title, columns=list(columns))
    for row in rows:
        table.add_row(*row)
    if style == "text":
        return table.render()
    if style == "markdown":
        return table.render_markdown()
    if style == "csv":
        return table.render_csv()
    raise ValueError(f"unknown style {style!r}")
