"""Three-comparator cross-validation at small system sizes.

For N small enough that *every* model in the repository can run, this
harness solves the same (workload, protocol) point four ways --

* the customized MVA (the paper's contribution),
* the discrete-event simulator (sampled outcomes, deterministic times),
* the exact Petri-net solution (exponential/Erlang service), and
* optionally an Erlang-sharpened Petri net (near-deterministic),

-- and reports them side by side.  Mutual agreement of independent
solution techniques is the strongest internal-validity evidence the
reproduction can produce.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import CacheMVAModel
from repro.gtpn.models import solve_coherence_speedup
from repro.protocols.modifications import ProtocolSpec
from repro.sim.config import SimulationConfig
from repro.sim.system import simulate
from repro.workload.parameters import ArchitectureParams, WorkloadParameters


@dataclass(frozen=True)
class CrossModelCell:
    """One N's worth of cross-model solutions."""

    n_processors: int
    mva: float
    des: float
    des_ci: float
    gtpn_exponential: float
    gtpn_erlang: float
    gtpn_states: int

    @property
    def spread(self) -> float:
        """Max pairwise relative disagreement across the four numbers."""
        values = [self.mva, self.des, self.gtpn_exponential,
                  self.gtpn_erlang]
        lo, hi = min(values), max(values)
        return (hi - lo) / lo if lo > 0.0 else 0.0


def cross_validate(
    workload: WorkloadParameters,
    protocol: ProtocolSpec | None = None,
    sizes: tuple[int, ...] = (1, 2, 3, 4),
    arch: ArchitectureParams | None = None,
    erlang: int = 4,
    sim_requests: int = 40_000,
    seed: int = 1401,
) -> list[CrossModelCell]:
    """Run all comparators over ``sizes`` (keep sizes <= ~6)."""
    protocol = protocol if protocol is not None else ProtocolSpec()
    arch = arch or ArchitectureParams()
    model = CacheMVAModel(workload, protocol, arch=arch)
    cells = []
    for n in sizes:
        mva = model.speedup(n)
        des = simulate(SimulationConfig(
            n_processors=n, workload=workload, protocol=protocol,
            arch=arch, seed=seed + n, warmup_requests=4_000,
            measured_requests=sim_requests))
        expo = solve_coherence_speedup(n, model.inputs, erlang=1)
        sharp = solve_coherence_speedup(n, model.inputs, erlang=erlang)
        cells.append(CrossModelCell(
            n_processors=n,
            mva=mva,
            des=des.speedup,
            des_ci=des.speedup_ci_halfwidth,
            gtpn_exponential=expo.speedup,
            gtpn_erlang=sharp.speedup,
            gtpn_states=sharp.n_states,
        ))
    return cells


def cross_model_table(cells: list[CrossModelCell]):
    """Render a cross-validation run as a Table."""
    from repro.analysis.tables import Table

    table = Table(
        title="Cross-model validation (speedups by solution technique)",
        columns=["N", "MVA", "DES", "CI±", "GTPN exp", "GTPN Erlang",
                 "states", "spread %"],
    )
    for cell in cells:
        table.add_row(cell.n_processors, cell.mva, cell.des, cell.des_ci,
                      cell.gtpn_exponential, cell.gtpn_erlang,
                      cell.gtpn_states, cell.spread * 100.0)
    return table
