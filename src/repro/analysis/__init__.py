"""Experiment harness: regenerate every table and figure of the paper.

* :mod:`~repro.analysis.tables` -- plain-text / markdown / CSV table
  rendering in the style of Table 4.1;
* :mod:`~repro.analysis.comparison` -- MVA vs detailed-model agreement
  studies (the Section 4.2 methodology);
* :mod:`~repro.analysis.figures` -- speedup-curve series for Figure 4.1
  with an ASCII renderer;
* :mod:`~repro.analysis.experiments` -- the experiment registry
  (DESIGN.md rows E1-E12), including the paper's published numbers for
  side-by-side comparison.
"""

from repro.analysis.tables import Table, format_table
from repro.analysis.comparison import (
    AgreementCell,
    AgreementStudy,
    compare_mva_and_simulation,
)
from repro.analysis.figures import FigureSeries, ascii_chart, figure_41_series
from repro.analysis.experiments import (
    PAPER_TABLE_41,
    TABLE_41_PROTOCOLS,
    paper_table,
    reproduce_table_41,
)
from repro.analysis.grid import GridCell, GridSpec, run_grid

__all__ = [
    "AgreementCell",
    "AgreementStudy",
    "FigureSeries",
    "GridCell",
    "GridSpec",
    "PAPER_TABLE_41",
    "TABLE_41_PROTOCOLS",
    "Table",
    "ascii_chart",
    "compare_mva_and_simulation",
    "figure_41_series",
    "format_table",
    "paper_table",
    "reproduce_table_41",
    "run_grid",
]
