"""The experiment registry: every table and figure, paper-vs-measured.

``PAPER_TABLE_41`` transcribes the published Table 4.1 numbers (MVA and
GTPN rows) so benches and EXPERIMENTS.md can put our reproduction next
to the original.  Our absolute values differ from the paper's by a few
percent because the derived-input formulas of [VeHo86] had to be
re-derived (DESIGN.md Section 5); the *shape* claims -- protocol
ordering, sharing-level ordering, saturation beyond N~20, and
MVA-vs-detailed agreement -- are asserted by the benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import Table
from repro.core.model import TABLE_41_SIZES, CacheMVAModel
from repro.protocols.modifications import ProtocolSpec
from repro.workload.parameters import SharingLevel, appendix_a_workload

#: The three protocols of Table 4.1 / Figure 4.1, keyed by table part.
TABLE_41_PROTOCOLS: dict[str, ProtocolSpec] = {
    "a": ProtocolSpec(),            # Write-Once
    "b": ProtocolSpec.of(1),        # Enhancement 1
    "c": ProtocolSpec.of(1, 4),     # Enhancements 1 and 4
}

#: System sizes of the published table; GTPN columns stop at 10.
PAPER_SIZES = TABLE_41_SIZES
GTPN_SIZES = (1, 2, 4, 6, 8, 10)


@dataclass(frozen=True)
class PaperRow:
    """One (sharing level, solution method) row of the published table."""

    sharing: SharingLevel
    method: str  # "MVA" or "GTPN"
    speedups: tuple[float | None, ...]  # aligned with PAPER_SIZES


#: Table 4.1 as printed (None where the paper leaves GTPN cells empty).
PAPER_TABLE_41: dict[str, tuple[PaperRow, ...]] = {
    "a": (
        PaperRow(SharingLevel.ONE_PERCENT, "MVA",
                 (0.86, 1.68, 3.17, 4.33, 5.08, 5.49, 5.88, 5.98, 6.07)),
        PaperRow(SharingLevel.ONE_PERCENT, "GTPN",
                 (0.86, 1.69, 3.20, 4.41, 5.21, 5.60, None, None, None)),
        PaperRow(SharingLevel.FIVE_PERCENT, "MVA",
                 (0.855, 1.67, 3.12, 4.23, 4.93, 5.30, 5.63, 5.72, 5.79)),
        PaperRow(SharingLevel.FIVE_PERCENT, "GTPN",
                 (0.855, 1.67, 3.14, 4.30, 5.04, 5.37, None, None, None)),
        PaperRow(SharingLevel.TWENTY_PERCENT, "MVA",
                 (0.84, 1.61, 2.97, 3.97, 4.55, 4.83, 5.07, 5.12, 5.16)),
        PaperRow(SharingLevel.TWENTY_PERCENT, "GTPN",
                 (0.84, 1.62, 3.02, 4.07, 4.67, 4.87, None, None, None)),
    ),
    "b": (
        PaperRow(SharingLevel.ONE_PERCENT, "MVA",
                 (0.875, 1.73, 3.37, 4.82, 5.94, 6.59, 7.02, 7.09, 7.04)),
        PaperRow(SharingLevel.ONE_PERCENT, "GTPN",
                 (0.875, 1.73, 3.37, 4.84, 6.00, 6.72, None, None, None)),
        PaperRow(SharingLevel.FIVE_PERCENT, "MVA",
                 (0.87, 1.71, 3.30, 4.65, 5.68, 6.23, 6.59, 6.64, 6.60)),
        PaperRow(SharingLevel.FIVE_PERCENT, "GTPN",
                 (0.86, 1.71, 3.31, 4.71, 5.76, 6.31, None, None, None)),
        PaperRow(SharingLevel.TWENTY_PERCENT, "MVA",
                 (0.85, 1.63, 3.08, 4.22, 5.03, 5.40, 5.63, 5.66, 5.62)),
        PaperRow(SharingLevel.TWENTY_PERCENT, "GTPN",
                 (0.85, 1.65, 3.15, 4.39, 5.19, 5.58, None, None, None)),
    ),
    "c": (
        PaperRow(SharingLevel.ONE_PERCENT, "MVA",
                 (0.88, 1.75, 3.40, 4.90, 6.06, 6.83, 7.49, 7.58, 7.56)),
        PaperRow(SharingLevel.ONE_PERCENT, "GTPN",
                 (0.88, 1.75, 3.41, 4.91, 6.13, 6.91, None, None, None)),
        PaperRow(SharingLevel.FIVE_PERCENT, "MVA",
                 (0.88, 1.75, 3.40, 4.87, 6.06, 6.83, 7.46, 7.57, 7.57)),
        PaperRow(SharingLevel.FIVE_PERCENT, "GTPN",
                 (0.88, 1.75, 3.41, 4.92, 6.16, 6.98, None, None, None)),
        PaperRow(SharingLevel.TWENTY_PERCENT, "MVA",
                 (0.88, 1.74, 3.35, 4.75, 5.90, 6.70, 7.47, 7.64, 7.70)),
        PaperRow(SharingLevel.TWENTY_PERCENT, "GTPN",
                 (0.88, 1.75, 3.39, 4.87, 6.09, 6.93, None, None, None)),
    ),
}

_TABLE_TITLES = {
    "a": "Table 4.1(a): Speedups for the Write-Once Protocol",
    "b": "Table 4.1(b): Speedups for Enhancement 1",
    "c": "Table 4.1(c): Speedups for Enhancements 1 and 4",
}


def reproduce_table_41(part: str,
                       sizes: tuple[int, ...] = PAPER_SIZES) -> dict[SharingLevel, list[float]]:
    """Our MVA speedups for one part of Table 4.1."""
    protocol = TABLE_41_PROTOCOLS[part]
    results: dict[SharingLevel, list[float]] = {}
    for level in SharingLevel:
        model = CacheMVAModel(appendix_a_workload(level), protocol)
        results[level] = [model.speedup(n) for n in sizes]
    return results


def paper_table(part: str, include_repro: bool = True) -> Table:
    """Render one part of Table 4.1: published rows plus our MVA row."""
    if part not in PAPER_TABLE_41:
        raise ValueError(f"part must be one of {sorted(PAPER_TABLE_41)}, got {part!r}")
    table = Table(
        title=_TABLE_TITLES[part],
        columns=["sharing", "method", *[str(n) for n in PAPER_SIZES]],
        float_format="{:.3f}",
    )
    ours = reproduce_table_41(part) if include_repro else {}
    for row in PAPER_TABLE_41[part]:
        table.add_row(row.sharing.label, f"paper {row.method}", *row.speedups)
        if include_repro and row.method == "GTPN":
            table.add_row(row.sharing.label, "our MVA",
                          *ours[row.sharing])
    return table


def max_deviation_from_paper(part: str) -> float:
    """Largest relative difference between our MVA and the paper's MVA
    row over every populated cell of one table part."""
    ours = reproduce_table_41(part)
    worst = 0.0
    for row in PAPER_TABLE_41[part]:
        if row.method != "MVA":
            continue
        for published, measured in zip(row.speedups, ours[row.sharing]):
            if published is None:
                continue
            worst = max(worst, abs(measured - published) / published)
    return worst
