"""The paper's primary contribution: customized mean-value equations.

:class:`CacheMVAModel` ties together a workload, an architecture and a
protocol specification, iterates the Section-3 equations to a fixed
point, and reports speedup and the other performance measures.

Typical use::

    from repro import CacheMVAModel, appendix_a_workload, SharingLevel
    from repro.protocols import ProtocolSpec

    model = CacheMVAModel(
        workload=appendix_a_workload(SharingLevel.FIVE_PERCENT),
        protocol=ProtocolSpec.of(1),
    )
    report = model.solve(n_processors=10)
    print(report.speedup)
"""

from repro.core.batch import (
    BatchEquationSystem,
    BatchSolveResult,
    solve_batch,
)
from repro.core.equations import EquationSystem, ModelState, StepCoefficients
from repro.core.metrics import PerformanceReport, ResponseBreakdown
from repro.core.model import CacheMVAModel, build_report
from repro.core.scaled import ScaledSharingMVAModel
from repro.core.solver import (
    DEFAULT_DAMPING_LADDER,
    FixedPointSolver,
    SolverDiagnostics,
    SolverError,
    SolverWarning,
    estimate_contraction_rate,
)
from repro.core.sensitivity import (
    asymptotic_speedup,
    parameter_sensitivity,
    speedup_curve,
    sweep_parameter,
)

__all__ = [
    "BatchEquationSystem",
    "BatchSolveResult",
    "CacheMVAModel",
    "DEFAULT_DAMPING_LADDER",
    "EquationSystem",
    "FixedPointSolver",
    "ModelState",
    "PerformanceReport",
    "ResponseBreakdown",
    "ScaledSharingMVAModel",
    "SolverDiagnostics",
    "SolverError",
    "SolverWarning",
    "StepCoefficients",
    "asymptotic_speedup",
    "build_report",
    "estimate_contraction_rate",
    "parameter_sensitivity",
    "solve_batch",
    "speedup_curve",
    "sweep_parameter",
]
