"""Batched, vectorized fixed-point iteration over many model cells.

The paper's efficiency claim is that one MVA fixed point costs "seconds
of computing, independent of N".  A design-space sweep multiplies that
cost by (protocols x sharing x sizes); this module removes the
multiplier by stacking the per-cell iterated quantities (``w_bus``,
``w_mem``, ``q_bus``, ``n_interference``) into ``(cells,)`` NumPy arrays
and performing **one** vectorized sweep for the entire grid per
iteration.

Semantics mirror the scalar engine cell for cell:

* the per-sweep arithmetic is the same equation system
  (:class:`repro.core.equations.EquationSystem.step`), read from the
  shared :class:`repro.core.equations.StepCoefficients` extraction so
  the two engines cannot drift apart;
* **per-cell convergence masking** -- a converged cell freezes (its
  state is snapshotted the sweep it converges) while the remaining
  cells keep iterating;
* **per-cell damping and recovery** -- cells that do not converge
  within ``max_iterations`` sweeps advance down the same escalating
  damping ladder as
  :meth:`repro.core.solver.FixedPointSolver.solve_with_recovery`,
  warm-started from their last iterate, while already-converged cells
  keep their first-rung result;
* per-cell :class:`repro.core.solver.SolverDiagnostics` are
  reconstructed at the end (iterations, ladder, damping, recovery and
  saturation-knee warnings, final-rung traces), so downstream
  consumers -- ``GridCell`` rows, metrics, failure records -- are
  drop-in identical to scalar solves.

Because the iteration is lockstep, rung boundaries are global: every
live cell has performed the same number of sweeps in its current rung,
exactly as if each cell had been solved alone.

Hot-path notes: every quantity that does not change between sweeps
(the ``p' ~ 1`` branch mask of equation 13, the queue-length ``N - 1``
factor, the constant products of equations 9-12) is precomputed at
batch construction, the two ``p_busy`` evaluations (bus and memory)
run as one call on a stacked ``(2, cells)`` array, and converged lanes
are *not* masked out of the sweep -- their state was already
snapshotted the sweep they froze, so whatever they compute afterwards
is simply never read.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.equations import EquationSystem, ModelState, StepCoefficients
from repro.core.metrics import ResponseBreakdown
from repro.core.solver import (
    DEFAULT_DAMPING_LADDER,
    SATURATION_KNEE_RATE,
    FixedPointSolver,
    SolverDiagnostics,
    SolverWarning,
    estimate_contraction_rate,
)

__all__ = [
    "BatchEquationSystem",
    "BatchSolveResult",
    "solve_batch",
]

#: Tiny positive stand-in used under a ``where`` mask so masked lanes
#: never divide by zero (their results are discarded by the mask).
_SAFE = 1.0


def _p_busy_vec(utilization: np.ndarray, n: np.ndarray,
                multi: np.ndarray | None = None,
                n_f: np.ndarray | None = None) -> np.ndarray:
    """Vectorized equation (8); elementwise identical to ``_p_busy``.

    ``multi``/``n_f`` accept the precomputed ``n > 1`` mask and its
    safe denominator (both sweep invariants) so the solver loop does
    not rebuild them every iteration.
    """
    if multi is None:
        multi = n > 1
    if n_f is None:
        n_f = np.where(multi, n, 2.0)  # masked lanes: any n > 1 works
    u = np.minimum(utilization, n_f)
    own = u / n_f
    denominator = 1.0 - own
    positive = denominator > 0.0
    safe = np.where(positive, denominator, _SAFE)
    value = np.clip((u - own) / safe, 0.0, 1.0 - 1e-12)
    value = np.where(positive, value, 1.0 - 1e-12)
    return np.where(multi, value, 0.0)


def _n_interference_vec(p: np.ndarray, p_prime: np.ndarray,
                        q_bus: np.ndarray) -> np.ndarray:
    """Vectorized equation (13); elementwise identical to
    :meth:`repro.workload.derived.CacheInterference.n_interference`."""
    zero = (q_bus <= 0.0) | (p <= 0.0)
    near_one = np.isclose(p_prime, 1.0, rtol=1e-9, atol=1e-12)
    safe_pp = np.where(near_one, 0.5, p_prime)
    general = p * (1.0 - safe_pp ** q_bus) / (1.0 - safe_pp)
    value = np.where(near_one, p * q_bus, general)
    return np.where(zero, 0.0, value)


class BatchEquationSystem:
    """Equations (1)-(13) stacked over many (inputs, N) cells.

    Construct from bound scalar systems (each carries its shared
    :class:`StepCoefficients`); :meth:`step` then advances every cell at
    once.  Coefficient arrays are plain ``(cells,)`` float64 vectors, so
    slicing with an index array (``system.select(keep)``) compacts the
    batch when cells freeze.
    """

    _FIELDS = ("n", "tau", "t_supply", "p_local", "p_bc", "p_rr", "t_bc",
               "t_read", "d_mem", "memory_modules", "memory_ops",
               "p_interference", "p_prime", "t_interference")

    def __init__(self, systems: Sequence[EquationSystem] | None = None,
                 *, coefficients: Sequence[StepCoefficients] | None = None):
        if coefficients is None:
            if systems is None:
                raise ValueError("systems or coefficients required")
            coefficients = [system.coefficients for system in systems]
        if not coefficients:
            raise ValueError("at least one cell required")
        for name in self._FIELDS:
            values = [getattr(c, name) for c in coefficients]
            setattr(self, name, np.asarray(values, dtype=np.float64))
        self.n_cells = len(coefficients)
        self._precompute()

    def _precompute(self) -> None:
        """Sweep invariants, rebuilt after construction or compaction.

        Every product here mirrors the exact operand grouping of the
        scalar :meth:`repro.core.equations.EquationSystem.step` so
        precomputation cannot change a single bit of the iteration.
        """
        self._bus_probability = self.p_bc + self.p_rr
        self._has_bus = self._bus_probability > 0.0
        safe_bus = np.where(self._has_bus, self._bus_probability, _SAFE)
        self._frac_bc = np.where(self._has_bus, self.p_bc / safe_bus, 0.0)
        # (6): the (N - 1) queue factor.
        self._n_minus_1 = self.n - 1.0
        # (9): the read-cycle share of the mean bus service time.
        self._t_bus_read = (1.0 - self._frac_bc) * self.t_read
        # (7): the constant remote-read part of the bus demand.
        self._rr_read = self.p_rr * self.t_read
        # (12): ((n / m) * ops) * d_mem, left-associated like scalar.
        self._mem_factor = self.n / self.memory_modules * self.memory_ops
        self._u_mem_num = self._mem_factor * self.d_mem
        # (8): the N > 1 branch of p_busy.
        self._multi = self.n > 1
        self._n_f = np.where(self._multi, self.n, 2.0)
        # (13): the p' ~ 1 branch selection (p' never changes).
        self._p_zero = self.p_interference <= 0.0
        self._pp_near_one = np.isclose(self.p_prime, 1.0,
                                       rtol=1e-9, atol=1e-12)
        self._pp_safe = np.where(self._pp_near_one, 0.5, self.p_prime)
        self._pp_one_minus = 1.0 - self._pp_safe

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "BatchEquationSystem":
        """Build a batch straight from ``(cells,)`` coefficient arrays.

        ``arrays`` must carry every name in ``_FIELDS``.  This is the
        zero-copy construction path for callers (the sweep executor)
        that derive coefficients grid-wise instead of building one
        :class:`EquationSystem` per cell.
        """
        missing = [name for name in cls._FIELDS if name not in arrays]
        if missing:
            raise ValueError(f"missing coefficient arrays: {missing}")
        instance = cls.__new__(cls)
        for name in cls._FIELDS:
            instance.__dict__[name] = np.asarray(arrays[name],
                                                 dtype=np.float64)
        instance.n_cells = int(instance.n.shape[0])
        if instance.n_cells == 0:
            raise ValueError("at least one cell required")
        instance._precompute()
        return instance

    def select(self, keep: np.ndarray) -> "BatchEquationSystem":
        """The sub-batch holding only the cells indexed by ``keep``."""
        return self.from_arrays(
            {name: getattr(self, name)[keep] for name in self._FIELDS})

    def step(self, w_bus: np.ndarray, w_mem: np.ndarray,
             q_bus: np.ndarray) -> dict[str, np.ndarray]:
        """One vectorized sweep: previous waiting times -> proposed state.

        Returns every quantity of the proposed iterate as ``(cells,)``
        arrays (the batch analogue of the scalar
        :class:`repro.core.equations.ModelState`), plus ``r_total``
        (the proposed cycle time, equation 1) which doubles as the
        convergence-trace entry.
        """
        n = self.n
        # --- response times (equations 1-4) ---------------------------
        # (13) with the constant p' branch masks precomputed.
        power = self._pp_safe ** q_bus
        general = self.p_interference * (1.0 - power) / self._pp_one_minus
        value = np.where(self._pp_near_one,
                         self.p_interference * q_bus, general)
        n_interference = np.where((q_bus <= 0.0) | self._p_zero, 0.0, value)
        r_local = self.p_local * n_interference * self.t_interference
        r_broadcast = self.p_bc * (w_bus + w_mem + self.t_bc)
        r_remote = self.p_rr * (w_bus + self.t_read)
        r_total = (self.tau + r_local + r_broadcast + r_remote
                   + self.t_supply)

        # --- bus queueing (equations 5-10) -----------------------------
        q_new = self._n_minus_1 * (r_broadcast + r_remote) / r_total
        bus_service_bc = w_mem + self.t_bc
        pbc_service = self.p_bc * bus_service_bc
        bus_demand = pbc_service + self._rr_read

        # (8) once for both servers: utilizations stacked as (2, cells).
        u_stack = np.empty((2, n.shape[0]))
        np.multiply(n, bus_demand, out=u_stack[0])
        u_stack[1] = self._u_mem_num
        u_stack /= r_total
        p_busy = _p_busy_vec(u_stack, n, multi=self._multi, n_f=self._n_f)

        busy = bus_demand > 0.0
        safe_demand = np.where(busy, bus_demand, _SAFE)
        t_bus = self._frac_bc * bus_service_bc + self._t_bus_read
        weight_bc = pbc_service / safe_demand
        t_res = (weight_bc * bus_service_bc / 2.0
                 + (1.0 - weight_bc) * self.t_read / 2.0)
        waiting_others = np.maximum(q_new - p_busy[0], 0.0)
        w_bus_new = np.where(
            busy, waiting_others * t_bus + p_busy[0] * t_res, 0.0)

        # --- memory interference (equations 11-12) ---------------------
        w_mem_new = p_busy[1] * self.d_mem / 2.0

        return {
            "w_bus": w_bus_new,
            "w_mem": w_mem_new,
            "q_bus": q_new,
            "n_interference": n_interference,
            "u_bus": u_stack[0],
            "u_mem": u_stack[1],
            "r_local": r_local,
            "r_broadcast": r_broadcast,
            "r_remote_read": r_remote,
            "r_total": r_total,
        }


@dataclass(frozen=True)
class BatchSolveResult:
    """Per-cell outcomes of one batched solve, in input order."""

    states: list[ModelState]
    diagnostics: list[SolverDiagnostics]

    def __len__(self) -> int:
        return len(self.states)

    @property
    def all_converged(self) -> bool:
        return all(d.converged for d in self.diagnostics)


#: The damped-blend state fields (matches ``EquationSystem.damped``).
_DAMPED = ("w_bus", "w_mem", "q_bus")
#: The pass-through proposed fields carried for the final state.
_PROPOSED = ("n_interference", "u_bus", "u_mem",
             "r_local", "r_broadcast", "r_remote_read")


def _snapshot(frozen: dict[str, np.ndarray], mask: np.ndarray,
              quad: np.ndarray, proposed: dict[str, np.ndarray]) -> None:
    """Capture the committed state of the lanes in ``mask``.

    ``quad`` rows 0-2 hold the damped-blend values (what the scalar
    engine commits); the pass-through fields come straight from the
    proposal, exactly like :meth:`FixedPointSolver` state updates.
    """
    frozen["w_bus"][mask] = quad[0][mask]
    frozen["w_mem"][mask] = quad[1][mask]
    frozen["q_bus"][mask] = quad[2][mask]
    for name in _PROPOSED:
        frozen[name][mask] = proposed[name][mask]


def solve_batch(
    systems: Sequence[EquationSystem] | BatchEquationSystem,
    solver: FixedPointSolver | None = None,
    recovery: bool = True,
    ladder: tuple[float, ...] = DEFAULT_DAMPING_LADDER,
    traces: bool = True,
) -> BatchSolveResult:
    """Iterate every cell to its fixed point in lockstep.

    The vectorized mirror of running
    :meth:`FixedPointSolver.solve_with_recovery` (or plain ``solve``
    when ``recovery=False``) on each system independently: converged
    cells freeze while the rest keep sweeping, and cells that exhaust a
    rung's ``max_iterations`` advance to the next (smaller) damping
    factor warm-started.  Never raises for a non-converged cell --
    its diagnostics come back with ``converged=False`` and the same
    structured warnings the scalar solver attaches, so callers keep
    their per-cell failure isolation.

    ``traces=False`` skips materializing the per-sweep ``trace`` /
    ``residual_trace`` tuples in the diagnostics (they come back
    empty).  Iteration counts, residuals, contraction rates and
    warnings are unaffected -- the executor path uses this because
    grid rows and cache values never carry traces.
    """
    solver = solver if solver is not None else FixedPointSolver()
    batch = (systems if isinstance(systems, BatchEquationSystem)
             else BatchEquationSystem(systems))
    total = batch.n_cells

    factors = [solver.damping]
    if recovery:
        factors += [rung for rung in ladder if rung < factors[-1] - 1e-12]

    # The four iterated quantities of the *live* sub-batch, stacked as
    # one (4, live) matrix: rows w_bus, w_mem, q_bus, n_interference.
    quad = np.zeros((4, total))
    live = np.arange(total)

    states: list[ModelState | None] = [None] * total
    diags: list[SolverDiagnostics | None] = [None] * total

    def finalize(cells: np.ndarray, columns: np.ndarray,
                 converged: bool, rung_index: int,
                 iters_in_rung: np.ndarray, residual: np.ndarray,
                 frozen: dict[str, np.ndarray],
                 cycle_matrix: np.ndarray | None,
                 residual_matrix: np.ndarray) -> None:
        """Reconstruct scalar-identical states and diagnostics for the
        cells frozen in this rung (``columns`` are their positions in
        the rung's live sub-batch)."""
        attempted = factors[:rung_index + 1]
        base_iterations = rung_index * solver.max_iterations
        # Gather the frozen state columns in one shot per field.
        gathered = {name: frozen[name][columns].tolist()
                    for name in _DAMPED + _PROPOSED}
        tau_values = sub.tau[columns].tolist()
        t_supply_values = sub.t_supply[columns].tolist()
        # One bulk transpose-and-convert instead of two NumPy column
        # slices per cell: the rate estimate and the trace tuples want
        # Python floats anyway (the pairwise ratio loop is an order of
        # magnitude slower over NumPy scalars).
        residual_columns = residual_matrix[:, columns].T.tolist()
        cycle_columns = (cycle_matrix[:, columns].T.tolist()
                         if cycle_matrix is not None else None)
        for position, (cell, sweeps, final_residual) in enumerate(
                zip(cells.tolist(), iters_in_rung.tolist(),
                    residual.tolist())):
            residual_list = residual_columns[position][:sweeps]
            rate = estimate_contraction_rate(residual_list)
            if cycle_columns is not None:
                trace = tuple(cycle_columns[position][:sweeps])
                residual_trace = tuple(residual_list)
            else:
                trace = ()
                residual_trace = ()
            total_iterations = base_iterations + sweeps
            warnings: list[SolverWarning] = []
            if not recovery:
                # Mirror the plain ``FixedPointSolver.solve`` record:
                # no structured warnings, single-rung ladder.
                recovered = False
            elif converged:
                recovered = rung_index > 0
                if recovered:
                    warnings.append(SolverWarning(
                        code="damping-recovery",
                        message=("converged only after damping ladder "
                                 f"{attempted} ({total_iterations} total "
                                 "sweeps, warm-started)"),
                        contraction_rate=rate))
                if rate >= SATURATION_KNEE_RATE:
                    warnings.append(SolverWarning(
                        code="saturation-knee",
                        message=(f"contraction rate {rate:.4f} ~ 1: the "
                                 "system sits on the saturation knee; "
                                 "results are converged but the iteration "
                                 "is near its stability limit"),
                        contraction_rate=rate))
            else:
                recovered = False
                code = ("saturation-knee" if rate >= SATURATION_KNEE_RATE
                        else "not-converged")
                warnings.append(SolverWarning(
                    code=code,
                    message=("no fixed point after damping ladder "
                             f"{attempted} ({total_iterations} total "
                             "sweeps, final residual "
                             f"{final_residual:.3e})"),
                    contraction_rate=rate))
            diags[cell] = SolverDiagnostics(
                iterations=total_iterations,
                converged=converged,
                final_residual=final_residual,
                trace=trace,
                residual_trace=residual_trace,
                damping=factors[rung_index],
                ladder=tuple(attempted),
                recovered=recovered,
                warnings=tuple(warnings))
            states[cell] = ModelState(
                w_bus=gathered["w_bus"][position],
                w_mem=gathered["w_mem"][position],
                q_bus=gathered["q_bus"][position],
                n_interference=gathered["n_interference"][position],
                u_bus=gathered["u_bus"][position],
                u_mem=gathered["u_mem"][position],
                response=ResponseBreakdown(
                    tau=tau_values[position],
                    r_local=gathered["r_local"][position],
                    r_broadcast=gathered["r_broadcast"][position],
                    r_remote_read=gathered["r_remote_read"][position],
                    t_supply=t_supply_values[position],
                ))

    sub = batch
    for rung_index, factor in enumerate(factors):
        if live.size == 0:
            break
        width = live.size
        active = np.ones(width, dtype=bool)
        iters_at_freeze = np.zeros(width, dtype=np.int64)
        residual_at_freeze = np.full(width, np.inf)
        frozen = {name: np.zeros(width) for name in _DAMPED + _PROPOSED}
        cycle_rows: list[np.ndarray] = []
        residual_rows: list[np.ndarray] = []
        # Double buffer for the iterated-quantities matrix: ``quad`` is
        # the committed state, ``spare`` receives the next proposal.
        spare = np.empty_like(quad)
        proposed: dict[str, np.ndarray] = {}
        with np.errstate(all="ignore"):
            for iteration in range(1, solver.max_iterations + 1):
                proposed = sub.step(quad[0], quad[1], quad[2])
                new = spare
                new[0] = proposed["w_bus"]
                new[1] = proposed["w_mem"]
                new[2] = proposed["q_bus"]
                new[3] = proposed["n_interference"]
                if factor < 1.0:
                    # Damped blend of the waiting-time quantities (the
                    # scalar engine returns the raw proposal at factor
                    # 1, so the blend is only applied below 1 -- ``old
                    # + f*(new-old)`` is not bit-identical to ``new``).
                    head = new[:3]
                    head -= quad[:3]
                    head *= factor
                    head += quad[:3]
                residual = np.abs(new - quad).max(axis=0)
                if traces:
                    cycle_rows.append(proposed["r_total"])
                residual_rows.append(residual)
                newly = active & (residual < solver.tolerance)
                if newly.any():
                    iters_at_freeze[newly] = iteration
                    residual_at_freeze[newly] = residual[newly]
                    _snapshot(frozen, newly, new, proposed)
                    active &= ~newly
                # Frozen lanes keep computing, but their state was
                # captured the sweep they converged, so nothing they
                # produce from here on is ever read.
                quad, spare = new, quad
                if not active.any():
                    break
        cycle_matrix = np.vstack(cycle_rows) if traces else None
        residual_matrix = np.vstack(residual_rows)
        converged_mask = ~active
        if converged_mask.any():
            columns = np.nonzero(converged_mask)[0]
            finalize(live[columns], columns, True, rung_index,
                     iters_at_freeze[columns],
                     residual_at_freeze[columns],
                     frozen, cycle_matrix, residual_matrix)
        last_rung = rung_index == len(factors) - 1
        if active.any() and last_rung:
            _snapshot(frozen, active, quad, proposed)
            columns = np.nonzero(active)[0]
            sweeps = np.full(columns.size, solver.max_iterations,
                             dtype=np.int64)
            final_residuals = residual_matrix[-1][columns]
            finalize(live[columns], columns, False, rung_index,
                     sweeps, final_residuals, frozen,
                     cycle_matrix, residual_matrix)
            live = live[:0]
            break
        # Compact to the still-unconverged cells for the next rung.
        keep = np.nonzero(active)[0]
        live = live[keep]
        if live.size == 0:
            break
        sub = sub.select(keep)
        quad = quad[:, keep]

    assert all(s is not None for s in states)
    assert all(d is not None for d in diags)
    return BatchSolveResult(states=states, diagnostics=diags)
