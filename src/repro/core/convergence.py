"""Empirical convergence analysis of the fixed-point iteration.

Section 3.2 reports convergence "within 15 iterations" without
analysis.  This module measures the iteration's behaviour: the
contraction rate (the geometric factor by which the residual shrinks
per sweep, i.e. an estimate of the spectral radius of the iteration
map's Jacobian at the fixed point), and from it the iterations needed
for any target precision.  The efficiency bench (E10) uses it to show
*why* the count stays small: the rate stays comfortably below 1 across
the paper's parameter space and approaches 1 only near the saturation
knee.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.equations import EquationSystem, ModelState


@dataclass(frozen=True)
class ConvergenceAnalysis:
    """Measured convergence behaviour of one equation system."""

    contraction_rate: float
    iterations_observed: int
    residuals: tuple[float, ...]

    def iterations_for(self, precision: float, initial_residual: float | None = None) -> float:
        """Predicted sweeps to reach ``precision`` from a cold start."""
        if precision <= 0.0:
            raise ValueError("precision must be positive")
        start = (initial_residual if initial_residual is not None
                 else (self.residuals[0] if self.residuals else 1.0))
        if start <= precision:
            return 0.0  # already at target: no sweeps needed
        rate = self.contraction_rate
        if rate <= 0.0:
            return 1.0  # residual collapses in a single sweep
        if rate >= 1.0:
            return math.inf
        return math.log(precision / start) / math.log(rate)

    @property
    def is_contraction(self) -> bool:
        return self.contraction_rate < 1.0


def analyze_convergence(system: EquationSystem,
                        max_iterations: int = 400,
                        tolerance: float = 1e-12,
                        damping: float = 1.0) -> ConvergenceAnalysis:
    """Iterate from a cold start, recording residuals.

    The contraction rate is estimated from the tail of the residual
    sequence (geometric mean of the last few ratios), where the
    iteration behaves linearly.  ``damping`` applies the solver's
    under-relaxation per sweep, so the measured rate describes the
    iteration the solver actually runs (a damped sweep contracts like
    ``(1 - d) + d * rate`` near the fixed point, not like the plain
    map).
    """
    if not 0.0 < damping <= 1.0:
        raise ValueError("damping must be in (0, 1]")
    state = ModelState()
    residuals: list[float] = []
    for iteration in range(1, max_iterations + 1):
        proposed = system.step(state)
        proposed = system.damped(state, proposed, damping)
        residual = proposed.distance(state)
        state = proposed
        residuals.append(residual)
        if residual < tolerance:
            break
    ratios = [b / a for a, b in zip(residuals, residuals[1:])
              if a > 1e-14 and b > 1e-14]
    tail = ratios[-5:] if len(ratios) >= 5 else ratios
    if tail:
        log_mean = sum(math.log(r) for r in tail) / len(tail)
        rate = math.exp(log_mean)
    else:
        rate = 0.0
    return ConvergenceAnalysis(
        contraction_rate=rate,
        iterations_observed=len(residuals),
        residuals=tuple(residuals),
    )
