"""Performance-measure value objects returned by the MVA solver."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ResponseBreakdown:
    """The additive components of the memory-request cycle (equation 1).

    ``total`` is R: mean time between memory requests, the sum of the
    execution burst tau, the three weighted response-time components and
    the one-cycle cache supply time.
    """

    tau: float
    r_local: float
    r_broadcast: float
    r_remote_read: float
    t_supply: float

    @property
    def total(self) -> float:
        return (self.tau + self.r_local + self.r_broadcast
                + self.r_remote_read + self.t_supply)


@dataclass(frozen=True)
class PerformanceReport:
    """All performance measures for one (protocol, workload, N) point.

    Speedup is the paper's ``N * (tau + T_supply) / R``; processing
    power is the sum of processor utilizations, ``N * tau / R``
    (Section 4.4).
    """

    n_processors: int
    protocol_label: str
    sharing_label: str
    response: ResponseBreakdown
    w_bus: float
    w_mem: float
    u_bus: float
    u_mem: float
    q_bus: float
    p_interference: float
    p_prime_interference: float
    n_interference: float
    t_interference: float
    iterations: int
    converged: bool
    #: Damping factor of the sweep that produced the result (1.0 is the
    #: paper's plain successive substitution).
    damping: float = 1.0
    #: True when the solve needed the escalating damping ladder
    #: (:meth:`repro.core.solver.FixedPointSolver.solve_with_recovery`).
    recovered: bool = False
    #: Structured :class:`repro.core.solver.SolverWarning` records
    #: (saturation knee, damping recovery); empty for a clean solve.
    warnings: tuple = ()

    @property
    def cycle_time(self) -> float:
        """R, the mean total time between memory requests."""
        return self.response.total

    @property
    def speedup(self) -> float:
        """N * (tau + T_supply) / R (Section 4)."""
        r = self.response
        return self.n_processors * (r.tau + r.t_supply) / r.total

    @property
    def processing_power(self) -> float:
        """Sum of processor utilizations, N * tau / R (Section 4.4)."""
        return self.n_processors * self.response.tau / self.response.total

    @property
    def processor_utilization(self) -> float:
        """Per-processor useful-work fraction, tau / R."""
        return self.response.tau / self.response.total

    @property
    def efficiency(self) -> float:
        """Speedup divided by the number of processors."""
        return self.speedup / self.n_processors

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (f"{self.protocol_label} N={self.n_processors} "
                f"({self.sharing_label} sharing): speedup={self.speedup:.3f} "
                f"U_bus={self.u_bus:.3f} w_bus={self.w_bus:.3f} "
                f"iters={self.iterations}")
