"""The mean-value equations of paper Section 3.1, one iteration at a time.

The equation numbers in the comments refer to the paper.  The system is
cyclic (R depends on the waiting times, which depend on R), so
:class:`EquationSystem.step` computes one sweep: given the waiting times
of the previous iterate it produces the next :class:`ModelState`.  The
fixed point is found by :class:`repro.core.solver.FixedPointSolver`.

All quantities are per memory request and in bus cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.metrics import ResponseBreakdown
from repro.workload.derived import CacheInterference, DerivedInputs


@dataclass(frozen=True)
class ModelState:
    """One iterate of the fixed-point solution.

    ``w_bus`` / ``w_mem`` are the mean bus / memory-module waiting
    times; ``q_bus`` the mean bus queue length seen at arrival;
    ``n_interference`` the mean number of consecutive bus requests that
    delay a local cache access.  The derived measures (R, utilizations)
    are carried along for reporting.
    """

    w_bus: float = 0.0
    w_mem: float = 0.0
    q_bus: float = 0.0
    n_interference: float = 0.0
    u_bus: float = 0.0
    u_mem: float = 0.0
    response: ResponseBreakdown | None = None

    @property
    def cycle_time(self) -> float:
        """R of the current iterate (0 before the first sweep)."""
        return self.response.total if self.response is not None else 0.0

    def distance(self, other: "ModelState") -> float:
        """Max absolute difference of the iterated quantities."""
        return max(
            abs(self.w_bus - other.w_bus),
            abs(self.w_mem - other.w_mem),
            abs(self.q_bus - other.q_bus),
            abs(self.n_interference - other.n_interference),
        )


@dataclass(frozen=True)
class StepCoefficients:
    """The waiting-time-independent inputs of one equation-system sweep.

    Everything :meth:`EquationSystem.step` reads besides the iterated
    state, extracted once per (inputs, N).  The scalar solver consumes
    one instance; :class:`repro.core.batch.BatchEquationSystem` stacks
    many of them into ``(cells,)`` arrays, so the two engines share one
    derivation and cannot drift apart.
    """

    n: int
    tau: float
    t_supply: float
    p_local: float
    p_bc: float
    p_rr: float
    t_bc: float
    t_read: float
    d_mem: float
    memory_modules: int
    memory_ops: float
    #: Appendix-B cache-interference quantities (repeated here so the
    #: batch engine can stack them without touching ``DerivedInputs``).
    p_interference: float
    p_prime: float
    t_interference: float

    @classmethod
    def from_inputs(cls, inputs: DerivedInputs, n_processors: int,
                    interference: CacheInterference | None = None,
                    ) -> "StepCoefficients":
        ci = (interference if interference is not None
              else inputs.cache_interference(n_processors))
        return cls(
            n=n_processors,
            tau=inputs.workload.tau,
            t_supply=inputs.arch.t_supply,
            p_local=inputs.p_local,
            p_bc=inputs.p_bc,
            p_rr=inputs.p_rr,
            t_bc=inputs.t_bc,
            t_read=inputs.t_read,
            d_mem=inputs.arch.memory_latency,
            memory_modules=inputs.arch.memory_modules,
            memory_ops=inputs.memory_ops_per_request(),
            p_interference=ci.p,
            p_prime=ci.p_prime,
            t_interference=ci.t_interference,
        )


def _p_busy(utilization: float, n: int) -> float:
    """Arrival-instant busy probability from a time-average utilization.

    Equation (8): the arriving cache's own contribution U/N is removed
    (the arrival theorem for closed networks, applied approximately).
    Clamped to [0, 1) because intermediate iterates can overshoot U > 1.
    """
    if n <= 1:
        return 0.0
    u = min(utilization, float(n))
    own = u / n
    denominator = 1.0 - own
    if denominator <= 0.0:
        return 1.0 - 1e-12
    return min(max((u - own) / denominator, 0.0), 1.0 - 1e-12)


class EquationSystem:
    """Equations (1)-(13) bound to one (inputs, N) instance."""

    def __init__(self, inputs: DerivedInputs, n_processors: int):
        if n_processors < 1:
            raise ValueError(f"n_processors must be >= 1, got {n_processors!r}")
        self.inputs = inputs
        self.n = n_processors
        #: Appendix-B quantities are independent of the waiting times, so
        #: they are computed once per (inputs, N).
        self.interference: CacheInterference = inputs.cache_interference(n_processors)
        #: The same quantities flattened for one sweep; shared with the
        #: batch engine so both read identical coefficients.
        self.coefficients: StepCoefficients = StepCoefficients.from_inputs(
            inputs, n_processors, self.interference)

    def step(self, state: ModelState) -> ModelState:
        """One sweep of the equation system."""
        c = self.coefficients
        n = c.n
        ci = self.interference

        # --- response times (equations 1-4) ---------------------------
        n_interference = ci.n_interference(state.q_bus)
        r_local = c.p_local * n_interference * c.t_interference      # (2)
        r_broadcast = c.p_bc * (state.w_bus + state.w_mem + c.t_bc)  # (3)
        r_remote = c.p_rr * (state.w_bus + c.t_read)                 # (4)
        response = ResponseBreakdown(                                # (1)
            tau=c.tau,
            r_local=r_local,
            r_broadcast=r_broadcast,
            r_remote_read=r_remote,
            t_supply=c.t_supply,
        )
        r_total = response.total

        # --- bus queueing (equations 5-10) -----------------------------
        q_bus = (n - 1) * (r_broadcast + r_remote) / r_total         # (6)
        bus_service_bc = state.w_mem + c.t_bc
        bus_demand = c.p_bc * bus_service_bc + c.p_rr * c.t_read
        u_bus = n * bus_demand / r_total                             # (7)
        p_busy_bus = _p_busy(u_bus, n)                               # (8)

        w_bus = 0.0
        if bus_demand > 0.0:
            frac_bc = c.p_bc / (c.p_bc + c.p_rr)                     # (9)
            t_bus = frac_bc * bus_service_bc + (1.0 - frac_bc) * c.t_read
            weight_bc = c.p_bc * bus_service_bc / bus_demand         # (10)
            t_res = (weight_bc * bus_service_bc / 2.0
                     + (1.0 - weight_bc) * c.t_read / 2.0)
            waiting_others = max(q_bus - p_busy_bus, 0.0)
            w_bus = waiting_others * t_bus + p_busy_bus * t_res      # (5)

        # --- memory interference (equations 11-12) ---------------------
        u_mem = (n / c.memory_modules
                 * c.memory_ops * c.d_mem / r_total)                 # (12)
        p_busy_mem = _p_busy(u_mem, n)
        w_mem = p_busy_mem * c.d_mem / 2.0                           # (11)

        return ModelState(
            w_bus=w_bus,
            w_mem=w_mem,
            q_bus=q_bus,
            n_interference=n_interference,
            u_bus=u_bus,
            u_mem=u_mem,
            response=response,
        )

    def damped(self, previous: ModelState, proposed: ModelState,
               factor: float) -> ModelState:
        """Blend iterates: ``factor`` = 1 is plain successive substitution."""
        if factor >= 1.0:
            return proposed
        mix = lambda old, new: old + factor * (new - old)  # noqa: E731
        return replace(
            proposed,
            w_bus=mix(previous.w_bus, proposed.w_bus),
            w_mem=mix(previous.w_mem, proposed.w_mem),
            q_bus=mix(previous.q_bus, proposed.q_bus),
        )
