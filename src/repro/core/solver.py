"""Fixed-point iteration of the mean-value equations (paper Section 3.2).

"The equations must be solved iteratively.  We do so, starting with all
waiting times set to zero.  Solution of the equations converged within
15 iterations in all experiments reported in this paper, yielding
results in under one second of cpu time, independent of the size of the
system analyzed."

The solver reproduces that scheme (successive substitution from a cold
start) and adds the engineering a library needs: a convergence
tolerance, an iteration cap, optional under-relaxation for pathological
inputs, a diagnostics trace for the efficiency benchmarks, and a
recovery path (:meth:`FixedPointSolver.solve_with_recovery`) that walks
an escalating damping ladder when plain successive substitution fails.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.core.equations import EquationSystem, ModelState

#: The escalating under-relaxation schedule tried by
#: :meth:`FixedPointSolver.solve_with_recovery`: plain successive
#: substitution first, then progressively heavier damping.  Each rung is
#: warm-started from the previous rung's last iterate, so partial
#: progress is never discarded.
DEFAULT_DAMPING_LADDER: tuple[float, ...] = (1.0, 0.5, 0.25, 0.1)

#: Contraction-rate threshold above which a solve is flagged as sitting
#: on the saturation knee (the regime where the iteration map's spectral
#: radius approaches 1 and convergence grinds down).
SATURATION_KNEE_RATE = 0.98


class SolverError(RuntimeError):
    """Raised when the fixed-point iteration fails to converge.

    ``diagnostics`` (when available) records the failing solve: the
    damping factors attempted, iterations spent and structured warnings,
    so callers can report *why* a cell failed instead of just *that* it
    failed.
    """

    def __init__(self, message: str,
                 diagnostics: "SolverDiagnostics | None" = None):
        super().__init__(message)
        self.diagnostics = diagnostics


@dataclass(frozen=True)
class SolverWarning:
    """A structured, non-fatal observation about one solve."""

    code: str  # "saturation-knee" | "damping-recovery" | "not-converged"
    message: str
    contraction_rate: float | None = None

    def as_dict(self) -> dict[str, object]:
        return {"code": self.code, "message": self.message,
                "contraction_rate": self.contraction_rate}


@dataclass(frozen=True)
class SolverDiagnostics:
    """Convergence record of one solve."""

    iterations: int
    converged: bool
    final_residual: float
    #: R after every sweep, for convergence-behaviour benchmarks.
    trace: tuple[float, ...] = field(default_factory=tuple)
    #: Residual after every sweep (same length as ``trace``).
    residual_trace: tuple[float, ...] = field(default_factory=tuple)
    #: Damping factor of the sweep that produced the result.
    damping: float = 1.0
    #: Every damping factor attempted, in order (one entry for a plain
    #: solve; the walked rungs for a recovery solve).
    ladder: tuple[float, ...] = field(default_factory=tuple)
    #: True when the result needed more than the first ladder rung.
    recovered: bool = False
    warnings: tuple[SolverWarning, ...] = field(default_factory=tuple)


def estimate_contraction_rate(residuals: tuple[float, ...] | list[float],
                              tail: int = 5) -> float:
    """Geometric-mean residual ratio over the last ``tail`` sweeps.

    An estimate of the spectral radius of the iteration map's Jacobian
    near the fixed point; ~1.0 marks the saturation knee.  Returns 0.0
    when the sequence is too short or already at numerical zero.
    """
    # Only the last ``tail`` valid ratios contribute, so scan backwards
    # and stop early -- same window, same summation order, O(tail).
    window_reversed: list[float] = []
    for i in range(len(residuals) - 1, 0, -1):
        a, b = residuals[i - 1], residuals[i]
        if a > 1e-14 and b > 1e-14:
            window_reversed.append(b / a)
            if len(window_reversed) == tail:
                break
    if not window_reversed:
        return 0.0
    log_sum = 0.0
    for i in range(len(window_reversed) - 1, -1, -1):
        log_sum += math.log(window_reversed[i])
    return math.exp(log_sum / len(window_reversed))


@dataclass(frozen=True)
class FixedPointSolver:
    """Successive substitution with optional damping.

    Parameters
    ----------
    tolerance:
        Convergence threshold on the max absolute change of the iterated
        waiting-time quantities between sweeps.
    max_iterations:
        Hard cap; exceeded only for inputs far outside the paper's range.
    damping:
        Relaxation factor in (0, 1]; 1.0 reproduces the paper's scheme.
    raise_on_divergence:
        If True (default) a non-converged solve raises
        :class:`SolverError`; otherwise the last iterate is returned
        with ``converged=False`` in the diagnostics.
    """

    tolerance: float = 1e-9
    max_iterations: int = 500
    damping: float = 1.0
    raise_on_divergence: bool = True

    def __post_init__(self) -> None:
        if self.tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if not 0.0 < self.damping <= 1.0:
            raise ValueError("damping must be in (0, 1]")

    def solve(
        self,
        system: EquationSystem,
        initial: ModelState | None = None,
    ) -> tuple[ModelState, SolverDiagnostics]:
        """Iterate ``system`` to a fixed point.

        Returns the converged state and the diagnostics.  The returned
        state always carries a response breakdown (at least one sweep is
        performed).
        """
        state = initial if initial is not None else ModelState()
        trace: list[float] = []
        residuals: list[float] = []
        residual = float("inf")
        for iteration in range(1, self.max_iterations + 1):
            proposed = system.step(state)
            proposed = system.damped(state, proposed, self.damping)
            residual = proposed.distance(state)
            state = proposed
            trace.append(state.cycle_time)
            residuals.append(residual)
            if residual < self.tolerance:
                diagnostics = SolverDiagnostics(
                    iterations=iteration,
                    converged=True,
                    final_residual=residual,
                    trace=tuple(trace),
                    residual_trace=tuple(residuals),
                    damping=self.damping,
                    ladder=(self.damping,),
                )
                return state, diagnostics
        diagnostics = SolverDiagnostics(
            iterations=self.max_iterations,
            converged=False,
            final_residual=residual,
            trace=tuple(trace),
            residual_trace=tuple(residuals),
            damping=self.damping,
            ladder=(self.damping,),
        )
        if self.raise_on_divergence:
            raise SolverError(
                f"fixed point not reached in {self.max_iterations} iterations "
                f"(residual {residual:.3e}); consider damping < 1",
                diagnostics=diagnostics,
            )
        return state, diagnostics

    def solve_with_recovery(
        self,
        system: EquationSystem,
        initial: ModelState | None = None,
        ladder: tuple[float, ...] = DEFAULT_DAMPING_LADDER,
    ) -> tuple[ModelState, SolverDiagnostics]:
        """Iterate with an escalating damping ladder on non-convergence.

        The first attempt uses this solver's own ``damping``; each
        subsequent attempt takes the next *smaller* ladder rung and
        warm-starts from the last iterate of the previous attempt, so an
        oscillating iteration is progressively damped rather than
        replayed from a cold start.  The attempted rungs are recorded in
        ``SolverDiagnostics.ladder``; a solve that needed more than one
        rung is marked ``recovered`` and carries a ``damping-recovery``
        warning.  A measured contraction rate near 1 (the saturation
        knee) is surfaced as a structured ``saturation-knee`` warning
        rather than a crash.

        Raises :class:`SolverError` (diagnostics attached) only when
        every rung fails and ``raise_on_divergence`` is set.
        """
        state = initial if initial is not None else ModelState()
        attempted: list[float] = []
        total_iterations = 0
        diag = None
        factors = [self.damping]
        factors += [rung for rung in ladder if rung < factors[-1] - 1e-12]
        for factor in factors:
            attempt = replace(self, damping=factor,
                              raise_on_divergence=False)
            state, diag = attempt.solve(system, initial=state)
            attempted.append(factor)
            total_iterations += diag.iterations
            if diag.converged:
                rate = estimate_contraction_rate(diag.residual_trace)
                warnings: list[SolverWarning] = []
                recovered = len(attempted) > 1
                if recovered:
                    warnings.append(SolverWarning(
                        code="damping-recovery",
                        message=("converged only after damping ladder "
                                 f"{attempted} ({total_iterations} total "
                                 "sweeps, warm-started)"),
                        contraction_rate=rate))
                if rate >= SATURATION_KNEE_RATE:
                    warnings.append(SolverWarning(
                        code="saturation-knee",
                        message=(f"contraction rate {rate:.4f} ~ 1: the "
                                 "system sits on the saturation knee; "
                                 "results are converged but the iteration "
                                 "is near its stability limit"),
                        contraction_rate=rate))
                diagnostics = replace(
                    diag, iterations=total_iterations, damping=factor,
                    ladder=tuple(attempted), recovered=recovered,
                    warnings=tuple(warnings))
                return state, diagnostics
        assert diag is not None
        rate = estimate_contraction_rate(diag.residual_trace)
        code = ("saturation-knee" if rate >= SATURATION_KNEE_RATE
                else "not-converged")
        diagnostics = replace(
            diag, iterations=total_iterations, ladder=tuple(attempted),
            warnings=(SolverWarning(
                code=code,
                message=(f"no fixed point after damping ladder {attempted} "
                         f"({total_iterations} total sweeps, final residual "
                         f"{diag.final_residual:.3e})"),
                contraction_rate=rate),))
        if self.raise_on_divergence:
            raise SolverError(
                f"fixed point not reached after damping ladder {attempted} "
                f"({total_iterations} total sweeps, residual "
                f"{diag.final_residual:.3e})",
                diagnostics=diagnostics,
            )
        return state, diagnostics
