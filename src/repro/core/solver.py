"""Fixed-point iteration of the mean-value equations (paper Section 3.2).

"The equations must be solved iteratively.  We do so, starting with all
waiting times set to zero.  Solution of the equations converged within
15 iterations in all experiments reported in this paper, yielding
results in under one second of cpu time, independent of the size of the
system analyzed."

The solver reproduces that scheme (successive substitution from a cold
start) and adds the engineering a library needs: a convergence
tolerance, an iteration cap, optional under-relaxation for pathological
inputs, and a diagnostics trace for the efficiency benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.equations import EquationSystem, ModelState


class SolverError(RuntimeError):
    """Raised when the fixed-point iteration fails to converge."""


@dataclass(frozen=True)
class SolverDiagnostics:
    """Convergence record of one solve."""

    iterations: int
    converged: bool
    final_residual: float
    #: R after every sweep, for convergence-behaviour benchmarks.
    trace: tuple[float, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class FixedPointSolver:
    """Successive substitution with optional damping.

    Parameters
    ----------
    tolerance:
        Convergence threshold on the max absolute change of the iterated
        waiting-time quantities between sweeps.
    max_iterations:
        Hard cap; exceeded only for inputs far outside the paper's range.
    damping:
        Relaxation factor in (0, 1]; 1.0 reproduces the paper's scheme.
    raise_on_divergence:
        If True (default) a non-converged solve raises
        :class:`SolverError`; otherwise the last iterate is returned
        with ``converged=False`` in the diagnostics.
    """

    tolerance: float = 1e-9
    max_iterations: int = 500
    damping: float = 1.0
    raise_on_divergence: bool = True

    def __post_init__(self) -> None:
        if self.tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if not 0.0 < self.damping <= 1.0:
            raise ValueError("damping must be in (0, 1]")

    def solve(
        self,
        system: EquationSystem,
        initial: ModelState | None = None,
    ) -> tuple[ModelState, SolverDiagnostics]:
        """Iterate ``system`` to a fixed point.

        Returns the converged state and the diagnostics.  The returned
        state always carries a response breakdown (at least one sweep is
        performed).
        """
        state = initial if initial is not None else ModelState()
        trace: list[float] = []
        residual = float("inf")
        for iteration in range(1, self.max_iterations + 1):
            proposed = system.step(state)
            proposed = system.damped(state, proposed, self.damping)
            residual = proposed.distance(state)
            state = proposed
            trace.append(state.cycle_time)
            if residual < self.tolerance:
                diagnostics = SolverDiagnostics(
                    iterations=iteration,
                    converged=True,
                    final_residual=residual,
                    trace=tuple(trace),
                )
                return state, diagnostics
        diagnostics = SolverDiagnostics(
            iterations=self.max_iterations,
            converged=False,
            final_residual=residual,
            trace=tuple(trace),
        )
        if self.raise_on_divergence:
            raise SolverError(
                f"fixed point not reached in {self.max_iterations} iterations "
                f"(residual {residual:.3e}); consider damping < 1"
            )
        return state, diagnostics
