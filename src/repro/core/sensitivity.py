"""Design-space exploration helpers built on the MVA model.

The paper argues (Sections 3.2, 4.1, 5) that the MVA's speed enables
interactive exploration: asymptotic system sizes, parameter sweeps, and
sensitivity analyses that are impractical with the GTPN.  This module
packages those explorations.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.model import CacheMVAModel
from repro.protocols.modifications import ProtocolSpec
from repro.workload.parameters import ArchitectureParams, WorkloadParameters


def speedup_curve(
    workload: WorkloadParameters,
    protocol: ProtocolSpec,
    sizes: Iterable[int],
    arch: ArchitectureParams | None = None,
) -> list[tuple[int, float]]:
    """(N, speedup) points for one protocol/workload."""
    model = CacheMVAModel(workload, protocol, arch=arch)
    return [(n, model.speedup(n)) for n in sizes]


def asymptotic_speedup(
    workload: WorkloadParameters,
    protocol: ProtocolSpec,
    arch: ArchitectureParams | None = None,
    start: int = 64,
    relative_tolerance: float = 1e-4,
    max_n: int = 65536,
) -> float:
    """The bus-saturated speedup limit, found by doubling N until flat.

    Section 4.1: "the performance does not change appreciably beyond
    twenty processors"; this utility locates the plateau for any
    parameter set.
    """
    model = CacheMVAModel(workload, protocol, arch=arch)
    n = start
    previous = model.speedup(n)
    while n < max_n:
        n *= 2
        current = model.speedup(n)
        if abs(current - previous) <= relative_tolerance * max(previous, 1e-12):
            return current
        previous = current
    return previous


@dataclass(frozen=True)
class SweepPoint:
    """One point of a parameter sweep."""

    value: float
    speedup: float
    u_bus: float
    cycle_time: float


def sweep_parameter(
    workload: WorkloadParameters,
    protocol: ProtocolSpec,
    n_processors: int,
    parameter: str,
    values: Iterable[float],
    arch: ArchitectureParams | None = None,
) -> list[SweepPoint]:
    """Re-solve the model across values of one workload parameter.

    ``parameter`` is any :class:`WorkloadParameters` field name; stream
    probabilities are not renormalized automatically (pass consistent
    mixes explicitly when sweeping them).
    """
    points = []
    for value in values:
        w = workload.replace(**{parameter: value})
        report = CacheMVAModel(w, protocol, arch=arch).solve(n_processors)
        points.append(SweepPoint(value=value, speedup=report.speedup,
                                 u_bus=report.u_bus,
                                 cycle_time=report.cycle_time))
    return points


def parameter_sensitivity(
    workload: WorkloadParameters,
    protocol: ProtocolSpec,
    n_processors: int,
    parameter: str,
    delta: float = 0.01,
    arch: ArchitectureParams | None = None,
) -> float:
    """Normalized central-difference sensitivity d(speedup)/d(param).

    Returns the elasticity (percent speedup change per percent parameter
    change) where the base value allows a symmetric perturbation.
    """
    base_value = getattr(workload, parameter)
    lo = max(base_value - delta, 0.0)
    hi = min(base_value + delta, 1.0) if parameter != "tau" else base_value + delta
    if hi <= lo:
        raise ValueError(f"cannot perturb {parameter} around {base_value}")
    s_lo = CacheMVAModel(workload.replace(**{parameter: lo}), protocol,
                         arch=arch).speedup(n_processors)
    s_hi = CacheMVAModel(workload.replace(**{parameter: hi}), protocol,
                         arch=arch).speedup(n_processors)
    s_base = CacheMVAModel(workload, protocol, arch=arch).speedup(n_processors)
    if base_value == 0.0 or s_base == 0.0:
        return (s_hi - s_lo) / (hi - lo)
    return ((s_hi - s_lo) / s_base) / ((hi - lo) / base_value)


def protocol_comparison(
    workload: WorkloadParameters,
    protocols: Sequence[ProtocolSpec],
    n_processors: int,
    arch: ArchitectureParams | None = None,
) -> dict[str, float]:
    """Speedups of several protocols at one size, keyed by label."""
    return {
        spec.label: CacheMVAModel(workload, spec, arch=arch).speedup(n_processors)
        for spec in protocols
    }
