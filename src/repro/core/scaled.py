"""MVA with the N-dependent sharing refinement.

:class:`ScaledSharingMVAModel` re-derives the model inputs at every
system size, replacing the fixed Appendix-A ``csupply`` constants with
the residency-based values of
:class:`~repro.workload.sharing.SharingScalingModel`, and passing the
same residency into the Appendix-B interference formulas (in place of
their hard-coded 0.5).

Calibrated at the default reference size, the refinement *agrees with
the paper's model exactly at that size* and diverges away from it:
below the reference point shared misses are cheaper (fewer suppliers in
wback, less snoop work), above it slightly dearer.  The
``bench_sharing_scaling`` experiment quantifies the effect.
"""

from __future__ import annotations

from repro.core.metrics import PerformanceReport
from repro.core.model import CacheMVAModel
from repro.core.solver import FixedPointSolver
from repro.protocols.modifications import ProtocolSpec
from repro.workload.derived import derive_inputs
from repro.workload.parameters import ArchitectureParams, WorkloadParameters
from repro.workload.sharing import SharingScalingModel


class ScaledSharingMVAModel:
    """Like :class:`CacheMVAModel`, but sharing scales with N."""

    def __init__(
        self,
        workload: WorkloadParameters,
        protocol: ProtocolSpec | None = None,
        scaling: SharingScalingModel | None = None,
        reference_size: int = 10,
        arch: ArchitectureParams | None = None,
        solver: FixedPointSolver | None = None,
    ):
        self.protocol = protocol if protocol is not None else ProtocolSpec()
        self.base_workload = workload
        self.workload = self.protocol.adjust_workload(workload)
        self.scaling = (scaling if scaling is not None
                        else SharingScalingModel.calibrated(
                            self.workload, reference_size))
        self.reference_size = reference_size
        self.arch = arch if arch is not None else ArchitectureParams()
        self.solver = solver if solver is not None else FixedPointSolver()

    def model_for(self, n_processors: int) -> CacheMVAModel:
        """The fixed-csupply model instantiated at one system size."""
        scaled = self.scaling.scale(self.workload, n_processors)
        model = CacheMVAModel(
            scaled, self.protocol, arch=self.arch, solver=self.solver,
            apply_overrides=False,
            sharing_label=f"{scaled.sharing_fraction * 100:g}% (scaled)",
        )
        # Re-derive with the residency-based holder probability.
        model.inputs = derive_inputs(
            scaled, self.arch, self.protocol.mod_numbers,
            holder_probability=self.scaling.holder_probability(scaled),
        )
        return model

    def solve(self, n_processors: int) -> PerformanceReport:
        return self.model_for(n_processors).solve(n_processors)

    def speedup(self, n_processors: int) -> float:
        return self.solve(n_processors).speedup
