"""The user-facing MVA model: workload + protocol + architecture -> report."""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.equations import EquationSystem, ModelState
from repro.core.metrics import PerformanceReport
from repro.core.solver import FixedPointSolver, SolverDiagnostics
from repro.protocols.modifications import ProtocolSpec
from repro.workload.derived import (
    DerivedInputs,
    ReplacementWeighting,
    derive_inputs,
)
from repro.workload.parameters import ArchitectureParams, WorkloadParameters


def build_report(system: EquationSystem, protocol_label: str,
                 sharing_label: str, state: ModelState,
                 diagnostics: SolverDiagnostics) -> PerformanceReport:
    """Assemble the performance report for one solved fixed point.

    Shared by the scalar :meth:`CacheMVAModel.solve` path and the
    batched engine (:mod:`repro.core.batch`), so both produce
    field-identical reports from identical states.
    """
    assert state.response is not None  # at least one sweep ran
    return PerformanceReport(
        n_processors=system.n,
        protocol_label=protocol_label,
        sharing_label=sharing_label,
        response=state.response,
        w_bus=state.w_bus,
        w_mem=state.w_mem,
        u_bus=min(state.u_bus, 1.0),
        u_mem=min(state.u_mem, 1.0),
        q_bus=state.q_bus,
        p_interference=system.interference.p,
        p_prime_interference=system.interference.p_prime,
        n_interference=state.n_interference,
        t_interference=system.interference.t_interference,
        iterations=diagnostics.iterations,
        converged=diagnostics.converged,
        damping=diagnostics.damping,
        recovered=diagnostics.recovered,
        warnings=diagnostics.warnings,
    )


class CacheMVAModel:
    """Mean-value model of one coherence protocol under one workload.

    The constructor applies the protocol's Appendix-A parameter
    overrides (``apply_overrides=True``, the paper's procedure) and
    derives the model inputs once; :meth:`solve` then costs a handful of
    fixed-point sweeps per system size, which is what makes the
    technique interactive (paper Section 3.2).
    """

    def __init__(
        self,
        workload: WorkloadParameters,
        protocol: ProtocolSpec | None = None,
        arch: ArchitectureParams | None = None,
        solver: FixedPointSolver | None = None,
        apply_overrides: bool = True,
        replacement_weighting: ReplacementWeighting = ReplacementWeighting.REFERENCE_MIX,
        sharing_label: str | None = None,
    ):
        self.protocol = protocol if protocol is not None else ProtocolSpec()
        self.base_workload = workload
        self.workload = (self.protocol.adjust_workload(workload)
                         if apply_overrides else workload)
        self.arch = arch if arch is not None else ArchitectureParams()
        self.solver = solver if solver is not None else FixedPointSolver()
        self.sharing_label = (sharing_label if sharing_label is not None
                              else f"{workload.sharing_fraction * 100:g}%")
        self.inputs: DerivedInputs = derive_inputs(
            self.workload,
            self.arch,
            self.protocol.mod_numbers,
            replacement_weighting=replacement_weighting,
        )

    def system(self, n_processors: int) -> EquationSystem:
        """The bound equation system for a given system size."""
        return EquationSystem(self.inputs, n_processors)

    def solve(self, n_processors: int,
              recovery: bool = False) -> PerformanceReport:
        """Iterate the equations to a fixed point and report measures.

        With ``recovery=True`` a non-converged plain iteration is
        retried down the escalating damping ladder (warm-started), and
        the report carries the recovery/warning diagnostics; see
        :meth:`repro.core.solver.FixedPointSolver.solve_with_recovery`.
        """
        system = self.system(n_processors)
        if recovery:
            state, diagnostics = self.solver.solve_with_recovery(system)
        else:
            state, diagnostics = self.solver.solve(system)
        return build_report(system, self.protocol.label, self.sharing_label,
                            state, diagnostics)

    def speedup(self, n_processors: int) -> float:
        """Convenience: just the speedup number."""
        return self.solve(n_processors).speedup

    def solve_many(self, sizes: Iterable[int]) -> list[PerformanceReport]:
        """Solve for several system sizes (each from a cold start)."""
        return [self.solve(n) for n in sizes]


#: The system sizes reported in Table 4.1.
TABLE_41_SIZES: Sequence[int] = (1, 2, 4, 6, 8, 10, 15, 20, 100)
