"""Workload model for the snooping-cache MVA study.

The workload model follows Section 2.3 and Appendix A of Vernon,
Lazowska & Zahorjan (1988): the memory reference stream of each
processor is the probabilistic merge of three substreams -- private,
shared read-only (*sro*) and shared-writable (*sw*) -- each with its own
hit rate, read/write mix, and sharing characteristics.

Public surface:

* :class:`WorkloadParameters` -- the basic parameters of Appendix A.
* :class:`ArchitectureParams` -- bus/memory timing constants (Section 2.1).
* :func:`appendix_a_workload` -- the published parameter values, keyed by
  sharing level.
* :class:`SharingLevel` -- the three sharing levels of the study.
* :func:`stress_test_workload` -- the Section 4.3 stress-test values.
* :class:`DerivedInputs` / :func:`derive_inputs` -- the model inputs
  computed from the basic parameters (Section 2.3 and Appendix B).
* :class:`ReferenceStream` -- per-reference outcome sampler used by the
  discrete-event simulator.
"""

from repro.workload.parameters import (
    ArchitectureParams,
    SharingLevel,
    WorkloadParameters,
    appendix_a_workload,
    katz_sharing_workload,
    stress_test_workload,
)
from repro.workload.derived import (
    DerivedInputs,
    ReferenceMix,
    ReplacementWeighting,
    derive_inputs,
)
from repro.workload.sharing import SharingScalingModel
from repro.workload.streams import ReferenceOutcome, ReferenceStream

__all__ = [
    "ArchitectureParams",
    "DerivedInputs",
    "ReferenceMix",
    "ReferenceOutcome",
    "ReferenceStream",
    "ReplacementWeighting",
    "SharingLevel",
    "SharingScalingModel",
    "WorkloadParameters",
    "appendix_a_workload",
    "derive_inputs",
    "katz_sharing_workload",
    "stress_test_workload",
]
