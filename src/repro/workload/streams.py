"""Per-reference outcome sampling for the discrete-event simulator.

Like the GTPN model of the paper, the simulator does not track concrete
addresses; every memory reference independently samples its event class
and sharing outcomes from the workload probabilities (paper Section 2.3).
This module turns a :class:`~repro.workload.derived.DerivedInputs` into a
stream of :class:`ReferenceOutcome` objects that the simulator plays
through the bus / memory / cache machinery.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.workload.derived import DerivedInputs


class RequestKind(enum.Enum):
    """How the cache handles a processor request (Section 2.3)."""

    LOCAL = "local"
    BROADCAST = "broadcast"
    REMOTE_READ = "remote-read"


@dataclass(frozen=True)
class ReferenceOutcome:
    """One sampled memory reference, fully resolved.

    Attributes
    ----------
    kind:
        Local hit, broadcast (write-word / invalidate / update), or
        remote read (read / read-mod).
    shared:
        The referenced block is shared (sro or sw); only then can the
        operation involve other caches.
    cache_supplied:
        A copy exists in at least one other cache (remote reads only).
    supplier_writeback:
        The holder has the block in *wback*: under Write-Once it flushes
        the block to memory mid-transaction; under modification 2 it
        supplies the block cache-to-cache instead.
    req_writeback:
        The requesting cache must write back the victim block.
    """

    kind: RequestKind
    shared: bool = False
    cache_supplied: bool = False
    supplier_writeback: bool = False
    req_writeback: bool = False


class ReferenceStream:
    """Samples :class:`ReferenceOutcome` objects for one processor.

    The sampler draws from the routing probabilities already computed in
    :class:`DerivedInputs`, so simulator and MVA are guaranteed to agree
    on the workload semantics by construction.
    """

    def __init__(self, inputs: DerivedInputs, rng: np.random.Generator | None = None):
        self._inputs = inputs
        self._rng = rng if rng is not None else np.random.default_rng()
        mix, mods = inputs.mix, inputs.mods
        self._p_local = inputs.p_local
        self._p_bc = inputs.p_bc
        self._p_rr = inputs.p_rr
        # Within remote reads: class fractions.
        if inputs.p_rr > 0.0:
            self._sr_frac = inputs.sr_miss_frac
            self._sw_frac = inputs.sw_miss_frac
        else:
            self._sr_frac = self._sw_frac = 0.0
        # Within broadcasts: the shared fraction (private write-words do
        # not involve other caches).
        sw_bc = mix.sw_broadcast(mods)
        self._bc_shared_frac = sw_bc / inputs.p_bc if inputs.p_bc > 0.0 else 0.0

    @property
    def inputs(self) -> DerivedInputs:
        """The derived inputs this stream samples from."""
        return self._inputs

    def sample(self) -> ReferenceOutcome:
        """Draw one memory-reference outcome."""
        u = self._rng.random()
        if u < self._p_local:
            return ReferenceOutcome(kind=RequestKind.LOCAL)
        if u < self._p_local + self._p_bc:
            shared = self._rng.random() < self._bc_shared_frac
            return ReferenceOutcome(kind=RequestKind.BROADCAST, shared=shared)
        return self._sample_remote_read()

    def _sample_remote_read(self) -> ReferenceOutcome:
        w = self._inputs.workload
        v = self._rng.random()
        if v < self._sr_frac:
            shared, csupply = True, w.csupply_sro
        elif v < self._sr_frac + self._sw_frac:
            shared, csupply = True, w.csupply_sw
        else:
            shared, csupply = False, 0.0
        cache_supplied = shared and self._rng.random() < csupply
        supplier_wb = cache_supplied and self._rng.random() < w.wb_csupply
        req_wb = self._rng.random() < self._inputs.p_reqwb_rr
        return ReferenceOutcome(
            kind=RequestKind.REMOTE_READ,
            shared=shared,
            cache_supplied=cache_supplied,
            supplier_writeback=supplier_wb,
            req_writeback=req_wb,
        )

    def execution_cycles(self) -> float:
        """Draw an exponential processor execution burst (mean tau)."""
        tau = self._inputs.workload.tau
        if tau <= 0.0:
            return 0.0
        return float(self._rng.exponential(tau))
