"""Derived model inputs (paper Section 2.3 and Appendix B).

The paper specifies *basic* workload parameters (Appendix A) and states
that the *model inputs* -- ``p_local``, ``p_bc``, ``p_rr``, ``t_read``,
``p_csupwb|rr`` and ``p_reqwb|rr`` -- "can be computed [VeHo86]".  That
derivation is reproduced here from first principles; see DESIGN.md
Section 5 for the decisions taken where [VeHo86] is not available.

The derivation proceeds in two steps:

1. :class:`ReferenceMix` decomposes a memory reference into twelve
   disjoint event classes (stream x read/write x hit/miss x modified),
   then assigns each class to one of the three ways a request is handled
   (locally, broadcast, or remote read) *under a given set of protocol
   modifications*.

2. :class:`DerivedInputs` computes the bus/memory timing inputs and the
   Appendix-B cache-interference quantities (p, p', t_interference) from
   the mix.

Modifications are identified by the integers 1-4 used in the paper:

1. private blocks load exclusive when no other cache holds them, so
   unmodified private write hits need no bus operation;
2. a *wback* holder supplies the block cache-to-cache without updating
   memory;
3. the first write to a non-exclusive block broadcasts an *invalidate*
   instead of a write-word;
4. writes to non-exclusive blocks broadcast updates and copies stay
   valid (distributed write / write-broadcast).
"""

from __future__ import annotations

import enum
import math
from collections.abc import Collection
from dataclasses import dataclass

from repro.workload.parameters import ArchitectureParams, WorkloadParameters


class ReplacementWeighting(enum.Enum):
    """How P(replacement write-back | miss) weighs the per-stream rates.

    ``REFERENCE_MIX`` -- the victim block is of each class with the
    class's overall reference probability:
    ``rep_p * p_private + rep_sw * p_sw``.  This is the expression that
    appears inside the paper's p' formula (Appendix B), so it is the
    default.

    ``MISS_CLASS`` -- the victim is of the same class as the missing
    reference (private miss evicts a private block, ...), an alternative
    explored in the ablation bench.
    """

    REFERENCE_MIX = "reference-mix"
    MISS_CLASS = "miss-class"


def _validate_mods(mods: Collection[int]) -> frozenset[int]:
    mset = frozenset(mods)
    if not mset <= {1, 2, 3, 4}:
        raise ValueError(f"modifications must be a subset of {{1, 2, 3, 4}}, got {sorted(mset)}")
    return mset


@dataclass(frozen=True)
class ReferenceMix:
    """Per-reference event-class probabilities and their bus routing.

    Field naming: ``p`` private / ``sr`` shared read-only / ``sw``
    shared-writable; ``r``/``w`` read/write; ``h``/``m`` hit/miss;
    trailing ``mod``/``unmod`` = block found already modified or not.
    All twelve fields sum to 1.
    """

    prh: float      # private read hit
    prm: float      # private read miss
    pwh_mod: float  # private write hit, block already modified
    pwh_unmod: float  # private write hit, block clean (Write-Once: write-through)
    pwm: float      # private write miss
    srh: float      # sro read hit
    srm: float      # sro read miss
    swrh: float     # sw read hit
    swrm: float     # sw read miss
    swh_mod: float  # sw write hit, block already modified
    swh_unmod: float  # sw write hit, block clean
    swm: float      # sw write miss

    @classmethod
    def from_workload(cls, w: WorkloadParameters) -> "ReferenceMix":
        """Decompose a reference into the twelve event classes."""
        wp = 1.0 - w.r_private  # private write probability
        ws = 1.0 - w.r_sw       # sw write probability
        return cls(
            prh=w.p_private * w.r_private * w.h_private,
            prm=w.p_private * w.r_private * (1.0 - w.h_private),
            pwh_mod=w.p_private * wp * w.h_private * w.amod_private,
            pwh_unmod=w.p_private * wp * w.h_private * (1.0 - w.amod_private),
            pwm=w.p_private * wp * (1.0 - w.h_private),
            srh=w.p_sro * w.h_sro,
            srm=w.p_sro * (1.0 - w.h_sro),
            swrh=w.p_sw * w.r_sw * w.h_sw,
            swrm=w.p_sw * w.r_sw * (1.0 - w.h_sw),
            swh_mod=w.p_sw * ws * w.h_sw * w.amod_sw,
            swh_unmod=w.p_sw * ws * w.h_sw * (1.0 - w.amod_sw),
            swm=w.p_sw * ws * (1.0 - w.h_sw),
        )

    @property
    def total(self) -> float:
        """Sum of all class probabilities (should be 1)."""
        return (self.prh + self.prm + self.pwh_mod + self.pwh_unmod + self.pwm
                + self.srh + self.srm + self.swrh + self.swrm
                + self.swh_mod + self.swh_unmod + self.swm)

    # -- routing under a modification set ---------------------------------

    def p_local(self, mods: Collection[int]) -> float:
        """P(request satisfied in the local cache without a bus operation)."""
        mset = _validate_mods(mods)
        local = self.prh + self.srh + self.swrh + self.pwh_mod
        if 4 in mset:
            # All writes to non-exclusive blocks broadcast; blocks stay
            # no-wback so a "modified" sw write hit cannot stay local.
            pass
        else:
            local += self.swh_mod
        if 1 in mset:
            # Private blocks were loaded exclusive (no other cache holds
            # private data), so the first write needs no bus operation.
            local += self.pwh_unmod
        return local

    def p_broadcast(self, mods: Collection[int]) -> float:
        """P(request needs a broadcast: write-word, invalidate, or update)."""
        mset = _validate_mods(mods)
        bc = self.swh_unmod
        if 1 not in mset:
            bc += self.pwh_unmod
        if 4 in mset:
            bc += self.swh_mod
        return bc

    def p_remote_read(self, mods: Collection[int]) -> float:
        """P(request misses and needs a bus read or read-mod)."""
        _validate_mods(mods)
        return self.prm + self.pwm + self.srm + self.swrm + self.swm

    def sw_broadcast(self, mods: Collection[int]) -> float:
        """Shared-writable part of :meth:`p_broadcast` (``SWHunmod``).

        Only broadcasts on *shared* blocks can require another cache to
        act (no other cache holds private blocks), so this is the
        numerator of the Appendix-B p_b term.
        """
        mset = _validate_mods(mods)
        bc = self.swh_unmod
        if 4 in mset:
            bc += self.swh_mod
        return bc

    # -- miss mix ----------------------------------------------------------

    @property
    def private_miss(self) -> float:
        """Unconditional private miss probability (read + write)."""
        return self.prm + self.pwm

    @property
    def sro_miss(self) -> float:
        """Unconditional sro miss probability."""
        return self.srm

    @property
    def sw_miss(self) -> float:
        """Unconditional sw miss probability (read + write)."""
        return self.swrm + self.swm


@dataclass(frozen=True)
class CacheInterference:
    """The Appendix-B cache-interference quantities for a system size N.

    ``p`` is the probability that a given other cache must take *some*
    action for a bus request; ``p_prime`` (< p) that it is tied up for
    the whole transaction (e.g. it supplies the block);
    ``t_interference`` is the mean time the cache is busy per interfering
    request; ``n_interference`` is computed by the solver (equation 13)
    because it depends on the bus queue length.
    """

    p: float
    p_prime: float
    t_interference: float

    def n_interference(self, q_bus: float) -> float:
        """Equation (13): mean number of consecutive interfering requests.

        ``q_bus`` is the mean bus queue length seen at arrival; the
        closed form p * (1 - p'^Q) / (1 - p') is used, with the limits
        p' -> 1 and Q -> 0 handled explicitly.
        """
        if q_bus <= 0.0 or self.p <= 0.0:
            return 0.0
        if math.isclose(self.p_prime, 1.0, abs_tol=1e-12):
            return self.p * q_bus
        return self.p * (1.0 - self.p_prime ** q_bus) / (1.0 - self.p_prime)


@dataclass(frozen=True)
class DerivedInputs:
    """All model inputs for one (workload, architecture, protocol) triple.

    Produced by :func:`derive_inputs`; consumed by
    :class:`repro.core.model.CacheMVAModel` and by the simulator's
    outcome sampler.  All probabilities are per memory reference unless
    suffixed ``_rr`` (per remote read).
    """

    workload: WorkloadParameters
    arch: ArchitectureParams
    mods: frozenset[int]
    mix: ReferenceMix

    p_local: float
    p_bc: float
    p_rr: float

    #: Mean bus occupancy of a remote read / read-mod (cycles), including
    #: supplier and requester write-backs where the protocol requires them.
    t_read: float
    #: Bus occupancy of a broadcast (write-word, or invalidate under mod 3).
    t_bc: float
    #: P(another cache must write the block back to memory | remote read).
    p_csupwb_rr: float
    #: P(some cache holds a copy of the missed block | remote read).
    p_csup_rr: float
    #: P(the requesting cache writes back a replaced block | remote read).
    p_reqwb_rr: float
    #: Whether broadcasts update main memory (False under modification 3).
    bc_updates_memory: bool
    #: Conditional miss mix: P(miss is to an sro / sw block | miss).
    sr_miss_frac: float
    sw_miss_frac: float
    #: P(a specific other cache holds a referenced shared block).  The
    #: paper's Appendix B hard-codes 0.5; the N-dependent sharing
    #: refinement (repro.workload.sharing) passes its residency instead.
    holder_probability: float = 0.5

    def memory_ops_per_request(self) -> float:
        """Memory-write operations per memory request (feeds equation 12).

        Broadcast writes (when they update memory) plus block write-backs
        by the supplier and by the requester on remote reads.
        """
        ops = self.p_rr * (self.p_csupwb_rr + self.p_reqwb_rr)
        if self.bc_updates_memory:
            ops += self.p_bc
        return ops

    def cache_interference(self, n_processors: int) -> CacheInterference:
        """Appendix-B p, p' and t_interference for a system of N processors.

        For N = 1 there are no other caches, so all quantities are zero.
        """
        n = n_processors
        if n <= 1:
            return CacheInterference(p=0.0, p_prime=0.0, t_interference=1.0)

        w = self.workload
        bus_ops = self.p_rr + self.p_bc
        if bus_ops <= 0.0:
            return CacheInterference(p=0.0, p_prime=0.0, t_interference=1.0)

        shared_miss = self.sr_miss_frac + self.sw_miss_frac
        sw_bc = self.mix.sw_broadcast(self.mods)
        hp = self.holder_probability

        # p_a: the bus op is a miss to a shared block and this cache holds
        # a copy (probability 0.5 in the paper's Appendix B; hp here).
        # p_b: the bus op is a broadcast on a shared block this cache holds.
        p_a = (self.p_rr / bus_ops) * shared_miss * hp
        p_b = (sw_bc / bus_ops) * hp
        p = p_a + p_b
        if p <= 0.0:
            return CacheInterference(p=0.0, p_prime=0.0, t_interference=1.0)

        # Probability that the block comes from a specific holder: the
        # expected number of holders is (N-1) hp, i.e. (N-1)/2 in the
        # paper, hence its 2/(N-1) factor.
        supply_share = min(1.0 / ((n - 1) * hp), 1.0) if hp > 0.0 else 0.0
        supplied = (w.csupply_sro * self.sr_miss_frac
                    + w.csupply_sw * self.sw_miss_frac)
        no_reqwb = 1.0 - (w.rep_p * w.p_private + w.rep_sw * w.p_sw)
        p_prime = p_b + p_a * supply_share * supplied * no_reqwb
        # p' is a sub-event of p by construction, but the printed formula
        # can exceed p for tiny N with extreme parameters; clamp.
        p_prime = min(p_prime, p)

        t_block = self.arch.block_transfer_cycles
        extra_wb = 0.0 if 2 in self.mods else w.wb_csupply
        swc_sup = w.rep_p * w.p_private + w.rep_sw * w.p_sw
        t_interference = 1.0
        if p > 0.0:
            t_interference += (p_a / p) * supply_share * supplied * (
                t_block + (extra_wb + swc_sup) * t_block
            )
        return CacheInterference(p=p, p_prime=p_prime, t_interference=t_interference)

    def cache_interference_many(
            self, sizes: "Collection[int]") -> list[CacheInterference]:
        """:meth:`cache_interference` for many system sizes at once.

        Hoists every N-independent subexpression (p_a, p_b, p, the
        supplied/write-back factors and the t_interference tail) so a
        sweep derives them once instead of once per size.  The per-N
        arithmetic keeps the exact operand grouping of the scalar
        method, so each entry is bit-equal to ``cache_interference(n)``.
        """
        trivial = CacheInterference(p=0.0, p_prime=0.0, t_interference=1.0)
        w = self.workload
        bus_ops = self.p_rr + self.p_bc
        if bus_ops <= 0.0:
            return [trivial for _ in sizes]

        shared_miss = self.sr_miss_frac + self.sw_miss_frac
        sw_bc = self.mix.sw_broadcast(self.mods)
        hp = self.holder_probability
        p_a = (self.p_rr / bus_ops) * shared_miss * hp
        p_b = (sw_bc / bus_ops) * hp
        p = p_a + p_b
        if p <= 0.0:
            return [trivial for _ in sizes]

        supplied = (w.csupply_sro * self.sr_miss_frac
                    + w.csupply_sw * self.sw_miss_frac)
        no_reqwb = 1.0 - (w.rep_p * w.p_private + w.rep_sw * w.p_sw)
        t_block = self.arch.block_transfer_cycles
        extra_wb = 0.0 if 2 in self.mods else w.wb_csupply
        swc_sup = w.rep_p * w.p_private + w.rep_sw * w.p_sw
        pa_over_p = p_a / p
        tail = t_block + (extra_wb + swc_sup) * t_block

        out: list[CacheInterference] = []
        for n in sizes:
            if n <= 1:
                out.append(trivial)
                continue
            supply_share = (min(1.0 / ((n - 1) * hp), 1.0)
                            if hp > 0.0 else 0.0)
            p_prime = min(p_b + p_a * supply_share * supplied * no_reqwb, p)
            t_interference = 1.0 + pa_over_p * supply_share * supplied * tail
            out.append(CacheInterference(p=p, p_prime=p_prime,
                                         t_interference=t_interference))
        return out


def _replacement_writeback(
    w: WorkloadParameters,
    mix: ReferenceMix,
    p_rr: float,
    weighting: ReplacementWeighting,
) -> float:
    """P(the requesting cache must write back the victim | remote read)."""
    if weighting is ReplacementWeighting.REFERENCE_MIX:
        return w.rep_p * w.p_private + w.rep_sw * w.p_sw
    if p_rr <= 0.0:
        return 0.0
    return (w.rep_p * mix.private_miss + w.rep_sw * mix.sw_miss) / p_rr


def derive_inputs(
    workload: WorkloadParameters,
    arch: ArchitectureParams | None = None,
    mods: Collection[int] = (),
    replacement_weighting: ReplacementWeighting = ReplacementWeighting.REFERENCE_MIX,
    holder_probability: float = 0.5,
) -> DerivedInputs:
    """Compute all model inputs for a workload under a modification set.

    Parameters
    ----------
    workload:
        Basic workload parameters.  Callers normally pass the output of
        :meth:`repro.protocols.ProtocolSpec.adjust_workload`, which
        applies the Appendix-A per-protocol overrides (rep_p, rep_sw,
        h_sw); this function applies only the *structural* consequences
        of the modifications (routing, timing, memory traffic).
    arch:
        Timing constants; defaults to the paper's values.
    mods:
        Active protocol modifications (subset of {1, 2, 3, 4}).
    replacement_weighting:
        How to weight per-stream replacement write-back rates.
    holder_probability:
        P(a specific other cache holds a referenced shared block) used
        by the Appendix-B interference formulas; 0.5 as printed, or the
        residency of an N-dependent sharing model.
    """
    if not 0.0 <= holder_probability <= 1.0:
        raise ValueError(
            f"holder_probability must be in [0, 1], got {holder_probability!r}")
    arch = arch or ArchitectureParams()
    mset = _validate_mods(mods)
    mix = ReferenceMix.from_workload(workload)

    p_local = mix.p_local(mset)
    p_bc = mix.p_broadcast(mset)
    p_rr = mix.p_remote_read(mset)

    if p_rr > 0.0:
        sr_miss_frac = mix.sro_miss / p_rr
        sw_miss_frac = mix.sw_miss / p_rr
    else:
        sr_miss_frac = sw_miss_frac = 0.0

    p_csup_rr = (workload.csupply_sro * sr_miss_frac
                 + workload.csupply_sw * sw_miss_frac)
    p_supplier_wb = p_csup_rr * workload.wb_csupply
    p_reqwb_rr = _replacement_writeback(workload, mix, p_rr, replacement_weighting)

    t_block = arch.block_transfer_cycles
    if 2 in mset:
        # A wback holder supplies cache-to-cache (no memory latency, no
        # memory update); clean copies still come from memory.
        t_read = (p_supplier_wb * arch.cache_supply_cycles
                  + (1.0 - p_supplier_wb) * arch.base_read_cycles
                  + p_reqwb_rr * t_block)
        p_csupwb_rr = 0.0
    else:
        # Write-Once: the wback holder first flushes the block to memory
        # (one extra block transfer), then memory supplies the data.
        t_read = (arch.base_read_cycles
                  + p_supplier_wb * t_block
                  + p_reqwb_rr * t_block)
        p_csupwb_rr = p_supplier_wb

    t_bc = arch.invalidate_cycles if 3 in mset else arch.write_word_cycles
    bc_updates_memory = 3 not in mset

    return DerivedInputs(
        workload=workload,
        arch=arch,
        mods=mset,
        mix=mix,
        p_local=p_local,
        p_bc=p_bc,
        p_rr=p_rr,
        t_read=t_read,
        t_bc=t_bc,
        p_csupwb_rr=p_csupwb_rr,
        p_csup_rr=p_csup_rr,
        p_reqwb_rr=p_reqwb_rr,
        bc_updates_memory=bc_updates_memory,
        sr_miss_frac=sr_miss_frac,
        sw_miss_frac=sw_miss_frac,
        holder_probability=holder_probability,
    )
