"""Basic workload and architecture parameters (paper Section 2 & Appendix A).

The dataclasses in this module are immutable value objects.  Protocol
modifications do not mutate a workload in place; they produce an adjusted
copy via :meth:`WorkloadParameters.replace` (see
:mod:`repro.protocols.modifications`).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, fields, replace as _dc_replace


class SharingLevel(enum.Enum):
    """The three data-sharing levels studied in the paper (Section 4).

    The value is the fraction of references that go to *shared* blocks
    (read-only plus writable), e.g. ``SharingLevel.FIVE_PERCENT`` means
    ``p_sro + p_sw = 0.05``.
    """

    ONE_PERCENT = 0.01
    FIVE_PERCENT = 0.05
    TWENTY_PERCENT = 0.20

    @property
    def label(self) -> str:
        """Human-readable label used in tables (``"1%"`` etc.)."""
        return f"{self.value * 100:g}%"


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")


@dataclass(frozen=True)
class WorkloadParameters:
    """The basic workload parameters of Section 2.3 / Appendix A.

    Attributes
    ----------
    tau:
        Mean processor execution time between memory requests, in cycles
        (exponentially distributed in both the MVA and the simulator).
    p_private, p_sro, p_sw:
        Probabilities that a memory reference is to a private, shared
        read-only, or shared-writable block.  Must sum to 1.
    h_private, h_sro, h_sw:
        Cache hit rates for the three streams.
    r_private, r_sw:
        Probability that a reference is a *read*, given the stream (the
        sro stream is read-only, so its read probability is 1).
    amod_private, amod_sw:
        Probability that a write hit finds the block already modified
        (hence already exclusive, so no bus operation is needed).
    csupply_sro, csupply_sw:
        Probability that at least one other cache holds a copy of a
        missed sro / sw block.
    wb_csupply:
        Probability that the supplying cache holds the block in state
        *wback* (modified), forcing a write-back on supply (Write-Once)
        or a direct cache-to-cache supply (modification 2).
    rep_p, rep_sw:
        Probability that a private / shared-writable block chosen for
        replacement must be written back to memory.
    """

    tau: float = 2.5
    p_private: float = 0.95
    p_sro: float = 0.03
    p_sw: float = 0.02
    h_private: float = 0.95
    h_sro: float = 0.95
    h_sw: float = 0.5
    r_private: float = 0.7
    r_sw: float = 0.5
    amod_private: float = 0.7
    amod_sw: float = 0.3
    csupply_sro: float = 0.95
    csupply_sw: float = 0.5
    wb_csupply: float = 0.3
    rep_p: float = 0.2
    rep_sw: float = 0.5

    def __post_init__(self) -> None:
        if self.tau < 0.0:
            raise ValueError(f"tau must be non-negative, got {self.tau!r}")
        for f in fields(self):
            if f.name == "tau":
                continue
            _check_probability(f.name, getattr(self, f.name))
        total = self.p_private + self.p_sro + self.p_sw
        if not math.isclose(total, 1.0, abs_tol=1e-9):
            raise ValueError(
                "stream probabilities must sum to 1: "
                f"p_private + p_sro + p_sw = {total!r}"
            )

    def replace(self, **changes: float) -> "WorkloadParameters":
        """Return a copy with ``changes`` applied (validated)."""
        return _dc_replace(self, **changes)

    @property
    def sharing_fraction(self) -> float:
        """Fraction of references to shared (sro + sw) blocks."""
        return self.p_sro + self.p_sw

    @property
    def write_fraction(self) -> float:
        """Overall fraction of references that are writes."""
        return self.p_private * (1.0 - self.r_private) + self.p_sw * (1.0 - self.r_sw)


@dataclass(frozen=True)
class ArchitectureParams:
    """Bus / memory timing constants (paper Section 2.1).

    All times are in bus cycles.  The paper fixes ``block_size = 4``
    words (one memory module per word of the block), main-memory latency
    ``d_mem = 3`` cycles, a one-cycle cache supply time and a one-cycle
    write-word bus occupancy.  The decomposition of the remote-read
    access time is ours (DESIGN.md Section 5 item 1): one address cycle,
    the memory latency, then one cycle per word of the block.
    """

    block_size: int = 4
    memory_modules: int = 4
    memory_latency: float = 3.0
    address_cycles: float = 1.0
    words_per_cycle: float = 1.0
    t_supply: float = 1.0
    write_word_cycles: float = 1.0
    invalidate_cycles: float = 1.0

    def __post_init__(self) -> None:
        if self.block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {self.block_size!r}")
        if self.memory_modules < 1:
            raise ValueError(f"memory_modules must be >= 1, got {self.memory_modules!r}")
        if self.words_per_cycle <= 0.0:
            raise ValueError(f"words_per_cycle must be > 0, got {self.words_per_cycle!r}")
        for name in ("memory_latency", "address_cycles", "t_supply",
                     "write_word_cycles", "invalidate_cycles"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def block_transfer_cycles(self) -> float:
        """Bus cycles to move one cache block (4 words at 1 word/cycle)."""
        return self.block_size / self.words_per_cycle

    @property
    def base_read_cycles(self) -> float:
        """Bus occupancy of a remote read served by main memory.

        Address cycle + memory latency + block transfer = 1 + 3 + 4 = 8
        with the default constants.
        """
        return self.address_cycles + self.memory_latency + self.block_transfer_cycles

    @property
    def cache_supply_cycles(self) -> float:
        """Bus occupancy of a direct cache-to-cache supply (modification 2)."""
        return self.address_cycles + self.block_transfer_cycles

    def replace(self, **changes: float) -> "ArchitectureParams":
        """Return a copy with ``changes`` applied (validated)."""
        return _dc_replace(self, **changes)


#: Appendix-A stream mixes, keyed by sharing level:
#: (p_private, p_sro, p_sw).
_APPENDIX_A_MIX: dict[SharingLevel, tuple[float, float, float]] = {
    SharingLevel.ONE_PERCENT: (0.99, 0.01, 0.00),
    SharingLevel.FIVE_PERCENT: (0.95, 0.03, 0.02),
    SharingLevel.TWENTY_PERCENT: (0.80, 0.15, 0.05),
}


def appendix_a_workload(sharing: SharingLevel) -> WorkloadParameters:
    """The published Appendix-A workload for one of the sharing levels.

    All parameters other than the stream mix are common across sharing
    levels (tau = 2.5, h_private = h_sro = 0.95, h_sw = 0.5, ...).

    Note: the per-protocol overrides of Appendix A (rep_p = 0.3 under
    modification 1, rep_sw = 0.6 / 0.7 under modifications 2/3 and
    h_sw = 0.95 under modifications 1+4) are applied by
    :meth:`repro.protocols.ProtocolSpec.adjust_workload`, not here.
    """
    p_private, p_sro, p_sw = _APPENDIX_A_MIX[sharing]
    return WorkloadParameters(p_private=p_private, p_sro=p_sro, p_sw=p_sw)


def stress_test_workload() -> WorkloadParameters:
    """The Section 4.3 stress-test parameters.

    "we set the values of rep_p, rep_sw, and amod_sw to 0.0, csupply_sro
    and csupply_sw to 1.0, p_sw to 0.2, and hit_sw to 0.1" -- a workload
    with a large amount of cache interference, chosen to break the MVA
    approximations.  Remaining parameters keep their Appendix-A values;
    the stream mix is renormalized so p_sw = 0.2 displaces private
    references (sro keeps its 5 %-sharing value).
    """
    base = appendix_a_workload(SharingLevel.FIVE_PERCENT)
    return base.replace(
        p_private=1.0 - base.p_sro - 0.2,
        p_sw=0.2,
        h_sw=0.1,
        amod_sw=0.0,
        csupply_sro=1.0,
        csupply_sw=1.0,
        rep_p=0.0,
        rep_sw=0.0,
    )


def katz_sharing_workload(amod_sw: float = 0.05) -> WorkloadParameters:
    """A 99 %-sharing workload for the Katz et al. comparison (Section 4.4).

    The paper compares relative bus utilization of Write-Once against a
    protocol with modifications 2+3 at "99 % sharing" with "the
    probability that a block is unmodified on a write hit decreas[ing]
    significantly", i.e. a small ``amod_sw``... strictly: the
    *modified* probability decreases in the mod-2 protocol; we expose
    ``amod_sw`` so the bench can sweep it.
    """
    base = appendix_a_workload(SharingLevel.FIVE_PERCENT)
    return base.replace(
        p_private=0.01,
        p_sro=0.495,
        p_sw=0.495,
        amod_sw=amod_sw,
    )
