"""N-dependent sharing: the paper's own suggested workload improvement.

Section 2.3: "our probabilistic treatment of the shared data reference
stream treats the relationship between system size and *actual* sharing
of data more approximately than the workload models in [ArBa86] and
[GrMi87].  The workload submodel ... should be improved to treat the
shared references more similarly to the model in [GrMi87]."

This module implements that improvement.  Instead of fixed
``csupply_sro`` / ``csupply_sw`` constants (the probability that *some*
other cache holds a missed shared block, independent of N), each shared
block is resident in any given other cache with a per-cache probability
q, independently, so

    csupply(N) = 1 - (1 - q)^(N - 1)

which rises with system size: with two processors a missed shared block
is rarely supplied by the single peer; with fifty it almost always is.
The q values are calibrated so that csupply matches the Appendix-A
constants at a chosen reference size, keeping the published tables as a
fixed point of the refinement.

The same q feeds the cache-interference model: the Appendix-B formulas
hard-code 0.5 as the probability a specific cache holds a referenced
shared block; the refined model passes q through instead (see
``derive_inputs(holder_probability=...)``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workload.parameters import WorkloadParameters


def csupply_from_residency(q: float, n_processors: int) -> float:
    """P(at least one of the N-1 other caches holds the block)."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"residency probability must be in [0, 1], got {q!r}")
    if n_processors < 1:
        raise ValueError(f"n_processors must be >= 1, got {n_processors!r}")
    if n_processors == 1:
        return 0.0
    return 1.0 - (1.0 - q) ** (n_processors - 1)


def residency_from_csupply(csupply: float, n_processors: int) -> float:
    """Invert :func:`csupply_from_residency` at a reference size."""
    if not 0.0 <= csupply <= 1.0:
        raise ValueError(f"csupply must be in [0, 1], got {csupply!r}")
    if n_processors < 2:
        raise ValueError("need at least 2 processors to calibrate residency")
    if csupply == 1.0:
        return 1.0
    return 1.0 - (1.0 - csupply) ** (1.0 / (n_processors - 1))


@dataclass(frozen=True)
class SharingScalingModel:
    """Per-cache residency probabilities for the two shared streams.

    ``q_sro`` / ``q_sw``: probability that a specific other cache holds
    a copy of a referenced shared read-only / shared-writable block.
    """

    q_sro: float
    q_sw: float

    def __post_init__(self) -> None:
        for name in ("q_sro", "q_sw"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")

    @classmethod
    def calibrated(cls, workload: WorkloadParameters,
                   reference_size: int = 10) -> "SharingScalingModel":
        """Match the workload's csupply constants at ``reference_size``.

        The Appendix-A constants were used for GTPN studies of up to ten
        processors, so ten is the default calibration point; the scaled
        model then *reduces to the paper's model exactly* at N = 10.
        """
        return cls(
            q_sro=residency_from_csupply(workload.csupply_sro, reference_size),
            q_sw=residency_from_csupply(workload.csupply_sw, reference_size),
        )

    def csupply_sro(self, n_processors: int) -> float:
        return csupply_from_residency(self.q_sro, n_processors)

    def csupply_sw(self, n_processors: int) -> float:
        return csupply_from_residency(self.q_sw, n_processors)

    def scale(self, workload: WorkloadParameters,
              n_processors: int) -> WorkloadParameters:
        """The workload with csupply replaced by its N-dependent value."""
        return workload.replace(
            csupply_sro=self.csupply_sro(n_processors),
            csupply_sw=self.csupply_sw(n_processors),
        )

    def holder_probability(self, workload: WorkloadParameters) -> float:
        """The refined stand-in for Appendix B's hard-coded 0.5: the
        probability that a specific other cache holds a referenced
        shared block, weighted by the shared-miss mix."""
        sro_miss = workload.p_sro * (1.0 - workload.h_sro)
        sw_miss = workload.p_sw * (1.0 - workload.h_sw)
        total = sro_miss + sw_miss
        if total <= 0.0:
            return 0.0
        return (self.q_sro * sro_miss + self.q_sw * sw_miss) / total

    def expected_holders(self, n_processors: int,
                         workload: WorkloadParameters) -> float:
        """E[#other caches holding a referenced shared block]."""
        return (n_processors - 1) * self.holder_probability(workload)
