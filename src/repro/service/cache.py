"""Content-addressed result cache: LRU front, optional JSON disk store.

Values are JSON-representable dicts (a solved cell plus its solve
metadata) keyed by :func:`repro.service.keys.task_key`.  The in-memory
front is a plain ordered-dict LRU; the optional persistent store is a
single human-readable JSON file, loaded on construction and rewritten
atomically (temp file + ``os.replace``) on :meth:`flush`.

The disk store mirrors the in-memory contents, so the LRU ``capacity``
also bounds the file; a corrupt or version-mismatched file is treated
as empty rather than an error (a cache must never take the service
down).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from collections.abc import Iterable
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.service.keys import SCHEMA_VERSION

_STORE_FORMAT = "repro.service.cache"


@dataclass
class CacheStats:
    """Lifetime counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups; 0.0 before the first lookup."""
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """LRU cache of solved cells with an optional JSON file behind it.

    Parameters
    ----------
    capacity:
        Maximum number of entries held (and persisted).  Least recently
        *used* entries are evicted first.
    path:
        Optional JSON file for persistence across processes/runs.  The
        file is read once at construction; call :meth:`flush` (or use
        the executor, which flushes after every sweep) to write back.
    """

    def __init__(self, capacity: int = 4096,
                 path: str | os.PathLike[str] | None = None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self.path = Path(path) if path is not None else None
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._dirty = False
        if self.path is not None:
            self._load()

    # -- mapping-ish interface -------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> dict[str, Any] | None:
        """Look up ``key``; counts a hit or a miss and refreshes LRU order."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def put(self, key: str, value: dict[str, Any]) -> None:
        """Store ``value`` under ``key``, evicting the LRU tail if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            self.stats.stores += 1
            self._dirty = True
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def put_many(self, items: Iterable[tuple[str, dict[str, Any]]]) -> None:
        """Store every ``(key, value)`` pair under one lock acquisition.

        Semantically ``put`` in a loop (same LRU refresh, store counts
        and eviction policy); batch writers -- the coalescer lands
        hundreds of cells per flush -- use this to keep lock traffic
        off their per-cell path.
        """
        with self._lock:
            for key, value in items:
                if key in self._entries:
                    self._entries.move_to_end(key)
                self._entries[key] = value
                self.stats.stores += 1
            self._dirty = True
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._dirty = True

    # -- persistence -----------------------------------------------------

    def _load(self) -> None:
        assert self.path is not None
        try:
            raw = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return
        if (not isinstance(raw, dict)
                or raw.get("format") != _STORE_FORMAT
                or raw.get("schema") != SCHEMA_VERSION):
            return
        entries = raw.get("entries")
        if not isinstance(entries, dict):
            return
        for key, value in entries.items():
            if isinstance(key, str) and isinstance(value, dict):
                self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def flush(self) -> None:
        """Atomically rewrite the disk store (no-op without a path or
        when nothing changed since the last flush)."""
        if self.path is None:
            return
        with self._lock:
            if not self._dirty:
                return
            document = {
                "format": _STORE_FORMAT,
                "schema": SCHEMA_VERSION,
                "entries": dict(self._entries),
            }
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=self.path.parent, prefix=self.path.name, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(document, fh, indent=1)
                os.replace(tmp_name, self.path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            self._dirty = False
