"""Micro-batching request coalescer for ``POST /v1/solve``.

The batch MVA engine solves a whole grid of cells in one vectorized
fixed point at a fraction of the per-cell scalar cost -- but an HTTP
front-end that answers one request at a time never hands it more than a
request's own cells.  :class:`SolveCoalescer` closes that gap: cells
submitted by concurrent requests are parked in a queue for a short
window (``window_ms``, default 2 ms) and then solved together by one
:func:`repro.service.executor.evaluate_mva_batch` call, with per-cell
results (and per-cell *errors* -- a poison cell only fails its own
waiter) fanned back through one future per submission.

Guarantees:

* **Determinism** -- a coalesced cell's value is exactly what a solo
  solve produces: the batch engine is byte-identical to the scalar path
  (``repro.verify``'s differential oracle), failure payloads are the
  same shape, and the cache value written is the same dict either way.
* **Flush triggers** -- a batch flushes when the *oldest* queued cell
  has waited ``window_ms`` ("window"), when ``max_batch`` cells are
  queued ("max-batch"), or at shutdown ("close"); the reason is
  recorded in ``repro_coalesce_flushes_total{reason=...}``.
* **In-flight dedup** -- a cell whose key is already queued attaches a
  second future to the pending entry instead of a second solve
  (``repro_coalesce_deduped_total``); the content-addressed
  :class:`~repro.service.cache.ResultCache` answers repeats of already
  *solved* cells without queueing at all.
* **Cancellation safety** -- every *request* gets its own
  :class:`concurrent.futures.Future` (one fan-in future for all of its
  cells); a waiter that goes away (client disconnect) cancels only its
  own future, the batch still solves, and sibling waiters -- including
  a deduped twin of the same cell -- are untouched.

The futures are plain ``concurrent.futures`` ones so both front-ends
share this one coalescer: the threaded server blocks on ``.result()``,
the asyncio server awaits ``asyncio.wrap_future(...)`` -- one loop
callback per request when its batch lands, not one per cell.
"""

from __future__ import annotations

import logging
import threading
import time
from collections.abc import Sequence
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any

from repro.service.cache import ResultCache
from repro.service.executor import (
    CellTask,
    evaluate_mva_batch,
    evaluate_with_retry,
    record_failure_metric,
    record_solve_metrics,
    record_solve_metrics_batch,
)
from repro.service.metrics import DEFAULT_BATCH_BUCKETS, MetricsRegistry

_LOG = logging.getLogger(__name__)

#: Default hold window before a lone batch flushes (milliseconds).
DEFAULT_WINDOW_MS = 2.0

#: Default cell count that flushes a batch early.
DEFAULT_MAX_BATCH = 256

#: The flush triggers (label values of ``repro_coalesce_flushes_total``).
FLUSH_REASONS = ("window", "max-batch", "close")


class _Waiter:
    """One request's fan-in point: a single future resolved when every
    one of its cells has a value.

    A request of k cells costs one future -- not k -- so the asyncio
    front-end schedules one loop callback per *request* when the batch
    lands, which is where the coalesced path's throughput headroom
    lives at high concurrency.
    """

    __slots__ = ("future", "values", "missing", "unwrap", "_lock")

    def __init__(self, size: int, unwrap: bool = False):
        self.future: Future = Future()
        self.values: list[dict[str, Any] | None] = [None] * size
        self.missing = size
        self.unwrap = unwrap
        # The submitting thread (cache hits, post-close solo cells) and
        # the flusher thread (batch results) may deliver to one waiter
        # concurrently; the read-modify-write on ``missing`` must not
        # lose a decrement or the future never resolves.
        self._lock = threading.Lock()

    def deliver(self, slot: int, value: dict[str, Any]) -> None:
        with self._lock:
            self.values[slot] = value
            self.missing -= 1
            if self.missing != 0:
                return
        if self.future.set_running_or_notify_cancel():
            self.future.set_result(
                self.values[0] if self.unwrap else self.values)


@dataclass
class _Pending:
    """One queued cell and every (waiter, slot) pair awaiting it."""

    task: CellTask
    enqueued_at: float
    waiters: list[tuple[_Waiter, int]] = field(default_factory=list)


class SolveCoalescer:
    """Stack concurrent solve cells into one vectorized batch call.

    Parameters
    ----------
    cache:
        Optional shared :class:`ResultCache`.  Checked at submit time
        (a hit resolves immediately without queueing) and written after
        every batch (one flush per batch, not per cell).
    metrics:
        Optional :class:`MetricsRegistry` fed with the
        ``repro_coalesce_*`` families plus the shared per-cell solve /
        failure / cache metrics, so a coalesced cell is indistinguishable
        from an executor cell on a dashboard.
    window_ms:
        How long the oldest queued cell may wait before the batch
        flushes.  The latency floor a lone request pays for the
        throughput ceiling concurrent requests gain.
    max_batch:
        Queue depth that flushes immediately without waiting out the
        window.
    sim_retries:
        Retry budget for non-MVA cells (which bypass the batch engine
        and are solved per-cell inside the flush).
    """

    def __init__(self, cache: ResultCache | None = None,
                 metrics: MetricsRegistry | None = None,
                 window_ms: float = DEFAULT_WINDOW_MS,
                 max_batch: int = DEFAULT_MAX_BATCH,
                 sim_retries: int = 2):
        if window_ms <= 0:
            raise ValueError(f"window_ms must be > 0, got {window_ms!r}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch!r}")
        self.cache = cache
        self.metrics = metrics
        self.window_ms = float(window_ms)
        self.max_batch = max_batch
        self.sim_retries = sim_retries
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._queue: list[_Pending] = []
        self._by_key: dict[str, _Pending] = {}
        self._closed = False
        # Lifetime totals (the load benchmark reads these).
        self._batches = 0
        self._batch_cells = 0
        self._deduped = 0
        self._wait_seconds = 0.0
        self._flusher = threading.Thread(
            target=self._flush_loop, name="repro-coalescer", daemon=True)
        self._flusher.start()

    # -- submission ------------------------------------------------------

    def submit_request(self, tasks: Sequence[CellTask],
                       unwrap: bool = False) -> tuple[Future, list[bool]]:
        """Queue every cell of one request behind a *single* future.

        Returns ``(future, cached_flags)``: the future resolves to the
        list of per-cell cache-value dicts in task order (an
        ``{"error": ...}`` payload for a dead cell -- the caller turns
        it into an error row exactly like the executor does).  Cells
        already in the cache resolve their slot immediately and are
        flagged ``True``; with every cell cached the future is already
        resolved on return.  One lock acquisition and at most one
        flusher wake-up per request, regardless of cell count.
        """
        waiter = _Waiter(len(tasks), unwrap=unwrap)
        if not tasks:
            waiter.future.set_result([])
            return waiter.future, []
        cached = [False] * len(tasks)
        resolved: list[tuple[int, dict[str, Any]]] = []
        misses: list[tuple[int, CellTask]] = []
        for slot, task in enumerate(tasks):
            hit = (self.cache.get(task.key)
                   if self.cache is not None else None)
            if hit is not None:
                cached[slot] = True
                resolved.append((slot, hit))
            else:
                misses.append((slot, task))
        self._count_lookups(hits=len(resolved), misses=len(misses))
        # Deliver cache hits before the misses are queued: once a miss
        # is visible to the flusher it may deliver to this waiter from
        # its own thread (deliver is lock-protected, but the hit slots
        # have no reason to contend).
        for slot, value in resolved:
            waiter.deliver(slot, value)
        deduped = 0
        solo: list[tuple[int, CellTask]] = []
        with self._lock:
            if self._closed:
                # Late submission during shutdown: solve inline rather
                # than strand the waiter.
                solo = misses
            else:
                now = time.monotonic()
                enqueued = 0
                for slot, task in misses:
                    pending = self._by_key.get(task.key)
                    if pending is None:
                        pending = _Pending(task=task, enqueued_at=now)
                        self._queue.append(pending)
                        self._by_key[task.key] = pending
                        enqueued += 1
                    else:
                        deduped += 1
                    pending.waiters.append((waiter, slot))
                if enqueued:
                    self._set_depth(len(self._queue))
                    self._wake.notify_all()
            self._deduped += deduped
        if deduped and self.metrics is not None:
            self.metrics.counter(
                "repro_coalesce_deduped_total",
                "Cells answered by attaching to an identical "
                "in-flight cell.").inc(deduped)
        for slot, task in solo:
            waiter.deliver(slot, self._solo(task))
        return waiter.future, cached

    def submit(self, task: CellTask) -> tuple[Future, bool]:
        """Queue one cell; returns ``(future, cached)``.

        The single-cell convenience over :meth:`submit_request`: the
        future resolves to the cell's value dict directly.
        """
        future, cached = self.submit_request([task], unwrap=True)
        return future, cached[0]

    def submit_all(self, tasks: Sequence[CellTask]
                   ) -> tuple[list[Future], list[bool]]:
        """Queue cells with one future *each* (fan-out callers that
        consume results cell-by-cell; request handlers should prefer
        the single-future :meth:`submit_request`)."""
        futures: list[Future] = []
        cached: list[bool] = []
        for task in tasks:
            future, was_cached = self.submit(task)
            futures.append(future)
            cached.append(was_cached)
        return futures, cached

    def close(self) -> None:
        """Flush whatever is queued and stop the flusher thread."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._wake.notify_all()
        self._flusher.join(timeout=10)

    def stats(self) -> dict[str, Any]:
        """Lifetime batching totals (for benchmarks and capabilities)."""
        with self._lock:
            batches = self._batches
            cells = self._batch_cells
            deduped = self._deduped
            wait = self._wait_seconds
        return {
            "batches": batches,
            "cells": cells,
            "deduped": deduped,
            "mean_batch_cells": cells / batches if batches else 0.0,
            "mean_wait_ms": 1000.0 * wait / cells if cells else 0.0,
        }

    # -- the flusher thread ----------------------------------------------

    def _flush_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._closed:
                    self._wake.wait()
                if not self._queue:
                    return  # closed and drained
                reason = self._await_trigger()
                batch = self._queue[:self.max_batch]
                del self._queue[:self.max_batch]
                for entry in batch:
                    self._by_key.pop(entry.task.key, None)
                self._set_depth(len(self._queue))
            # The flusher is a singleton: an escaped exception here
            # would strand this batch's waiters AND hang every later
            # request behind a dead thread.  Per-cell failures are
            # already error payloads; anything else fails only this
            # batch and the loop lives on.
            try:
                self._solve(batch, reason)
            except Exception as exc:  # noqa: BLE001 - keep flusher alive
                _LOG.exception("coalesced batch flush failed; "
                               "delivering error payloads to %d cells",
                               len(batch))
                self._fail_batch(batch, exc)

    def _await_trigger(self) -> str:
        """Hold the lock until a flush trigger fires; returns the reason."""
        while True:
            if len(self._queue) >= self.max_batch:
                return "max-batch"
            if self._closed:
                return "close"
            remaining = (self._queue[0].enqueued_at
                         + self.window_ms / 1000.0) - time.monotonic()
            if remaining <= 0:
                return "window"
            self._wake.wait(timeout=remaining)

    def _solve(self, batch: list[_Pending], reason: str) -> None:
        flushed_at = time.monotonic()
        waited = [flushed_at - entry.enqueued_at for entry in batch]
        self._record_flush(batch, reason, waited)
        tasks = [entry.task for entry in batch]
        mva = [i for i, task in enumerate(tasks) if task.method == "mva"]
        values: dict[int, dict[str, Any]] = {}
        if mva:
            try:
                results = evaluate_mva_batch([tasks[i] for i in mva])
            except Exception:  # noqa: BLE001 - engine fallback, not cells
                results = [evaluate_with_retry(tasks[i], self.sim_retries)
                           for i in mva]
            values.update(zip(mva, results))
        for i, task in enumerate(tasks):
            if i not in values:
                values[i] = evaluate_with_retry(task, self.sim_retries)
        solved: list[tuple[CellTask, dict[str, Any]]] = []
        for i, entry in enumerate(batch):
            value = values[i]
            if value.get("error") is not None:
                record_failure_metric(self.metrics, entry.task)
            else:
                solved.append((entry.task, value))
        record_solve_metrics_batch(self.metrics, solved)
        if solved and self.cache is not None:
            # Cache before fan-out so a client that re-submits the
            # moment its response lands hits the cache, not the queue.
            # A cache-write failure (disk full, bad --cache path) must
            # not take the values down with it: serve the batch
            # uncached and keep the flusher alive.
            try:
                self.cache.put_many(
                    (task.key, value) for task, value in solved)
                self.cache.flush()
            except OSError:
                _LOG.exception("result-cache write failed; "
                               "serving batch uncached")
        for i, entry in enumerate(batch):
            value = values[i]
            for waiter, slot in entry.waiters:
                waiter.deliver(slot, value)

    def _fail_batch(self, batch: list[_Pending], exc: Exception) -> None:
        """Deliver a structured error payload to every waiter of a
        batch whose flush itself died (the same ``{"error": ...}``
        shape a dead cell produces, so callers render it as an error
        row, not a hang)."""
        for entry in batch:
            record_failure_metric(self.metrics, entry.task)
            value: dict[str, Any] = {
                "error": {
                    "type": type(exc).__name__,
                    "message": f"coalesced flush failed: {exc}",
                    "method": entry.task.method,
                },
                "attempts": 1,
                "elapsed_s": 0.0,
            }
            for waiter, slot in entry.waiters:
                waiter.deliver(slot, value)

    def _solo(self, task: CellTask) -> dict[str, Any]:
        """The post-close inline path (identical value, no batching)."""
        value = evaluate_with_retry(task, self.sim_retries)
        if value.get("error") is not None:
            record_failure_metric(self.metrics, task)
        else:
            if self.cache is not None:
                try:
                    self.cache.put(task.key, value)
                    self.cache.flush()
                except OSError:
                    _LOG.exception("result-cache write failed; "
                                   "serving cell uncached")
            record_solve_metrics(self.metrics, task, value)
        return value

    # -- metrics ---------------------------------------------------------

    def _count_lookups(self, hits: int, misses: int) -> None:
        if self.metrics is None:
            return
        if hits:
            self.metrics.counter(
                "repro_cache_hits_total",
                "Sweep cells answered from the result cache.").inc(hits)
        if misses:
            self.metrics.counter(
                "repro_cache_misses_total",
                "Sweep cells that required a fresh solve.").inc(misses)

    def _set_depth(self, depth: int) -> None:
        if self.metrics is not None:
            self.metrics.gauge(
                "repro_coalesce_queue_depth",
                "Cells currently parked awaiting a batch flush.",
            ).set(depth)

    def _record_flush(self, batch: list[_Pending], reason: str,
                      waited: list[float]) -> None:
        with self._lock:
            self._batches += 1
            self._batch_cells += len(batch)
            self._wait_seconds += sum(waited)
        if self.metrics is None:
            return
        self.metrics.counter(
            "repro_coalesce_flushes_total",
            "Batch flushes by trigger.").labels(reason=reason).inc()
        self.metrics.histogram(
            "repro_coalesce_batch_cells",
            "Cells per coalesced batch flush.",
            buckets=DEFAULT_BATCH_BUCKETS).observe(len(batch))
        wait_hist = self.metrics.histogram(
            "repro_coalesce_wait_seconds",
            "How long each cell waited in the coalescing queue.").labels()
        for wait in waited:
            wait_hist.observe(wait)
