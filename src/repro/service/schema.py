"""Typed request schemas for the evaluation service.

:class:`SolveRequest` and :class:`GridRequest` are the single parsing
layer behind both the versioned ``/v1`` endpoints and the legacy
unversioned ones: every field is validated here, with field names
aligned to the ``repro grid`` CLI flags (``--protocols`` ->
``protocols``, ``-n`` -> ``n``, ``--simulate`` -> ``simulate``,
``--jobs`` -> ``jobs``, ``--engine`` -> ``engine``, ...), so a request
body reads like the equivalent command line.

Parsing raises :class:`ServiceError`, which carries an HTTP status, a
stable machine-readable ``code`` (the ``/v1`` error envelope) and
optional structured ``details``.  ``from_payload(..., strict=True)``
-- the ``/v1`` behaviour -- additionally rejects unknown top-level
fields with a structured 400, so client typos fail loudly instead of
being silently ignored; the legacy endpoints keep the historical
lenient behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar

from repro.analysis.grid import GridSpec
from repro.protocols.family import PROTOCOLS
from repro.protocols.modifications import ProtocolSpec, parse_mods
from repro.service.executor import ENGINES
from repro.workload.parameters import (
    ArchitectureParams,
    SharingLevel,
    WorkloadParameters,
    appendix_a_workload,
)

_SHARING_BY_NAME = {
    "1": SharingLevel.ONE_PERCENT,
    "5": SharingLevel.FIVE_PERCENT,
    "20": SharingLevel.TWENTY_PERCENT,
}

#: Default error code per HTTP status for errors raised without an
#: explicit one.
_DEFAULT_CODES = {
    400: "bad-request",
    404: "not-found",
    405: "method-not-allowed",
    413: "payload-too-large",
    500: "internal-error",
}


class ServiceError(Exception):
    """A client-visible request failure with an HTTP status code.

    ``code`` is a stable machine-readable identifier (defaulted from
    the status when not given) surfaced in the ``/v1`` error envelope;
    ``details`` (optional) is structured context -- merged into the
    legacy JSON error body, and carried under ``error.detail`` on
    ``/v1`` -- so a total sweep failure can still report its per-cell
    failure records.
    """

    def __init__(self, status: int, message: str,
                 details: dict[str, Any] | None = None,
                 code: str | None = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.details = details
        self.code = code if code is not None else _DEFAULT_CODES.get(
            status, "error")


def require(condition: bool, message: str, code: str | None = None) -> None:
    """Raise a 400 :class:`ServiceError` unless ``condition`` holds."""
    if not condition:
        raise ServiceError(400, message, code=code)


def reject_unknown_fields(payload: dict[str, Any],
                          allowed: frozenset[str]) -> None:
    """The strict (``/v1``) top-level field check."""
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise ServiceError(
            400,
            "unknown field(s) " + ", ".join(repr(f) for f in unknown),
            details={"unknown": unknown, "allowed": sorted(allowed)},
            code="unknown-field")


def parse_protocol(value: Any) -> ProtocolSpec:
    require(isinstance(value, str), "'protocol' must be a string "
            "(a named protocol or a modification list like '1,4')")
    name = value.strip().lower()
    if name in PROTOCOLS:
        return PROTOCOLS[name]
    try:
        return parse_mods(value)
    except ValueError as exc:
        raise ServiceError(400, f"unknown protocol {value!r}: {exc}",
                           code="unknown-protocol") from exc


def parse_sharing(value: Any) -> SharingLevel:
    key = str(value).strip().rstrip("%")
    level = _SHARING_BY_NAME.get(key)
    require(level is not None, f"unknown sharing level {value!r} "
            f"(expected one of {sorted(_SHARING_BY_NAME)})")
    assert level is not None
    return level


def parse_sizes(value: Any, field: str) -> tuple[int, ...]:
    if isinstance(value, int) and not isinstance(value, bool):
        value = [value]
    require(isinstance(value, list) and value
            and all(isinstance(n, int) and not isinstance(n, bool)
                    and n >= 1 for n in value),
            f"{field!r} must be a positive integer or a non-empty "
            "list of positive integers")
    return tuple(value)


def parse_engine(value: Any) -> str | None:
    """The MVA backend field (``None`` means the service default)."""
    if value is None:
        return None
    require(isinstance(value, str) and value in ENGINES,
            f"'engine' must be one of {list(ENGINES)}, got {value!r}")
    return value


def parse_int_field(payload: dict[str, Any], field: str, default: int,
                    minimum: int = 1) -> int:
    value = payload.get(field, default)
    bound = ("a positive integer" if minimum > 0
             else f"an integer >= {minimum}")
    require(isinstance(value, int) and not isinstance(value, bool)
            and value >= minimum, f"{field!r} must be {bound}")
    return value


def parse_overrides(payload: dict[str, Any], key: str,
                    base: Any, cls: type) -> Any:
    """Apply a JSON object of field overrides to a frozen dataclass."""
    overrides = payload.get(key)
    if overrides is None:
        return base
    require(isinstance(overrides, dict),
            f"{key!r} must be an object of field overrides")
    try:
        return base.replace(**overrides)
    except (TypeError, ValueError) as exc:
        raise ServiceError(400, f"bad {key!r} overrides: {exc}",
                           code="bad-overrides") from exc


@dataclass(frozen=True)
class SolveRequest:
    """``POST /v1/solve`` (and legacy ``/solve``): one protocol, N sizes.

    JSON schema::

        {"protocol": "berkeley" | "1,4",   # required
         "n": 10 | [2, 6, 10],             # required
         "sharing": "5",                   # optional, default "5"
         "workload": {"tau": 3.0, ...},    # optional field overrides
         "arch": {"block_size": 8, ...},   # optional field overrides
         "engine": "scalar" | "batch"}     # optional MVA backend
    """

    protocol: ProtocolSpec
    sizes: tuple[int, ...]
    sharing: SharingLevel
    workload: WorkloadParameters
    arch: ArchitectureParams
    engine: str | None = None

    FIELDS: ClassVar[frozenset[str]] = frozenset(
        {"protocol", "n", "sharing", "workload", "arch", "engine"})

    @classmethod
    def from_payload(cls, payload: Any,
                     strict: bool = False) -> "SolveRequest":
        require(isinstance(payload, dict),
                "request body must be a JSON object")
        if strict:
            reject_unknown_fields(payload, cls.FIELDS)
        require("protocol" in payload, "missing required field 'protocol'",
                code="missing-field")
        require("n" in payload, "missing required field 'n'",
                code="missing-field")
        sharing = parse_sharing(payload.get("sharing", "5"))
        return cls(
            protocol=parse_protocol(payload["protocol"]),
            sizes=parse_sizes(payload["n"], "n"),
            sharing=sharing,
            workload=parse_overrides(payload, "workload",
                                     appendix_a_workload(sharing),
                                     WorkloadParameters),
            arch=parse_overrides(payload, "arch", ArchitectureParams(),
                                 ArchitectureParams),
            engine=parse_engine(payload.get("engine")),
        )


@dataclass(frozen=True)
class VerifyRequest:
    """``POST /v1/verify``: run the verification suite in-process.

    JSON schema::

        {"tier": "quick" | "full"}   # optional, default "quick"

    ``/v1``-only -- there is no legacy unversioned predecessor to stay
    compatible with, so the endpoint is always strict.
    """

    tier: str = "quick"

    FIELDS: ClassVar[frozenset[str]] = frozenset({"tier"})

    @classmethod
    def from_payload(cls, payload: Any,
                     strict: bool = False) -> "VerifyRequest":
        require(isinstance(payload, dict),
                "request body must be a JSON object")
        if strict:
            reject_unknown_fields(payload, cls.FIELDS)
        tier = payload.get("tier", "quick")
        from repro.verify.runner import TIERS
        require(isinstance(tier, str) and tier in TIERS,
                f"'tier' must be one of {list(TIERS)}, got {tier!r}",
                code="unknown-tier")
        return cls(tier=tier)


@dataclass(frozen=True)
class GridRequest:
    """``POST /v1/grid`` (and legacy ``/grid``): a full sweep.

    JSON schema::

        {"protocols": ["write-once", "1,4"],  # required
         "n": [2, 4, 8],                      # required
         "sharing": ["1", "5"],               # optional, default all
         "simulate": false,                   # optional
         "requests": 40000,                   # optional (simulate)
         "seed": 1234,                        # optional (simulate)
         "jobs": 4,                           # optional worker count
         "engine": "scalar" | "batch"}        # optional MVA backend
    """

    protocols: tuple[ProtocolSpec, ...]
    sizes: tuple[int, ...]
    sharing_levels: tuple[SharingLevel, ...]
    simulate: bool = False
    requests: int = 40_000
    seed: int = 1234
    jobs: int | None = None
    engine: str | None = None

    FIELDS: ClassVar[frozenset[str]] = frozenset(
        {"protocols", "n", "sharing", "simulate", "requests", "seed",
         "jobs", "engine"})

    @classmethod
    def from_payload(cls, payload: Any,
                     strict: bool = False) -> "GridRequest":
        require(isinstance(payload, dict),
                "request body must be a JSON object")
        if strict:
            reject_unknown_fields(payload, cls.FIELDS)
        require("protocols" in payload,
                "missing required field 'protocols'", code="missing-field")
        require("n" in payload, "missing required field 'n'",
                code="missing-field")
        raw_protocols = payload["protocols"]
        require(isinstance(raw_protocols, list) and bool(raw_protocols),
                "'protocols' must be a non-empty list")
        raw_sharing = payload.get("sharing")
        if raw_sharing is None:
            levels = tuple(SharingLevel)
        else:
            require(isinstance(raw_sharing, list) and bool(raw_sharing),
                    "'sharing' must be a non-empty list")
            levels = tuple(parse_sharing(item) for item in raw_sharing)
        jobs = payload.get("jobs")
        if jobs is not None:
            require(isinstance(jobs, int) and not isinstance(jobs, bool)
                    and jobs >= 1, "'jobs' must be a positive integer")
        return cls(
            protocols=tuple(parse_protocol(item) for item in raw_protocols),
            sizes=parse_sizes(payload["n"], "n"),
            sharing_levels=levels,
            simulate=bool(payload.get("simulate", False)),
            requests=parse_int_field(payload, "requests", 40_000),
            seed=parse_int_field(payload, "seed", 1234, minimum=0),
            jobs=jobs,
            engine=parse_engine(payload.get("engine")),
        )

    @property
    def cell_count(self) -> int:
        """Cells the sweep will evaluate (double when simulating)."""
        return (len(self.protocols) * len(self.sharing_levels)
                * len(self.sizes) * (2 if self.simulate else 1))

    def spec(self) -> GridSpec:
        """The executor-facing grid specification."""
        return GridSpec(
            protocols=self.protocols, sizes=self.sizes,
            sharing_levels=self.sharing_levels,
            include_simulation=self.simulate,
            sim_requests=self.requests, sim_seed=self.seed)


@dataclass(frozen=True)
class SweepRequest:
    """``POST /v1/sweep``: submit an asynchronous sharded sweep.

    JSON schema::

        {"protocols": ["write-once", "1,4"],  # required
         "n": [2, 4, 8],                      # required
         "sharing": ["1", "5"],               # optional, default all
         "simulate": false,                   # optional
         "requests": 40000,                   # optional (simulate)
         "seed": 1234,                        # optional (simulate)
         "workers": 4,                        # optional worker count
         "chunk_size": 64}                    # optional cells/chunk

    ``/v1``-only (always strict): the response is a job handle, not
    rows -- poll ``GET /v1/sweep/{job_id}`` for progress and fetch the
    rows with a ``/v1/grid`` request once done (every solved cell lands
    in the shared result cache).  There is no ``engine`` field: sweep
    workers always solve MVA chunks with the vectorized batch engine
    (byte-identical to scalar).
    """

    protocols: tuple[ProtocolSpec, ...]
    sizes: tuple[int, ...]
    sharing_levels: tuple[SharingLevel, ...]
    simulate: bool = False
    requests: int = 40_000
    seed: int = 1234
    workers: int | None = None
    chunk_size: int | None = None

    FIELDS: ClassVar[frozenset[str]] = frozenset(
        {"protocols", "n", "sharing", "simulate", "requests", "seed",
         "workers", "chunk_size"})

    @classmethod
    def from_payload(cls, payload: Any,
                     strict: bool = False) -> "SweepRequest":
        require(isinstance(payload, dict),
                "request body must be a JSON object")
        if strict:
            reject_unknown_fields(payload, cls.FIELDS)
        base = GridRequest.from_payload(
            {key: value for key, value in payload.items()
             if key in GridRequest.FIELDS})
        for field in ("workers", "chunk_size"):
            value = payload.get(field)
            if value is not None:
                require(isinstance(value, int)
                        and not isinstance(value, bool) and value >= 1,
                        f"{field!r} must be a positive integer")
        return cls(
            protocols=base.protocols, sizes=base.sizes,
            sharing_levels=base.sharing_levels, simulate=base.simulate,
            requests=base.requests, seed=base.seed,
            workers=payload.get("workers"),
            chunk_size=payload.get("chunk_size"))

    @property
    def cell_count(self) -> int:
        return (len(self.protocols) * len(self.sharing_levels)
                * len(self.sizes) * (2 if self.simulate else 1))

    def spec(self) -> GridSpec:
        return GridSpec(
            protocols=self.protocols, sizes=self.sizes,
            sharing_levels=self.sharing_levels,
            include_simulation=self.simulate,
            sim_requests=self.requests, sim_seed=self.seed)
