"""Content-addressed cache keys for model evaluations.

A solved cell is fully determined by (workload, protocol, architecture,
system size, solver settings, evaluation method).  The functions here
reduce that tuple to a canonical JSON document and hash it, so that
*equal-but-distinct* dataclass instances -- a ``WorkloadParameters``
built in another process, an identical ``ProtocolSpec`` constructed
from a different modification order -- map to the same key.

Canonicalization rules:

* dataclasses  -> ``{"field": value, ...}`` in field order via
  :func:`dataclasses.asdict` semantics (recursively canonicalized);
* enums        -> their ``value``;
* sets         -> sorted lists;
* floats       -> JSON's shortest round-trip representation (Python's
  ``repr`` semantics), so ``0.5`` hashes identically everywhere;
* dict keys    -> sorted (``sort_keys=True``).

The hash is SHA-256 over the UTF-8 canonical document, hex-encoded.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from functools import lru_cache
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from collections.abc import Sequence

    from repro.service.executor import CellTask

#: Bump when the solved-cell payload schema changes so stale persistent
#: stores never serve rows with missing/renamed fields.  v2: GridCell
#: rows gained ``error``; values gained ``effective_seed`` (sim) and
#: the ``damping``/``recovered``/``warnings`` ladder diagnostics (MVA).
SCHEMA_VERSION = 2


@lru_cache(maxsize=4096)
def _canonical_dataclass(obj: Any) -> dict[str, Any]:
    """Canonical form of one hashable (frozen) dataclass instance.

    A sweep reuses a handful of workload/protocol/solver instances
    across thousands of cells, so caching these fragments turns key
    derivation from the dominant cost of job submission into noise.
    The returned dict is shared across callers: treat it as immutable.
    """
    return {f.name: canonicalize(getattr(obj, f.name))
            for f in dataclasses.fields(obj)}


def canonicalize(obj: Any) -> Any:
    """Reduce ``obj`` to JSON-representable canonical data."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        try:
            return _canonical_dataclass(obj)
        except TypeError:  # unhashable (mutable) dataclass: no cache
            return {f.name: canonicalize(getattr(obj, f.name))
                    for f in dataclasses.fields(obj)}
    if isinstance(obj, enum.Enum):
        return canonicalize(obj.value)
    if isinstance(obj, (frozenset, set)):
        return sorted(canonicalize(item) for item in obj)
    if isinstance(obj, dict):
        return {str(key): canonicalize(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(item) for item in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__!r} for a cache key")


def canonical_key(payload: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``payload``."""
    document = json.dumps(canonicalize(payload), sort_keys=True,
                          separators=(",", ":"))
    return hashlib.sha256(document.encode("utf-8")).hexdigest()


@lru_cache(maxsize=4096)
def _fragment(obj: Any) -> str:
    """Canonical JSON text of one hashable payload component."""
    return json.dumps(canonicalize(obj), sort_keys=True,
                      separators=(",", ":"))


def task_key_payload(task: "CellTask") -> dict[str, Any]:
    """The canonical payload hashed by :func:`task_key` (the reference
    form; ``task_key`` assembles the same document from cached
    fragments, pinned equal by ``tests/test_service_cache.py``)."""
    payload: dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "method": task.method,
        "workload": task.workload,
        "protocol": {"mods": task.protocol.mod_numbers,
                     "label": task.protocol.label},
        "arch": task.arch,
        "n": task.n,
        "solver": task.solver,
        "sharing": task.sharing_label,
    }
    if task.method == "sim":
        payload["sim"] = {"requests": task.sim_requests, "seed": task.sim_seed}
        # Non-default engines are keyed explicitly; the scalar default
        # is omitted so every pre-existing cache entry keeps its key.
        if task.sim_engine != "scalar" or task.sim_reps != 1:
            payload["sim"]["engine"] = task.sim_engine
            payload["sim"]["reps"] = task.sim_reps
    return payload


@lru_cache(maxsize=1024)
def _document_parts(method: str, protocol: Any, arch: Any, solver: Any,
                    workload: Any, sharing_label: str,
                    sim_requests: int | None, sim_seed: int | None,
                    sim_engine: str = "scalar", sim_reps: int = 1,
                    ) -> tuple[str, str]:
    """The canonical document split around the only per-cell field.

    Everything except ``n`` is shared by every cell of a solve request
    (and by thousands of cells of a sweep), so the document is cached
    as a ``(prefix, suffix)`` pair keyed by those shared components:
    deriving one more cell's key is a string concatenation plus one
    SHA-256, which keeps key derivation out of the coalesced request
    hot path.
    """
    # Keys sorted as canonical JSON would emit them (engine < reps <
    # requests < seed); the scalar default omits engine/reps so legacy
    # keys are unchanged.
    engine = (f'"engine":{json.dumps(sim_engine)},'
              f'"reps":{json.dumps(sim_reps)},'
              if sim_engine != "scalar" or sim_reps != 1 else "")
    sim = (f',"sim":{{{engine}"requests":{json.dumps(sim_requests)},'
           f'"seed":{json.dumps(sim_seed)}}}'
           if method == "sim" else "")
    protocol_doc = (f'{{"label":{_fragment(protocol.label)},'
                    f'"mods":{_fragment(protocol.mod_numbers)}}}')
    prefix = (f'{{"arch":{_fragment(arch)},'
              f'"method":{_fragment(method)},'
              f'"n":')
    suffix = (f',"protocol":{protocol_doc},'
              f'"schema":{SCHEMA_VERSION},'
              f'"sharing":{_fragment(sharing_label)}'
              f'{sim},'
              f'"solver":{_fragment(solver)},'
              f'"workload":{_fragment(workload)}}}')
    return prefix, suffix


def prime_task_keys(tasks: "Sequence[CellTask]") -> None:
    """Memoize ``.key`` for a run of tasks sharing every component but
    ``n`` (one solve request's speedup curve).

    The shared document parts are derived -- and the component
    dataclasses hashed -- once for the whole run; each cell's key is
    then one string concatenation plus one SHA-256, instead of the
    per-task component hashing ``task_key`` pays.  Tasks that already
    carry a key, or that do not share the first task's components,
    simply fall back to the general path; keys are byte-identical
    either way.
    """
    if not tasks:
        return
    first = tasks[0]
    sim = first.method == "sim"
    prefix, suffix = _document_parts(
        first.method, first.protocol, first.arch, first.solver,
        first.workload, first.sharing_label,
        first.sim_requests if sim else None,
        first.sim_seed if sim else None,
        first.sim_engine if sim else "scalar",
        first.sim_reps if sim else 1)
    shared = (first.method, first.protocol, first.arch, first.solver,
              first.workload, first.sharing_label, first.sim_requests,
              first.sim_seed, first.sim_engine, first.sim_reps)
    for task in tasks:
        if "_key" in task.__dict__:
            continue
        if (task.method, task.protocol, task.arch, task.solver,
                task.workload, task.sharing_label, task.sim_requests,
                task.sim_seed, task.sim_engine, task.sim_reps) != shared:
            _ = task.key  # mixed run: the general per-task path
            continue
        digest = hashlib.sha256(
            f"{prefix}{task.n}{suffix}".encode("utf-8")).hexdigest()
        object.__setattr__(task, "_key", digest)


def task_key(task: "CellTask") -> str:
    """The cache key of one executor cell task.

    Includes the schema version and, for simulation cells, the run
    length and seed (two simulations of different length are different
    results; MVA cells are seed-free).

    The canonical document is assembled from per-component cached
    fragments (sweeps reuse a handful of workload/protocol/solver
    instances across thousands of cells), byte-identical to hashing
    :func:`task_key_payload` directly; keys are stable either way.
    """
    sim = task.method == "sim"
    prefix, suffix = _document_parts(
        task.method, task.protocol, task.arch, task.solver, task.workload,
        task.sharing_label,
        task.sim_requests if sim else None, task.sim_seed if sim else None,
        task.sim_engine if sim else "scalar", task.sim_reps if sim else 1)
    document = f"{prefix}{task.n}{suffix}"
    return hashlib.sha256(document.encode("utf-8")).hexdigest()
